file(REMOVE_RECURSE
  "CMakeFiles/drp_model_test.dir/drp_model_test.cc.o"
  "CMakeFiles/drp_model_test.dir/drp_model_test.cc.o.d"
  "drp_model_test"
  "drp_model_test.pdb"
  "drp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
