# Empty dependencies file for drp_model_test.
# This may be replaced when dependencies are built.
