# Empty compiler generated dependencies file for dr_r_learner_test.
# This may be replaced when dependencies are built.
