file(REMOVE_RECURSE
  "CMakeFiles/dr_r_learner_test.dir/dr_r_learner_test.cc.o"
  "CMakeFiles/dr_r_learner_test.dir/dr_r_learner_test.cc.o.d"
  "dr_r_learner_test"
  "dr_r_learner_test.pdb"
  "dr_r_learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_r_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
