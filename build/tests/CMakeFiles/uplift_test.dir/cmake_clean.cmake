file(REMOVE_RECURSE
  "CMakeFiles/uplift_test.dir/uplift_test.cc.o"
  "CMakeFiles/uplift_test.dir/uplift_test.cc.o.d"
  "uplift_test"
  "uplift_test.pdb"
  "uplift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uplift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
