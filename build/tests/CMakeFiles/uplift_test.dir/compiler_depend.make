# Empty compiler generated dependencies file for uplift_test.
# This may be replaced when dependencies are built.
