file(REMOVE_RECURSE
  "CMakeFiles/multi_head_net_test.dir/multi_head_net_test.cc.o"
  "CMakeFiles/multi_head_net_test.dir/multi_head_net_test.cc.o.d"
  "multi_head_net_test"
  "multi_head_net_test.pdb"
  "multi_head_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_head_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
