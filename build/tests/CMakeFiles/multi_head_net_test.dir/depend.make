# Empty dependencies file for multi_head_net_test.
# This may be replaced when dependencies are built.
