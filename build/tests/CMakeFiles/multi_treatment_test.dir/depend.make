# Empty dependencies file for multi_treatment_test.
# This may be replaced when dependencies are built.
