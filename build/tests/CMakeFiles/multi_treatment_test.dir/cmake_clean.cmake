file(REMOVE_RECURSE
  "CMakeFiles/multi_treatment_test.dir/multi_treatment_test.cc.o"
  "CMakeFiles/multi_treatment_test.dir/multi_treatment_test.cc.o.d"
  "multi_treatment_test"
  "multi_treatment_test.pdb"
  "multi_treatment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_treatment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
