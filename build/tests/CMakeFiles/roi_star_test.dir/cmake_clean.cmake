file(REMOVE_RECURSE
  "CMakeFiles/roi_star_test.dir/roi_star_test.cc.o"
  "CMakeFiles/roi_star_test.dir/roi_star_test.cc.o.d"
  "roi_star_test"
  "roi_star_test.pdb"
  "roi_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
