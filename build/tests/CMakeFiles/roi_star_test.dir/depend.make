# Empty dependencies file for roi_star_test.
# This may be replaced when dependencies are built.
