file(REMOVE_RECURSE
  "CMakeFiles/trees_test.dir/trees_test.cc.o"
  "CMakeFiles/trees_test.dir/trees_test.cc.o.d"
  "trees_test"
  "trees_test.pdb"
  "trees_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
