# Empty dependencies file for drp_loss_test.
# This may be replaced when dependencies are built.
