file(REMOVE_RECURSE
  "CMakeFiles/drp_loss_test.dir/drp_loss_test.cc.o"
  "CMakeFiles/drp_loss_test.dir/drp_loss_test.cc.o.d"
  "drp_loss_test"
  "drp_loss_test.pdb"
  "drp_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drp_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
