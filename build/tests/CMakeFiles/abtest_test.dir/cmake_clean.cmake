file(REMOVE_RECURSE
  "CMakeFiles/abtest_test.dir/abtest_test.cc.o"
  "CMakeFiles/abtest_test.dir/abtest_test.cc.o.d"
  "abtest_test"
  "abtest_test.pdb"
  "abtest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
