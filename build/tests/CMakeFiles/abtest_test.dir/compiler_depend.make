# Empty compiler generated dependencies file for abtest_test.
# This may be replaced when dependencies are built.
