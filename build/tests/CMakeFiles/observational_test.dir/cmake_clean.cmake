file(REMOVE_RECURSE
  "CMakeFiles/observational_test.dir/observational_test.cc.o"
  "CMakeFiles/observational_test.dir/observational_test.cc.o.d"
  "observational_test"
  "observational_test.pdb"
  "observational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
