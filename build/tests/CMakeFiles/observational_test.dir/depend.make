# Empty dependencies file for observational_test.
# This may be replaced when dependencies are built.
