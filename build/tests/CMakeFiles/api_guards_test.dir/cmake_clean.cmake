file(REMOVE_RECURSE
  "CMakeFiles/api_guards_test.dir/api_guards_test.cc.o"
  "CMakeFiles/api_guards_test.dir/api_guards_test.cc.o.d"
  "api_guards_test"
  "api_guards_test.pdb"
  "api_guards_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_guards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
