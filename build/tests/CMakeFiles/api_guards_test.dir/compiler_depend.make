# Empty compiler generated dependencies file for api_guards_test.
# This may be replaced when dependencies are built.
