file(REMOVE_RECURSE
  "CMakeFiles/cqr_test.dir/cqr_test.cc.o"
  "CMakeFiles/cqr_test.dir/cqr_test.cc.o.d"
  "cqr_test"
  "cqr_test.pdb"
  "cqr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
