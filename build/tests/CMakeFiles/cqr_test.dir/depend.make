# Empty dependencies file for cqr_test.
# This may be replaced when dependencies are built.
