file(REMOVE_RECURSE
  "CMakeFiles/lagrangian_test.dir/lagrangian_test.cc.o"
  "CMakeFiles/lagrangian_test.dir/lagrangian_test.cc.o.d"
  "lagrangian_test"
  "lagrangian_test.pdb"
  "lagrangian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagrangian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
