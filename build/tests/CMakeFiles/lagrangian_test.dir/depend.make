# Empty dependencies file for lagrangian_test.
# This may be replaced when dependencies are built.
