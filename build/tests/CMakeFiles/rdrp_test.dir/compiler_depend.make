# Empty compiler generated dependencies file for rdrp_test.
# This may be replaced when dependencies are built.
