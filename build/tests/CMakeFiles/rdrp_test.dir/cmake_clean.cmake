file(REMOVE_RECURSE
  "CMakeFiles/rdrp_test.dir/rdrp_test.cc.o"
  "CMakeFiles/rdrp_test.dir/rdrp_test.cc.o.d"
  "rdrp_test"
  "rdrp_test.pdb"
  "rdrp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdrp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
