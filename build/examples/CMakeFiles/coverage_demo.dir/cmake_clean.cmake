file(REMOVE_RECURSE
  "CMakeFiles/coverage_demo.dir/coverage_demo.cpp.o"
  "CMakeFiles/coverage_demo.dir/coverage_demo.cpp.o.d"
  "coverage_demo"
  "coverage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
