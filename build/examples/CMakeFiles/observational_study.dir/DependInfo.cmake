
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/observational_study.cpp" "examples/CMakeFiles/observational_study.dir/observational_study.cpp.o" "gcc" "examples/CMakeFiles/observational_study.dir/observational_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abtest/CMakeFiles/roicl_abtest.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/roicl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/roicl_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/roicl_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/roicl_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/uplift/CMakeFiles/roicl_uplift.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/roicl_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/roicl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/roicl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
