# Empty dependencies file for observational_study.
# This may be replaced when dependencies are built.
