file(REMOVE_RECURSE
  "CMakeFiles/observational_study.dir/observational_study.cpp.o"
  "CMakeFiles/observational_study.dir/observational_study.cpp.o.d"
  "observational_study"
  "observational_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observational_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
