# Empty compiler generated dependencies file for incentivized_ads.
# This may be replaced when dependencies are built.
