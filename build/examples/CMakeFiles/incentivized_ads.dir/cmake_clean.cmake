file(REMOVE_RECURSE
  "CMakeFiles/incentivized_ads.dir/incentivized_ads.cpp.o"
  "CMakeFiles/incentivized_ads.dir/incentivized_ads.cpp.o.d"
  "incentivized_ads"
  "incentivized_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incentivized_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
