# Empty compiler generated dependencies file for coupon_targeting.
# This may be replaced when dependencies are built.
