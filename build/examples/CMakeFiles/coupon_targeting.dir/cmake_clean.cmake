file(REMOVE_RECURSE
  "CMakeFiles/coupon_targeting.dir/coupon_targeting.cpp.o"
  "CMakeFiles/coupon_targeting.dir/coupon_targeting.cpp.o.d"
  "coupon_targeting"
  "coupon_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupon_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
