# Empty dependencies file for tiered_coupons.
# This may be replaced when dependencies are built.
