file(REMOVE_RECURSE
  "CMakeFiles/tiered_coupons.dir/tiered_coupons.cpp.o"
  "CMakeFiles/tiered_coupons.dir/tiered_coupons.cpp.o.d"
  "tiered_coupons"
  "tiered_coupons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_coupons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
