# Empty dependencies file for roicl_nn.
# This may be replaced when dependencies are built.
