file(REMOVE_RECURSE
  "libroicl_nn.a"
)
