file(REMOVE_RECURSE
  "CMakeFiles/roicl_nn.dir/activation.cc.o"
  "CMakeFiles/roicl_nn.dir/activation.cc.o.d"
  "CMakeFiles/roicl_nn.dir/dense.cc.o"
  "CMakeFiles/roicl_nn.dir/dense.cc.o.d"
  "CMakeFiles/roicl_nn.dir/dropout.cc.o"
  "CMakeFiles/roicl_nn.dir/dropout.cc.o.d"
  "CMakeFiles/roicl_nn.dir/loss.cc.o"
  "CMakeFiles/roicl_nn.dir/loss.cc.o.d"
  "CMakeFiles/roicl_nn.dir/mlp.cc.o"
  "CMakeFiles/roicl_nn.dir/mlp.cc.o.d"
  "CMakeFiles/roicl_nn.dir/optimizer.cc.o"
  "CMakeFiles/roicl_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/roicl_nn.dir/serialize.cc.o"
  "CMakeFiles/roicl_nn.dir/serialize.cc.o.d"
  "CMakeFiles/roicl_nn.dir/trainer.cc.o"
  "CMakeFiles/roicl_nn.dir/trainer.cc.o.d"
  "libroicl_nn.a"
  "libroicl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
