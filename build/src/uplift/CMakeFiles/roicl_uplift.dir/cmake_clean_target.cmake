file(REMOVE_RECURSE
  "libroicl_uplift.a"
)
