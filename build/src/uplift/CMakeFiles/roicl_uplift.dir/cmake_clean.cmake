file(REMOVE_RECURSE
  "CMakeFiles/roicl_uplift.dir/meta_learners.cc.o"
  "CMakeFiles/roicl_uplift.dir/meta_learners.cc.o.d"
  "CMakeFiles/roicl_uplift.dir/multi_head_net.cc.o"
  "CMakeFiles/roicl_uplift.dir/multi_head_net.cc.o.d"
  "CMakeFiles/roicl_uplift.dir/neural_cate.cc.o"
  "CMakeFiles/roicl_uplift.dir/neural_cate.cc.o.d"
  "CMakeFiles/roicl_uplift.dir/propensity.cc.o"
  "CMakeFiles/roicl_uplift.dir/propensity.cc.o.d"
  "CMakeFiles/roicl_uplift.dir/regressor.cc.o"
  "CMakeFiles/roicl_uplift.dir/regressor.cc.o.d"
  "CMakeFiles/roicl_uplift.dir/tpm.cc.o"
  "CMakeFiles/roicl_uplift.dir/tpm.cc.o.d"
  "libroicl_uplift.a"
  "libroicl_uplift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_uplift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
