
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uplift/meta_learners.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/meta_learners.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/meta_learners.cc.o.d"
  "/root/repo/src/uplift/multi_head_net.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/multi_head_net.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/multi_head_net.cc.o.d"
  "/root/repo/src/uplift/neural_cate.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/neural_cate.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/neural_cate.cc.o.d"
  "/root/repo/src/uplift/propensity.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/propensity.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/propensity.cc.o.d"
  "/root/repo/src/uplift/regressor.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/regressor.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/regressor.cc.o.d"
  "/root/repo/src/uplift/tpm.cc" "src/uplift/CMakeFiles/roicl_uplift.dir/tpm.cc.o" "gcc" "src/uplift/CMakeFiles/roicl_uplift.dir/tpm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/roicl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/roicl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/roicl_trees.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
