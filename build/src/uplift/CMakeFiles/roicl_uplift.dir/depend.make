# Empty dependencies file for roicl_uplift.
# This may be replaced when dependencies are built.
