file(REMOVE_RECURSE
  "CMakeFiles/roicl_trees.dir/causal_forest.cc.o"
  "CMakeFiles/roicl_trees.dir/causal_forest.cc.o.d"
  "CMakeFiles/roicl_trees.dir/random_forest.cc.o"
  "CMakeFiles/roicl_trees.dir/random_forest.cc.o.d"
  "CMakeFiles/roicl_trees.dir/regression_tree.cc.o"
  "CMakeFiles/roicl_trees.dir/regression_tree.cc.o.d"
  "CMakeFiles/roicl_trees.dir/tree_common.cc.o"
  "CMakeFiles/roicl_trees.dir/tree_common.cc.o.d"
  "libroicl_trees.a"
  "libroicl_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
