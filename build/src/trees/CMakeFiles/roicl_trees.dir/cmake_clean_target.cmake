file(REMOVE_RECURSE
  "libroicl_trees.a"
)
