
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/causal_forest.cc" "src/trees/CMakeFiles/roicl_trees.dir/causal_forest.cc.o" "gcc" "src/trees/CMakeFiles/roicl_trees.dir/causal_forest.cc.o.d"
  "/root/repo/src/trees/random_forest.cc" "src/trees/CMakeFiles/roicl_trees.dir/random_forest.cc.o" "gcc" "src/trees/CMakeFiles/roicl_trees.dir/random_forest.cc.o.d"
  "/root/repo/src/trees/regression_tree.cc" "src/trees/CMakeFiles/roicl_trees.dir/regression_tree.cc.o" "gcc" "src/trees/CMakeFiles/roicl_trees.dir/regression_tree.cc.o.d"
  "/root/repo/src/trees/tree_common.cc" "src/trees/CMakeFiles/roicl_trees.dir/tree_common.cc.o" "gcc" "src/trees/CMakeFiles/roicl_trees.dir/tree_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
