# Empty compiler generated dependencies file for roicl_trees.
# This may be replaced when dependencies are built.
