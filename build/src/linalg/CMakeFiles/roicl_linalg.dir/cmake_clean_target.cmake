file(REMOVE_RECURSE
  "libroicl_linalg.a"
)
