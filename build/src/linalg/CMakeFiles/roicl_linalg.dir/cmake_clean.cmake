file(REMOVE_RECURSE
  "CMakeFiles/roicl_linalg.dir/matrix.cc.o"
  "CMakeFiles/roicl_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/roicl_linalg.dir/solve.cc.o"
  "CMakeFiles/roicl_linalg.dir/solve.cc.o.d"
  "libroicl_linalg.a"
  "libroicl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
