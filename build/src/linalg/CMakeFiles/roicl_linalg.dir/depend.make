# Empty dependencies file for roicl_linalg.
# This may be replaced when dependencies are built.
