file(REMOVE_RECURSE
  "CMakeFiles/roicl_synth.dir/multi_treatment.cc.o"
  "CMakeFiles/roicl_synth.dir/multi_treatment.cc.o.d"
  "CMakeFiles/roicl_synth.dir/shift.cc.o"
  "CMakeFiles/roicl_synth.dir/shift.cc.o.d"
  "CMakeFiles/roicl_synth.dir/synthetic_generator.cc.o"
  "CMakeFiles/roicl_synth.dir/synthetic_generator.cc.o.d"
  "libroicl_synth.a"
  "libroicl_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
