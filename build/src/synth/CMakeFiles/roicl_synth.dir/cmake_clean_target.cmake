file(REMOVE_RECURSE
  "libroicl_synth.a"
)
