# Empty dependencies file for roicl_synth.
# This may be replaced when dependencies are built.
