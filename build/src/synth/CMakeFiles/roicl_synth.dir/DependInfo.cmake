
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/multi_treatment.cc" "src/synth/CMakeFiles/roicl_synth.dir/multi_treatment.cc.o" "gcc" "src/synth/CMakeFiles/roicl_synth.dir/multi_treatment.cc.o.d"
  "/root/repo/src/synth/shift.cc" "src/synth/CMakeFiles/roicl_synth.dir/shift.cc.o" "gcc" "src/synth/CMakeFiles/roicl_synth.dir/shift.cc.o.d"
  "/root/repo/src/synth/synthetic_generator.cc" "src/synth/CMakeFiles/roicl_synth.dir/synthetic_generator.cc.o" "gcc" "src/synth/CMakeFiles/roicl_synth.dir/synthetic_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/roicl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
