
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cost_curve.cc" "src/metrics/CMakeFiles/roicl_metrics.dir/cost_curve.cc.o" "gcc" "src/metrics/CMakeFiles/roicl_metrics.dir/cost_curve.cc.o.d"
  "/root/repo/src/metrics/coverage.cc" "src/metrics/CMakeFiles/roicl_metrics.dir/coverage.cc.o" "gcc" "src/metrics/CMakeFiles/roicl_metrics.dir/coverage.cc.o.d"
  "/root/repo/src/metrics/qini.cc" "src/metrics/CMakeFiles/roicl_metrics.dir/qini.cc.o" "gcc" "src/metrics/CMakeFiles/roicl_metrics.dir/qini.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/roicl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
