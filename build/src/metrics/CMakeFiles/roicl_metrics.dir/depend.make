# Empty dependencies file for roicl_metrics.
# This may be replaced when dependencies are built.
