file(REMOVE_RECURSE
  "libroicl_metrics.a"
)
