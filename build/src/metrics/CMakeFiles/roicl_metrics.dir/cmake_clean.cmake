file(REMOVE_RECURSE
  "CMakeFiles/roicl_metrics.dir/cost_curve.cc.o"
  "CMakeFiles/roicl_metrics.dir/cost_curve.cc.o.d"
  "CMakeFiles/roicl_metrics.dir/coverage.cc.o"
  "CMakeFiles/roicl_metrics.dir/coverage.cc.o.d"
  "CMakeFiles/roicl_metrics.dir/qini.cc.o"
  "CMakeFiles/roicl_metrics.dir/qini.cc.o.d"
  "libroicl_metrics.a"
  "libroicl_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
