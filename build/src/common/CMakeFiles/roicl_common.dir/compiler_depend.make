# Empty compiler generated dependencies file for roicl_common.
# This may be replaced when dependencies are built.
