file(REMOVE_RECURSE
  "libroicl_common.a"
)
