file(REMOVE_RECURSE
  "CMakeFiles/roicl_common.dir/rng.cc.o"
  "CMakeFiles/roicl_common.dir/rng.cc.o.d"
  "CMakeFiles/roicl_common.dir/stats.cc.o"
  "CMakeFiles/roicl_common.dir/stats.cc.o.d"
  "CMakeFiles/roicl_common.dir/status.cc.o"
  "CMakeFiles/roicl_common.dir/status.cc.o.d"
  "CMakeFiles/roicl_common.dir/thread_pool.cc.o"
  "CMakeFiles/roicl_common.dir/thread_pool.cc.o.d"
  "libroicl_common.a"
  "libroicl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
