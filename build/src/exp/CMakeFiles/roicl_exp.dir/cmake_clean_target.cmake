file(REMOVE_RECURSE
  "libroicl_exp.a"
)
