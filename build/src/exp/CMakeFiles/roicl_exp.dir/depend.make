# Empty dependencies file for roicl_exp.
# This may be replaced when dependencies are built.
