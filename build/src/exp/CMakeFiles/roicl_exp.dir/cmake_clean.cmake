file(REMOVE_RECURSE
  "CMakeFiles/roicl_exp.dir/ablation.cc.o"
  "CMakeFiles/roicl_exp.dir/ablation.cc.o.d"
  "CMakeFiles/roicl_exp.dir/datasets.cc.o"
  "CMakeFiles/roicl_exp.dir/datasets.cc.o.d"
  "CMakeFiles/roicl_exp.dir/methods.cc.o"
  "CMakeFiles/roicl_exp.dir/methods.cc.o.d"
  "CMakeFiles/roicl_exp.dir/runner.cc.o"
  "CMakeFiles/roicl_exp.dir/runner.cc.o.d"
  "CMakeFiles/roicl_exp.dir/setting.cc.o"
  "CMakeFiles/roicl_exp.dir/setting.cc.o.d"
  "CMakeFiles/roicl_exp.dir/table.cc.o"
  "CMakeFiles/roicl_exp.dir/table.cc.o.d"
  "libroicl_exp.a"
  "libroicl_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
