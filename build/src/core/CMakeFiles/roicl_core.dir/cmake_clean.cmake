file(REMOVE_RECURSE
  "CMakeFiles/roicl_core.dir/calibration.cc.o"
  "CMakeFiles/roicl_core.dir/calibration.cc.o.d"
  "CMakeFiles/roicl_core.dir/conformal.cc.o"
  "CMakeFiles/roicl_core.dir/conformal.cc.o.d"
  "CMakeFiles/roicl_core.dir/cqr.cc.o"
  "CMakeFiles/roicl_core.dir/cqr.cc.o.d"
  "CMakeFiles/roicl_core.dir/dr_model.cc.o"
  "CMakeFiles/roicl_core.dir/dr_model.cc.o.d"
  "CMakeFiles/roicl_core.dir/drp_loss.cc.o"
  "CMakeFiles/roicl_core.dir/drp_loss.cc.o.d"
  "CMakeFiles/roicl_core.dir/drp_model.cc.o"
  "CMakeFiles/roicl_core.dir/drp_model.cc.o.d"
  "CMakeFiles/roicl_core.dir/greedy.cc.o"
  "CMakeFiles/roicl_core.dir/greedy.cc.o.d"
  "CMakeFiles/roicl_core.dir/ipw_drp.cc.o"
  "CMakeFiles/roicl_core.dir/ipw_drp.cc.o.d"
  "CMakeFiles/roicl_core.dir/lagrangian.cc.o"
  "CMakeFiles/roicl_core.dir/lagrangian.cc.o.d"
  "CMakeFiles/roicl_core.dir/mc_dropout.cc.o"
  "CMakeFiles/roicl_core.dir/mc_dropout.cc.o.d"
  "CMakeFiles/roicl_core.dir/multi_treatment.cc.o"
  "CMakeFiles/roicl_core.dir/multi_treatment.cc.o.d"
  "CMakeFiles/roicl_core.dir/rdrp.cc.o"
  "CMakeFiles/roicl_core.dir/rdrp.cc.o.d"
  "CMakeFiles/roicl_core.dir/roi_star.cc.o"
  "CMakeFiles/roicl_core.dir/roi_star.cc.o.d"
  "libroicl_core.a"
  "libroicl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
