
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cc" "src/core/CMakeFiles/roicl_core.dir/calibration.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/calibration.cc.o.d"
  "/root/repo/src/core/conformal.cc" "src/core/CMakeFiles/roicl_core.dir/conformal.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/conformal.cc.o.d"
  "/root/repo/src/core/cqr.cc" "src/core/CMakeFiles/roicl_core.dir/cqr.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/cqr.cc.o.d"
  "/root/repo/src/core/dr_model.cc" "src/core/CMakeFiles/roicl_core.dir/dr_model.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/dr_model.cc.o.d"
  "/root/repo/src/core/drp_loss.cc" "src/core/CMakeFiles/roicl_core.dir/drp_loss.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/drp_loss.cc.o.d"
  "/root/repo/src/core/drp_model.cc" "src/core/CMakeFiles/roicl_core.dir/drp_model.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/drp_model.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/roicl_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/ipw_drp.cc" "src/core/CMakeFiles/roicl_core.dir/ipw_drp.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/ipw_drp.cc.o.d"
  "/root/repo/src/core/lagrangian.cc" "src/core/CMakeFiles/roicl_core.dir/lagrangian.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/lagrangian.cc.o.d"
  "/root/repo/src/core/mc_dropout.cc" "src/core/CMakeFiles/roicl_core.dir/mc_dropout.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/mc_dropout.cc.o.d"
  "/root/repo/src/core/multi_treatment.cc" "src/core/CMakeFiles/roicl_core.dir/multi_treatment.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/multi_treatment.cc.o.d"
  "/root/repo/src/core/rdrp.cc" "src/core/CMakeFiles/roicl_core.dir/rdrp.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/rdrp.cc.o.d"
  "/root/repo/src/core/roi_star.cc" "src/core/CMakeFiles/roicl_core.dir/roi_star.cc.o" "gcc" "src/core/CMakeFiles/roicl_core.dir/roi_star.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/roicl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/roicl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/roicl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/roicl_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/roicl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/roicl_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/uplift/CMakeFiles/roicl_uplift.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/roicl_trees.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
