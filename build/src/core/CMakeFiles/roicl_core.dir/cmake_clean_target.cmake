file(REMOVE_RECURSE
  "libroicl_core.a"
)
