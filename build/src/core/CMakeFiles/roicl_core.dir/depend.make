# Empty dependencies file for roicl_core.
# This may be replaced when dependencies are built.
