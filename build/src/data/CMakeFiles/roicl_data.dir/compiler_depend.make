# Empty compiler generated dependencies file for roicl_data.
# This may be replaced when dependencies are built.
