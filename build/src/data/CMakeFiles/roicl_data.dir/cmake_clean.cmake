file(REMOVE_RECURSE
  "CMakeFiles/roicl_data.dir/csv.cc.o"
  "CMakeFiles/roicl_data.dir/csv.cc.o.d"
  "CMakeFiles/roicl_data.dir/dataset.cc.o"
  "CMakeFiles/roicl_data.dir/dataset.cc.o.d"
  "CMakeFiles/roicl_data.dir/scaler.cc.o"
  "CMakeFiles/roicl_data.dir/scaler.cc.o.d"
  "CMakeFiles/roicl_data.dir/split.cc.o"
  "CMakeFiles/roicl_data.dir/split.cc.o.d"
  "libroicl_data.a"
  "libroicl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
