file(REMOVE_RECURSE
  "libroicl_data.a"
)
