file(REMOVE_RECURSE
  "libroicl_abtest.a"
)
