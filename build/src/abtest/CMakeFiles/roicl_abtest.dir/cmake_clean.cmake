file(REMOVE_RECURSE
  "CMakeFiles/roicl_abtest.dir/simulator.cc.o"
  "CMakeFiles/roicl_abtest.dir/simulator.cc.o.d"
  "libroicl_abtest.a"
  "libroicl_abtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl_abtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
