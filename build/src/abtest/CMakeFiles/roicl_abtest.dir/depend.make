# Empty dependencies file for roicl_abtest.
# This may be replaced when dependencies are built.
