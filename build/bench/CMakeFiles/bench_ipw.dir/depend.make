# Empty dependencies file for bench_ipw.
# This may be replaced when dependencies are built.
