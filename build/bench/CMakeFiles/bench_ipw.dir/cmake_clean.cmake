file(REMOVE_RECURSE
  "CMakeFiles/bench_ipw.dir/bench_ipw.cc.o"
  "CMakeFiles/bench_ipw.dir/bench_ipw.cc.o.d"
  "bench_ipw"
  "bench_ipw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
