file(REMOVE_RECURSE
  "CMakeFiles/bench_cqr.dir/bench_cqr.cc.o"
  "CMakeFiles/bench_cqr.dir/bench_cqr.cc.o.d"
  "bench_cqr"
  "bench_cqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
