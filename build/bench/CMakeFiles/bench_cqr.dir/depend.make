# Empty dependencies file for bench_cqr.
# This may be replaced when dependencies are built.
