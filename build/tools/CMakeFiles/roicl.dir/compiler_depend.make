# Empty compiler generated dependencies file for roicl.
# This may be replaced when dependencies are built.
