file(REMOVE_RECURSE
  "CMakeFiles/roicl.dir/roicl_cli.cc.o"
  "CMakeFiles/roicl.dir/roicl_cli.cc.o.d"
  "roicl"
  "roicl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roicl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
