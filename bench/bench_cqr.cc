// CQR vs conformalized scalar uncertainty (§IV-C of the paper).
//
// The paper chooses "Conformalizing Scalar Uncertainty Estimates" for rDRP
// because DRP's convex loss cannot be rewritten as a quantile loss. This
// bench quantifies what that choice costs on a task where BOTH methods
// apply — ordinary heteroscedastic regression — comparing empirical
// coverage and (more interestingly) how well interval widths adapt to the
// local noise level.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/math_util.h"
#include "common/stats.h"
#include "core/conformal.h"
#include "core/cqr.h"
#include "exp/table.h"
#include "metrics/coverage.h"
#include "nn/loss.h"
#include "nn/trainer.h"

using namespace roicl;

namespace {

/// y = sin(2x) + (0.1 + 0.4|x|) * N(0,1): noise grows with |x|.
void MakeData(int n, uint64_t seed, Matrix* x, std::vector<double>* y,
              std::vector<double>* noise_scale) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  y->resize(AsSize(n));
  noise_scale->resize(AsSize(n));
  for (int i = 0; i < n; ++i) {
    const size_t si = AsSize(i);
    double xi = rng.Uniform(-2.0, 2.0);
    (*x)(i, 0) = xi;
    (*noise_scale)[si] = 0.1 + 0.4 * std::fabs(xi);
    (*y)[si] = std::sin(2.0 * xi) + (*noise_scale)[si] * rng.Normal();
  }
}

}  // namespace

int main() {
  int n_train = bench::FastMode() ? 1500 : 6000;
  int n_calib = bench::FastMode() ? 500 : 2000;
  int n_test = bench::FastMode() ? 1000 : 4000;
  double alpha = 0.1;

  Matrix x_train, x_calib, x_test;
  std::vector<double> y_train, y_calib, y_test, s_train, s_calib, s_test;
  MakeData(n_train, 1, &x_train, &y_train, &s_train);
  MakeData(n_calib, 2, &x_calib, &y_calib, &s_calib);
  MakeData(n_test, 3, &x_test, &y_test, &s_test);

  // --- Method A: CQR (quantile heads + conformal widening). ---
  core::CqrConfig cqr_config;
  cqr_config.alpha = alpha;
  cqr_config.train.epochs = bench::FastMode() ? 20 : 80;
  cqr_config.train.learning_rate = 5e-3;
  core::CqrModel cqr(cqr_config);
  cqr.Fit(x_train, y_train);
  cqr.Calibrate(x_calib, y_calib);
  std::vector<metrics::Interval> cqr_intervals =
      cqr.PredictIntervals(x_test);

  // --- Method B: conformalized scalar uncertainty (what rDRP uses):
  // a mean regressor + MC-dropout std as the scalar, conformal scaling.
  Rng rng(4);
  nn::Mlp mean_net = nn::Mlp::MakeMlp(1, {64}, 1,
                                      nn::ActivationKind::kRelu,
                                      /*dropout_rate=*/0.2, &rng);
  nn::MseLoss mse(&y_train);
  std::vector<int> index(AsSize(x_train.rows()));
  for (int i = 0; i < x_train.rows(); ++i) index[AsSize(i)] = i;
  nn::TrainConfig train_config;
  train_config.epochs = bench::FastMode() ? 20 : 80;
  train_config.learning_rate = 5e-3;
  nn::TrainNetwork(&mean_net, x_train, index, {}, mse, train_config);

  auto mc_stats = [&](const Matrix& x) {
    // Local MC dropout: mean + std across stochastic passes.
    int passes = 30;
    std::vector<double> sum(AsSize(x.rows()), 0.0);
    std::vector<double> sum_sq(AsSize(x.rows()), 0.0);
    Rng mc_rng(5);
    for (int p = 0; p < passes; ++p) {
      Matrix out = mean_net.Forward(x, nn::Mode::kMcSample, &mc_rng);
      for (int i = 0; i < x.rows(); ++i) {
        sum[AsSize(i)] += out(i, 0);
        sum_sq[AsSize(i)] += out(i, 0) * out(i, 0);
      }
    }
    std::pair<std::vector<double>, std::vector<double>> result;
    result.first.resize(AsSize(x.rows()));
    result.second.resize(AsSize(x.rows()));
    for (int i = 0; i < x.rows(); ++i) {
      const size_t si = AsSize(i);
      double mean = sum[si] / passes;
      result.first[si] = mean;
      result.second[si] = std::sqrt(
          std::max(0.0, sum_sq[si] / passes - mean * mean));
    }
    return result;
  };
  auto [mu_calib, sd_calib] = mc_stats(x_calib);
  auto [mu_test, sd_test] = mc_stats(x_test);
  std::vector<double> scores(mu_calib.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = std::fabs(y_calib[i] - mu_calib[i]) /
                std::max(sd_calib[i], 1e-4);
  }
  double q_hat = core::ConformalScoreQuantile(scores, alpha);
  std::vector<metrics::Interval> scalar_intervals =
      core::ConformalIntervals(mu_test, sd_test, q_hat);

  // --- Report: coverage, width, adaptivity. ---
  auto report = [&](const char* name,
                    const std::vector<metrics::Interval>& intervals) {
    metrics::CoverageReport coverage =
        metrics::EvaluateCoverage(intervals, y_test);
    std::vector<double> widths(intervals.size());
    for (size_t i = 0; i < intervals.size(); ++i) {
      widths[i] = intervals[i].width();
    }
    // Adaptivity: widths should track the true local noise scale.
    double adaptivity = PearsonCorrelation(widths, s_test);
    std::printf("  %-22s coverage=%.3f  mean width=%.3f  "
                "corr(width, true noise)=%.3f\n",
                name, coverage.coverage, coverage.mean_width, adaptivity);
  };

  std::printf(
      "CQR vs conformalized scalar uncertainty (alpha=%.2f, target "
      "coverage %.2f):\n",
      alpha, 1.0 - alpha);
  report("CQR", cqr_intervals);
  report("Scalar (MC dropout)", scalar_intervals);
  std::printf(
      "\nBoth satisfy the coverage guarantee; CQR's widths adapt to the\n"
      "local noise, while the MC-dropout scalar mostly cannot — the\n"
      "limitation the paper concedes in SS VI.\n");
  return 0;
}
