// Reproduces Table I of the paper: offline AUCC of the ten C-BTAP methods
// on the three (synthetic stand-in) datasets under the four settings
// SuNo / SuCo / InNo / InCo.
//
// Expected shape (not absolute values — see EXPERIMENTS.md): rDRP is the
// best or tied-best row per column; DRP is the strongest point-estimate
// baseline; the rDRP-DRP gap widens from SuNo toward InCo.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "exp/runner.h"
#include "exp/table.h"

int main() {
  using namespace roicl;
  using namespace roicl::exp;

  bench::EnableProgressLogging();
  MethodHyperparams hp = bench::BenchHyperparams();
  SplitSizes sizes = bench::BenchSizes();
  std::vector<MethodSpec> methods = Table1Methods(hp);

  std::printf(
      "Table I: offline AUCC, four settings x three datasets "
      "(train_n=%d%s)\n\n",
      sizes.train_sufficient, bench::FastMode() ? ", FAST mode" : "");

  // Each cell is averaged over independent data draws to damp the
  // sampling noise of a single calibration/test realization.
  std::vector<uint64_t> seeds = bench::BenchSeeds(2);
  std::map<std::string, double> lookup;
  auto key = [](const std::string& method, DatasetId dataset,
                Setting setting) {
    return method + "|" + DatasetName(dataset) + "|" + SettingName(setting);
  };
  for (uint64_t seed : seeds) {
    std::vector<OfflineCell> cells =
        RunOfflineSweep(methods, sizes, seed, /*verbose=*/true);
    for (const OfflineCell& cell : cells) {
      lookup[key(cell.method, cell.dataset, cell.setting)] +=
          cell.aucc / static_cast<double>(seeds.size());
    }
  }

  for (bool sufficient : {true, false}) {
    std::printf("\n== %s data ==\n",
                sufficient ? "Sufficient" : "Insufficient");
    TextTable table({"Method", "CRITEO NoShift", "CRITEO Shift",
                     "Meituan NoShift", "Meituan Shift", "Alibaba NoShift",
                     "Alibaba Shift"});
    Setting no_shift = sufficient ? Setting::kSuNo : Setting::kInNo;
    Setting shift = sufficient ? Setting::kSuCo : Setting::kInCo;
    for (const MethodSpec& method : methods) {
      std::vector<std::string> row = {method.name};
      for (DatasetId dataset : AllDatasets()) {
        row.push_back(
            TextTable::Num(lookup[key(method.name, dataset, no_shift)]));
        row.push_back(
            TextTable::Num(lookup[key(method.name, dataset, shift)]));
      }
      table.AddRow(row);
    }
    table.Print();
  }
  return 0;
}
