// Micro-benchmarks backing the time-complexity analysis of §IV-D:
//   - Algorithm 2 binary search: O(log(1/eps)) derivative evaluations,
//     each a linear pass over the calibration set.
//   - Conformal quantile: O(n) selection over calibration scores.
//   - MC-dropout inference: linear in the number of passes.
//   - AUCC: O(n log n) sort + linear scan.
//   - Greedy C-BTAP allocation: O(n log n).
//   - Forest / DRP training for context.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "alloc/row_source.h"
#include "alloc/streaming.h"
#include "campaign/karm_source.h"
#include "campaign/karm_streaming.h"
#include "common/macros.h"
#include "common/stats.h"
#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"
#include "monitor/monitor.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "pipeline/service.h"
#include "trees/causal_forest.h"
#include "common/math_util.h"

namespace roicl {
namespace {

const synth::SyntheticGenerator& Generator() {
  static const synth::SyntheticGenerator& generator =
      *new synth::SyntheticGenerator(synth::CriteoSynthConfig());
  return generator;
}

RctDataset MakeData(int n) {
  Rng rng(42);
  return Generator().Generate(n, false, &rng);
}

void BM_BinarySearchRoiStar(benchmark::State& state) {
  RctDataset data = MakeData(static_cast<int>(state.range(0)));
  double epsilon = 1.0 / static_cast<double>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BinarySearchRoiStar(data, epsilon));
  }
  state.SetComplexityN(state.range(0));
}

void BM_ConformalQuantile(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<double> scores(roicl::AsSize(n));
  for (double& s : scores) s = rng.Exponential(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConformalQuantile(scores, 0.1));
  }
  state.SetComplexityN(n);
}

core::DrpModel& SharedSmallDrp() {
  static core::DrpModel& model = *[] {
    core::DrpConfig config;
    config.train.epochs = 3;
    auto* drp = new core::DrpModel(config);
    RctDataset train = MakeData(3000);
    drp->Fit(train);
    return drp;
  }();
  return model;
}

void BM_McDropoutInference(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(1000);
  int passes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp.PredictMcRoi(test.x, passes, 1));
  }
  state.SetComplexityN(passes);
}

// Batched inference forward vs. the naive one-row-at-a-time loop. Arg 0
// is the batch size; 1 means "forward each row alone", i.e. the per-row
// baseline the batched engine replaces. Serial (num_threads = 1) so the
// measured ratio isolates the batching win from any threading win.
void BM_BatchForward(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(4000);
  core::DrpConfig config = drp.config();
  config.predict.batch_size = static_cast<int>(state.range(0));
  config.predict.num_threads = 1;
  core::DrpModel runner(config);
  {
    // Clone the fitted weights by round-tripping the serialized model so
    // every batch size measures the same network.
    std::stringstream stream;
    ROICL_CHECK(drp.Save(stream).ok());
    StatusOr<core::DrpModel> loaded =
        core::DrpModel::Load(stream, config);
    ROICL_CHECK(loaded.ok());
    runner = std::move(loaded).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.PredictRoi(test.x));
  }
  state.SetItemsProcessed(state.iterations() * test.n());
}

// The parallel MC-dropout engine across thread counts (arg 0; 1 = inline
// serial). Single-core containers show ~1x here by construction — the
// determinism tests prove the knob is safe, this records the throughput.
void BM_ParallelMcDropout(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(2000);
  nn::BatchOptions opts;
  opts.batch_size = 128;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp.PredictMcRoi(test.x, /*passes=*/20,
                                              /*seed=*/1, opts));
  }
  state.SetItemsProcessed(state.iterations() * test.n() * 20);
}

void BM_Aucc(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RctDataset data = MakeData(n);
  Rng rng(9);
  std::vector<double> scores(roicl::AsSize(n));
  for (double& s : scores) s = rng.Uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::Aucc(scores, data));
  }
  state.SetComplexityN(n);
}

void BM_GreedyAllocate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> roi(roicl::AsSize(n)), cost(roicl::AsSize(n));
  for (int i = 0; i < n; ++i) {
    roi[roicl::AsSize(i)] = rng.Uniform();
    cost[roicl::AsSize(i)] = rng.Uniform(0.1, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GreedyAllocate(roi, cost, 0.2 * n, true));
  }
  state.SetComplexityN(n);
}

// Planet-scale allocation: Arg(0) is the row count, Arg(1) the mode
// (0 = greedy frontier merge, 1 = dual threshold). The synthetic
// population is a pure function of (seed, index) — no materialization —
// and the whole allocation runs inside a hard 64 MiB accounted cap,
// where the in-memory reference would need ~229 MiB for the raw arrays
// alone at 10M rows. Config mirrors EXPERIMENTS.md ("Streaming
// allocation at 10M rows"): pinned seed, 8 shards, budget 0.2% of
// all-in spend.
void BM_StreamingAllocate(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const uint64_t seed = 20240942;
  alloc::SyntheticRowSource source(rows, seed, /*chunk_rows=*/65536);
  StatusOr<double> total = alloc::StreamingTotalCost(&source);
  ROICL_CHECK(total.ok());
  double budget = 0.002 * total.value();
  alloc::StreamingOptions options;
  options.mode = state.range(1) == 0 ? alloc::AllocMode::kGreedy
                                     : alloc::AllocMode::kDual;
  options.num_shards = 8;
  options.memory_cap_bytes = size_t{64} << 20;
  size_t peak = 0;
  int64_t selected = 0;
  for (auto _ : state) {
    StatusOr<alloc::StreamingResult> result =
        alloc::StreamingAllocate(&source, budget, options);
    ROICL_CHECK(result.ok());
    ROICL_CHECK(result.value().peak_memory_bytes <=
                options.memory_cap_bytes);
    peak = std::max(peak, result.value().peak_memory_bytes);
    selected = static_cast<int64_t>(result.value().selected.size());
    benchmark::DoNotOptimize(result.value().spent);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["peak_mib"] =
      static_cast<double>(peak) / (1024.0 * 1024.0);
  state.counters["cap_mib"] =
      static_cast<double>(options.memory_cap_bytes) / (1024.0 * 1024.0);
  state.counters["selected"] = static_cast<double>(selected);
}

// K-arm campaign allocation: Arg(0) is the user count, Arg(1) the arm
// count. Every (user, arm) pair is a pure function of (seed, user, arm)
// — no materialization — and the sharded scan runs inside a hard 64 MiB
// accounted cap, where the in-memory reference would hold K roi + K
// cost arrays (~488 MiB at 4M users x 8 arms). The global budget is
// 0.2% of all-in spend with unbounded per-arm budgets — same fraction
// as BM_StreamingAllocate, and the frontier it implies peaks at
// ~55 MiB on the 32M-pair row, deterministically inside the cap.
void BM_CampaignAllocate(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int num_arms = static_cast<int>(state.range(1));
  const uint64_t seed = 20240819;
  const int chunk_rows = 65536;
  double total = 0.0;
  {
    campaign::SyntheticKArmRowSource scan(rows, num_arms, seed, chunk_rows);
    campaign::KArmRowChunk chunk;
    while (scan.Next(&chunk)) {
      for (const std::vector<double>& arm : chunk.cost) {
        total = std::accumulate(arm.begin(), arm.end(), total);
      }
    }
  }
  campaign::KArmBudgets budgets;
  budgets.global = 0.002 * total;
  budgets.per_arm.assign(roicl::AsSize(num_arms),
                         std::numeric_limits<double>::infinity());
  campaign::KArmStreamingOptions options;
  options.num_shards = 8;
  options.memory_cap_bytes = size_t{64} << 20;
  size_t peak = 0;
  int64_t selected = 0;
  for (auto _ : state) {
    campaign::SyntheticKArmRowSource source(rows, num_arms, seed,
                                            chunk_rows);
    StatusOr<campaign::KArmStreamingResult> result =
        campaign::StreamingKArmAllocate(&source, budgets, options);
    ROICL_CHECK(result.ok());
    ROICL_CHECK(result.value().peak_memory_bytes <=
                options.memory_cap_bytes);
    peak = std::max(peak, result.value().peak_memory_bytes);
    selected = static_cast<int64_t>(result.value().selected_pairs.size());
    benchmark::DoNotOptimize(result.value().spent);
  }
  state.SetItemsProcessed(state.iterations() * rows * num_arms);
  state.counters["peak_mib"] =
      static_cast<double>(peak) / (1024.0 * 1024.0);
  state.counters["cap_mib"] =
      static_cast<double>(options.memory_cap_bytes) / (1024.0 * 1024.0);
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_DrpTrainEpoch(benchmark::State& state) {
  RctDataset train = MakeData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::DrpConfig config;
    config.train.epochs = 1;
    config.train.patience = 0;
    core::DrpModel drp(config);
    drp.Fit(train);
  }
  state.SetComplexityN(state.range(0));
}

// Instrumentation-overhead measurement: the full rDRP train + predict
// pipeline with observability quiet (arg 0: log level off, tracing off),
// at the default INFO level (arg 1), and with tracing collecting spans
// (arg 2). The acceptance bar is arg1 within 3% of arg0.
void BM_RdrpTrainPredictObsOverhead(benchmark::State& state) {
  RctDataset train = MakeData(2000);
  RctDataset calib = MakeData(600);
  RctDataset test = MakeData(800);
  obs::Logger& logger = obs::Logger::Global();
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  obs::LogLevel saved_level = logger.level();
  int mode = static_cast<int>(state.range(0));
  logger.SetLevel(mode == 0 ? obs::LogLevel::kOff : obs::LogLevel::kInfo);
  collector.SetEnabled(mode == 2);

  core::RdrpConfig config;
  config.drp.train.epochs = 8;
  config.drp.restarts = 1;
  config.mc_passes = 10;
  for (auto _ : state) {
    core::RdrpModel model(config);
    model.FitWithCalibration(train, calib);
    benchmark::DoNotOptimize(model.PredictRoi(test.x));
    collector.Clear();
  }

  collector.SetEnabled(false);
  collector.Clear();
  logger.SetLevel(saved_level);
}

void BM_CausalForestFit(benchmark::State& state) {
  RctDataset train = MakeData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    trees::CausalForestConfig config;
    config.num_trees = 10;
    trees::CausalForest forest(config);
    forest.Fit(train.x, train.treatment, train.y_revenue);
    benchmark::DoNotOptimize(forest);
  }
  state.SetComplexityN(state.range(0));
}

/// End-to-end serving throughput: a ScoringService fed micro-batched
/// requests (128 rows each), swept over engine thread counts. The
/// pipeline is trained once and reloaded from its artifact per run, so
/// the benchmark covers the exact train-once/serve-many path the CLI
/// `serve` subcommand uses. Recorded to BENCH_serve.json by
/// tools/bench_to_json.sh.
void BM_ScoringServiceThroughput(benchmark::State& state) {
  static const std::string& blob = [] {
    pipeline::Hyperparams hp;
    hp.neural_epochs = 4;
    hp.restarts = 1;
    RctDataset train = MakeData(2000);
    pipeline::Pipeline trained =
        std::move(pipeline::Pipeline::Train("DRP", hp, train,
                                            /*calibration=*/nullptr, {}))
            .value();
    std::ostringstream out;
    ROICL_CHECK(trained.Save(out).ok());
    return *new std::string(out.str());
  }();
  std::istringstream in(blob);
  pipeline::Pipeline loaded =
      std::move(pipeline::Pipeline::Load(in)).value();
  pipeline::ServiceOptions options;
  options.engine.num_threads = static_cast<int>(state.range(0));
  pipeline::ScoringService service(std::move(loaded), options);

  RctDataset data = MakeData(4096);
  constexpr int kRequestRows = 128;
  std::vector<Matrix> requests;
  for (int start = 0; start < data.x.rows(); start += kRequestRows) {
    int end = std::min(start + kRequestRows, data.x.rows());
    std::vector<int> rows(AsSize(end - start));
    std::iota(rows.begin(), rows.end(), start);
    requests.push_back(data.x.SelectRows(rows));
  }

  for (auto _ : state) {
    std::vector<std::future<StatusOr<std::vector<double>>>> futures;
    futures.reserve(requests.size());
    for (const Matrix& request : requests) {
      futures.push_back(service.Submit(request));
    }
    for (auto& future : futures) {
      StatusOr<std::vector<double>> result = future.get();
      ROICL_CHECK(result.ok());
      benchmark::DoNotOptimize(result.value().data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.x.rows()));
}

// Shared conformal fixture for the monitor benchmarks: one trained rDRP
// pipeline plus the calibration set its references were captured from.
struct MonitorFixture {
  pipeline::Pipeline pipeline;
  RctDataset calibration;
};

MonitorFixture& SharedMonitorFixture() {
  static MonitorFixture& fixture = *[] {
    pipeline::Hyperparams hp;
    hp.neural_epochs = 4;
    hp.restarts = 1;
    hp.mc_passes = 6;
    RctDataset train = MakeData(2000);
    Rng rng(43);
    RctDataset calib = Generator().Generate(600, false, &rng);
    pipeline::Pipeline trained =
        std::move(pipeline::Pipeline::Train("rDRP", hp, train, &calib, {}))
            .value();
    return new MonitorFixture{std::move(trained), std::move(calib)};
  }();
  return fixture;
}

/// Serving-path overhead of drift monitoring: ObserveScored bins every
/// feature column and the score stream into the live windows (plus a
/// detector evaluation each time `window_rows` accumulate), fanned out
/// over engine threads (arg 0). Items = rows ingested; recorded to
/// BENCH_monitor.json by tools/bench_to_json.sh.
void BM_MonitorUpdate(benchmark::State& state) {
  MonitorFixture& fixture = SharedMonitorFixture();
  monitor::MonitorOptions options;
  options.engine.batch_size = 128;
  options.engine.num_threads = static_cast<int>(state.range(0));
  std::unique_ptr<monitor::ServingMonitor> mon =
      std::move(monitor::ServingMonitor::FromCalibration(
                    &fixture.pipeline, fixture.calibration, options))
          .value();
  RctDataset data = MakeData(2048);
  std::vector<double> scores = fixture.pipeline.Score(data.x).value();
  for (auto _ : state) {
    mon->ObserveScored(data.x, scores);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.x.rows()));
}

/// One forced rolling recalibration over a full labeled feedback window
/// of arg-0 rows: the Eq. (3) MC sweep over the window, the Algorithm 2
/// roi* search, the windowed quantile, and the atomic q_hat swap.
void BM_RollingRecalibrate(benchmark::State& state) {
  MonitorFixture& fixture = SharedMonitorFixture();
  int window = static_cast<int>(state.range(0));
  monitor::MonitorOptions options;
  options.recalibrator.min_labeled = 50;
  options.recalibrator.max_window = static_cast<size_t>(window);
  std::unique_ptr<monitor::ServingMonitor> mon =
      std::move(monitor::ServingMonitor::FromCalibration(
                    &fixture.pipeline, fixture.calibration, options))
          .value();
  mon->BindQuantileSwap([&fixture](double q_hat) {
    return fixture.pipeline.SetConformalQuantile(q_hat);
  });
  RctDataset feedback = MakeData(window);
  ROICL_CHECK(mon->AddOutcomes(feedback).ok());
  for (auto _ : state) {
    StatusOr<monitor::RecalibrationResult> result =
        mon->MaybeRecalibrate(/*force=*/true);
    ROICL_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(window));
}

BENCHMARK(BM_BinarySearchRoiStar)
    ->Args({1000, 100})
    ->Args({1000, 10000})
    ->Args({10000, 10000})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ConformalQuantile)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_McDropoutInference)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchForward)
    ->Arg(1)     // per-row baseline
    ->Arg(64)
    ->Arg(256)
    ->Arg(4000)  // whole set in one block
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelMcDropout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aucc)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GreedyAllocate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StreamingAllocate)
    ->Args({1000000, 0})
    ->Args({10000000, 0})   // the acceptance row: >= 10M users, 64 MiB cap
    ->Args({10000000, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignAllocate)
    ->Args({1000000, 3})
    ->Args({4000000, 8})    // K*n = 32M pairs inside the 64 MiB cap
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DrpTrainEpoch)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CausalForestFit)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RdrpTrainPredictObsOverhead)
    ->Arg(0)   // observability quiet
    ->Arg(1)   // log level INFO (the default)
    ->Arg(2)   // + trace collection
    ->Unit(benchmark::kMillisecond);
// UseRealTime: the client thread mostly waits on futures while the
// dispatcher scores, so CPU-time-based rates would overstate throughput.
BENCHMARK(BM_ScoringServiceThroughput)
    ->Arg(1)   // serial engine
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonitorUpdate)
    ->Arg(1)   // inline serial binning
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RollingRecalibrate)
    ->Arg(200)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roicl

BENCHMARK_MAIN();
