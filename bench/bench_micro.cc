// Micro-benchmarks backing the time-complexity analysis of §IV-D:
//   - Algorithm 2 binary search: O(log(1/eps)) derivative evaluations,
//     each a linear pass over the calibration set.
//   - Conformal quantile: O(n) selection over calibration scores.
//   - MC-dropout inference: linear in the number of passes.
//   - AUCC: O(n log n) sort + linear scan.
//   - Greedy C-BTAP allocation: O(n log n).
//   - Forest / DRP training for context.

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/macros.h"
#include "common/stats.h"
#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "trees/causal_forest.h"
#include "common/math_util.h"

namespace roicl {
namespace {

const synth::SyntheticGenerator& Generator() {
  static const synth::SyntheticGenerator& generator =
      *new synth::SyntheticGenerator(synth::CriteoSynthConfig());
  return generator;
}

RctDataset MakeData(int n) {
  Rng rng(42);
  return Generator().Generate(n, false, &rng);
}

void BM_BinarySearchRoiStar(benchmark::State& state) {
  RctDataset data = MakeData(static_cast<int>(state.range(0)));
  double epsilon = 1.0 / static_cast<double>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BinarySearchRoiStar(data, epsilon));
  }
  state.SetComplexityN(state.range(0));
}

void BM_ConformalQuantile(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<double> scores(roicl::AsSize(n));
  for (double& s : scores) s = rng.Exponential(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConformalQuantile(scores, 0.1));
  }
  state.SetComplexityN(n);
}

core::DrpModel& SharedSmallDrp() {
  static core::DrpModel& model = *[] {
    core::DrpConfig config;
    config.train.epochs = 3;
    auto* drp = new core::DrpModel(config);
    RctDataset train = MakeData(3000);
    drp->Fit(train);
    return drp;
  }();
  return model;
}

void BM_McDropoutInference(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(1000);
  int passes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp.PredictMcRoi(test.x, passes, 1));
  }
  state.SetComplexityN(passes);
}

// Batched inference forward vs. the naive one-row-at-a-time loop. Arg 0
// is the batch size; 1 means "forward each row alone", i.e. the per-row
// baseline the batched engine replaces. Serial (num_threads = 1) so the
// measured ratio isolates the batching win from any threading win.
void BM_BatchForward(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(4000);
  core::DrpConfig config = drp.config();
  config.predict.batch_size = static_cast<int>(state.range(0));
  config.predict.num_threads = 1;
  core::DrpModel runner(config);
  {
    // Clone the fitted weights by round-tripping the serialized model so
    // every batch size measures the same network.
    std::stringstream stream;
    ROICL_CHECK(drp.Save(stream).ok());
    StatusOr<core::DrpModel> loaded =
        core::DrpModel::Load(stream, config);
    ROICL_CHECK(loaded.ok());
    runner = std::move(loaded).value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.PredictRoi(test.x));
  }
  state.SetItemsProcessed(state.iterations() * test.n());
}

// The parallel MC-dropout engine across thread counts (arg 0; 1 = inline
// serial). Single-core containers show ~1x here by construction — the
// determinism tests prove the knob is safe, this records the throughput.
void BM_ParallelMcDropout(benchmark::State& state) {
  core::DrpModel& drp = SharedSmallDrp();
  RctDataset test = MakeData(2000);
  nn::BatchOptions opts;
  opts.batch_size = 128;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drp.PredictMcRoi(test.x, /*passes=*/20,
                                              /*seed=*/1, opts));
  }
  state.SetItemsProcessed(state.iterations() * test.n() * 20);
}

void BM_Aucc(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RctDataset data = MakeData(n);
  Rng rng(9);
  std::vector<double> scores(roicl::AsSize(n));
  for (double& s : scores) s = rng.Uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::Aucc(scores, data));
  }
  state.SetComplexityN(n);
}

void BM_GreedyAllocate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  std::vector<double> roi(roicl::AsSize(n)), cost(roicl::AsSize(n));
  for (int i = 0; i < n; ++i) {
    roi[roicl::AsSize(i)] = rng.Uniform();
    cost[roicl::AsSize(i)] = rng.Uniform(0.1, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GreedyAllocate(roi, cost, 0.2 * n, true));
  }
  state.SetComplexityN(n);
}

void BM_DrpTrainEpoch(benchmark::State& state) {
  RctDataset train = MakeData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    core::DrpConfig config;
    config.train.epochs = 1;
    config.train.patience = 0;
    core::DrpModel drp(config);
    drp.Fit(train);
  }
  state.SetComplexityN(state.range(0));
}

// Instrumentation-overhead measurement: the full rDRP train + predict
// pipeline with observability quiet (arg 0: log level off, tracing off),
// at the default INFO level (arg 1), and with tracing collecting spans
// (arg 2). The acceptance bar is arg1 within 3% of arg0.
void BM_RdrpTrainPredictObsOverhead(benchmark::State& state) {
  RctDataset train = MakeData(2000);
  RctDataset calib = MakeData(600);
  RctDataset test = MakeData(800);
  obs::Logger& logger = obs::Logger::Global();
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  obs::LogLevel saved_level = logger.level();
  int mode = static_cast<int>(state.range(0));
  logger.SetLevel(mode == 0 ? obs::LogLevel::kOff : obs::LogLevel::kInfo);
  collector.SetEnabled(mode == 2);

  core::RdrpConfig config;
  config.drp.train.epochs = 8;
  config.drp.restarts = 1;
  config.mc_passes = 10;
  for (auto _ : state) {
    core::RdrpModel model(config);
    model.FitWithCalibration(train, calib);
    benchmark::DoNotOptimize(model.PredictRoi(test.x));
    collector.Clear();
  }

  collector.SetEnabled(false);
  collector.Clear();
  logger.SetLevel(saved_level);
}

void BM_CausalForestFit(benchmark::State& state) {
  RctDataset train = MakeData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    trees::CausalForestConfig config;
    config.num_trees = 10;
    trees::CausalForest forest(config);
    forest.Fit(train.x, train.treatment, train.y_revenue);
    benchmark::DoNotOptimize(forest);
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_BinarySearchRoiStar)
    ->Args({1000, 100})
    ->Args({1000, 10000})
    ->Args({10000, 10000})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ConformalQuantile)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_McDropoutInference)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BatchForward)
    ->Arg(1)     // per-row baseline
    ->Arg(64)
    ->Arg(256)
    ->Arg(4000)  // whole set in one block
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelMcDropout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aucc)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GreedyAllocate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oNLogN)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DrpTrainEpoch)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CausalForestFit)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RdrpTrainPredictObsOverhead)
    ->Arg(0)   // observability quiet
    ->Arg(1)   // log level INFO (the default)
    ->Arg(2)   // + trace collection
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace roicl

BENCHMARK_MAIN();
