// Observational (non-RCT) extension bench — the paper's first future-work
// item (§VII): DRP's loss assumes randomized treatment; under confounded
// assignment its globally-normalized group means are biased. IPW-DRP
// re-weights with stabilized inverse-propensity weights.
//
// Reports, across confounding strengths, the oracle rank correlation of
// plain DRP vs IPW-DRP (AUCC itself is biased on confounded evaluation
// data, so the simulator's ground truth is the honest yardstick).
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "common/stats.h"
#include "core/drp_model.h"
#include "core/ipw_drp.h"
#include "exp/table.h"
#include "synth/synthetic_generator.h"

using namespace roicl;

int main() {
  int n_train = bench::FastMode() ? 3000 : 12000;
  int n_test = bench::FastMode() ? 1500 : 6000;
  int seeds = bench::FastMode() ? 1 : 3;

  std::printf(
      "Observational data: plain DRP vs IPW-DRP (Spearman corr. with the "
      "true ROI)\n\n");
  exp::TextTable table({"propensity range", "plain DRP", "IPW-DRP"});

  for (double lo : {0.5, 0.25, 0.15, 0.05}) {
    synth::SyntheticConfig config = synth::CriteoSynthConfig();
    if (lo < 0.5) {
      config.confounded_treatment = true;
      config.propensity_lo = lo;
      config.propensity_hi = 1.0 - lo;
    }
    synth::SyntheticGenerator generator(config);

    double plain_total = 0.0, ipw_total = 0.0;
    for (int s = 0; s < seeds; ++s) {
      Rng rng(100 + static_cast<uint64_t>(s));
      RctDataset train = generator.Generate(n_train, false, &rng);
      RctDataset test = generator.Generate(n_test, false, &rng);

      core::DrpConfig drp_config;
      drp_config.train.epochs = bench::FastMode() ? 15 : 80;
      drp_config.train.learning_rate = 5e-3;
      drp_config.train.patience = 10;
      drp_config.train.seed = 100 + static_cast<uint64_t>(s);

      core::DrpModel plain(drp_config);
      plain.Fit(train);

      core::IpwDrpConfig ipw_config;
      ipw_config.drp = drp_config;
      ipw_config.propensity.hidden = {16};
      ipw_config.propensity.train.epochs = bench::FastMode() ? 10 : 40;
      ipw_config.propensity.train.learning_rate = 5e-3;
      core::IpwDrpModel ipw(ipw_config);
      ipw.Fit(train);

      std::vector<double> truth(AsSize(test.n()));
      for (int i = 0; i < test.n(); ++i) {
        truth[AsSize(i)] = test.TrueRoi(i);
      }
      plain_total += SpearmanCorrelation(plain.PredictRoi(test.x), truth);
      ipw_total += SpearmanCorrelation(ipw.PredictRoi(test.x), truth);
    }
    char label[64];
    if (lo == 0.5) {
      std::snprintf(label, sizeof(label), "RCT (e = 0.5)");
    } else {
      std::snprintf(label, sizeof(label), "e(x) in [%.2f, %.2f]", lo,
                    1.0 - lo);
    }
    table.AddRow({label, exp::TextTable::Num(plain_total / seeds),
                  exp::TextTable::Num(ipw_total / seeds)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: identical on RCT data; IPW-DRP degrades more\n"
      "gracefully as confounding strengthens.\n");
  return 0;
}
