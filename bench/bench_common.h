#ifndef ROICL_BENCH_BENCH_COMMON_H_
#define ROICL_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>
#include <vector>
#include <cstdint>

#include "exp/datasets.h"
#include "exp/methods.h"
#include "obs/log.h"

namespace roicl::bench {

/// Benches historically streamed per-setting progress to stderr; that
/// path now runs through the structured logger at INFO, which the
/// library default (warn) would silence. Opt benches back in unless the
/// user pinned a level via ROICL_LOG_LEVEL.
inline void EnableProgressLogging() {
  if (std::getenv("ROICL_LOG_LEVEL") == nullptr) {
    obs::Logger::Global().SetLevel(obs::LogLevel::kInfo);
  }
}

/// True when ROICL_FAST=1 is set: benches shrink to smoke-test size
/// (useful under CI or when iterating).
inline bool FastMode() {
  const char* env = std::getenv("ROICL_FAST");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

/// Standard sample sizes used by the paper-table benches. Fast mode cuts
/// everything ~8x.
inline exp::SplitSizes BenchSizes() {
  exp::SplitSizes sizes;
  if (FastMode()) {
    sizes.train_sufficient = 1600;
    sizes.calibration = 500;
    sizes.test = 800;
  } else {
    sizes.train_sufficient = 12000;
    sizes.calibration = 3000;
    sizes.test = 6000;
  }
  return sizes;
}

/// Standard hyperparameters; fast mode shrinks training budgets.
inline exp::MethodHyperparams BenchHyperparams() {
  exp::MethodHyperparams hp;
  if (FastMode()) {
    hp.neural_epochs = 8;
    hp.cate_epochs = 5;
    hp.forest_trees = 8;
    hp.causal_forest_trees = 8;
    hp.mc_passes = 10;
  }
  return hp;
}

/// Seeds averaged per table cell. ROICL_SEEDS overrides the count (>=1);
/// fast mode uses a single seed.
inline std::vector<uint64_t> BenchSeeds(int default_count) {
  const char* env = std::getenv("ROICL_SEEDS");
  int count = env != nullptr ? std::atoi(env) : default_count;
  if (FastMode()) count = 1;
  if (count < 1) count = 1;
  std::vector<uint64_t> seeds;
  for (int i = 0; i < count; ++i) {
    seeds.push_back(2024 + static_cast<uint64_t>(i));
  }
  return seeds;
}

}  // namespace roicl::bench

#endif  // ROICL_BENCH_BENCH_COMMON_H_
