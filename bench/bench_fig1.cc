// Reproduces Fig. 1 of the paper: the two deployment failure modes of
// DRP, shown as cost curves (cumulative incremental revenue vs cost).
//   (a) Covariate shift: the same trained DRP evaluated on unshifted vs
//       shifted test traffic — the curve sags under shift.
//   (b) Insufficient data: DRP trained on the full vs the 0.15-subsampled
//       training set, evaluated on the same test set.
//
// A larger area under the curve means better targeting; both panels print
// decile points of the normalized curves plus the AUCC.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "core/drp_model.h"
#include "data/split.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"

using namespace roicl;

namespace {

void PrintDecileCurve(const char* label,
                      const std::vector<double>& scores,
                      const RctDataset& test) {
  metrics::CostCurve curve = metrics::ComputeCostCurve(scores, test);
  std::printf("  %-28s AUCC=%.4f\n", label, metrics::Aucc(scores, test));
  std::printf("    frac_cost : ");
  for (int d = 1; d <= 10; ++d) {
    size_t idx = curve.points.size() * AsSize(d) / 10 - 1;
    std::printf("%5.2f ",
                curve.points[idx].cumulative_cost / curve.total_cost);
  }
  std::printf("\n    frac_rev  : ");
  for (int d = 1; d <= 10; ++d) {
    size_t idx = curve.points.size() * AsSize(d) / 10 - 1;
    std::printf("%5.2f ",
                curve.points[idx].cumulative_revenue / curve.total_revenue);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  exp::SplitSizes sizes = bench::BenchSizes();
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  exp::MethodHyperparams hp = bench::BenchHyperparams();

  Rng rng(77);
  RctDataset train_full =
      generator.Generate(sizes.train_sufficient, /*shifted=*/false, &rng);
  RctDataset test_plain = generator.Generate(sizes.test, false, &rng);
  RctDataset test_shifted = generator.Generate(sizes.test, true, &rng);

  core::DrpModel drp(exp::MakeDrpConfig(hp));
  drp.Fit(train_full);

  std::printf("Fig. 1(a): covariate shift degrades the DRP cost curve\n");
  PrintDecileCurve("DRP on unshifted test", drp.PredictRoi(test_plain.x),
                   test_plain);
  PrintDecileCurve("DRP on SHIFTED test", drp.PredictRoi(test_shifted.x),
                   test_shifted);

  Rng sub_rng(78);
  RctDataset train_small = Subsample(train_full, 0.15, &sub_rng);
  core::DrpModel drp_small(exp::MakeDrpConfig(hp));
  drp_small.Fit(train_small);

  std::printf("\nFig. 1(b): insufficient training data degrades DRP\n");
  PrintDecileCurve("DRP trained on full data", drp.PredictRoi(test_plain.x),
                   test_plain);
  PrintDecileCurve("DRP trained on 15% sample",
                   drp_small.PredictRoi(test_plain.x), test_plain);
  return 0;
}
