// Design-choice ablations beyond the paper's own tables (DESIGN.md §5):
//   1. MC-dropout pass count: AUCC and interval-width stability.
//   2. Error rate alpha: empirical coverage vs mean interval width —
//      including the §VI caveat that width need not scale with alpha.
//   3. Calibration form: each fixed form (5a/5b/5c/none) vs auto-select.
//   4. Calibration-set size: conformal coverage degradation.
//   5. Global vs score-binned roi* (our extension).
//
// All runs use the CRITEO preset under the InCo setting — where rDRP's
// machinery matters most.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "core/conformal.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "data/split.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/cost_curve.h"
#include "metrics/coverage.h"

using namespace roicl;

namespace {

struct Env {
  DatasetSplits splits;
  core::RdrpConfig base_config;
};

Env MakeEnv() {
  Env env;
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  env.splits = exp::BuildSplits(generator, exp::Setting::kInCo,
                                bench::BenchSizes(), /*seed=*/31);
  env.base_config = exp::MakeRdrpConfig(bench::BenchHyperparams());
  return env;
}

double CoverageOf(const core::RdrpModel& model, const RctDataset& test) {
  std::vector<metrics::Interval> intervals = model.PredictIntervals(test.x);
  double roi_star_test = core::BinarySearchRoiStar(test);
  std::vector<double> targets(intervals.size(), roi_star_test);
  return metrics::EvaluateCoverage(intervals, targets).coverage;
}

double MeanWidth(const core::RdrpModel& model, const RctDataset& test) {
  std::vector<metrics::Interval> intervals = model.PredictIntervals(test.x);
  double acc = 0.0;
  for (const auto& interval : intervals) acc += interval.width();
  return acc / static_cast<double>(intervals.size());
}

void SweepMcPasses(const Env& env) {
  std::printf("\n-- Ablation 1: MC-dropout passes (paper uses 10-100) --\n");
  exp::TextTable table({"passes", "test AUCC", "coverage", "mean width"});
  for (int passes : {5, 10, 30, 100}) {
    core::RdrpConfig config = env.base_config;
    config.mc_passes = passes;
    core::RdrpModel model(config);
    model.FitWithCalibration(env.splits.train, env.splits.calibration);
    table.AddRow({std::to_string(passes),
                  exp::TextTable::Num(metrics::Aucc(
                      model.PredictRoi(env.splits.test.x), env.splits.test)),
                  exp::TextTable::Num(CoverageOf(model, env.splits.test)),
                  exp::TextTable::Num(MeanWidth(model, env.splits.test))});
  }
  table.Print();
}

void SweepAlpha(const Env& env) {
  std::printf(
      "\n-- Ablation 2: error rate alpha (coverage target = 1 - alpha) "
      "--\n");
  exp::TextTable table({"alpha", "q_hat", "coverage", "mean width"});
  for (double alpha : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    core::RdrpConfig config = env.base_config;
    config.alpha = alpha;
    core::RdrpModel model(config);
    model.FitWithCalibration(env.splits.train, env.splits.calibration);
    table.AddRow({exp::TextTable::Num(alpha, 2),
                  exp::TextTable::Num(model.q_hat(), 3),
                  exp::TextTable::Num(CoverageOf(model, env.splits.test)),
                  exp::TextTable::Num(MeanWidth(model, env.splits.test))});
  }
  table.Print();
  std::printf(
      "   (SS VI caveat: width scales with q_hat, which need not be "
      "proportional to alpha)\n");
}

void SweepForms(const Env& env) {
  std::printf(
      "\n-- Ablation 3: fixed calibration form vs auto-select "
      "(Algorithm 4 line 8) --\n");
  // Unclipped intervals so rq = r_hat * q_hat can be recovered exactly
  // from the interval half-width.
  core::RdrpConfig raw_config = env.base_config;
  raw_config.clip_to_unit = false;
  core::RdrpModel model(raw_config);
  model.FitWithCalibration(env.splits.train, env.splits.calibration);

  // Recompute each fixed form on the test set using the fitted model's
  // internals.
  std::vector<double> roi_hat =
      model.PredictPointRoi(env.splits.test.x);
  std::vector<metrics::Interval> intervals =
      model.PredictIntervals(env.splits.test.x);
  std::vector<double> rq(roi_hat.size());
  for (size_t i = 0; i < rq.size(); ++i) {
    rq[i] = 0.5 * intervals[i].width();  // r_hat * q_hat
  }
  exp::TextTable table({"form", "test AUCC"});
  for (core::CalibrationForm form : core::AllCalibrationForms()) {
    std::vector<double> scores =
        core::ApplyCalibrationForm(form, roi_hat, rq);
    table.AddRow({core::CalibrationFormName(form),
                  exp::TextTable::Num(
                      metrics::Aucc(scores, env.splits.test))});
  }
  table.AddRow({"auto (" +
                    core::CalibrationFormName(model.selected_form()) + ")",
                exp::TextTable::Num(metrics::Aucc(
                    model.PredictRoi(env.splits.test.x), env.splits.test))});
  table.Print();
}

void SweepCalibrationSize(const Env& env) {
  std::printf("\n-- Ablation 4: calibration-set size --\n");
  exp::TextTable table({"n_calib", "q_hat", "coverage", "test AUCC"});
  Rng rng(5);
  for (int n : {100, 300, 1000, 3000}) {
    if (n > env.splits.calibration.n()) break;
    RctDataset calib = env.splits.calibration.Subset(
        rng.SampleWithoutReplacement(env.splits.calibration.n(), n));
    core::RdrpModel model(env.base_config);
    model.FitWithCalibration(env.splits.train, calib);
    table.AddRow({std::to_string(n),
                  exp::TextTable::Num(model.q_hat(), 3),
                  exp::TextTable::Num(CoverageOf(model, env.splits.test)),
                  exp::TextTable::Num(metrics::Aucc(
                      model.PredictRoi(env.splits.test.x),
                      env.splits.test))});
  }
  table.Print();
}

void SweepRoiStarBinning(const Env& env) {
  std::printf(
      "\n-- Ablation 5: global roi* (paper) vs score-binned roi* "
      "(extension) --\n");
  exp::TextTable table({"roi* variant", "test AUCC", "coverage"});
  for (bool binned : {false, true}) {
    core::RdrpConfig config = env.base_config;
    config.binned_roi_star = binned;
    config.roi_star_bins = 8;
    core::RdrpModel model(config);
    model.FitWithCalibration(env.splits.train, env.splits.calibration);
    table.AddRow({binned ? "binned (8 bins)" : "global",
                  exp::TextTable::Num(metrics::Aucc(
                      model.PredictRoi(env.splits.test.x), env.splits.test)),
                  exp::TextTable::Num(CoverageOf(model, env.splits.test))});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("Design-choice ablations (CRITEO preset, InCo setting)%s\n",
              bench::FastMode() ? " (FAST mode)" : "");
  Env env = MakeEnv();
  SweepMcPasses(env);
  SweepAlpha(env);
  SweepForms(env);
  SweepCalibrationSize(env);
  SweepRoiStarBinning(env);
  return 0;
}
