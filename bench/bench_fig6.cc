// Reproduces Fig. 6 of the paper: simulated online A/B tests in the four
// settings. Three arms (Random control / DRP / rDRP) share the same daily
// populations and reward budget; the chart reports each model arm's
// percent revenue lift over the random arm.
//
// Expected shape: both models beat random everywhere; rDRP's margin over
// DRP is small (possibly nil) in SuNo and grows in SuCo / InNo / InCo.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <algorithm>
#include <cstdio>
#include <string>

#include "abtest/simulator.h"
#include "bench/bench_common.h"
#include "common/math_util.h"
#include "core/drp_model.h"
#include "core/rdrp.h"
#include "exp/datasets.h"

using namespace roicl;

namespace {

void PrintLift(const char* label, double lift_pct) {
  int bars = std::clamp(static_cast<int>(lift_pct), 0, 60);
  std::printf("  %-6s +%6.2f%% |%s\n", label, lift_pct,
              std::string(AsSize(bars), '#').c_str());
}

}  // namespace

int main() {
  exp::MethodHyperparams hp = bench::BenchHyperparams();
  exp::SplitSizes sizes = bench::BenchSizes();
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);

  abtest::AbTestConfig ab_config;
  ab_config.population_per_day = bench::FastMode() ? 1000 : 5000;
  ab_config.num_days = 5;  // the paper's five-day tests

  std::printf(
      "Fig. 6: online A/B test simulation, %% revenue lift vs the random "
      "arm%s\n",
      bench::FastMode() ? " (FAST mode)" : "");

  std::vector<uint64_t> seeds = bench::BenchSeeds(3);
  for (exp::Setting setting : exp::AllSettings()) {
    double drp_lift = 0.0, rdrp_lift = 0.0;
    int train_n = 0;
    for (uint64_t seed : seeds) {
      // Train/calibrate exactly as the offline pipeline does for this
      // setting; "deployment" traffic is shifted iff the setting says so.
      DatasetSplits splits = exp::BuildSplits(generator, setting, sizes,
                                              /*seed=*/99 + seed);
      train_n = splits.train.n();

      exp::MethodHyperparams seeded = hp;
      seeded.seed = hp.seed + seed;
      core::DrpModel drp(exp::MakeDrpConfig(seeded));
      drp.Fit(splits.train);
      core::RdrpModel rdrp(exp::MakeRdrpConfig(seeded));
      rdrp.FitWithCalibration(splits.train, splits.calibration);

      abtest::AbTestConfig seeded_ab = ab_config;
      seeded_ab.seed = ab_config.seed + seed;
      abtest::AbTestResult result =
          abtest::RunAbTest(generator, exp::HasCovariateShift(setting),
                            drp, rdrp, seeded_ab);
      double runs = static_cast<double>(seeds.size());
      drp_lift += result.LiftOverRandomPct(result.drp_arm) / runs;
      rdrp_lift += result.LiftOverRandomPct(result.rdrp_arm) / runs;
    }
    std::printf("\n(%s)  train_n=%d, %s deployment, mean of %zu runs\n",
                exp::SettingName(setting).c_str(), train_n,
                exp::HasCovariateShift(setting) ? "shifted" : "unshifted",
                seeds.size());
    PrintLift("DRP", drp_lift);
    PrintLift("rDRP", rdrp_lift);
  }
  return 0;
}
