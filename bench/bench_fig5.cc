// Reproduces Fig. 5 of the paper: the Table-II ablation for the CRITEO
// dataset rendered as four bar groups (SuNo / SuCo / InNo / InCo).
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "exp/ablation.h"

namespace {

void PrintBar(const char* label, double aucc, double lo, double hi) {
  // 50-character bar spanning [lo, hi] so within-group differences are
  // visible (AUCC differences are small in absolute terms).
  double span = std::max(hi - lo, 1e-9);
  int filled = static_cast<int>(50.0 * (aucc - lo) / span + 0.5);
  filled = std::clamp(filled, 0, 50);
  std::printf("  %-16s %.4f |%s%s|\n", label, aucc,
              std::string(roicl::AsSize(filled), '#').c_str(),
              std::string(roicl::AsSize(50 - filled), ' ').c_str());
}

}  // namespace

int main() {
  using namespace roicl;
  using namespace roicl::exp;

  MethodHyperparams hp = bench::BenchHyperparams();
  SplitSizes sizes = bench::BenchSizes();

  std::printf(
      "Fig. 5: MC/CP ablation on CRITEO-UPLIFT v2, four settings%s\n",
      bench::FastMode() ? " (FAST mode)" : "");

  std::vector<uint64_t> seeds = bench::BenchSeeds(3);
  for (Setting setting : AllSettings()) {
    AblationRow row;
    for (uint64_t seed : seeds) {
      AblationRow one = RunAblationSetting(DatasetId::kCriteo, setting, hp,
                                           sizes, seed);
      double w = 1.0 / static_cast<double>(seeds.size());
      row.dr += w * one.dr;
      row.dr_mc += w * one.dr_mc;
      row.drp += w * one.drp;
      row.drp_mc += w * one.drp_mc;
      row.drp_mc_cp += w * one.drp_mc_cp;
    }
    double values[] = {row.dr, row.dr_mc, row.drp, row.drp_mc,
                       row.drp_mc_cp};
    double lo = *std::min_element(values, values + 5) - 0.01;
    double hi = *std::max_element(values, values + 5) + 0.01;
    std::printf("\n(%s)\n", SettingName(setting).c_str());
    PrintBar("DR", row.dr, lo, hi);
    PrintBar("DR w/ MC", row.dr_mc, lo, hi);
    PrintBar("DRP", row.drp, lo, hi);
    PrintBar("DRP w/ MC", row.drp_mc, lo, hi);
    PrintBar("DRP w/ MC w/ CP", row.drp_mc_cp, lo, hi);
  }
  return 0;
}
