// Reproduces Table II of the paper: the MC / CP ablation. Rows are
// DR, DR w/ MC, DRP, DRP w/ MC, DRP w/ MC w/ CP (= rDRP); each base
// network is trained once and shared across its variants, so the table
// isolates the post-processing contributions exactly.
//
// Expected shape: MC improves DR and DRP; CP improves DRP w/ MC further;
// gains are largest in the Insufficient + Covariate-shift setting.
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "exp/ablation.h"
#include "exp/table.h"

int main() {
  using namespace roicl;
  using namespace roicl::exp;

  bench::EnableProgressLogging();
  MethodHyperparams hp = bench::BenchHyperparams();
  SplitSizes sizes = bench::BenchSizes();

  std::printf("Table II: ablation of MC dropout and conformal prediction%s\n\n",
              bench::FastMode() ? " (FAST mode)" : "");

  // Average each cell over independent data draws (see bench_table1).
  std::vector<uint64_t> seeds = bench::BenchSeeds(3);
  std::map<std::string, AblationRow> lookup;
  for (uint64_t seed : seeds) {
    std::vector<AblationRow> rows =
        RunAblationSweep(hp, sizes, seed, /*verbose=*/true);
    for (const AblationRow& row : rows) {
      AblationRow& acc =
          lookup[DatasetName(row.dataset) + "|" + SettingName(row.setting)];
      acc.dataset = row.dataset;
      acc.setting = row.setting;
      double w = 1.0 / static_cast<double>(seeds.size());
      acc.dr += w * row.dr;
      acc.dr_mc += w * row.dr_mc;
      acc.drp += w * row.drp;
      acc.drp_mc += w * row.drp_mc;
      acc.drp_mc_cp += w * row.drp_mc_cp;
    }
  }

  for (bool sufficient : {true, false}) {
    std::printf("\n== %s data ==\n",
                sufficient ? "Sufficient" : "Insufficient");
    TextTable table({"Method", "CRITEO NoShift", "CRITEO Shift",
                     "Meituan NoShift", "Meituan Shift", "Alibaba NoShift",
                     "Alibaba Shift"});
    Setting no_shift = sufficient ? Setting::kSuNo : Setting::kInNo;
    Setting shift = sufficient ? Setting::kSuCo : Setting::kInCo;
    struct Variant {
      const char* name;
      double AblationRow::* field;
    };
    const Variant kVariants[] = {
        {"DR", &AblationRow::dr},
        {"DR w/ MC", &AblationRow::dr_mc},
        {"DRP", &AblationRow::drp},
        {"DRP w/ MC", &AblationRow::drp_mc},
        {"DRP w/ MC w/ CP", &AblationRow::drp_mc_cp},
    };
    for (const Variant& variant : kVariants) {
      std::vector<std::string> table_row = {variant.name};
      for (DatasetId dataset : AllDatasets()) {
        const AblationRow& no_row =
            lookup[DatasetName(dataset) + "|" + SettingName(no_shift)];
        const AblationRow& co_row =
            lookup[DatasetName(dataset) + "|" + SettingName(shift)];
        table_row.push_back(TextTable::Num(no_row.*(variant.field)));
        table_row.push_back(TextTable::Num(co_row.*(variant.field)));
      }
      table.AddRow(table_row);
    }
    table.Print();
  }
  return 0;
}
