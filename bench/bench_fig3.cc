// Illustrates Fig. 3 of the paper: the convex population-level DRP loss
// and the convergence gap. Prints L(s) on a grid of roi = sigmoid(s)
// values (the convex bowl of Fig. 3), the Algorithm-2 convergence point,
// and how far a DRP network trained on sufficient vs insufficient data
// lands from it (mean predicted ROI vs roi*).
//
// Set ROICL_FAST=1 for a quick smoke run.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "common/stats.h"
#include "core/drp_loss.h"
#include "core/drp_model.h"
#include "core/roi_star.h"
#include "data/split.h"
#include "exp/datasets.h"

using namespace roicl;

int main() {
  exp::SplitSizes sizes = bench::BenchSizes();
  synth::SyntheticGenerator generator =
      exp::MakeGenerator(exp::DatasetId::kCriteo);
  Rng rng(88);
  RctDataset train_full =
      generator.Generate(sizes.train_sufficient, false, &rng);
  Rng sub_rng(89);
  RctDataset train_small = Subsample(train_full, 0.15, &sub_rng);

  double roi_star = core::BinarySearchRoiStar(train_full);
  std::printf(
      "Fig. 3: the population DRP loss L(s) is convex in s; Algorithm 2's\n"
      "binary search lands at roi* = sigmoid(s*) = %.4f\n\n",
      roi_star);

  std::printf("%8s %12s %12s\n", "roi", "L(s)", "L'(s)");
  for (double roi = 0.1; roi <= 0.901; roi += 0.1) {
    double s = Logit(roi);
    std::printf("%8.2f %12.5f %12.5f%s\n", roi,
                core::DrpPopulationLoss(train_full.treatment,
                                        train_full.y_revenue,
                                        train_full.y_cost, s),
                core::DrpPopulationLossDeriv(train_full.treatment,
                                             train_full.y_revenue,
                                             train_full.y_cost, s),
                std::fabs(roi - roi_star) < 0.05 ? "   <- near roi*" : "");
  }

  exp::MethodHyperparams hp = bench::BenchHyperparams();
  auto mean_predicted_roi = [&](const RctDataset& train) {
    core::DrpModel drp(exp::MakeDrpConfig(hp));
    drp.Fit(train);
    return Mean(drp.PredictRoi(train_full.x));
  };
  double full_mean = mean_predicted_roi(train_full);
  double small_mean = mean_predicted_roi(train_small);
  std::printf(
      "\nConvergence gap |mean(roi_hat) - roi*| (the s-hat vs s* distance "
      "of Fig. 3):\n");
  std::printf("  trained on %6d samples: mean roi_hat = %.4f, gap = %.4f\n",
              train_full.n(), full_mean, std::fabs(full_mean - roi_star));
  std::printf("  trained on %6d samples: mean roi_hat = %.4f, gap = %.4f\n",
              train_small.n(), small_mean,
              std::fabs(small_mean - roi_star));
  return 0;
}
