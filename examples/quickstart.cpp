// Quickstart: train DRP and rDRP on a synthetic RCT, compare test AUCC,
// and allocate a budget with the greedy C-BTAP solver.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"
#include "common/math_util.h"

using namespace roicl;

int main() {
  // 1. Simulate an RCT population (CRITEO-like preset: 12 features,
  //    visit = cost outcome, conversion = revenue outcome).
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(/*seed=*/7);
  RctDataset train = generator.Generate(8000, /*shifted=*/false, &rng);
  // Deployment traffic is shifted (weekday -> holiday mixture): the
  // calibration set is a short RCT collected right before launch, so it
  // matches the test distribution (the paper's Assumption 6).
  RctDataset calibration = generator.Generate(2000, /*shifted=*/true, &rng);
  RctDataset test = generator.Generate(4000, /*shifted=*/true, &rng);

  // 2. Plain DRP (the AAAI'23 baseline).
  core::DrpConfig drp_config;
  drp_config.train.epochs = 25;
  core::DrpModel drp(drp_config);
  drp.Fit(train);
  double drp_aucc = metrics::Aucc(drp.PredictRoi(test.x), test);

  // 3. rDRP = DRP + MC dropout + conformal calibration (Algorithm 4).
  core::RdrpConfig rdrp_config;
  rdrp_config.drp = drp_config;
  core::RdrpModel rdrp(rdrp_config);
  rdrp.FitWithCalibration(train, calibration);
  std::vector<double> rdrp_scores = rdrp.PredictRoi(test.x);
  double rdrp_aucc = metrics::Aucc(rdrp_scores, test);

  std::printf("Test AUCC under covariate shift:\n");
  std::printf("  DRP  : %.4f\n", drp_aucc);
  std::printf("  rDRP : %.4f  (form %s, q_hat=%.3f, roi*=%.3f)\n",
              rdrp_aucc,
              core::CalibrationFormName(rdrp.selected_form()).c_str(),
              rdrp.q_hat(), rdrp.roi_star());
  std::printf("  oracle ranking: %.4f\n", metrics::OracleAucc(test));

  // 4. Conformal intervals: check empirical coverage of the convergence
  //    point on fresh data (Eq. 4 guarantee, alpha = 0.1).
  std::vector<metrics::Interval> intervals = rdrp.PredictIntervals(test.x);
  double roi_star_test = core::BinarySearchRoiStar(test);
  int covered = 0;
  for (const metrics::Interval& iv : intervals) {
    covered += iv.Contains(roi_star_test) ? 1 : 0;
  }
  std::printf(
      "Interval coverage of test roi*: %.3f (target ~0.90 at alpha=0.1, "
      "minus calib-vs-test roi* drift)\n",
      static_cast<double>(covered) /
                  static_cast<double>(intervals.size()));

  // 5. Solve the C-BTAP: spend 15%% of the all-in incremental cost.
  double total_cost = 0.0;
  for (double c : test.true_tau_c) total_cost += c;
  core::AllocationResult alloc = core::GreedyAllocate(
      rdrp_scores, test.true_tau_c, 0.15 * total_cost,
      /*skip_unaffordable=*/true);
  double revenue = 0.0;
  for (int i : alloc.selected) revenue += test.true_tau_r[roicl::AsSize(i)];
  std::printf(
      "Greedy allocation: treated %zu of %d users, spent %.1f, expected "
      "incremental revenue %.1f\n",
      alloc.selected.size(), test.n(), alloc.spent, revenue);
  return 0;
}
