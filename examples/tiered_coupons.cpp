// Tiered coupons: multiple treatment levels via divide-and-conquer rDRP —
// the extension the paper sketches in §VI ("Divide and Conquer method can
// be adopted for multiple treatment").
//
// The platform can send users a $2, $5 or $10 coupon (or nothing). Bigger
// coupons cost more and convert better, but with diminishing ROI. The
// K-treatment problem is decomposed into K binary {control, arm k}
// problems, each solved by its own rDRP; the allocator then ranks
// (user, arm) pairs by calibrated ROI under one shared budget.
//
// Build & run:  ./build/examples/tiered_coupons

#include <cstdio>
#include <vector>

#include "core/multi_treatment.h"
#include "synth/multi_treatment.h"
#include "common/math_util.h"

using namespace roicl;

int main() {
  // Shrink the base cost-effect range so even the $10 tier keeps outcome
  // probabilities valid (the generator checks this).
  synth::SyntheticConfig base = synth::CriteoSynthConfig();
  base.base_cost_rate = 0.15;
  base.tau_c_lo = 0.03;
  base.tau_c_hi = 0.18;
  synth::MultiTreatmentGenerator generator(
      base, {{.cost_scale = 1.0, .roi_shift = 0.05},   // $2 coupon
             {.cost_scale = 2.2, .roi_shift = -0.02},  // $5 coupon
             {.cost_scale = 4.0, .roi_shift = -0.10}}  // $10 coupon
  );

  Rng rng(21);
  synth::MultiTreatmentDataset train =
      generator.Generate(12000, /*shifted=*/false, &rng);
  synth::MultiTreatmentDataset calib =
      generator.Generate(4800, /*shifted=*/false, &rng);
  synth::MultiTreatmentDataset campaign =
      generator.Generate(6000, /*shifted=*/false, &rng);

  core::RdrpConfig config;
  config.drp.train.epochs = 40;
  config.drp.train.learning_rate = 5e-3;
  config.drp.hidden_units = 128;
  core::DivideAndConquerRdrp model(config);
  model.FitWithCalibration(train, calib);

  std::printf("Per-arm rDRP calibration (convergence points):\n");
  const char* kArmNames[] = {"$2", "$5", "$10"};
  for (int arm = 1; arm <= model.num_arms(); ++arm) {
    std::printf("  %-4s coupon: roi* = %.3f, q_hat = %.2f, form %s\n",
                kArmNames[arm - 1], model.arm_model(arm).roi_star(),
                model.arm_model(arm).q_hat(),
                core::CalibrationFormName(
                    model.arm_model(arm).selected_form())
                    .c_str());
  }

  std::vector<std::vector<double>> scores =
      model.PredictRoiPerArm(campaign.x);
  std::vector<std::vector<double>> costs = {campaign.true_tau_c[0],
                                            campaign.true_tau_c[1],
                                            campaign.true_tau_c[2]};
  double all_in_cheapest = 0.0;
  for (double c : costs[0]) all_in_cheapest += c;
  double budget = 0.3 * all_in_cheapest;

  auto realize = [&](const core::MultiAllocationResult& alloc,
                     const char* label) {
    double revenue = 0.0;
    std::vector<int> arm_counts(roicl::AsSize(model.num_arms() + 1), 0);
    for (int i = 0; i < campaign.n(); ++i) {
      int arm = alloc.assignment[roicl::AsSize(i)];
      if (arm > 0) {
        revenue += campaign.true_tau_r[roicl::AsSize(arm - 1)][roicl::AsSize(i)];
        arm_counts[roicl::AsSize(arm)]++;
      }
    }
    std::printf("  %-12s spent %7.1f of %7.1f -> incremental revenue %7.2f"
                "  ($2:%d $5:%d $10:%d)\n",
                label, alloc.spent, budget, revenue, arm_counts[1],
                arm_counts[2], arm_counts[3]);
    return revenue;
  };

  std::printf("\nBudgeted allocation over %d users x 3 coupon tiers:\n",
              campaign.n());
  core::MultiAllocationResult smart =
      core::GreedyAllocateMulti(scores, costs, budget);
  double smart_revenue = realize(smart, "rDRP (D&C)");

  Rng noise(22);
  std::vector<std::vector<double>> random_scores(
      3, std::vector<double>(roicl::AsSize(campaign.n())));
  for (auto& arm_scores : random_scores) {
    for (double& s : arm_scores) s = noise.Uniform();
  }
  core::MultiAllocationResult random_alloc =
      core::GreedyAllocateMulti(random_scores, costs, budget);
  double random_revenue = realize(random_alloc, "Random");

  std::printf("\nLift over random tier assignment: %+.1f%%\n",
              (smart_revenue - random_revenue) / random_revenue * 100.0);
  return 0;
}
