// Observational study: ROI ranking WITHOUT an RCT — the paper's first
// future-work item (§VII), implemented as IPW-DRP.
//
// Scenario: a platform has only logged data where account managers chose
// who received the intervention (treatment probability depends on user
// features — confounded). Plain DRP trained on such logs inherits the
// selection bias; IPW-DRP first estimates the propensity e(x) and trains
// the same DRP network with stabilized inverse-propensity weights.
//
// Build & run:  ./build/examples/observational_study

#include <cstdio>

#include "common/stats.h"
#include "core/drp_model.h"
#include "core/ipw_drp.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"
#include "common/math_util.h"

using namespace roicl;

int main() {
  // Confounded logging policy: treatment probability ranges over
  // [0.15, 0.85] as a function of the same features that drive ROI.
  synth::SyntheticConfig config = synth::CriteoSynthConfig();
  config.confounded_treatment = true;
  config.propensity_lo = 0.15;
  config.propensity_hi = 0.85;
  synth::SyntheticGenerator generator(config);

  Rng rng(42);
  RctDataset logs = generator.Generate(12000, /*shifted=*/false, &rng);
  RctDataset population = generator.Generate(6000, false, &rng);
  std::printf("Observational logs: %d rows, %.0f%% treated (not 50%% — the "
              "assignment was a business rule, not a coin flip)\n\n",
              logs.n(), 100.0 * logs.NumTreated() / logs.n());

  core::DrpConfig drp_config;
  drp_config.train.epochs = 80;
  drp_config.train.learning_rate = 5e-3;
  drp_config.train.patience = 10;

  core::DrpModel naive(drp_config);
  naive.Fit(logs);  // pretends the logs were an RCT

  core::IpwDrpConfig ipw_config;
  ipw_config.drp = drp_config;
  ipw_config.propensity.hidden = {16};
  ipw_config.propensity.train.epochs = 40;
  ipw_config.propensity.train.learning_rate = 5e-3;
  core::IpwDrpModel ipw(ipw_config);
  ipw.Fit(logs);

  // Sanity: the estimated propensity should track the logging policy.
  std::vector<double> e_hat = ipw.propensity().Predict(population.x);
  std::vector<double> e_true(roicl::AsSize(population.n()));
  for (int i = 0; i < population.n(); ++i) {
    e_true[roicl::AsSize(i)] = generator.Propensity(population.x.RowPtr(i));
  }
  std::printf("propensity model vs logging policy: corr = %.3f\n",
              PearsonCorrelation(e_hat, e_true));

  // Ranking quality against the simulator's ground truth.
  std::vector<double> truth(roicl::AsSize(population.n()));
  for (int i = 0; i < population.n(); ++i) {
    truth[roicl::AsSize(i)] = population.TrueRoi(i);
  }
  std::printf("\nSpearman correlation with the true ROI ranking:\n");
  std::printf("  naive DRP (logs as-if-RCT): %.4f\n",
              SpearmanCorrelation(naive.PredictRoi(population.x), truth));
  std::printf("  IPW-DRP (stabilized weights): %.4f\n",
              SpearmanCorrelation(ipw.PredictRoi(population.x), truth));
  std::printf(
      "\nThe naive model inherits the logging policy's selection bias;\n"
      "re-weighting restores (approximately) the RCT stationary point.\n");
  return 0;
}
