// Incentivized advertising on a short-video platform — the paper's online
// A/B test scenario (§V-C). Viewers opt in to watch rewarded ads; the
// platform decides who gets the (costly) reward to maximize ad revenue.
//
// The deployment regime is the hardest one from the paper: the model is
// trained on workday traffic but deployed during a holiday campaign
// (covariate shift) with a small RCT (insufficient data) — the InCo
// setting. A five-day A/B test compares Random / DRP / rDRP arms.
//
// Build & run:  ./build/examples/incentivized_ads

#include <cstdio>

#include "abtest/simulator.h"
#include "core/drp_model.h"
#include "core/rdrp.h"
#include "data/split.h"
#include "exp/methods.h"
#include "synth/synthetic_generator.h"
#include "common/math_util.h"

using namespace roicl;

int main() {
  // Alibaba-like advertising population: 25 discrete features,
  // exposure = cost, conversion = benefit.
  synth::SyntheticGenerator generator(synth::AlibabaSynthConfig());
  Rng rng(5);

  // Workday RCT, then subsampled to 15% — the paper's InCo data budget.
  RctDataset workday_rct = generator.Generate(12000, /*shifted=*/false, &rng);
  RctDataset train = Subsample(workday_rct, 0.15, &rng);
  std::printf("Training on %d RCT samples (workday traffic)\n", train.n());

  // One-to-two-day pre-launch RCT on HOLIDAY traffic: small, but it is
  // what makes the conformal machinery valid (Assumption 6).
  RctDataset calibration = generator.Generate(2500, /*shifted=*/true, &rng);

  exp::MethodHyperparams hp;
  core::DrpModel drp(exp::MakeDrpConfig(hp));
  drp.Fit(train);

  core::RdrpModel rdrp(exp::MakeRdrpConfig(hp));
  rdrp.FitWithCalibration(train, calibration);
  std::printf(
      "rDRP calibration: roi*=%.3f, q_hat=%.3f, selected form %s\n\n",
      rdrp.roi_star(), rdrp.q_hat(),
      core::CalibrationFormName(rdrp.selected_form()).c_str());

  // Five-day A/B test on holiday traffic.
  abtest::AbTestConfig config;
  config.population_per_day = 5000;
  config.num_days = 5;
  config.budget_fraction = 0.15;
  abtest::AbTestResult result =
      abtest::RunAbTest(generator, /*shifted_deployment=*/true, drp, rdrp,
                        config);

  std::printf("Five-day A/B test (holiday traffic, shared budget):\n");
  std::printf("  %-7s %12s %12s\n", "Arm", "TotalRev", "vs Random");
  std::printf("  %-7s %12.2f %12s\n", "Random",
              result.random_arm.total_revenue, "--");
  std::printf("  %-7s %12.2f %+11.2f%%\n", "DRP",
              result.drp_arm.total_revenue,
              result.LiftOverRandomPct(result.drp_arm));
  std::printf("  %-7s %12.2f %+11.2f%%\n", "rDRP",
              result.rdrp_arm.total_revenue,
              result.LiftOverRandomPct(result.rdrp_arm));

  std::printf("\nPer-day incremental revenue:\n  day  random    DRP   rDRP\n");
  for (int day = 0; day < config.num_days; ++day) {
    std::printf("  %3d  %6.1f %6.1f %6.1f\n", day + 1,
                result.random_arm.daily_revenue[roicl::AsSize(day)],
                result.drp_arm.daily_revenue[roicl::AsSize(day)],
                result.rdrp_arm.daily_revenue[roicl::AsSize(day)]);
  }
  return 0;
}
