// Coupon targeting under a marketing budget — the C-BTAP scenario from the
// paper's introduction (ride-sharing / food-delivery coupons).
//
// A platform has a Meituan-like user base (99 features, click = cost
// outcome, conversion = benefit). An RCT was run on a small traffic slice;
// we train several ROI rankers, then spend a fixed coupon budget on the
// users each model ranks highest, and compare the realized incremental
// conversions against the ground truth the simulator knows.
//
// Build & run:  ./build/examples/coupon_targeting

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "core/drp_model.h"
#include "core/greedy.h"
#include "core/rdrp.h"
#include "exp/methods.h"
#include "metrics/cost_curve.h"
#include "synth/synthetic_generator.h"
#include "uplift/meta_learners.h"
#include "uplift/tpm.h"
#include "common/math_util.h"

using namespace roicl;

namespace {

struct Campaign {
  std::string model;
  double spent = 0.0;
  double incremental_conversions = 0.0;
  int treated = 0;
};

Campaign RunCampaign(const std::string& name,
                     const std::vector<double>& scores,
                     const RctDataset& population, double budget) {
  core::AllocationResult alloc = core::GreedyAllocate(
      scores, population.true_tau_c, budget, /*skip_unaffordable=*/true);
  Campaign campaign;
  campaign.model = name;
  campaign.spent = alloc.spent;
  campaign.treated = static_cast<int>(alloc.selected.size());
  for (int i : alloc.selected) {
    campaign.incremental_conversions += population.true_tau_r[roicl::AsSize(i)];
  }
  return campaign;
}

}  // namespace

int main() {
  synth::SyntheticGenerator generator(synth::MeituanSynthConfig());
  Rng rng(11);

  // The RCT slice used for training (0.1% of traffic in the paper's
  // example — small by necessity).
  RctDataset train = generator.Generate(8000, /*shifted=*/false, &rng);
  // Two-day pre-launch RCT for calibration (matches the campaign traffic).
  RctDataset calibration = generator.Generate(2500, false, &rng);
  // The campaign population.
  RctDataset population = generator.Generate(10000, false, &rng);

  double all_in_cost = std::accumulate(population.true_tau_c.begin(),
                                       population.true_tau_c.end(), 0.0);
  double budget = 0.10 * all_in_cost;  // treat ~10% of the possible spend

  std::printf("Coupon campaign: %d users, budget %.1f (10%% of all-in)\n\n",
              population.n(), budget);

  std::vector<Campaign> results;

  // Random targeting baseline.
  std::vector<double> random_scores(roicl::AsSize(population.n()));
  for (double& s : random_scores) s = rng.Uniform();
  results.push_back(
      RunCampaign("Random", random_scores, population, budget));

  // TPM with an X-learner (the classic two-model approach).
  exp::MethodHyperparams hp;
  uplift::TpmRoiModel tpm("TPM-XL", [&hp] {
    return std::make_unique<uplift::XLearner>(
        uplift::MakeForestFactory(exp::MakeForestConfig(hp)));
  });
  tpm.Fit(train);
  results.push_back(RunCampaign("TPM-XL", tpm.PredictRoi(population.x),
                                population, budget));

  // DRP.
  core::DrpModel drp(exp::MakeDrpConfig(hp));
  drp.Fit(train);
  results.push_back(
      RunCampaign("DRP", drp.PredictRoi(population.x), population, budget));

  // rDRP (uses the pre-launch calibration RCT).
  core::RdrpModel rdrp(exp::MakeRdrpConfig(hp));
  rdrp.FitWithCalibration(train, calibration);
  results.push_back(RunCampaign("rDRP", rdrp.PredictRoi(population.x),
                                population, budget));

  // Oracle upper bound.
  std::vector<double> oracle(roicl::AsSize(population.n()));
  for (int i = 0; i < population.n(); ++i) {
    oracle[roicl::AsSize(i)] = population.TrueRoi(i);
  }
  results.push_back(
      RunCampaign("Oracle", oracle, population, budget));

  double random_lift = results[0].incremental_conversions;
  std::printf("%-8s %9s %9s %12s %10s\n", "Model", "Treated", "Spent",
              "IncrConv", "vs Random");
  for (const Campaign& campaign : results) {
    std::printf("%-8s %9d %9.1f %12.2f %+9.1f%%\n", campaign.model.c_str(),
                campaign.treated, campaign.spent,
                campaign.incremental_conversions,
                (campaign.incremental_conversions - random_lift) /
                    random_lift * 100.0);
  }

  std::printf("\nRanking quality (AUCC on the campaign population):\n");
  std::printf("  TPM-XL: %.4f  DRP: %.4f  rDRP: %.4f  oracle: %.4f\n",
              metrics::Aucc(tpm.PredictRoi(population.x), population),
              metrics::Aucc(drp.PredictRoi(population.x), population),
              metrics::Aucc(rdrp.PredictRoi(population.x), population),
              metrics::OracleAucc(population));
  return 0;
}
