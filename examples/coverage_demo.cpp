// Conformal coverage demo: the distribution-free guarantee of Eq. (4).
//
// For a grid of error rates alpha, calibrate rDRP's intervals on a short
// shift-matched RCT and measure the empirical coverage of the test-set
// convergence point roi*. Coverage should sit at or above 1 - alpha for
// EVERY alpha — even though the underlying DRP network was trained on a
// different (unshifted) distribution. Also demonstrates the paper's §VI
// caveat: interval width does not shrink proportionally with alpha.
//
// Build & run:  ./build/examples/coverage_demo

#include <cstdio>

#include "core/rdrp.h"
#include "core/roi_star.h"
#include "exp/methods.h"
#include "metrics/coverage.h"
#include "synth/synthetic_generator.h"

using namespace roicl;

int main() {
  synth::SyntheticGenerator generator(synth::CriteoSynthConfig());
  Rng rng(13);
  RctDataset train = generator.Generate(10000, /*shifted=*/false, &rng);
  RctDataset calibration = generator.Generate(3000, /*shifted=*/true, &rng);
  RctDataset test = generator.Generate(6000, /*shifted=*/true, &rng);

  double roi_star_test = core::BinarySearchRoiStar(test);
  std::printf("Test-set convergence point roi* = %.4f\n", roi_star_test);
  std::printf("Training distribution is SHIFTED away from calib/test —\n");
  std::printf("the guarantee only needs calib ~ test (Assumption 6).\n\n");

  std::printf("%8s %10s %10s %12s %12s\n", "alpha", "target", "coverage",
              "q_hat", "mean width");

  exp::MethodHyperparams hp;
  for (double alpha : {0.02, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    core::RdrpConfig config = exp::MakeRdrpConfig(hp);
    config.alpha = alpha;
    core::RdrpModel rdrp(config);
    rdrp.FitWithCalibration(train, calibration);

    std::vector<metrics::Interval> intervals = rdrp.PredictIntervals(test.x);
    std::vector<double> targets(intervals.size(), roi_star_test);
    metrics::CoverageReport report =
        metrics::EvaluateCoverage(intervals, targets);
    std::printf("%8.2f %10.2f %10.3f %12.3f %12.4f\n", alpha, 1.0 - alpha,
                report.coverage, rdrp.q_hat(), report.mean_width);
  }

  std::printf(
      "\nNote (paper SS VI): width tracks q_hat, the empirical score\n"
      "quantile — it is NOT guaranteed to scale linearly with alpha,\n"
      "because the MC-dropout std is only a heuristic uncertainty scalar.\n");
  return 0;
}
