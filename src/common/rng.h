#ifndef ROICL_COMMON_RNG_H_
#define ROICL_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace roicl {

/// SplitMix64: tiny, fast generator used for seeding and stream splitting.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// PCG32 (XSH-RR variant): the library's main random source.
///
/// Deterministic given (seed, stream): every experiment in the repo is
/// reproducible from its seed. Supports the distributions the library needs:
/// uniforms, normals, Bernoulli, categorical, permutations and subsampling.
class Rng {
 public:
  /// Creates a generator. Distinct `stream` values give independent
  /// sequences for the same seed (useful for per-worker streams).
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  /// Derives an independent child generator; deterministic in call order.
  Rng Split();

  /// Raw 32 uniform bits.
  uint32_t NextU32();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  uint32_t UniformInt(uint32_t n);

  /// Standard normal via Box-Muller (cached spare deviate).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Bernoulli draw; p is clamped to [0, 1].
  bool Bernoulli(double p);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  int Categorical(const std::vector<double>& weights);

  /// Poisson draw (Knuth's method; intended for small means <= ~30).
  int Poisson(double mean);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (std::size_t i = values->size() - 1; i > 0; --i) {
      std::size_t j = UniformInt(static_cast<uint32_t>(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns `k` distinct indices sampled uniformly from [0, n) without
  /// replacement (partial Fisher-Yates). Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Returns a uniformly random permutation of [0, n).
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Counter-based stream derivation: a generator that depends only on
/// (seed, counter) — never on how many draws any other stream has made.
///
/// This is the reproducibility primitive of the parallel prediction
/// engine: assigning each (sample, pass) work unit the counter
/// `pass * n + sample` makes stochastic inference bit-identical under any
/// batch size, thread count, or execution order, because every unit owns
/// an independent pre-derived stream (same philosophy as Salmon et al.,
/// "Parallel Random Numbers: As Easy as 1, 2, 3", SC 2011).
Rng MakeCounterRng(uint64_t seed, uint64_t counter);

}  // namespace roicl

#endif  // ROICL_COMMON_RNG_H_
