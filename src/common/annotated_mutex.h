#ifndef ROICL_COMMON_ANNOTATED_MUTEX_H_
#define ROICL_COMMON_ANNOTATED_MUTEX_H_

#include <condition_variable>
#include <mutex>

/// \file
/// Capability-annotated mutex wrappers for Clang Thread Safety Analysis.
///
/// Every mutex in `src/` goes through `roicl::Mutex` / `roicl::MutexLock` /
/// `roicl::CondVar` instead of the raw `std::` primitives, and every member
/// they guard declares its lock with `ROICL_GUARDED_BY`. Under clang with
/// `-Wthread-safety` (the `ROICL_TSA` CMake mode) the compiler then proves,
/// per translation unit, that no guarded member is touched without its
/// mutex, that lock acquisition respects any declared ordering, and that
/// every acquire has a matching release on all paths — *static* race
/// detection over all code paths, complementing TSan, which only sees the
/// interleavings a test happens to execute.
///
/// Under GCC (and any non-clang compiler) every `ROICL_*` annotation macro
/// expands to nothing and the wrappers compile down to the exact
/// `std::mutex` / `std::condition_variable` calls they replace — zero
/// runtime or layout cost (re-measured in BENCH_serve.json; see
/// EXPERIMENTS.md).
///
/// Condition-variable waits are written as explicit while loops
/// (`while (!pred) cv_.Wait(mu_);`) rather than predicate lambdas: the
/// analysis checks a lambda body as a separate function that holds no
/// capabilities, so a `[this] { return !queue_.empty(); }` predicate would
/// read a guarded member "without" the lock. The while-loop form keeps the
/// wait in the scope that provably holds the mutex.
///
/// `tools/lint/check_lock_discipline.sh` enforces the discipline tree-wide:
/// no raw `std::mutex` outside this header, and every `Mutex` member is
/// referenced by at least one `ROICL_GUARDED_BY`/`ROICL_REQUIRES`.
/// `tools/tsa/` holds compile-fail fixtures proving the analysis fires; see
/// DESIGN.md, "Concurrency contracts".

// Thread-safety attributes are a clang extension. `capability` appeared in
// clang 3.6, long before the C++20 floor of this repo, so a plain __clang__
// test is sufficient; __has_attribute double-checks against exotic
// clang-derived compilers that strip the analysis.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ROICL_TSA_ATTR_(x) __attribute__((x))
#endif
#endif
#ifndef ROICL_TSA_ATTR_
#define ROICL_TSA_ATTR_(x)  // non-clang: annotations compile away
#endif

/// Declares a class to be a lockable capability (e.g. a mutex wrapper).
#define ROICL_CAPABILITY(x) ROICL_TSA_ATTR_(capability(x))
/// Declares an RAII class whose lifetime acquires/releases a capability.
#define ROICL_SCOPED_CAPABILITY ROICL_TSA_ATTR_(scoped_lockable)
/// Declares that a member may only be accessed while holding `x`.
#define ROICL_GUARDED_BY(x) ROICL_TSA_ATTR_(guarded_by(x))
/// Declares that the data a pointer member points to is guarded by `x`.
#define ROICL_PT_GUARDED_BY(x) ROICL_TSA_ATTR_(pt_guarded_by(x))
/// Declares a lock-ordering edge: this mutex is acquired before `...`.
#define ROICL_ACQUIRED_BEFORE(...) \
  ROICL_TSA_ATTR_(acquired_before(__VA_ARGS__))
/// Declares a lock-ordering edge: this mutex is acquired after `...`.
#define ROICL_ACQUIRED_AFTER(...) \
  ROICL_TSA_ATTR_(acquired_after(__VA_ARGS__))
/// The caller must hold the listed capabilities (they are not acquired).
#define ROICL_REQUIRES(...) \
  ROICL_TSA_ATTR_(requires_capability(__VA_ARGS__))
/// The function acquires the listed capabilities and holds them on return.
#define ROICL_ACQUIRE(...) ROICL_TSA_ATTR_(acquire_capability(__VA_ARGS__))
/// The function releases the listed capabilities.
#define ROICL_RELEASE(...) ROICL_TSA_ATTR_(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns the first argument
/// (e.g. `ROICL_TRY_ACQUIRE(true)` on a bool TryLock()).
#define ROICL_TRY_ACQUIRE(...) \
  ROICL_TSA_ATTR_(try_acquire_capability(__VA_ARGS__))
/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define ROICL_EXCLUDES(...) ROICL_TSA_ATTR_(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define ROICL_ASSERT_CAPABILITY(x) ROICL_TSA_ATTR_(assert_capability(x))
/// The function returns a reference to the given capability.
#define ROICL_RETURN_CAPABILITY(x) ROICL_TSA_ATTR_(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define ROICL_NO_THREAD_SAFETY_ANALYSIS \
  ROICL_TSA_ATTR_(no_thread_safety_analysis)

namespace roicl {

/// `std::mutex` wrapped as a Thread Safety Analysis capability. Same cost,
/// same semantics; the wrapper exists so lock/unlock sites carry the
/// ACQUIRE/RELEASE contract the analysis checks against.
class ROICL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ROICL_ACQUIRE() { mu_.lock(); }
  void Unlock() ROICL_RELEASE() { mu_.unlock(); }
  bool TryLock() ROICL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() needs the underlying handle
  std::mutex mu_;
};

/// RAII lock for `Mutex` — the annotated `std::lock_guard`. Scoped
/// acquisition is the only pattern library code uses; bare Lock()/Unlock()
/// pairs are for the wrappers themselves and for compile-fail fixtures.
class ROICL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ROICL_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ROICL_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with `Mutex`. `Wait` requires the mutex held
/// (it is atomically released for the duration of the wait and re-acquired
/// before returning, exactly like `std::condition_variable::wait`); the
/// REQUIRES contract makes the held-before/held-after obligation explicit
/// to the analysis. Always wait in a loop:
///   while (!condition) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) ROICL_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the capability bookkeeping stays
    // with the caller's scope.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace roicl

#endif  // ROICL_COMMON_ANNOTATED_MUTEX_H_
