#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 1 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.stddev();
}

double Quantile(std::vector<double> values, double p) {
  ROICL_CHECK(!values.empty());
  ROICL_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = p * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ConformalQuantile(std::vector<double> scores, double alpha) {
  ROICL_CHECK(!scores.empty());
  ROICL_CHECK(alpha > 0.0 && alpha < 1.0);
  size_t n = scores.size();
  double raw_rank = std::ceil((1.0 - alpha) * static_cast<double>(n + 1));
  size_t rank = static_cast<size_t>(raw_rank);
  if (rank > n) return std::numeric_limits<double>::infinity();
  // rank is 1-based: the rank-th smallest score.
  std::nth_element(scores.begin(),
                   scores.begin() + static_cast<ptrdiff_t>(rank - 1),
                   scores.end());
  return scores[rank - 1];
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ROICL_CHECK(a.size() == b.size());
  ROICL_CHECK(a.size() >= 2);
  double mean_a = Mean(a);
  double mean_b = Mean(b);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

std::vector<double> Ranks(const std::vector<double>& values) {
  size_t n = values.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int i, int j) { return values[AsSize(i)] < values[AsSize(j)]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[AsSize(order[j + 1])] == values[AsSize(order[i])]) ++j;
    // Average rank for the tie block [i, j].
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k <= j; ++k) ranks[AsSize(order[k])] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

}  // namespace roicl
