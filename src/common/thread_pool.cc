#include "common/thread_pool.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl {
namespace {

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth");
  return gauge;
}

obs::Counter* TasksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks");
  return counter;
}

obs::Histogram* TaskLatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "threadpool.task_us", obs::LatencyMicrosBuckets());
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ROICL_CHECK(task != nullptr);
  {
    MutexLock lock(mutex_);
    ROICL_CHECK_MSG(!shutdown_, "Submit() after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop();
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    uint64_t task_start_us = obs::MonotonicMicros();
    task();
    TasksCounter()->Increment();
    TaskLatencyHistogram()->Observe(
        static_cast<double>(obs::MonotonicMicros() - task_start_us));
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int)>& body) {
  ROICL_CHECK(end >= begin);
  int n = end - begin;
  if (n == 0) return;
  int threads = static_cast<int>(num_threads());
  // Below this size the scheduling overhead dominates; run inline.
  if (n < 2 || threads < 2) {
    for (int i = begin; i < end; ++i) body(i);
    return;
  }
  int chunks = std::min(threads, n);
  int chunk_size = (n + chunks - 1) / chunks;
  for (int c = 0; c < chunks; ++c) {
    int lo = begin + c * chunk_size;
    int hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Submit([lo, hi, &body] {
      for (int i = lo; i < hi; ++i) body(i);
    });
  }
  Wait();
}

ThreadPool& GlobalThreadPool() {
  // Function-local static reference: intentionally leaked so that shutdown
  // ordering with other statics never matters (Google style guide pattern).
  static ThreadPool& pool = *new ThreadPool();
  return pool;
}

}  // namespace roicl
