#ifndef ROICL_COMMON_MATH_UTIL_H_
#define ROICL_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/macros.h"

namespace roicl {

/// Casts a non-negative `int` index to `size_t` for container subscripts.
/// The strict build (-Wsign-conversion, see ROICL_STRICT) bans implicit
/// int->size_t conversions because a negative index wraps to a huge
/// offset; this helper is the sanctioned spelling and adds the
/// negativity check the implicit conversion silently skipped.
inline size_t AsSize(int i) {
  ROICL_DCHECK(i >= 0);
  return static_cast<size_t>(i);
}

/// `AsSize` for 64-bit row indices: the streaming allocator addresses
/// populations past INT_MAX rows, so its loop indices are int64_t; this
/// is the checked spelling of the int64 -> size_t subscript cast.
inline size_t AsSize64(int64_t i) {
  ROICL_DCHECK(i >= 0);
  return static_cast<size_t>(i);
}

/// Casts a container size to `int`, checking that it fits. Row/column
/// counts in this library are ints by design (they are bounded by memory
/// long before INT_MAX), so the narrowing is safe — but only with this
/// check, which makes an overflow loud instead of wrapping negative.
inline int AsInt(size_t n) {
  ROICL_DCHECK(n <= static_cast<size_t>(std::numeric_limits<int>::max()));
  return static_cast<int>(n);
}

/// Numerically stable logistic sigmoid.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

/// Derivative of the sigmoid expressed through its value p = Sigmoid(x).
inline double SigmoidGrad(double p) { return p * (1.0 - p); }

/// Inverse sigmoid. `p` is clamped away from {0, 1} to keep the result
/// finite; the clamp radius matches the ROI scope of Assumption 3.
inline double Logit(double p) {
  constexpr double kEps = 1e-12;
  p = std::clamp(p, kEps, 1.0 - kEps);
  return std::log(p / (1.0 - p));
}

/// log(x) with the argument clamped to a small positive floor; used inside
/// losses where the model output is provably in (0, 1) but floating-point
/// rounding can still touch the boundary.
inline double SafeLog(double x) {
  constexpr double kFloor = 1e-300;
  return std::log(std::max(x, kFloor));
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::clamp(x, lo, hi);
}

/// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Square helper.
inline double Sq(double x) { return x * x; }

}  // namespace roicl

#endif  // ROICL_COMMON_MATH_UTIL_H_
