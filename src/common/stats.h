#ifndef ROICL_COMMON_STATS_H_
#define ROICL_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace roicl {

/// Single-pass accumulator for mean and variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const;
  /// Population variance (divides by n). Zero when count() < 1.
  double variance() const;
  /// Sample variance (divides by n - 1). Zero when count() < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of `values`; zero for an empty vector.
double Mean(const std::vector<double>& values);

/// Population standard deviation of `values`; zero when size < 1.
double StdDev(const std::vector<double>& values);

/// Linear-interpolation quantile (type-7, the numpy default).
/// `p` in [0, 1]; `values` need not be sorted. Requires non-empty input.
double Quantile(std::vector<double> values, double p);

/// The conformal ("higher"-type) quantile used by split conformal
/// prediction: the ceil((1 - alpha) * (n + 1))-th smallest score.
/// When the rank exceeds n (tiny calibration sets) returns +infinity,
/// which yields intervals that trivially cover -- the standard convention.
double ConformalQuantile(std::vector<double> scores, double alpha);

/// Pearson correlation of two equal-length vectors; zero if either side is
/// constant. Requires sizes to match and be >= 2.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Ranks of `values` (0-based, average rank for ties).
std::vector<double> Ranks(const std::vector<double>& values);

/// Spearman rank correlation. Requires sizes to match and be >= 2.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace roicl

#endif  // ROICL_COMMON_STATS_H_
