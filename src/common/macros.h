#ifndef ROICL_COMMON_MACROS_H_
#define ROICL_COMMON_MACROS_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight runtime-check macros used throughout the library.
///
/// The library does not throw exceptions across its public API. Invariant
/// violations (programmer errors) abort with a diagnostic; recoverable
/// failures (I/O, malformed input) are reported through `roicl::Status`.

/// Aborts with a message when `condition` is false. Always active, even in
/// release builds, because the cost of the checks in this library is
/// negligible next to the numerical work they guard.
#define ROICL_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "ROICL_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like ROICL_CHECK but with a printf-style explanation appended.
#define ROICL_CHECK_MSG(condition, ...)                                     \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "ROICL_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only check; compiled out when NDEBUG is defined. Use on hot paths.
#ifdef NDEBUG
#define ROICL_DCHECK(condition) \
  do {                          \
  } while (0)
#else
#define ROICL_DCHECK(condition) ROICL_CHECK(condition)
#endif

/// Debug-only finiteness check for a double-valued expression. NaN or
/// infinity in a score, quantile, or ROI estimate silently poisons every
/// downstream ranking, so debug builds abort at the first non-finite
/// value with the offending expression and its value. Compiled out under
/// NDEBUG: the expression is not evaluated in release builds, so it must
/// be side-effect free.
#ifdef NDEBUG
#define ROICL_DCHECK_FINITE(value) \
  do {                             \
  } while (0)
#else
#define ROICL_DCHECK_FINITE(value)                                          \
  do {                                                                      \
    const double roicl_dcheck_finite_v_ = (value);                          \
    if (!std::isfinite(roicl_dcheck_finite_v_)) {                           \
      std::fprintf(stderr,                                                  \
                   "ROICL_DCHECK_FINITE failed at %s:%d: %s = %g\n",        \
                   __FILE__, __LINE__, #value, roicl_dcheck_finite_v_);     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
#endif

#endif  // ROICL_COMMON_MACROS_H_
