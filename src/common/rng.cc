#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl {

Rng::Rng(uint64_t seed, uint64_t stream) {
  // PCG initialization: the increment must be odd; mix the seed through
  // SplitMix64 so that small consecutive seeds give unrelated states.
  SplitMix64 mixer(seed);
  inc_ = (mixer.Next() ^ (stream * 0x9e3779b97f4a7c15ULL)) | 1ULL;
  state_ = 0;
  NextU32();
  state_ += mixer.Next();
  NextU32();
}

Rng Rng::Split() {
  uint64_t child_seed =
      (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  uint64_t child_stream =
      (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  return Rng(child_seed, child_stream);
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
  uint32_t rot = static_cast<uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::Uniform() {
  // 53 random bits -> double in [0, 1).
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  ROICL_DCHECK(hi >= lo);
  return lo + (hi - lo) * Uniform();
}

uint32_t Rng::UniformInt(uint32_t n) {
  ROICL_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (-n) % n;
  for (;;) {
    uint32_t r = NextU32();
    uint64_t product = static_cast<uint64_t>(r) * n;
    if (static_cast<uint32_t>(product) >= threshold) {
      return static_cast<uint32_t>(product >> 32);
    }
  }
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  ROICL_DCHECK(stddev >= 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return Uniform() < p;
}

double Rng::Exponential(double rate) {
  ROICL_CHECK(rate > 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::Categorical(const std::vector<double>& weights) {
  ROICL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ROICL_CHECK_MSG(w >= 0.0, "negative categorical weight %f", w);
    total += w;
  }
  ROICL_CHECK_MSG(total > 0.0, "all categorical weights are zero");
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::Poisson(double mean) {
  ROICL_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= Uniform();
  }
  return count;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  ROICL_CHECK(k >= 0 && k <= n);
  std::vector<int> pool(AsSize(n));
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint32_t>(n - i)));
    std::swap(pool[AsSize(i)], pool[AsSize(j)]);
  }
  pool.resize(AsSize(k));
  return pool;
}

std::vector<int> Rng::Permutation(int n) {
  return SampleWithoutReplacement(n, n);
}

Rng MakeCounterRng(uint64_t seed, uint64_t counter) {
  // Feed the counter through SplitMix64 before combining with the seed so
  // that consecutive counters land in unrelated (state, stream) pairs.
  SplitMix64 mixer(counter * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  uint64_t child_seed = seed ^ mixer.Next();
  uint64_t child_stream = mixer.Next();
  return Rng(child_seed, child_stream);
}

}  // namespace roicl
