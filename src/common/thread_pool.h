#ifndef ROICL_COMMON_THREAD_POOL_H_
#define ROICL_COMMON_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace roicl {

/// Fixed-size worker pool used to parallelize embarrassingly parallel work
/// (forest training, MC-dropout inference sweeps). Tasks are void() thunks;
/// `Wait()` blocks until every submitted task has completed.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` selects the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) ROICL_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and all in-flight tasks are done.
  void Wait() ROICL_EXCLUDES(mutex_);

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `body(i)` for i in [begin, end), split into contiguous chunks
  /// across the pool. Blocks until done. Falls back to inline execution
  /// for tiny ranges.
  void ParallelFor(int begin, int end, const std::function<void(int)>& body);

 private:
  void WorkerLoop() ROICL_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< written only in the constructor
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> queue_ ROICL_GUARDED_BY(mutex_);
  int in_flight_ ROICL_GUARDED_BY(mutex_) = 0;
  bool shutdown_ ROICL_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool shared by library components that want parallelism
/// without owning threads. Created on first use.
ThreadPool& GlobalThreadPool();

}  // namespace roicl

#endif  // ROICL_COMMON_THREAD_POOL_H_
