#ifndef ROICL_COMMON_THREAD_POOL_H_
#define ROICL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace roicl {

/// Fixed-size worker pool used to parallelize embarrassingly parallel work
/// (forest training, MC-dropout inference sweeps). Tasks are void() thunks;
/// `Wait()` blocks until every submitted task has completed.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. `num_threads == 0` selects the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all in-flight tasks are done.
  void Wait();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `body(i)` for i in [begin, end), split into contiguous chunks
  /// across the pool. Blocks until done. Falls back to inline execution
  /// for tiny ranges.
  void ParallelFor(int begin, int end, const std::function<void(int)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutdown_ = false;
};

/// Process-wide pool shared by library components that want parallelism
/// without owning threads. Created on first use.
ThreadPool& GlobalThreadPool();

}  // namespace roicl

#endif  // ROICL_COMMON_THREAD_POOL_H_
