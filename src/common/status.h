#ifndef ROICL_COMMON_STATUS_H_
#define ROICL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace roicl {

/// Error category for a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Minimal status object for recoverable failures (file I/O, parsing,
/// user-supplied configuration). Invariant violations use ROICL_CHECK
/// instead. [[nodiscard]] at class scope makes silently dropping any
/// returned Status a compile-time warning (an error under ROICL_STRICT).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: empty dataset".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error wrapper. `ok()` must be checked before `value()`.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr usage.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    ROICL_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ROICL_CHECK_MSG(ok(), "value() on errored StatusOr: %s",
                    status_.message().c_str());
    return *value_;
  }
  T& value() & {
    ROICL_CHECK_MSG(ok(), "value() on errored StatusOr: %s",
                    status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    ROICL_CHECK_MSG(ok(), "value() on errored StatusOr: %s",
                    status_.message().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  // optional<> so T need not be default-constructible.
  std::optional<T> value_;
};

}  // namespace roicl

#endif  // ROICL_COMMON_STATUS_H_
