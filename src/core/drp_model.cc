#include "core/drp_model.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <string>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/drp_loss.h"
#include "nn/dense.h"
#include "nn/serialize.h"
#include "core/mc_dropout.h"
#include "metrics/cost_curve.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace roicl::core {

void DrpModel::Fit(const RctDataset& train) {
  train.Validate();
  ROICL_CHECK_MSG(train.NumTreated() > 0 && train.NumControl() > 0,
                  "DRP requires both RCT arms");
  obs::ScopedSpan span("drp.fit");
  Matrix x_scaled = scaler_.FitTransform(train.x);

  int hidden = config_.hidden_units;
  if (hidden <= 0) {
    // Capacity scaled to data volume: big nets overfit (and train
    // unstably) on the paper's "Insufficient" RCT sizes.
    hidden = train.n() < 4000 ? 32 : 128;
  }

  DrpLoss loss(&train.treatment, &train.y_revenue, &train.y_cost);
  std::vector<int> train_index(AsSize(train.n()));
  for (int i = 0; i < train.n(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && train.n() >= 100) {
    int n_val = std::max(1, train.n() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }

  // Multi-restart: a noisy causal loss occasionally sends one run to a
  // bad region; keep the restart with the best held-out (or training)
  // loss.
  int restarts = std::max(1, config_.restarts);
  double best_loss = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < restarts; ++restart) {
    Rng rng(config_.seed + static_cast<uint64_t>(restart) * 7919,
            /*stream=*/31);
    auto candidate = std::make_unique<nn::Mlp>(nn::Mlp::MakeMlp(
        train.dim(), {hidden}, /*output_dim=*/1, config_.activation,
        config_.dropout, &rng));
    nn::TrainConfig train_config = config_.train;
    train_config.seed =
        config_.train.seed + static_cast<uint64_t>(restart) * 104729;
    nn::TrainResult result =
        nn::TrainNetwork(candidate.get(), x_scaled, train_index,
                         validation_index, loss, train_config);
    // Rank restarts by held-out AUCC — the deployment metric — rather
    // than by loss, which correlates only loosely with ranking quality.
    double score;
    if (validation_index.empty()) {
      score = result.final_train_loss;
    } else {
      Matrix val_x = x_scaled.SelectRows(validation_index);
      Matrix out = candidate->Forward(val_x, nn::Mode::kInfer, nullptr);
      score = -metrics::Aucc(out.Col(0), train.Subset(validation_index));
    }
    obs::Debug("drp restart", {{"restart", restart}, {"score", score}});
    if (score < best_loss) {
      best_loss = score;
      net_ = std::move(candidate);
    }
  }
  obs::Debug("drp fit done", {{"n", train.n()},
                              {"hidden", hidden},
                              {"restarts", restarts},
                              {"best_score", best_loss}});
}

std::vector<double> DrpModel::PredictScore(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictScore() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = nn::BatchedInferForward(net_.get(), x_scaled,
                                       config_.predict);
  return out.Col(0);
}

std::vector<double> DrpModel::PredictRoi(const Matrix& x) const {
  std::vector<double> scores = PredictScore(x);
  for (double& s : scores) {
    s = Sigmoid(s);
    ROICL_DCHECK_FINITE(s);
  }
  return scores;
}

McDropoutStats DrpModel::PredictMcRoi(const Matrix& x, int passes,
                                      uint64_t seed,
                                      const nn::BatchOptions& opts) const {
  ROICL_CHECK_MSG(fitted(), "PredictMcRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  return RunMcDropout(net_.get(), x_scaled, passes, seed,
                      /*sigmoid_output=*/true, opts);
}

Status DrpModel::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  out << "roicl-drp-v1\n";
  out << std::setprecision(17);
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stds = scaler_.stddevs();
  out << means.size();
  for (double m : means) out << ' ' << m;
  for (double s : stds) out << ' ' << s;
  out << '\n';
  return nn::SaveMlp(*net_, out);
}

Status DrpModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

StatusOr<DrpModel> DrpModel::Load(std::istream& in,
                                  const DrpConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated drp model stream");
  }
  if (magic != "roicl-drp-v1") {
    if (magic.rfind("roicl-drp-v", 0) == 0) {
      return Status::InvalidArgument("unsupported drp format version '" +
                                     magic + "' (expected roicl-drp-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-drp-v1)");
  }
  size_t dim = 0;
  if (!(in >> dim) || dim == 0 || dim > 1000000) {
    return Status::InvalidArgument("bad feature dimension");
  }
  std::vector<double> means(dim), stds(dim);
  for (double& v : means) {
    if (!(in >> v)) return Status::InvalidArgument("truncated means");
  }
  for (double& v : stds) {
    if (!(in >> v)) return Status::InvalidArgument("truncated stds");
    if (v <= 0.0) return Status::InvalidArgument("non-positive stddev");
  }
  StatusOr<nn::Mlp> net = nn::LoadMlp(in);
  if (!net.ok()) return net.status();

  // Cross-check: the network's first dense layer must consume exactly the
  // scaler's feature dimension, or predictions would index out of range.
  int net_input = -1;
  for (size_t l = 0; l < net.value().num_layers(); ++l) {
    if (const auto* dense =
            dynamic_cast<const nn::Dense*>(net.value().layer(l))) {
      net_input = dense->in_features();
      break;
    }
  }
  if (net_input != static_cast<int>(dim)) {
    return Status::InvalidArgument(
        "feature dimension mismatch: scaler has " + std::to_string(dim) +
        " features but the network expects " + std::to_string(net_input));
  }

  DrpModel model(config);
  model.scaler_ =
      StandardScaler::FromMoments(std::move(means), std::move(stds));
  model.net_ = std::make_unique<nn::Mlp>(std::move(net).value());
  return model;
}

StatusOr<DrpModel> DrpModel::LoadFromFile(const std::string& path,
                                          const DrpConfig& config) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in, config);
}

}  // namespace roicl::core
