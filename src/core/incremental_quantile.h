#ifndef ROICL_CORE_INCREMENTAL_QUANTILE_H_
#define ROICL_CORE_INCREMENTAL_QUANTILE_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Order-statistic structure for online conformal quantiles (exact
/// conformal prediction via incremental/decremental updates, Cherubin et
/// al. 2021): a balanced search tree over calibration scores with subtree
/// counts, so the ceil((1-alpha)(n+1)) rank selection that
/// common/stats.h's ConformalQuantile performs in O(n) per call becomes
/// O(log n) per insert/evict with O(log n) rank lookup. The k-th smallest
/// element is a property of the multiset, not of the tree shape, so QHat
/// is bitwise-identical to the batch quantile under arbitrary
/// insert/evict interleavings — the invariant the rolling recalibrator's
/// hot path relies on (proven by IncrementalQuantileMatchesBatch).
namespace roicl::core {

/// Treap keyed by score value with duplicate counts and subtree sizes.
/// Priorities are derived deterministically from a monotone insertion
/// counter (splitmix64), so identical operation sequences produce
/// identical trees — no ambient entropy (check_determinism).
class IncrementalQuantile {
 public:
  /// Tree node; defined in the .cc (opaque to callers, public so the
  /// implementation's file-local helpers can name it).
  struct Node;

  IncrementalQuantile() = default;
  ~IncrementalQuantile();

  IncrementalQuantile(IncrementalQuantile&&) noexcept;
  IncrementalQuantile& operator=(IncrementalQuantile&&) noexcept;
  IncrementalQuantile(const IncrementalQuantile&) = delete;
  IncrementalQuantile& operator=(const IncrementalQuantile&) = delete;

  /// Inserts one score (duplicates allowed; finite values only).
  void Insert(double value);

  /// Removes one instance of `value`; returns false when absent. The
  /// sliding-window evict path: the caller re-presents the exact double
  /// it inserted, so lookup is exact equality.
  bool Erase(double value);

  /// Number of stored scores (with multiplicity).
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The k-th smallest stored score, 1-based. Requires 1 <= k <= size().
  double Kth(std::size_t k) const;

  /// Algorithm 3's conformal quantile over the stored scores: the
  /// ceil((1-alpha)(n+1))-th smallest, +inf when that rank exceeds n
  /// (starved window; caller decides the fallback). Uses the identical
  /// rank expression as common/stats.h ConformalQuantile, so the result
  /// is bitwise-equal to the batch path.
  double QHat(double alpha) const;

  /// Drops every stored score (the re-anchor rebuild path).
  void Clear();

 private:
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  /// Monotone insertion counter feeding the deterministic priority hash.
  std::uint64_t inserted_ = 0;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_INCREMENTAL_QUANTILE_H_
