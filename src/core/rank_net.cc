#include "core/rank_net.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/mc_dropout.h"
#include "metrics/cost_curve.h"
#include "nn/dense.h"
#include "nn/serialize.h"

namespace roicl::core {
namespace {

/// Numerically stable softplus(x) = log(1 + exp(x)).
double Softplus(double x) {
  return std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0);
}

/// Pairwise transformed-outcome ranking loss (see rank_net.h). O(n^2) in
/// the batch size; binary outcomes make most weights w_ij exactly zero,
/// and zero-weight pairs are skipped.
class PairwiseRoiRankLoss : public nn::BatchLoss {
 public:
  PairwiseRoiRankLoss(const std::vector<int>* treatment,
                      const std::vector<double>* y_revenue,
                      const std::vector<double>* y_cost)
      : treatment_(treatment), y_revenue_(y_revenue), y_cost_(y_cost) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(grad != nullptr);
    ROICL_CHECK(preds.cols() == 1);
    const int n = preds.rows();
    *grad = Matrix(n, 1);

    int n1 = 0, n0 = 0;
    for (int i = 0; i < n; ++i) {
      ((*treatment_)[AsSize(index[AsSize(i)])] == 1 ? n1 : n0)++;
    }
    if (n1 == 0 || n0 == 0) return 0.0;  // degenerate batch: skip

    // Transformed outcomes per batch row.
    std::vector<double> zr(AsSize(n)), zc(AsSize(n));
    for (int i = 0; i < n; ++i) {
      const size_t si = AsSize(i);
      const size_t row = AsSize(index[si]);
      double g = (*treatment_)[row] == 1 ? static_cast<double>(n) / n1
                                         : -static_cast<double>(n) / n0;
      zr[si] = g * (*y_revenue_)[row];
      zc[si] = g * (*y_cost_)[row];
    }

    double loss = 0.0;
    int64_t pairs = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const size_t si = AsSize(i), sj = AsSize(j);
        double w = zr[si] * zc[sj] - zr[sj] * zc[si];
        if (w == 0.0) continue;
        double sign = w > 0.0 ? 1.0 : -1.0;
        double mag = std::fabs(w);
        double margin = sign * (preds(i, 0) - preds(j, 0));
        loss += mag * Softplus(-margin);
        // d softplus(-m)/dm = -sigmoid(-m).
        double d = -mag * sign * Sigmoid(-margin);
        (*grad)(i, 0) += d;
        (*grad)(j, 0) -= d;
        ++pairs;
      }
    }
    if (pairs == 0) return 0.0;
    double inv = 1.0 / static_cast<double>(pairs);
    for (int i = 0; i < n; ++i) (*grad)(i, 0) *= inv;
    return loss * inv;
  }

 private:
  const std::vector<int>* treatment_;
  const std::vector<double>* y_revenue_;
  const std::vector<double>* y_cost_;
};

}  // namespace

void RankNetModel::Fit(const RctDataset& train) {
  train.Validate();
  ROICL_CHECK_MSG(train.NumTreated() > 0 && train.NumControl() > 0,
                  "RankNet requires both RCT arms");
  Matrix x_scaled = scaler_.FitTransform(train.x);

  int hidden = config_.hidden_units;
  if (hidden <= 0) hidden = train.n() < 4000 ? 32 : 128;

  PairwiseRoiRankLoss loss(&train.treatment, &train.y_revenue,
                           &train.y_cost);
  std::vector<int> train_index(AsSize(train.n()));
  for (int i = 0; i < train.n(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && train.n() >= 100) {
    int n_val = std::max(1, train.n() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }

  // Multi-restart, ranked by held-out AUCC like DR: the pairwise loss is
  // noisy (single-sample transformed outcomes), so the deployment metric
  // picks the restart.
  int restarts = std::max(1, config_.restarts);
  double best_score = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < restarts; ++restart) {
    Rng rng(config_.seed + static_cast<uint64_t>(restart) * 7919,
            /*stream=*/53);
    auto candidate = std::make_unique<nn::Mlp>(nn::Mlp::MakeMlp(
        train.dim(), {hidden}, /*output_dim=*/1, config_.activation,
        config_.dropout, &rng));
    nn::TrainConfig train_config = config_.train;
    train_config.seed =
        config_.train.seed + static_cast<uint64_t>(restart) * 104729;
    nn::TrainResult result =
        nn::TrainNetwork(candidate.get(), x_scaled, train_index,
                         validation_index, loss, train_config);
    double score;
    if (validation_index.empty()) {
      score = result.final_train_loss;
    } else {
      Matrix val_x = x_scaled.SelectRows(validation_index);
      Matrix out = candidate->Forward(val_x, nn::Mode::kInfer, nullptr);
      score = -metrics::Aucc(out.Col(0), train.Subset(validation_index));
    }
    if (score < best_score) {
      best_score = score;
      net_ = std::move(candidate);
    }
  }
}

std::vector<double> RankNetModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = nn::BatchedInferForward(net_.get(), x_scaled,
                                       config_.predict);
  std::vector<double> roi = out.Col(0);
  // RankNet only learns a ranking; the sigmoid maps it into (0, 1) so the
  // downstream tooling can treat all direct models uniformly (same
  // convention as DR).
  for (double& v : roi) {
    v = Sigmoid(v);
    ROICL_DCHECK_FINITE(v);
  }
  return roi;
}

McDropoutStats RankNetModel::PredictMcRoi(
    const Matrix& x, int passes, uint64_t seed,
    const nn::BatchOptions& opts) const {
  ROICL_CHECK_MSG(fitted(), "PredictMcRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  return RunMcDropout(net_.get(), x_scaled, passes, seed,
                      /*sigmoid_output=*/true, opts);
}

Status RankNetModel::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  out << "roicl-ranknet-v1\n";
  out << std::setprecision(17);
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stds = scaler_.stddevs();
  out << means.size();
  for (double m : means) out << ' ' << m;
  for (double s : stds) out << ' ' << s;
  out << '\n';
  return nn::SaveMlp(*net_, out);
}

StatusOr<RankNetModel> RankNetModel::Load(std::istream& in,
                                          const RankNetConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument(
        "empty or truncated ranknet model stream");
  }
  if (magic != "roicl-ranknet-v1") {
    if (magic.rfind("roicl-ranknet-v", 0) == 0) {
      return Status::InvalidArgument(
          "unsupported ranknet format version '" + magic +
          "' (expected roicl-ranknet-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-ranknet-v1)");
  }
  size_t dim = 0;
  if (!(in >> dim) || dim == 0 || dim > 1000000) {
    return Status::InvalidArgument("bad feature dimension");
  }
  std::vector<double> means(dim), stds(dim);
  for (double& v : means) {
    if (!(in >> v)) return Status::InvalidArgument("truncated means");
  }
  for (double& v : stds) {
    if (!(in >> v)) return Status::InvalidArgument("truncated stds");
    if (v <= 0.0) return Status::InvalidArgument("non-positive stddev");
  }
  StatusOr<nn::Mlp> net = nn::LoadMlp(in);
  if (!net.ok()) return net.status();
  int net_input = -1;
  for (size_t l = 0; l < net.value().num_layers(); ++l) {
    if (const auto* dense =
            dynamic_cast<const nn::Dense*>(net.value().layer(l))) {
      net_input = dense->in_features();
      break;
    }
  }
  if (net_input != static_cast<int>(dim)) {
    return Status::InvalidArgument(
        "feature dimension mismatch: scaler has " + std::to_string(dim) +
        " features but the network expects " + std::to_string(net_input));
  }

  RankNetModel model(config);
  model.scaler_ =
      StandardScaler::FromMoments(std::move(means), std::move(stds));
  model.net_ = std::make_unique<nn::Mlp>(std::move(net).value());
  return model;
}

}  // namespace roicl::core
