#ifndef ROICL_CORE_RANK_NET_H_
#define ROICL_CORE_RANK_NET_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/direct_model.h"
#include "data/scaler.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace roicl::core {

/// RankNet hyperparameters (same network shape as DRP/DR so the eleventh
/// Table-I row trains under a comparable budget).
struct RankNetConfig {
  /// Hidden-layer width; <= 0 selects automatically from the training-set
  /// size (mirrors DrpConfig).
  int hidden_units = 0;
  nn::ActivationKind activation = nn::ActivationKind::kRelu;
  double dropout = 0.2;
  nn::TrainConfig train;
  /// Independent random restarts ranked by held-out AUCC (like DR).
  int restarts = 3;
  uint64_t seed = 91;
  /// Batched prediction-engine knobs (row-block size, thread count).
  /// Throughput only — predictions are bit-identical across settings.
  nn::BatchOptions predict;
};

/// Ranking-objective ROI scorer ("Metalearners for Ranking Treatment
/// Effects", Vanderschueren et al.): since Algorithm 1 consumes only the
/// ROI *ranking*, train the score s(x) directly on a pairwise
/// RankNet-style logistic loss instead of an ROI regression.
///
/// Within a mini-batch, transformed outcomes z_r = g*y_r and z_c = g*y_c
/// (g = +n/n1 treated, -n/n0 control) are unbiased single-sample
/// estimates of tau_r(x) and tau_c(x). For independent rows i != j the
/// cross product z_r_i * z_c_j is an unbiased estimate of
/// tau_r_i * tau_c_j, so
///   w_ij = z_r_i * z_c_j - z_r_j * z_c_i
/// estimates tau_r_i*tau_c_j - tau_r_j*tau_c_i, whose sign is the true
/// ROI comparison roi_i > roi_j whenever costs are positive (Assumption
/// 4). The loss is the weighted pairwise logistic
///   L = (1/P) sum_{i<j} |w_ij| * softplus(-sign(w_ij) * (s_i - s_j)),
/// a Burges-style RankNet objective with noisy-but-unbiased preference
/// directions — no ratio, no cost floor, no ROI regression target.
class RankNetModel : public DirectRoiModel {
 public:
  explicit RankNetModel(const RankNetConfig& config) : config_(config) {}

  void Fit(const RctDataset& train) override;
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override { return "RankNet"; }

  using DirectRoiModel::PredictMcRoi;
  McDropoutStats PredictMcRoi(const Matrix& x, int passes, uint64_t seed,
                              const nn::BatchOptions& opts) const override;

  bool fitted() const { return net_ != nullptr; }

  /// Feature dimension the model was fitted on (-1 before Fit/Load).
  int feature_dim() const {
    return scaler_.fitted() ? static_cast<int>(scaler_.means().size()) : -1;
  }

  /// Re-points the batched prediction engine. Throughput knob only.
  void set_predict_options(const nn::BatchOptions& opts) {
    config_.predict = opts;
  }

  /// Serializes the fitted model (scaler + network, "roicl-ranknet-v1");
  /// a save/load round trip reproduces predictions bit for bit.
  Status Save(std::ostream& out) const;
  static StatusOr<RankNetModel> Load(
      std::istream& in, const RankNetConfig& config = RankNetConfig());

 private:
  RankNetConfig config_;
  StandardScaler scaler_;
  mutable std::unique_ptr<nn::Mlp> net_;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_RANK_NET_H_
