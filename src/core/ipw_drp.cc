#include "core/ipw_drp.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "core/drp_loss.h"
#include "core/mc_dropout.h"
#include "nn/trainer.h"

namespace roicl::core {

void IpwDrpModel::Fit(const RctDataset& train) {
  train.Validate();
  ROICL_CHECK_MSG(train.NumTreated() > 0 && train.NumControl() > 0,
                  "IPW-DRP requires both treatment groups");

  // Stage 1: propensity model on the raw features.
  propensity_ =
      std::make_unique<uplift::PropensityModel>(config_.propensity);
  propensity_->Fit(train.x, train.treatment);
  std::vector<double> weights =
      propensity_->InverseWeights(train.x, train.treatment);

  // Stage 2: weighted DRP.
  Matrix x_scaled = scaler_.FitTransform(train.x);
  int hidden = config_.drp.hidden_units;
  if (hidden <= 0) hidden = train.n() < 4000 ? 32 : 128;
  Rng rng(config_.drp.seed, /*stream=*/59);
  net_ = std::make_unique<nn::Mlp>(nn::Mlp::MakeMlp(
      train.dim(), {hidden}, /*output_dim=*/1, config_.drp.activation,
      config_.drp.dropout, &rng));

  DrpLoss loss(&train.treatment, &train.y_revenue, &train.y_cost,
               &weights);
  std::vector<int> train_index(AsSize(train.n()));
  for (int i = 0; i < train.n(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.drp.train.patience > 0 && train.n() >= 100) {
    int n_val = std::max(1, train.n() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }
  nn::TrainNetwork(net_.get(), x_scaled, train_index, validation_index,
                   loss, config_.drp.train);
}

std::vector<double> IpwDrpModel::PredictScore(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictScore() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out =
      nn::BatchedInferForward(net_.get(), x_scaled, config_.drp.predict);
  return out.Col(0);
}

std::vector<double> IpwDrpModel::PredictRoi(const Matrix& x) const {
  std::vector<double> scores = PredictScore(x);
  for (double& s : scores) {
    s = Sigmoid(s);
    ROICL_DCHECK_FINITE(s);
  }
  return scores;
}

McDropoutStats IpwDrpModel::PredictMcRoi(
    const Matrix& x, int passes, uint64_t seed,
    const nn::BatchOptions& opts) const {
  ROICL_CHECK_MSG(fitted(), "PredictMcRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  return RunMcDropout(net_.get(), x_scaled, passes, seed,
                      /*sigmoid_output=*/true, opts);
}

}  // namespace roicl::core
