#include "core/interval_backend.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/cqr.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace roicl::core {
namespace {

/// Weighted-conformal reference binning resolution over the served-score
/// weight variable.
constexpr std::size_t kWeightBinCount = 10;
/// Upper bound on persisted calibration rows — rejects absurd (corrupt)
/// artifact headers before allocating.
constexpr std::size_t kMaxPersistedRows = 10000000;
/// Likelihood-ratio clamp (Tibshirani et al. 2019 trim): a nearly-empty
/// reference bin cannot blow the quantile up unboundedly.
constexpr double kWeightClampLo = 1e-2;
constexpr double kWeightClampHi = 1e2;

double MaxOf(const std::vector<double>& values) {
  return *std::max_element(values.begin(), values.end());
}

Status ValidateCalibrateArgs(const Matrix& x,
                             const std::vector<double>& roi_hat,
                             const std::vector<double>& r_hat,
                             const std::vector<double>& roi_star,
                             double alpha, double std_floor) {
  if (roi_hat.empty() || roi_hat.size() != r_hat.size() ||
      roi_hat.size() != roi_star.size() ||
      static_cast<std::size_t>(x.rows()) != roi_hat.size()) {
    return Status::InvalidArgument(
        "interval-backend calibration arrays must be non-empty and "
        "row-aligned with x");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (!(std_floor > 0.0) || !std::isfinite(std_floor)) {
    return Status::InvalidArgument("std_floor must be positive and finite");
  }
  return Status::Ok();
}

}  // namespace

void IntervalBackend::SetWeightReference(std::vector<double> served) {
  weight_values_ = std::move(served);
  OnWeightReferenceChanged();
}

Status IntervalBackend::StreamAux(const Matrix& x, std::vector<double>* aux_lo,
                                  std::vector<double>* aux_hi) const {
  ROICL_CHECK(aux_lo != nullptr && aux_hi != nullptr);
  aux_lo->assign(AsSize(x.rows()), 0.0);
  aux_hi->assign(AsSize(x.rows()), 0.0);
  return Status::Ok();
}

std::size_t IntervalBackend::WeightBinOf(double served_score) const {
  (void)served_score;
  return 0;
}

StatusOr<double> IntervalBackend::FallbackQHat(
    double alpha, const std::vector<double>& live_bin_counts) const {
  (void)alpha;
  (void)live_bin_counts;
  return Status::FailedPrecondition("interval backend '" + name() +
                                    "' has no weighted fallback");
}

Status IntervalBackend::InitFromState(const IntervalBackend& other) {
  if (!other.calibrated()) {
    return Status::FailedPrecondition(
        "source interval backend is not calibrated");
  }
  if (!other.SharesSplitScoreSemantics()) {
    return Status::FailedPrecondition(
        "interval backend '" + other.name() +
        "' scores are not Eq.(3) scores; rebinding from it needs a "
        "calibration dataset");
  }
  alpha_ = other.alpha_;
  std_floor_ = other.std_floor_;
  q_hat_ = other.q_hat_;
  scores_ = other.scores_;
  weight_values_ = other.weight_values_;
  calibrated_ = true;
  OnWeightReferenceChanged();
  return Status::Ok();
}

void IntervalBackend::FinishCalibration(std::vector<double> scores,
                                        double alpha, double std_floor) {
  ROICL_CHECK(!scores.empty());
  alpha_ = alpha;
  std_floor_ = std_floor;
  scores_ = std::move(scores);
  double q_hat = ConformalScoreQuantile(scores_, alpha);
  if (!std::isfinite(q_hat)) {
    // Calibration set too small for the requested alpha
    // (ceil((1-alpha)(n+1)) > n): fall back to the max score, the most
    // conservative finite quantile.
    q_hat = MaxOf(scores_);
    obs::MetricsRegistry::Global().GetGauge("conformal.q_hat")->Set(q_hat);
    obs::Warn("conformal quantile infinite; using max score",
              {{"q_hat", q_hat}, {"calibration_n", scores_.size()}});
  }
  // Floor at zero: a no-op for the non-negative Eq.(3) scores, and the
  // conservative direction (wider intervals) for CQR's signed E-scores —
  // the model's swappable atomic requires a non-negative quantile.
  q_hat_ = std::max(q_hat, 0.0);
  calibrated_ = true;
}

Status IntervalBackend::SaveCommon(std::ostream& out) const {
  out << std::setprecision(17);
  out << alpha_ << ' ' << std_floor_ << ' ' << q_hat_ << ' '
      << scores_.size() << ' ' << weight_values_.size() << '\n';
  for (double score : scores_) out << score << '\n';
  for (double value : weight_values_) out << value << '\n';
  if (!out) return Status::IoError("interval-backend write failed");
  return Status::Ok();
}

Status IntervalBackend::LoadCommon(std::istream& in) {
  double alpha = 0.0;
  double std_floor = 0.0;
  double q_hat = 0.0;
  std::size_t n_scores = 0;
  std::size_t n_weights = 0;
  if (!(in >> alpha >> std_floor >> q_hat >> n_scores >> n_weights)) {
    return Status::InvalidArgument("truncated interval-backend header");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("interval-backend alpha out of (0, 1)");
  }
  if (!(std_floor > 0.0) || !std::isfinite(std_floor)) {
    return Status::InvalidArgument("interval-backend std_floor invalid");
  }
  if (!std::isfinite(q_hat) || q_hat < 0.0) {
    return Status::InvalidArgument(
        "interval-backend q_hat must be finite and non-negative");
  }
  // Score/weight row alignment is only an invariant for Eq.(3)-score
  // backends (FallbackQHat indexes weight_values_[i] per score row);
  // cqr's conformity scores cover just the proper-split calibration half
  // while the weight reference spans every row.
  if (n_scores > kMaxPersistedRows || n_weights > kMaxPersistedRows ||
      (n_weights != 0 && n_weights != n_scores &&
       SharesSplitScoreSemantics())) {
    return Status::InvalidArgument("interval-backend row counts corrupt");
  }
  std::vector<double> scores(n_scores);
  for (double& score : scores) {
    if (!(in >> score) || !std::isfinite(score)) {
      return Status::InvalidArgument("interval-backend scores corrupt");
    }
  }
  std::vector<double> weights(n_weights);
  for (double& value : weights) {
    if (!(in >> value) || !std::isfinite(value)) {
      return Status::InvalidArgument(
          "interval-backend weight reference corrupt");
    }
  }
  alpha_ = alpha;
  std_floor_ = std_floor;
  q_hat_ = q_hat;
  scores_ = std::move(scores);
  weight_values_ = std::move(weights);
  calibrated_ = true;
  OnWeightReferenceChanged();
  return Status::Ok();
}

namespace {

/// Today's scalar split-conformal path (Algorithm 3), verbatim: Eq.(3)
/// scores, the ceil((1-alpha)(n+1)) quantile, symmetric intervals. The
/// bitwise reference the other backends are measured against.
class SplitBackend : public IntervalBackend {
 public:
  std::string name() const override { return "split"; }

  Status Calibrate(const Matrix& x, const std::vector<double>& roi_hat,
                   const std::vector<double>& r_hat,
                   const std::vector<double>& roi_star, double alpha,
                   double std_floor) override {
    Status valid =
        ValidateCalibrateArgs(x, roi_hat, r_hat, roi_star, alpha, std_floor);
    if (!valid.ok()) return valid;
    FinishCalibration(ConformalScores(roi_star, roi_hat, r_hat, std_floor),
                      alpha, std_floor);
    return Status::Ok();
  }

  double StreamScore(double roi_hat, double r_hat, double roi_star,
                     double aux_lo, double aux_hi) const override {
    (void)aux_lo;
    (void)aux_hi;
    return std::fabs(roi_star - roi_hat) / std::max(r_hat, std_floor_);
  }

  std::vector<metrics::Interval> Intervals(
      const Matrix& x, const std::vector<double>& roi_hat,
      const std::vector<double>& r_hat, double q_hat) const override {
    (void)x;
    return ConformalIntervals(roi_hat, r_hat, q_hat, std_floor_);
  }

  Status Save(std::ostream& out) const override {
    if (!calibrated_) return Status::FailedPrecondition("not calibrated");
    out << "roicl-ivb-split-v1\n";
    return SaveCommon(out);
  }

  Status Load(std::istream& in) override {
    std::string magic;
    if (!(in >> magic)) {
      return Status::InvalidArgument("truncated interval-backend stream");
    }
    if (magic != "roicl-ivb-split-v1") {
      return Status::InvalidArgument(
          "bad interval-backend magic '" + magic +
          "' (expected roicl-ivb-split-v1)");
    }
    return LoadCommon(in);
  }
};

/// Weighted conformal under covariate shift (Tibshirani et al. 2019):
/// the same Eq.(3) scores as split, but the label-free fallback
/// reweights each calibration score by the likelihood ratio
/// live/reference of its served-score bin before taking the quantile —
/// repairing miscoverage from a shifted input distribution without any
/// window labels, where ACI can only react to observed misses.
class WeightedBackend : public IntervalBackend {
 public:
  std::string name() const override { return "weighted"; }

  Status Calibrate(const Matrix& x, const std::vector<double>& roi_hat,
                   const std::vector<double>& r_hat,
                   const std::vector<double>& roi_star, double alpha,
                   double std_floor) override {
    Status valid =
        ValidateCalibrateArgs(x, roi_hat, r_hat, roi_star, alpha, std_floor);
    if (!valid.ok()) return valid;
    // Uniform weights at calibration time: identical scores and quantile
    // to split. The weighting only enters FallbackQHat.
    FinishCalibration(ConformalScores(roi_star, roi_hat, r_hat, std_floor),
                      alpha, std_floor);
    return Status::Ok();
  }

  double StreamScore(double roi_hat, double r_hat, double roi_star,
                     double aux_lo, double aux_hi) const override {
    (void)aux_lo;
    (void)aux_hi;
    return std::fabs(roi_star - roi_hat) / std::max(r_hat, std_floor_);
  }

  std::size_t WeightBins() const override {
    return bins_ready_ ? kWeightBinCount : 0;
  }

  std::size_t WeightBinOf(double served_score) const override {
    if (!bins_ready_) return 0;
    return BinIndex(served_score);
  }

  StatusOr<double> FallbackQHat(
      double alpha, const std::vector<double>& live_bin_counts) const override {
    if (!calibrated_ || scores_.empty()) {
      return Status::FailedPrecondition("weighted fallback before Calibrate()");
    }
    if (!bins_ready_) {
      return Status::FailedPrecondition(
          "weighted backend has no weight reference");
    }
    if (!(alpha > 0.0 && alpha < 1.0)) {
      return Status::InvalidArgument("alpha must be in (0, 1)");
    }
    if (!live_bin_counts.empty() &&
        live_bin_counts.size() != kWeightBinCount) {
      return Status::InvalidArgument("live weight-count vector size mismatch");
    }
    // Per-bin likelihood ratios from smoothed live vs reference masses.
    // No live data yet -> uniform weights, which reduces the weighted
    // quantile to exactly the unweighted ceil((1-alpha)(n+1)) rank.
    std::vector<double> bin_weight(kWeightBinCount, 1.0);
    double live_total = std::accumulate(live_bin_counts.begin(),
                                        live_bin_counts.end(), 0.0);
    if (live_total > 0.0) {
      for (std::size_t b = 0; b < kWeightBinCount; ++b) {
        double live_prob =
            (live_bin_counts[b] + 0.5) /
            (live_total + 0.5 * static_cast<double>(kWeightBinCount));
        bin_weight[b] = std::clamp(live_prob / ref_prob_[b], kWeightClampLo,
                                   kWeightClampHi);
      }
    }
    std::vector<std::size_t> order(scores_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                return scores_[a] < scores_[b];
              });
    double total = 0.0;
    for (std::size_t i = 0; i < scores_.size(); ++i) {
      total += bin_weight[BinIndex(weight_values_[i])];
    }
    // Conservative test-point mass: the largest ratio any bin attains.
    total += MaxOf(bin_weight);
    double cumulative = 0.0;
    for (std::size_t i : order) {
      cumulative += bin_weight[BinIndex(weight_values_[i])];
      if (cumulative / total >= 1.0 - alpha) return scores_[i];
    }
    // Level unreachable (the analogue of rank > n): the caller applies
    // the max-score convention.
    return std::numeric_limits<double>::infinity();
  }

  std::vector<metrics::Interval> Intervals(
      const Matrix& x, const std::vector<double>& roi_hat,
      const std::vector<double>& r_hat, double q_hat) const override {
    (void)x;
    return ConformalIntervals(roi_hat, r_hat, q_hat, std_floor_);
  }

  Status Save(std::ostream& out) const override {
    if (!calibrated_) return Status::FailedPrecondition("not calibrated");
    out << "roicl-ivb-weighted-v1\n";
    return SaveCommon(out);
  }

  Status Load(std::istream& in) override {
    std::string magic;
    if (!(in >> magic)) {
      return Status::InvalidArgument("truncated interval-backend stream");
    }
    if (magic != "roicl-ivb-weighted-v1") {
      return Status::InvalidArgument(
          "bad interval-backend magic '" + magic +
          "' (expected roicl-ivb-weighted-v1)");
    }
    return LoadCommon(in);
  }

 protected:
  void OnWeightReferenceChanged() override {
    bins_ready_ = false;
    edges_.clear();
    ref_prob_.clear();
    if (weight_values_.size() < kWeightBinCount) return;
    std::vector<double> sorted = weight_values_;
    std::sort(sorted.begin(), sorted.end());
    edges_.resize(kWeightBinCount - 1);
    for (std::size_t b = 1; b < kWeightBinCount; ++b) {
      edges_[b - 1] = sorted[b * sorted.size() / kWeightBinCount];
    }
    std::vector<double> counts(kWeightBinCount, 0.0);
    bins_ready_ = true;  // BinIndex needs the edges in place.
    for (double value : weight_values_) counts[BinIndex(value)] += 1.0;
    ref_prob_.resize(kWeightBinCount);
    double n = static_cast<double>(weight_values_.size());
    for (std::size_t b = 0; b < kWeightBinCount; ++b) {
      // Add-half smoothing keeps every reference mass positive even when
      // duplicate quantile edges empty a bin.
      ref_prob_[b] = (counts[b] + 0.5) /
                     (n + 0.5 * static_cast<double>(kWeightBinCount));
    }
  }

 private:
  std::size_t BinIndex(double value) const {
    return static_cast<std::size_t>(
        std::upper_bound(edges_.begin(), edges_.end(), value) -
        edges_.begin());
  }

  bool bins_ready_ = false;
  std::vector<double> edges_;
  std::vector<double> ref_prob_;
};

CqrConfig BackendCqrConfig(double alpha) {
  CqrConfig config;
  config.alpha = alpha;
  config.hidden = {32};
  config.train.epochs = 40;
  config.train.batch_size = 64;
  config.train.learning_rate = 5e-3;
  config.train.patience = 0;
  config.seed = 55;
  return config;
}

/// CQR (Romano et al. 2019) re-purposed onto rDRP's normalized residuals
/// e = (roi* - roi_hat) / max(r_hat, floor): quantile heads fit on the
/// first half of the calibration set, conformity scores
/// E = max(q_lo - e, e - q_hi) on the second (proper split CP), serving
/// intervals roi_hat + max(r_hat, floor) * [q_lo - q, q_hi + q]. The
/// coverage check score <= q is therefore equivalent to roi* lying in
/// the interval, matching the other backends' monitor contract.
class CqrBackend : public IntervalBackend {
 public:
  std::string name() const override { return "cqr"; }

  Status Calibrate(const Matrix& x, const std::vector<double>& roi_hat,
                   const std::vector<double>& r_hat,
                   const std::vector<double>& roi_star, double alpha,
                   double std_floor) override {
    Status valid =
        ValidateCalibrateArgs(x, roi_hat, r_hat, roi_star, alpha, std_floor);
    if (!valid.ok()) return valid;
    int n = x.rows();
    if (n < 8) {
      return Status::InvalidArgument(
          "cqr interval backend needs >= 8 calibration rows");
    }
    std::vector<double> residual(AsSize(n));
    for (int i = 0; i < n; ++i) {
      residual[AsSize(i)] = (roi_star[AsSize(i)] - roi_hat[AsSize(i)]) /
                            std::max(r_hat[AsSize(i)], std_floor);
    }
    int n_fit = n / 2;
    std::vector<int> fit_rows(AsSize(n_fit));
    std::vector<int> cal_rows(AsSize(n - n_fit));
    for (int i = 0; i < n_fit; ++i) fit_rows[AsSize(i)] = i;
    for (int i = n_fit; i < n; ++i) cal_rows[AsSize(i - n_fit)] = i;
    std::vector<double> fit_targets(residual.begin(),
                                    residual.begin() + n_fit);
    model_ = std::make_unique<CqrModel>(BackendCqrConfig(alpha));
    model_->Fit(x.SelectRows(fit_rows), fit_targets);
    std::vector<metrics::Interval> raw =
        model_->PredictRawIntervals(x.SelectRows(cal_rows));
    std::vector<double> conformity(cal_rows.size());
    for (std::size_t i = 0; i < cal_rows.size(); ++i) {
      double e = residual[AsSize(cal_rows[i])];
      conformity[i] = std::max(raw[i].lo - e, e - raw[i].hi);
    }
    FinishCalibration(std::move(conformity), alpha, std_floor);
    return Status::Ok();
  }

  Status StreamAux(const Matrix& x, std::vector<double>* aux_lo,
                   std::vector<double>* aux_hi) const override {
    ROICL_CHECK(aux_lo != nullptr && aux_hi != nullptr);
    if (model_ == nullptr || !model_->fitted()) {
      return Status::FailedPrecondition("cqr StreamAux before Calibrate()");
    }
    std::vector<metrics::Interval> raw = model_->PredictRawIntervals(x);
    aux_lo->resize(raw.size());
    aux_hi->resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      (*aux_lo)[i] = raw[i].lo;
      (*aux_hi)[i] = raw[i].hi;
    }
    return Status::Ok();
  }

  double StreamScore(double roi_hat, double r_hat, double roi_star,
                     double aux_lo, double aux_hi) const override {
    double e = (roi_star - roi_hat) / std::max(r_hat, std_floor_);
    return std::max(aux_lo - e, e - aux_hi);
  }

  std::vector<metrics::Interval> Intervals(
      const Matrix& x, const std::vector<double>& roi_hat,
      const std::vector<double>& r_hat, double q_hat) const override {
    ROICL_CHECK_MSG(model_ != nullptr && model_->fitted(),
                    "cqr Intervals() before Calibrate()");
    std::vector<metrics::Interval> raw = model_->PredictRawIntervals(x);
    std::vector<metrics::Interval> intervals(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      double scale = std::max(r_hat[i], std_floor_);
      intervals[i].lo = roi_hat[i] + scale * (raw[i].lo - q_hat);
      intervals[i].hi = roi_hat[i] + scale * (raw[i].hi + q_hat);
    }
    return intervals;
  }

  Status Save(std::ostream& out) const override {
    if (!calibrated_ || model_ == nullptr) {
      return Status::FailedPrecondition("not calibrated");
    }
    out << "roicl-ivb-cqr-v1\n";
    Status common = SaveCommon(out);
    if (!common.ok()) return common;
    return model_->Save(out);
  }

  Status Load(std::istream& in) override {
    std::string magic;
    if (!(in >> magic)) {
      return Status::InvalidArgument("truncated interval-backend stream");
    }
    if (magic != "roicl-ivb-cqr-v1") {
      return Status::InvalidArgument("bad interval-backend magic '" + magic +
                                     "' (expected roicl-ivb-cqr-v1)");
    }
    Status common = LoadCommon(in);
    if (!common.ok()) return common;
    StatusOr<CqrModel> model = CqrModel::Load(in, BackendCqrConfig(alpha_));
    if (!model.ok()) return model.status();
    model_ = std::make_unique<CqrModel>(std::move(model).value());
    return Status::Ok();
  }

  Status InitFromState(const IntervalBackend& other) override {
    return Status::FailedPrecondition(
        "cqr interval state cannot be rebuilt from '" + other.name() +
        "' scores; rebind with a calibration dataset");
  }

 protected:
  bool SharesSplitScoreSemantics() const override { return false; }

 private:
  std::unique_ptr<CqrModel> model_;
};

using BackendFactory = std::unique_ptr<IntervalBackend> (*)();

class BackendRegistry {
 public:
  void Register(const std::string& name, BackendFactory factory) {
    factories_[name] = factory;
  }
  const std::map<std::string, BackendFactory>& factories() const {
    return factories_;
  }

 private:
  std::map<std::string, BackendFactory> factories_;
};

const BackendRegistry& GlobalBackendRegistry() {
  static const BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->Register("split", []() -> std::unique_ptr<IntervalBackend> {
      return std::make_unique<SplitBackend>();
    });
    r->Register("weighted", []() -> std::unique_ptr<IntervalBackend> {
      return std::make_unique<WeightedBackend>();
    });
    r->Register("cqr", []() -> std::unique_ptr<IntervalBackend> {
      return std::make_unique<CqrBackend>();
    });
    return r;
  }();
  return *registry;
}

}  // namespace

StatusOr<std::unique_ptr<IntervalBackend>> MakeIntervalBackend(
    const std::string& name) {
  const auto& factories = GlobalBackendRegistry().factories();
  auto it = factories.find(name);
  if (it == factories.end()) {
    return Status::InvalidArgument("unknown interval backend '" + name +
                                   "' (known: " + IntervalBackendNamesCsv() +
                                   ")");
  }
  return it->second();
}

std::string IntervalBackendNamesCsv() {
  std::string csv;
  for (const char* name : kIntervalBackendNames) {
    if (!csv.empty()) csv += ", ";
    csv += name;
  }
  return csv;
}

bool IsIntervalBackendName(const std::string& name) {
  const auto& factories = GlobalBackendRegistry().factories();
  return factories.find(name) != factories.end();
}

}  // namespace roicl::core
