#include "core/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "metrics/cost_curve.h"

namespace roicl::core {

std::string CalibrationFormName(CalibrationForm form) {
  switch (form) {
    case CalibrationForm::kNone:
      return "none";
    case CalibrationForm::kProduct:
      return "5a";
    case CalibrationForm::kRatio:
      return "5b";
    case CalibrationForm::kUpper:
      return "5c";
  }
  return "?";
}

const std::vector<CalibrationForm>& AllCalibrationForms() {
  static const std::vector<CalibrationForm>& forms =
      *new std::vector<CalibrationForm>{
          CalibrationForm::kNone, CalibrationForm::kProduct,
          CalibrationForm::kRatio, CalibrationForm::kUpper};
  return forms;
}

std::vector<double> ApplyCalibrationForm(CalibrationForm form,
                                         const std::vector<double>& roi_hat,
                                         const std::vector<double>& rq) {
  ROICL_CHECK(roi_hat.size() == rq.size());
  constexpr double kRatioFloor = 1e-8;
  std::vector<double> out(roi_hat.size());
  for (size_t i = 0; i < roi_hat.size(); ++i) {
    switch (form) {
      case CalibrationForm::kNone:
        out[i] = roi_hat[i];
        break;
      case CalibrationForm::kProduct:  // Eq. 5a
        out[i] = roi_hat[i] * (roi_hat[i] + rq[i]);
        break;
      case CalibrationForm::kRatio:  // Eq. 5b
        out[i] = roi_hat[i] / std::max(rq[i], kRatioFloor);
        break;
      case CalibrationForm::kUpper:  // Eq. 5c
        out[i] = roi_hat[i] + rq[i];
        break;
    }
  }
  return out;
}

CalibrationForm SelectCalibrationForm(const std::vector<double>& roi_hat,
                                      const std::vector<double>& rq,
                                      const RctDataset& calibration,
                                      double margin) {
  ROICL_CHECK(static_cast<int>(roi_hat.size()) == calibration.n());
  ROICL_CHECK(margin >= 0.0);
  int n = calibration.n();

  // Bootstrap selection: an unguarded argmax over four noisy AUCC
  // estimates suffers from the winner's curse (a form can win the
  // calibration set by luck and hurt the test set). Instead, estimate the
  // sampling distribution of each form's AUCC *gain* over the raw point
  // estimate with paired bootstrap resamples of the calibration set, and
  // adopt a form only when its mean gain clears `margin` AND is at least
  // two standard errors above zero.
  constexpr int kBootstrap = 30;
  Rng rng(0xC0FFEE);

  std::vector<CalibrationForm> forms;
  std::vector<std::vector<double>> scores;  // per form, incl. kNone at 0
  for (CalibrationForm form : AllCalibrationForms()) {
    forms.push_back(form);
    scores.push_back(ApplyCalibrationForm(form, roi_hat, rq));
  }

  std::vector<RunningStats> gain(forms.size());
  std::vector<int> sample(AsSize(n));
  std::vector<double> resampled(AsSize(n));
  for (int b = 0; b < kBootstrap; ++b) {
    for (int i = 0; i < n; ++i) {
      sample[AsSize(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint32_t>(n)));
    }
    RctDataset boot = calibration.Subset(sample);
    double none_aucc = 0.0;
    for (size_t f = 0; f < forms.size(); ++f) {
      for (int i = 0; i < n; ++i) {
        resampled[AsSize(i)] = scores[f][AsSize(sample[AsSize(i)])];
      }
      double aucc = metrics::Aucc(resampled, boot);
      if (forms[f] == CalibrationForm::kNone) {
        none_aucc = aucc;
      } else {
        gain[f].Add(aucc - none_aucc);
      }
    }
  }

  CalibrationForm best = CalibrationForm::kNone;
  double best_gain = margin;
  for (size_t f = 0; f < forms.size(); ++f) {
    if (forms[f] == CalibrationForm::kNone) continue;
    double mean = gain[f].mean();
    double stderr_gain =
        gain[f].stddev() / std::sqrt(static_cast<double>(kBootstrap));
    if (mean > best_gain && mean > 2.0 * stderr_gain) {
      best_gain = mean;
      best = forms[f];
    }
  }
  return best;
}

}  // namespace roicl::core
