#ifndef ROICL_CORE_CALIBRATION_H_
#define ROICL_CORE_CALIBRATION_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace roicl::core {

/// The heuristic point-estimate calibration forms of §IV-C4 (Eq. 5a-5c),
/// inspired by the M4-competition interval-aggregation methods:
///   kProduct (5a): roi~ = roi_hat * (roi_hat + r_hat * q_hat)
///   kRatio   (5b): roi~ = roi_hat / (r_hat * q_hat)
///   kUpper   (5c): roi~ = roi_hat + r_hat * q_hat
/// kNone keeps the raw point estimate (lets the selector fall back to
/// plain DRP when no form helps on the calibration set).
enum class CalibrationForm {
  kNone,
  kProduct,
  kRatio,
  kUpper,
};

/// Human-readable form name ("5a", "5b", "5c", "none").
std::string CalibrationFormName(CalibrationForm form);

/// All selectable forms, in the order they are tried.
const std::vector<CalibrationForm>& AllCalibrationForms();

/// Applies one form. `rq[i]` is r_hat(x_i) * q_hat, floored internally for
/// the ratio form. Sizes must match.
std::vector<double> ApplyCalibrationForm(CalibrationForm form,
                                         const std::vector<double>& roi_hat,
                                         const std::vector<double>& rq);

/// Algorithm 4, line 8: evaluates every form on the calibration set by
/// AUCC and returns the best one. `calibration` supplies the RCT labels
/// the AUCC is computed against.
///
/// `margin` guards against winner's-curse selection noise: a non-trivial
/// form is chosen only when it beats the raw point estimate (kNone) by at
/// least this much calibration AUCC; otherwise rDRP falls back to plain
/// DRP. Set 0 for the paper's unguarded argmax.
CalibrationForm SelectCalibrationForm(const std::vector<double>& roi_hat,
                                      const std::vector<double>& rq,
                                      const RctDataset& calibration,
                                      double margin = 0.003);

}  // namespace roicl::core

#endif  // ROICL_CORE_CALIBRATION_H_
