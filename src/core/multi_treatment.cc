#include "core/multi_treatment.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::core {

void DivideAndConquerRdrp::FitWithCalibration(
    const synth::MultiTreatmentDataset& train,
    const synth::MultiTreatmentDataset& calibration) {
  ROICL_CHECK(train.num_arms() == calibration.num_arms());
  ROICL_CHECK(train.num_arms() >= 1);
  models_.clear();
  for (int arm = 1; arm <= train.num_arms(); ++arm) {
    auto model = std::make_unique<RdrpModel>(ArmConfig(config_, arm));
    model->FitWithCalibration(train.BinarySubproblem(arm),
                              calibration.BinarySubproblem(arm));
    models_.push_back(std::move(model));
  }
}

std::vector<std::vector<double>> DivideAndConquerRdrp::PredictRoiPerArm(
    const Matrix& x) const {
  ROICL_CHECK_MSG(!models_.empty(), "PredictRoiPerArm() before Fit");
  std::vector<std::vector<double>> scores;
  scores.reserve(models_.size());
  for (const auto& model : models_) {
    scores.push_back(model->PredictRoi(x));
  }
  return scores;
}

std::vector<std::vector<metrics::Interval>>
DivideAndConquerRdrp::PredictIntervalsPerArm(const Matrix& x) const {
  ROICL_CHECK_MSG(!models_.empty(), "PredictIntervalsPerArm() before Fit");
  std::vector<std::vector<metrics::Interval>> intervals;
  intervals.reserve(models_.size());
  for (const auto& model : models_) {
    intervals.push_back(model->PredictIntervals(x));
  }
  return intervals;
}

const RdrpModel& DivideAndConquerRdrp::arm_model(int arm) const {
  ROICL_CHECK(arm >= 1 && arm <= num_arms());
  return *models_[AsSize(arm - 1)];
}

RdrpConfig DivideAndConquerRdrp::ArmConfig(const RdrpConfig& base,
                                           int arm) {
  RdrpConfig config = base;
  // Independent streams per arm, deterministic overall.
  config.drp.seed = base.drp.seed + static_cast<uint64_t>(arm) * 101;
  config.drp.train.seed =
      base.drp.train.seed + static_cast<uint64_t>(arm) * 131;
  config.mc_seed = base.mc_seed + static_cast<uint64_t>(arm) * 151;
  return config;
}

Status DivideAndConquerRdrp::Save(std::ostream& out) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("divide-and-conquer model not fitted");
  }
  out << "roicl-dnc-rdrp-v1\n" << models_.size() << '\n';
  for (const auto& model : models_) {
    Status arm_status = model->Save(out);
    if (!arm_status.ok()) return arm_status;
  }
  return Status::Ok();
}

StatusOr<DivideAndConquerRdrp> DivideAndConquerRdrp::Load(
    std::istream& in, const RdrpConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument(
        "empty or truncated dnc-rdrp model stream");
  }
  if (magic != "roicl-dnc-rdrp-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-dnc-rdrp-v1)");
  }
  size_t num_arms = 0;
  if (!(in >> num_arms) || num_arms == 0 || num_arms > 1000) {
    return Status::InvalidArgument("bad arm count");
  }
  DivideAndConquerRdrp model(config);
  model.models_.reserve(num_arms);
  for (size_t k = 0; k < num_arms; ++k) {
    StatusOr<RdrpModel> arm = RdrpModel::Load(
        in, ArmConfig(config, static_cast<int>(k) + 1));
    if (!arm.ok()) return arm.status();
    model.models_.push_back(
        std::make_unique<RdrpModel>(std::move(arm).value()));
  }
  return model;
}

MultiAllocationResult GreedyAllocateMulti(
    const std::vector<std::vector<double>>& roi_scores,
    const std::vector<std::vector<double>>& costs, double budget) {
  ROICL_CHECK(!roi_scores.empty());
  ROICL_CHECK(roi_scores.size() == costs.size());
  size_t num_arms = roi_scores.size();
  size_t n = roi_scores[0].size();
  for (size_t k = 0; k < num_arms; ++k) {
    ROICL_CHECK(roi_scores[k].size() == n);
    ROICL_CHECK(costs[k].size() == n);
  }
  ROICL_CHECK(budget >= 0.0);

  struct Pair {
    int user;
    int arm;  // 1-based
    double roi;
  };
  std::vector<Pair> pairs;
  pairs.reserve(num_arms * n);
  for (size_t k = 0; k < num_arms; ++k) {
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back({static_cast<int>(i), static_cast<int>(k + 1),
                       roi_scores[k][i]});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.roi != b.roi) return a.roi > b.roi;
    if (a.user != b.user) return a.user < b.user;
    return a.arm < b.arm;
  });

  MultiAllocationResult result;
  result.assignment.assign(n, -1);
  for (const Pair& pair : pairs) {
    const size_t user = AsSize(pair.user);
    if (result.assignment[user] != -1) continue;  // one arm per user
    double cost = costs[AsSize(pair.arm - 1)][user];
    ROICL_CHECK(cost >= 0.0);
    if (result.spent + cost <= budget) {
      result.assignment[user] = pair.arm;
      result.spent += cost;
    }
  }
  return result;
}

}  // namespace roicl::core
