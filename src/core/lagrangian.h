#ifndef ROICL_CORE_LAGRANGIAN_H_
#define ROICL_CORE_LAGRANGIAN_H_

#include <vector>

namespace roicl::core {

/// Lagrangian-relaxation solver for the C-BTAP knapsack (Eq. 1) — the OR
/// technique the paper's related work (§II-A) cites for budget
/// allocation, provided here alongside the greedy Algorithm 1.
///
/// For a multiplier lambda >= 0 the relaxed problem
///   max sum_i z_i (v_i - lambda c_i)
/// is solved by z_i = 1{v_i > lambda c_i}; spend is non-increasing in
/// lambda, so bisection finds the smallest lambda whose selection fits
/// the budget. The relaxation also yields a certified upper bound on the
/// integer optimum:
///   OPT <= sum_i max(0, v_i - lambda c_i) + lambda * B  for any lambda.
struct LagrangianResult {
  std::vector<int> selected;  ///< chosen indices (fit within budget).
  double spent = 0.0;
  double value = 0.0;        ///< total value of `selected`.
  double lambda = 0.0;       ///< final multiplier.
  double upper_bound = 0.0;  ///< dual bound on the integer optimum.
};

/// Solves by bisection on lambda. `values[i]` is the individual's
/// incremental revenue tau_r(x_i), `costs[i]` the incremental cost
/// tau_c(x_i) (> 0). After bisection, remaining slack is filled greedily
/// by ratio among the unselected (standard primal repair).
LagrangianResult LagrangianAllocate(const std::vector<double>& values,
                                    const std::vector<double>& costs,
                                    double budget, int max_iterations = 60);

}  // namespace roicl::core

#endif  // ROICL_CORE_LAGRANGIAN_H_
