#include "core/drp_loss.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::core {

double DrpLoss::Compute(const Matrix& preds, const std::vector<int>& index,
                        Matrix* grad) const {
  ROICL_CHECK(grad != nullptr);
  ROICL_CHECK(preds.cols() == 1);
  ROICL_CHECK(preds.rows() == static_cast<int>(index.size()));
  *grad = Matrix(preds.rows(), 1);

  double w1 = 0.0, w0 = 0.0;
  for (int i = 0; i < preds.rows(); ++i) {
    const size_t row = AsSize(index[AsSize(i)]);
    double w = weights_ != nullptr ? (*weights_)[row] : 1.0;
    ROICL_DCHECK(w >= 0.0);
    ((*treatment_)[row] == 1 ? w1 : w0) += w;
  }
  // A mini-batch can (rarely) miss an arm; that group's terms then have no
  // defined normalization, so its contribution is dropped for this batch.
  double inv1 = w1 > 0.0 ? 1.0 / w1 : 0.0;
  double inv0 = w0 > 0.0 ? 1.0 / w0 : 0.0;

  double loss = 0.0;
  for (int i = 0; i < preds.rows(); ++i) {
    const size_t row = AsSize(index[AsSize(i)]);
    double s = preds(i, 0);
    double yr = (*y_revenue_)[row];
    double yc = (*y_cost_)[row];
    double w = weights_ != nullptr ? (*weights_)[row] : 1.0;
    double p = Sigmoid(s);
    // y_r * s + y_c * ln(1 - sigmoid(s)); the log term is computed in a
    // stable softplus form: ln(1 - sigmoid(s)) = -softplus(s).
    double softplus = s > 0.0 ? s + std::log1p(std::exp(-s))
                              : std::log1p(std::exp(s));
    double term = w * (yr * s - yc * softplus);
    double dterm = w * (yr - yc * p);
    if ((*treatment_)[row] == 1) {
      loss -= inv1 * term;
      (*grad)(i, 0) = -inv1 * dterm;
    } else {
      loss += inv0 * term;
      (*grad)(i, 0) = inv0 * dterm;
    }
  }
  return loss;
}

double DrpPopulationLossDeriv(const std::vector<int>& treatment,
                              const std::vector<double>& y_revenue,
                              const std::vector<double>& y_cost, double s) {
  ROICL_CHECK(treatment.size() == y_revenue.size());
  ROICL_CHECK(treatment.size() == y_cost.size());
  double sum_r1 = 0.0, sum_r0 = 0.0, sum_c1 = 0.0, sum_c0 = 0.0;
  int n1 = 0, n0 = 0;
  for (size_t i = 0; i < treatment.size(); ++i) {
    if (treatment[i] == 1) {
      sum_r1 += y_revenue[i];
      sum_c1 += y_cost[i];
      ++n1;
    } else {
      sum_r0 += y_revenue[i];
      sum_c0 += y_cost[i];
      ++n0;
    }
  }
  ROICL_CHECK_MSG(n1 > 0 && n0 > 0, "both arms required");
  double tau_r = sum_r1 / n1 - sum_r0 / n0;
  double tau_c = sum_c1 / n1 - sum_c0 / n0;
  return -(tau_r - tau_c * Sigmoid(s));
}

double DrpPopulationLoss(const std::vector<int>& treatment,
                         const std::vector<double>& y_revenue,
                         const std::vector<double>& y_cost, double s) {
  ROICL_CHECK(treatment.size() == y_revenue.size());
  ROICL_CHECK(treatment.size() == y_cost.size());
  double softplus = s > 0.0 ? s + std::log1p(std::exp(-s))
                            : std::log1p(std::exp(s));
  double acc1 = 0.0, acc0 = 0.0;
  int n1 = 0, n0 = 0;
  for (size_t i = 0; i < treatment.size(); ++i) {
    double term = y_revenue[i] * s - y_cost[i] * softplus;
    if (treatment[i] == 1) {
      acc1 += term;
      ++n1;
    } else {
      acc0 += term;
      ++n0;
    }
  }
  ROICL_CHECK_MSG(n1 > 0 && n0 > 0, "both arms required");
  return -(acc1 / n1 - acc0 / n0);
}

}  // namespace roicl::core
