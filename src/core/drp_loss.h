#ifndef ROICL_CORE_DRP_LOSS_H_
#define ROICL_CORE_DRP_LOSS_H_

#include <vector>

#include "nn/loss.h"

namespace roicl::core {

/// The DRP loss of Zhou et al. (AAAI 2023), Eq. (2) of the rDRP paper,
/// expressed in terms of the network logit s (since ln(roi/(1-roi)) = s
/// when roi = sigmoid(s)):
///
///   L = -[ (1/N1) sum_{t=1} (y_r * s + y_c * ln(1 - sigmoid(s)))
///        - (1/N0) sum_{t=0} (y_r * s + y_c * ln(1 - sigmoid(s))) ]
///
/// Per-sample gradient: dL/ds_i = -/+ (y_r_i - y_c_i * sigmoid(s_i)) / N_t
/// (minus for treated, plus for control). At the population stationary
/// point sigmoid(s*) = tau_r / tau_c, i.e. the ROI — the unbiasedness
/// property DRP is built on. Group sizes are taken within the mini-batch.
class DrpLoss : public nn::BatchLoss {
 public:
  DrpLoss(const std::vector<int>* treatment,
          const std::vector<double>* y_revenue,
          const std::vector<double>* y_cost)
      : DrpLoss(treatment, y_revenue, y_cost, nullptr) {}

  /// Weighted variant: per-sample weights (e.g. inverse-propensity
  /// weights for observational data) replace the 1/N_t group counts with
  /// weighted group normalizations. `weights` may be nullptr (uniform).
  DrpLoss(const std::vector<int>* treatment,
          const std::vector<double>* y_revenue,
          const std::vector<double>* y_cost,
          const std::vector<double>* weights)
      : treatment_(treatment),
        y_revenue_(y_revenue),
        y_cost_(y_cost),
        weights_(weights) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override;

 private:
  const std::vector<int>* treatment_;   // not owned
  const std::vector<double>* y_revenue_;
  const std::vector<double>* y_cost_;
  const std::vector<double>* weights_;  // optional, not owned
};

/// Derivative of the population-level DRP loss when every individual
/// shares one logit s (used by the Algorithm-2 binary search):
///   L'(s) = -(tau_hat_r - tau_hat_c * sigmoid(s)),
/// where tau_hat_* are the RCT difference-in-means estimates over the
/// given samples. Convex in s whenever tau_hat_c > 0 (Assumption 4).
double DrpPopulationLossDeriv(const std::vector<int>& treatment,
                              const std::vector<double>& y_revenue,
                              const std::vector<double>& y_cost, double s);

/// The population-level DRP loss value at shared logit s (for tests and
/// the Fig. 3 style diagnostics).
double DrpPopulationLoss(const std::vector<int>& treatment,
                         const std::vector<double>& y_revenue,
                         const std::vector<double>& y_cost, double s);

}  // namespace roicl::core

#endif  // ROICL_CORE_DRP_LOSS_H_
