#include "core/dr_model.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/mc_dropout.h"
#include "metrics/cost_curve.h"
#include "nn/dense.h"
#include "nn/serialize.h"

namespace roicl::core {
namespace {

/// Softmax-weighted ROI surrogate (Du et al. 2019).
///
/// Within a batch: p = softmax(s); per-sample sign-and-scale coefficients
/// g_i = +n/n1 (treated) or -n/n0 (control) turn the weighted sums
///   R = sum_i g_i * y_r_i * p_i,  C = sum_i g_i * y_c_i * p_i
/// into soft estimates of the incremental revenue/cost captured by the
/// ranking. Loss = -R / max(C, floor). The softmax Jacobian gives
///   dR/ds_k = p_k (c_k - R),  c_k = g_k y_r_k (and likewise for C).
class DirectRankLoss : public nn::BatchLoss {
 public:
  DirectRankLoss(const std::vector<int>* treatment,
                 const std::vector<double>* y_revenue,
                 const std::vector<double>* y_cost, double cost_floor)
      : treatment_(treatment),
        y_revenue_(y_revenue),
        y_cost_(y_cost),
        cost_floor_(cost_floor) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(grad != nullptr);
    ROICL_CHECK(preds.cols() == 1);
    int n = preds.rows();
    *grad = Matrix(n, 1);

    int n1 = 0, n0 = 0;
    for (int i = 0; i < n; ++i) {
      ((*treatment_)[AsSize(index[AsSize(i)])] == 1 ? n1 : n0)++;
    }
    if (n1 == 0 || n0 == 0) return 0.0;  // degenerate batch: skip

    // Stable softmax over the batch.
    double max_s = preds(0, 0);
    for (int i = 1; i < n; ++i) max_s = std::max(max_s, preds(i, 0));
    std::vector<double> p(AsSize(n));
    double z = 0.0;
    for (int i = 0; i < n; ++i) {
      p[AsSize(i)] = std::exp(preds(i, 0) - max_s);
      z += p[AsSize(i)];
    }
    for (double& v : p) v /= z;

    std::vector<double> c(AsSize(n)), d(AsSize(n));
    double r_val = 0.0, c_val = 0.0;
    for (int i = 0; i < n; ++i) {
      const size_t si = AsSize(i);
      const size_t row = AsSize(index[si]);
      double g = (*treatment_)[row] == 1
                     ? static_cast<double>(n) / n1
                     : -static_cast<double>(n) / n0;
      c[si] = g * (*y_revenue_)[row];
      d[si] = g * (*y_cost_)[row];
      r_val += c[si] * p[si];
      c_val += d[si] * p[si];
    }
    bool clipped = c_val <= cost_floor_;
    double c_safe = std::max(c_val, cost_floor_);
    double loss = -r_val / c_safe;
    for (int k = 0; k < n; ++k) {
      const size_t sk = AsSize(k);
      double dr = p[sk] * (c[sk] - r_val);
      double dc = clipped ? 0.0 : p[sk] * (d[sk] - c_val);
      (*grad)(k, 0) = -(dr * c_safe - r_val * dc) / (c_safe * c_safe);
    }
    return loss;
  }

 private:
  const std::vector<int>* treatment_;
  const std::vector<double>* y_revenue_;
  const std::vector<double>* y_cost_;
  double cost_floor_;
};

}  // namespace

void DirectRankModel::Fit(const RctDataset& train) {
  train.Validate();
  ROICL_CHECK_MSG(train.NumTreated() > 0 && train.NumControl() > 0,
                  "DR requires both RCT arms");
  Matrix x_scaled = scaler_.FitTransform(train.x);

  int hidden = config_.hidden_units;
  if (hidden <= 0) hidden = train.n() < 4000 ? 32 : 128;

  DirectRankLoss loss(&train.treatment, &train.y_revenue, &train.y_cost,
                      config_.cost_floor);
  std::vector<int> train_index(AsSize(train.n()));
  for (int i = 0; i < train.n(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && train.n() >= 100) {
    int n_val = std::max(1, train.n() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }

  // Multi-restart, mirroring DrpModel (see there for rationale).
  int restarts = std::max(1, config_.restarts);
  double best_loss = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < restarts; ++restart) {
    Rng rng(config_.seed + static_cast<uint64_t>(restart) * 7919,
            /*stream=*/37);
    auto candidate = std::make_unique<nn::Mlp>(nn::Mlp::MakeMlp(
        train.dim(), {hidden}, /*output_dim=*/1, config_.activation,
        config_.dropout, &rng));
    nn::TrainConfig train_config = config_.train;
    train_config.seed =
        config_.train.seed + static_cast<uint64_t>(restart) * 104729;
    nn::TrainResult result =
        nn::TrainNetwork(candidate.get(), x_scaled, train_index,
                         validation_index, loss, train_config);
    // Rank restarts by held-out AUCC — the deployment metric — rather
    // than by loss, which correlates only loosely with ranking quality.
    double score;
    if (validation_index.empty()) {
      score = result.final_train_loss;
    } else {
      Matrix val_x = x_scaled.SelectRows(validation_index);
      Matrix out = candidate->Forward(val_x, nn::Mode::kInfer, nullptr);
      score = -metrics::Aucc(out.Col(0), train.Subset(validation_index));
    }
    if (score < best_loss) {
      best_loss = score;
      net_ = std::move(candidate);
    }
  }
}

std::vector<double> DirectRankModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = nn::BatchedInferForward(net_.get(), x_scaled,
                                       config_.predict);
  std::vector<double> roi = out.Col(0);
  // DR only learns a ranking; the sigmoid maps it into (0, 1) so the
  // downstream tooling can treat all direct models uniformly.
  for (double& v : roi) {
    v = Sigmoid(v);
    ROICL_DCHECK_FINITE(v);
  }
  return roi;
}

McDropoutStats DirectRankModel::PredictMcRoi(
    const Matrix& x, int passes, uint64_t seed,
    const nn::BatchOptions& opts) const {
  ROICL_CHECK_MSG(fitted(), "PredictMcRoi() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  return RunMcDropout(net_.get(), x_scaled, passes, seed,
                      /*sigmoid_output=*/true, opts);
}

Status DirectRankModel::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  out << "roicl-dr-v1\n";
  out << std::setprecision(17);
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stds = scaler_.stddevs();
  out << means.size();
  for (double m : means) out << ' ' << m;
  for (double s : stds) out << ' ' << s;
  out << '\n';
  return nn::SaveMlp(*net_, out);
}

StatusOr<DirectRankModel> DirectRankModel::Load(
    std::istream& in, const DirectRankConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated dr model stream");
  }
  if (magic != "roicl-dr-v1") {
    if (magic.rfind("roicl-dr-v", 0) == 0) {
      return Status::InvalidArgument("unsupported dr format version '" +
                                     magic + "' (expected roicl-dr-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-dr-v1)");
  }
  size_t dim = 0;
  if (!(in >> dim) || dim == 0 || dim > 1000000) {
    return Status::InvalidArgument("bad feature dimension");
  }
  std::vector<double> means(dim), stds(dim);
  for (double& v : means) {
    if (!(in >> v)) return Status::InvalidArgument("truncated means");
  }
  for (double& v : stds) {
    if (!(in >> v)) return Status::InvalidArgument("truncated stds");
    if (v <= 0.0) return Status::InvalidArgument("non-positive stddev");
  }
  StatusOr<nn::Mlp> net = nn::LoadMlp(in);
  if (!net.ok()) return net.status();
  int net_input = -1;
  for (size_t l = 0; l < net.value().num_layers(); ++l) {
    if (const auto* dense =
            dynamic_cast<const nn::Dense*>(net.value().layer(l))) {
      net_input = dense->in_features();
      break;
    }
  }
  if (net_input != static_cast<int>(dim)) {
    return Status::InvalidArgument(
        "feature dimension mismatch: scaler has " + std::to_string(dim) +
        " features but the network expects " + std::to_string(net_input));
  }

  DirectRankModel model(config);
  model.scaler_ =
      StandardScaler::FromMoments(std::move(means), std::move(stds));
  model.net_ = std::make_unique<nn::Mlp>(std::move(net).value());
  return model;
}

}  // namespace roicl::core
