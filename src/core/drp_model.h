#ifndef ROICL_CORE_DRP_MODEL_H_
#define ROICL_CORE_DRP_MODEL_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/direct_model.h"
#include "data/scaler.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace roicl::core {

/// DRP hyperparameters. Defaults follow §IV-D of the paper: one hidden
/// layer of 10-100 units.
struct DrpConfig {
  /// Hidden-layer width; <= 0 selects automatically from the training-set
  /// size (small nets for small RCTs — the paper's 10-100 range).
  int hidden_units = 0;
  nn::ActivationKind activation = nn::ActivationKind::kRelu;
  /// Dropout rate of the hidden layer — doubles as the training
  /// regularizer and the MC-dropout source at inference.
  double dropout = 0.2;
  nn::TrainConfig train;
  /// Independent random restarts; the net with the best validation (or
  /// final training) loss is kept. Neural uplift losses are noisy and a
  /// run occasionally diverges — restarts make the fit robust, which is
  /// exactly the deployment pain the paper's "insufficient samples"
  /// limitation describes.
  int restarts = 3;
  uint64_t seed = 77;
  /// Batched prediction-engine knobs (row-block size, thread count) used
  /// by PredictScore/PredictRoi and as the default for PredictMcRoi.
  /// Affects throughput only — predictions are bit-identical across
  /// settings.
  nn::BatchOptions predict;
};

/// The Direct ROI Prediction model (Zhou et al., AAAI 2023): a one-hidden-
/// layer MLP h(x) -> s trained with the convex DRP loss; the predicted ROI
/// is sigmoid(s). Features are standardized internally.
class DrpModel : public DirectRoiModel {
 public:
  explicit DrpModel(const DrpConfig& config) : config_(config) {}

  void Fit(const RctDataset& train) override;
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override { return "DRP"; }

  /// Raw logits s = h(x) (PredictRoi is sigmoid of this).
  std::vector<double> PredictScore(const Matrix& x) const;

  using DirectRoiModel::PredictMcRoi;
  McDropoutStats PredictMcRoi(const Matrix& x, int passes, uint64_t seed,
                              const nn::BatchOptions& opts) const override;

  const DrpConfig& config() const { return config_; }
  bool fitted() const { return net_ != nullptr; }

  /// Feature dimension the model was fitted on (-1 before Fit/Load).
  int feature_dim() const {
    return scaler_.fitted() ? static_cast<int>(scaler_.means().size()) : -1;
  }

  /// Re-points the batched prediction engine (row-block size, thread
  /// count). Throughput knob only — output bits never change.
  void set_predict_options(const nn::BatchOptions& opts) {
    config_.predict = opts;
  }

  /// Serializes the fitted model (scaler + network) to a stream/file so a
  /// model trained offline can be deployed without retraining. Requires
  /// fitted().
  Status Save(std::ostream& out) const;
  Status SaveToFile(const std::string& path) const;

  /// Restores a model saved by Save(). `config` supplies the runtime
  /// knobs (MC seed etc.); the architecture comes from the stream.
  static StatusOr<DrpModel> Load(std::istream& in,
                                 const DrpConfig& config = DrpConfig());
  static StatusOr<DrpModel> LoadFromFile(
      const std::string& path, const DrpConfig& config = DrpConfig());

 private:
  DrpConfig config_;
  StandardScaler scaler_;
  // The network is behind a pointer (and mutable) because Forward() must
  // update layer caches even on const prediction paths.
  mutable std::unique_ptr<nn::Mlp> net_;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_DRP_MODEL_H_
