#include "core/greedy.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

AllocationResult GreedyAllocate(const std::vector<double>& roi_scores,
                                const std::vector<double>& costs,
                                double budget, bool skip_unaffordable) {
  ROICL_CHECK(roi_scores.size() == costs.size());
  ROICL_CHECK(budget >= 0.0);
  obs::ScopedSpan span("allocate");
  int n = static_cast<int>(roi_scores.size());
#ifndef NDEBUG
  // A NaN sort key violates std::sort's strict weak ordering (undefined
  // behaviour), so debug builds reject it before ordering on the scores.
  for (double s : roi_scores) ROICL_DCHECK_FINITE(s);
#endif
  std::vector<int> order(AsSize(n));
  std::iota(order.begin(), order.end(), 0);
  {
    obs::ScopedSpan sort_span("allocate.sort");
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (roi_scores[AsSize(a)] != roi_scores[AsSize(b)]) {
        return roi_scores[AsSize(a)] > roi_scores[AsSize(b)];
      }
      return a < b;
    });
  }

  AllocationResult result;
  for (int i : order) {
    ROICL_CHECK_MSG(costs[AsSize(i)] >= 0.0, "negative cost at index %d", i);
    if (result.spent + costs[AsSize(i)] <= budget) {
      result.selected.push_back(i);
      result.spent += costs[AsSize(i)];
    } else if (!skip_unaffordable) {
      break;  // the paper's variant: stop once the budget is reached
    }
  }

  double budget_used_frac = budget > 0.0 ? result.spent / budget : 0.0;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("allocate.calls")->Increment();
  registry.GetGauge("allocate.selected")
      ->Set(static_cast<double>(result.selected.size()));
  registry.GetGauge("allocate.budget_used_frac")->Set(budget_used_frac);
  obs::Debug("greedy allocation", {{"n", n},
                                   {"selected", result.selected.size()},
                                   {"spent", result.spent},
                                   {"budget", budget},
                                   {"budget_used_frac", budget_used_frac}});
  return result;
}

double KnapsackBruteForce(const std::vector<double>& values,
                          const std::vector<double>& costs, double budget) {
  ROICL_CHECK(values.size() == costs.size());
  int n = static_cast<int>(values.size());
  ROICL_CHECK_MSG(n <= 24, "brute force limited to 24 items (got %d)", n);
  double best = 0.0;
  uint32_t limit = 1u << n;
  for (uint32_t mask = 0; mask < limit; ++mask) {
    double value = 0.0, cost = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        value += values[AsSize(i)];
        cost += costs[AsSize(i)];
      }
    }
    if (cost <= budget) best = std::max(best, value);
  }
  return best;
}

double SelectionValue(const std::vector<int>& selected,
                      const std::vector<double>& values) {
  double total = 0.0;
  for (int i : selected) {
    ROICL_CHECK(i >= 0 && i < static_cast<int>(values.size()));
    total += values[AsSize(i)];
  }
  return total;
}

}  // namespace roicl::core
