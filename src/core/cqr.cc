#include "core/cqr.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/stats.h"
#include "nn/serialize.h"

namespace roicl::core {
namespace {

/// Pinball loss for one prediction at quantile level tau:
///   l(y, q) = (y - q) * (tau - 1{y < q}).
/// Subgradient w.r.t. q: -(tau) if y > q, (1 - tau) if y < q.
double PinballGrad(double y, double q, double tau) {
  return y > q ? -tau : (1.0 - tau);
}

double PinballValue(double y, double q, double tau) {
  double diff = y - q;
  return diff > 0.0 ? tau * diff : (tau - 1.0) * diff;
}

}  // namespace

PinballPairLoss::PinballPairLoss(const std::vector<double>* targets,
                                 double lo_quantile, double hi_quantile)
    : targets_(targets),
      lo_quantile_(lo_quantile),
      hi_quantile_(hi_quantile) {
  ROICL_CHECK(targets != nullptr);
  ROICL_CHECK(lo_quantile > 0.0 && lo_quantile < hi_quantile &&
              hi_quantile < 1.0);
}

double PinballPairLoss::Compute(const Matrix& preds,
                                const std::vector<int>& index,
                                Matrix* grad) const {
  ROICL_CHECK(grad != nullptr);
  ROICL_CHECK(preds.cols() == 2);
  ROICL_CHECK(preds.rows() == static_cast<int>(index.size()));
  *grad = Matrix(preds.rows(), 2);
  double n = static_cast<double>(preds.rows());
  double loss = 0.0;
  for (int i = 0; i < preds.rows(); ++i) {
    double y = (*targets_)[AsSize(index[AsSize(i)])];
    loss += PinballValue(y, preds(i, 0), lo_quantile_) +
            PinballValue(y, preds(i, 1), hi_quantile_);
    (*grad)(i, 0) = PinballGrad(y, preds(i, 0), lo_quantile_) / n;
    (*grad)(i, 1) = PinballGrad(y, preds(i, 1), hi_quantile_) / n;
  }
  return loss / n;
}

void CqrModel::Fit(const Matrix& x, const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(config_.alpha > 0.0 && config_.alpha < 1.0);
  Matrix x_scaled = scaler_.FitTransform(x);

  Rng rng(config_.seed, /*stream=*/47);
  net_ = std::make_unique<nn::Mlp>(
      nn::Mlp::MakeMlp(x.cols(), config_.hidden, /*output_dim=*/2,
                       config_.activation, config_.dropout, &rng));

  PinballPairLoss loss(&y, config_.alpha / 2.0, 1.0 - config_.alpha / 2.0);
  std::vector<int> train_index(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && x.rows() >= 100) {
    int n_val = std::max(1, x.rows() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }
  nn::TrainNetwork(net_.get(), x_scaled, train_index, validation_index,
                   loss, config_.train);
}

std::vector<metrics::Interval> CqrModel::PredictRawIntervals(
    const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictRawIntervals() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = net_->Forward(x_scaled, nn::Mode::kInfer, nullptr);
  std::vector<metrics::Interval> intervals(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    // Quantile crossing can happen with independently trained heads;
    // sort the pair (the standard fix).
    double lo = std::min(out(i, 0), out(i, 1));
    double hi = std::max(out(i, 0), out(i, 1));
    intervals[AsSize(i)] = {lo, hi};
  }
  return intervals;
}

void CqrModel::Calibrate(const Matrix& x, const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(x.rows() > 0);
  std::vector<metrics::Interval> raw = PredictRawIntervals(x);
  // CQR conformity score: how far the label falls outside the raw band
  // (negative when inside).
  std::vector<double> scores(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    scores[i] = std::max(raw[i].lo - y[i], y[i] - raw[i].hi);
  }
  q_hat_ = ConformalQuantile(scores, config_.alpha);
  if (!std::isfinite(q_hat_)) {
    q_hat_ = *std::max_element(scores.begin(), scores.end());
  }
  calibrated_ = true;
}

std::vector<metrics::Interval> CqrModel::PredictIntervals(
    const Matrix& x) const {
  ROICL_CHECK_MSG(calibrated_, "PredictIntervals() before Calibrate()");
  std::vector<metrics::Interval> intervals = PredictRawIntervals(x);
  for (metrics::Interval& interval : intervals) {
    interval.lo -= q_hat_;
    interval.hi += q_hat_;
  }
  return intervals;
}

Status CqrModel::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("CqrModel::Save before Fit()");
  out << "roicl-cqr-v1\n";
  out << std::setprecision(17);
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stddevs = scaler_.stddevs();
  out << means.size() << '\n';
  for (size_t i = 0; i < means.size(); ++i) {
    out << means[i] << (i + 1 < means.size() ? ' ' : '\n');
  }
  for (size_t i = 0; i < stddevs.size(); ++i) {
    out << stddevs[i] << (i + 1 < stddevs.size() ? ' ' : '\n');
  }
  return nn::SaveMlp(*net_, out);
}

StatusOr<CqrModel> CqrModel::Load(std::istream& in, const CqrConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated cqr model stream");
  }
  if (magic != "roicl-cqr-v1") {
    return Status::InvalidArgument("bad cqr magic '" + magic +
                                   "' (expected roicl-cqr-v1)");
  }
  size_t dim = 0;
  if (!(in >> dim) || dim == 0 || dim > 1000000) {
    return Status::InvalidArgument("bad cqr scaler dimension");
  }
  std::vector<double> means(dim), stddevs(dim);
  for (double& m : means) {
    if (!(in >> m) || !std::isfinite(m)) {
      return Status::InvalidArgument("bad cqr scaler means");
    }
  }
  for (double& s : stddevs) {
    if (!(in >> s) || !std::isfinite(s) || s <= 0.0) {
      return Status::InvalidArgument("bad cqr scaler stddevs");
    }
  }
  StatusOr<nn::Mlp> net = nn::LoadMlp(in);
  if (!net.ok()) return net.status();
  CqrModel model(config);
  model.scaler_ = StandardScaler::FromMoments(std::move(means),
                                              std::move(stddevs));
  model.net_ = std::make_unique<nn::Mlp>(std::move(net).value());
  return model;
}

}  // namespace roicl::core
