#include "core/conformal.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/macros.h"
#include "common/stats.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

std::vector<double> ConformalScores(const std::vector<double>& roi_star,
                                    const std::vector<double>& roi_hat,
                                    const std::vector<double>& r_hat,
                                    double std_floor) {
  ROICL_CHECK(roi_star.size() == roi_hat.size());
  ROICL_CHECK(roi_hat.size() == r_hat.size());
  ROICL_CHECK(std_floor > 0.0);
  std::vector<double> scores(roi_hat.size());
  for (size_t i = 0; i < roi_hat.size(); ++i) {
    scores[i] = std::fabs(roi_star[i] - roi_hat[i]) /
                std::max(r_hat[i], std_floor);
    ROICL_DCHECK_FINITE(scores[i]);
  }
  return scores;
}

std::vector<double> ConformalScores(double roi_star,
                                    const std::vector<double>& roi_hat,
                                    const std::vector<double>& r_hat,
                                    double std_floor) {
  std::vector<double> star(roi_hat.size(), roi_star);
  return ConformalScores(star, roi_hat, r_hat, std_floor);
}

double ConformalScoreQuantile(const std::vector<double>& scores,
                              double alpha) {
  obs::ScopedSpan span("conformal.quantile");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram* distribution = registry.GetHistogram(
      "conformal.score", obs::ConformalScoreBuckets());
  for (double score : scores) distribution->Observe(score);
  registry.GetGauge("conformal.calibration_n")
      ->Set(static_cast<double>(scores.size()));
  double q_hat = ConformalQuantile(scores, alpha);
  if (!std::isfinite(q_hat)) {
    // Legal per the contract (intervals trivially cover) but almost never
    // what a caller wants: the calibration window is too small for the
    // requested alpha. Make the starved window loud.
    registry.GetCounter("conformal.qhat_infinite")->Increment();
    obs::Warn("conformal quantile is infinite (calibration window too "
              "small for alpha); intervals are trivial",
              {{"alpha", alpha}, {"calibration_n", scores.size()}});
  }
  registry.GetGauge("conformal.q_hat")->Set(q_hat);
  obs::Debug("conformal quantile", {{"q_hat", q_hat},
                                    {"alpha", alpha},
                                    {"calibration_n", scores.size()}});
  return q_hat;
}

double WindowedConformalScoreQuantile(const std::vector<double>& scores,
                                      size_t window, double alpha) {
  if (window == 0 || window >= scores.size()) {
    return ConformalScoreQuantile(scores, alpha);
  }
  std::vector<double> tail(scores.end() - static_cast<ptrdiff_t>(window),
                           scores.end());
  return ConformalScoreQuantile(tail, alpha);
}

std::vector<metrics::Interval> ConformalIntervals(
    const std::vector<double>& roi_hat, const std::vector<double>& r_hat,
    double q_hat, double std_floor) {
  ROICL_CHECK(roi_hat.size() == r_hat.size());
  ROICL_CHECK(q_hat >= 0.0);
  std::vector<metrics::Interval> intervals(roi_hat.size());
  for (size_t i = 0; i < roi_hat.size(); ++i) {
    double radius = std::max(r_hat[i], std_floor) * q_hat;
    intervals[i].lo = roi_hat[i] - radius;
    intervals[i].hi = roi_hat[i] + radius;
  }
  return intervals;
}

}  // namespace roicl::core
