#ifndef ROICL_CORE_CQR_H_
#define ROICL_CORE_CQR_H_

#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "data/scaler.h"
#include "metrics/coverage.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace roicl::core {

/// Conformalized Quantile Regression (Romano, Patterson & Candès 2019) —
/// the popular interval method the paper discusses in §IV-C and cannot
/// apply to rDRP, because CQR needs a pinball (quantile) loss and DRP's
/// convex causal loss cannot be rewritten as one.
///
/// We implement CQR for ordinary supervised regression (labelled data),
/// both as a correctness reference for the conformal machinery and to
/// quantify the adaptivity difference versus the conformalized-scalar
/// approach rDRP uses (bench_cqr).
struct CqrConfig {
  /// Coverage target is 1 - alpha; the network learns the alpha/2 and
  /// 1 - alpha/2 conditional quantiles.
  double alpha = 0.1;
  std::vector<int> hidden = {64};
  nn::ActivationKind activation = nn::ActivationKind::kRelu;
  double dropout = 0.0;
  nn::TrainConfig train;
  uint64_t seed = 55;
};

/// Pinball (quantile) loss for a two-output network: column 0 learns the
/// `lo` quantile, column 1 the `hi` quantile of the captured targets.
class PinballPairLoss : public nn::BatchLoss {
 public:
  PinballPairLoss(const std::vector<double>* targets, double lo_quantile,
                  double hi_quantile);

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override;
  int output_dim() const override { return 2; }

 private:
  const std::vector<double>* targets_;  // not owned
  double lo_quantile_;
  double hi_quantile_;
};

/// The CQR pipeline: fit quantile heads on the proper training set,
/// compute conformity scores E_i = max(q_lo(x_i) - y_i, y_i - q_hi(x_i))
/// on the calibration set, and widen both ends by the conformal quantile
/// of E.
class CqrModel {
 public:
  explicit CqrModel(const CqrConfig& config) : config_(config) {}

  /// Trains the quantile network.
  void Fit(const Matrix& x, const std::vector<double>& y);

  /// Computes the conformal correction q_hat from held-out data.
  void Calibrate(const Matrix& x, const std::vector<double>& y);

  /// Raw (uncalibrated) quantile-regression intervals.
  std::vector<metrics::Interval> PredictRawIntervals(const Matrix& x) const;

  /// Conformalized intervals [q_lo - q_hat, q_hi + q_hat]; requires
  /// Calibrate().
  std::vector<metrics::Interval> PredictIntervals(const Matrix& x) const;

  bool fitted() const { return net_ != nullptr; }
  bool calibrated() const { return calibrated_; }
  double q_hat() const { return q_hat_; }

  /// Serializes the fitted quantile network and the feature scaler
  /// ("roicl-cqr-v1", 17-digit text, bit-exact round trip). Requires
  /// fitted(). The conformal correction q_hat is deliberately not
  /// written: when CQR serves as an interval backend that state lives in
  /// (and is persisted by) the owning core::IntervalBackend.
  Status Save(std::ostream& out) const;

  /// Restores a model written by Save(). Malformed input — truncation,
  /// bad magic, non-positive scaler stddevs, a corrupt network blob —
  /// returns a descriptive InvalidArgument; it never crashes.
  static StatusOr<CqrModel> Load(std::istream& in, const CqrConfig& config);

 private:
  CqrConfig config_;
  StandardScaler scaler_;
  mutable std::unique_ptr<nn::Mlp> net_;
  bool calibrated_ = false;
  double q_hat_ = 0.0;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_CQR_H_
