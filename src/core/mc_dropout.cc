#include "core/mc_dropout.h"

#include <chrono>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

McDropoutStats RunMcDropout(nn::Network* net, const Matrix& x, int passes,
                            uint64_t seed, bool sigmoid_output) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(passes >= 2);
  obs::ScopedSpan span("mc_dropout");
  auto wall_start = std::chrono::steady_clock::now();
  int n = x.rows();
  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);

  Rng rng(seed, /*stream=*/29);
  for (int pass = 0; pass < passes; ++pass) {
    obs::ScopedSpan pass_span("mc_pass");
    Matrix out = net->Forward(x, nn::Mode::kMcSample, &rng);
    ROICL_CHECK_MSG(out.cols() == 1,
                    "MC dropout expects a single-output network");
    for (int i = 0; i < n; ++i) {
      double v = out(i, 0);
      if (sigmoid_output) v = Sigmoid(v);
      sum[i] += v;
      sum_sq[i] += v * v;
    }
  }

  McDropoutStats stats;
  stats.mean.resize(n);
  stats.stddev.resize(n);
  double inv = 1.0 / static_cast<double>(passes);
  for (int i = 0; i < n; ++i) {
    double mean = sum[i] * inv;
    double var = std::max(0.0, sum_sq[i] * inv - mean * mean);
    stats.mean[i] = mean;
    stats.stddev[i] = std::sqrt(var);
  }

  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  uint64_t samples =
      static_cast<uint64_t>(n) * static_cast<uint64_t>(passes);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("mc_dropout.samples")->Increment(samples);
  double rate = seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
  registry.GetGauge("mc_dropout.samples_per_sec")->Set(rate);
  obs::Debug("mc dropout", {{"n", n},
                            {"passes", passes},
                            {"samples_per_sec", rate},
                            {"seconds", seconds}});
  return stats;
}

}  // namespace roicl::core
