#include "core/mc_dropout.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

McDropoutStats RunMcDropout(nn::Network* net, const Matrix& x, int passes,
                            uint64_t seed, bool sigmoid_output,
                            const nn::BatchOptions& opts) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(passes >= 2);
  obs::ScopedSpan span("mc_dropout");
  uint64_t wall_start_us = obs::MonotonicMicros();
  int n = x.rows();

  McDropoutStats stats;
  stats.mean.resize(AsSize(n));
  stats.stddev.resize(AsSize(n));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram* batch_latency = registry.GetHistogram(
      "mc_dropout.batch_us", obs::LatencyMicrosBuckets());

  // Each block task owns the accumulators for its rows and applies passes
  // in ascending order; with per-(sample, pass) counter streams this makes
  // the result independent of block scheduling.
  nn::ForEachRowBlock(n, opts, [&](int /*block*/, int row_begin,
                                   int row_end) {
    uint64_t block_start_us = obs::MonotonicMicros();
    int rows = row_end - row_begin;
    std::vector<int> row_ids(AsSize(rows));
    for (int r = 0; r < rows; ++r) row_ids[AsSize(r)] = row_begin + r;
    Matrix x_block = x.SelectRows(row_ids);

    std::vector<double> sum(AsSize(rows), 0.0);
    std::vector<double> sum_sq(AsSize(rows), 0.0);
    nn::RowRngs rngs;
    rngs.reserve(AsSize(rows));
    for (int pass = 0; pass < passes; ++pass) {
      rngs.clear();
      uint64_t pass_base =
          static_cast<uint64_t>(pass) * static_cast<uint64_t>(n);
      for (int r = row_begin; r < row_end; ++r) {
        rngs.push_back(
            MakeCounterRng(seed, pass_base + static_cast<uint64_t>(r)));
      }
      Matrix out = net->ForwardRows(x_block, nn::Mode::kMcSample, &rngs);
      ROICL_CHECK_MSG(out.cols() == 1,
                      "MC dropout expects a single-output network");
      for (int r = 0; r < rows; ++r) {
        double v = out(r, 0);
        if (sigmoid_output) v = Sigmoid(v);
        sum[AsSize(r)] += v;
        sum_sq[AsSize(r)] += v * v;
      }
    }

    double inv = 1.0 / static_cast<double>(passes);
    for (int r = 0; r < rows; ++r) {
      double mean = sum[AsSize(r)] * inv;
      double var = std::max(0.0, sum_sq[AsSize(r)] * inv - mean * mean);
      stats.mean[AsSize(row_begin + r)] = mean;
      stats.stddev[AsSize(row_begin + r)] = std::sqrt(var);
    }
    batch_latency->Observe(
        static_cast<double>(obs::MonotonicMicros() - block_start_us));
  });

  double seconds =
      static_cast<double>(obs::MonotonicMicros() - wall_start_us) * 1e-6;
  uint64_t samples =
      static_cast<uint64_t>(n) * static_cast<uint64_t>(passes);
  registry.GetCounter("mc_dropout.samples")->Increment(samples);
  double rate = seconds > 0.0 ? static_cast<double>(samples) / seconds : 0.0;
  registry.GetGauge("mc_dropout.samples_per_sec")->Set(rate);
  obs::Debug("mc dropout", {{"n", n},
                            {"passes", passes},
                            {"batch_size", opts.batch_size},
                            {"num_threads", opts.num_threads},
                            {"samples_per_sec", rate},
                            {"seconds", seconds}});
  return stats;
}

}  // namespace roicl::core
