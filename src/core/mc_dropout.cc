#include "core/mc_dropout.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::core {

McDropoutStats RunMcDropout(nn::Network* net, const Matrix& x, int passes,
                            uint64_t seed, bool sigmoid_output) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(passes >= 2);
  int n = x.rows();
  std::vector<double> sum(n, 0.0);
  std::vector<double> sum_sq(n, 0.0);

  Rng rng(seed, /*stream=*/29);
  for (int pass = 0; pass < passes; ++pass) {
    Matrix out = net->Forward(x, nn::Mode::kMcSample, &rng);
    ROICL_CHECK_MSG(out.cols() == 1,
                    "MC dropout expects a single-output network");
    for (int i = 0; i < n; ++i) {
      double v = out(i, 0);
      if (sigmoid_output) v = Sigmoid(v);
      sum[i] += v;
      sum_sq[i] += v * v;
    }
  }

  McDropoutStats stats;
  stats.mean.resize(n);
  stats.stddev.resize(n);
  double inv = 1.0 / static_cast<double>(passes);
  for (int i = 0; i < n; ++i) {
    double mean = sum[i] * inv;
    double var = std::max(0.0, sum_sq[i] * inv - mean * mean);
    stats.mean[i] = mean;
    stats.stddev[i] = std::sqrt(var);
  }
  return stats;
}

}  // namespace roicl::core
