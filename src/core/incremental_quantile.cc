#include "core/incremental_quantile.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"

namespace roicl::core {
namespace {

/// splitmix64 of the insertion counter: a fixed, well-mixed priority
/// stream that keeps the treap balanced in expectation while staying
/// fully deterministic across runs and platforms.
std::uint64_t MixPriority(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

struct IncrementalQuantile::Node {
  double value;
  std::uint64_t priority;
  /// Multiplicity of `value` in this node.
  std::size_t count;
  /// Total multiplicity in this subtree (count + children's totals).
  std::size_t subtree;
  Node* left = nullptr;
  Node* right = nullptr;

  Node(double v, std::uint64_t p) : value(v), priority(p), count(1),
                                    subtree(1) {}
};

namespace {

using Node = IncrementalQuantile::Node;

std::size_t SubtreeOf(const Node* node) {
  return node == nullptr ? 0 : node->subtree;
}

void Pull(Node* node) {
  node->subtree =
      node->count + SubtreeOf(node->left) + SubtreeOf(node->right);
}

/// Splits by value: `left` gets values < pivot, `right` values >= pivot.
void Split(Node* node, double pivot, Node** left, Node** right) {
  if (node == nullptr) {
    *left = nullptr;
    *right = nullptr;
    return;
  }
  if (node->value < pivot) {
    Split(node->right, pivot, &node->right, right);
    *left = node;
  } else {
    Split(node->left, pivot, left, &node->left);
    *right = node;
  }
  Pull(node);
}

/// Joins two treaps where every value in `left` precedes every value in
/// `right`.
Node* Merge(Node* left, Node* right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  if (left->priority > right->priority) {
    left->right = Merge(left->right, right);
    Pull(left);
    return left;
  }
  right->left = Merge(left, right->left);
  Pull(right);
  return right;
}

Node* Find(Node* node, double value) {
  while (node != nullptr) {
    if (value < node->value) {
      node = node->left;
    } else if (node->value < value) {
      node = node->right;
    } else {
      return node;
    }
  }
  return nullptr;
}

void BumpSubtreesOnPath(Node* node, double value, std::ptrdiff_t delta) {
  while (node != nullptr) {
    node->subtree = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(node->subtree) + delta);
    if (value < node->value) {
      node = node->left;
    } else if (node->value < value) {
      node = node->right;
    } else {
      return;
    }
  }
  ROICL_CHECK_MSG(false, "value vanished from its own search path");
}

void Destroy(Node* node) {
  if (node == nullptr) return;
  Destroy(node->left);
  Destroy(node->right);
  delete node;
}

}  // namespace

IncrementalQuantile::~IncrementalQuantile() { Destroy(root_); }

IncrementalQuantile::IncrementalQuantile(IncrementalQuantile&& other) noexcept
    : root_(other.root_), size_(other.size_), inserted_(other.inserted_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

IncrementalQuantile& IncrementalQuantile::operator=(
    IncrementalQuantile&& other) noexcept {
  if (this != &other) {
    Destroy(root_);
    root_ = other.root_;
    size_ = other.size_;
    inserted_ = other.inserted_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void IncrementalQuantile::Insert(double value) {
  ROICL_CHECK_MSG(std::isfinite(value),
                  "IncrementalQuantile stores finite scores only");
  if (Node* existing = Find(root_, value)) {
    ++existing->count;
    BumpSubtreesOnPath(root_, value, +1);
    ++size_;
    ++inserted_;
    return;
  }
  Node* node = new Node(value, MixPriority(++inserted_));
  Node* left = nullptr;
  Node* right = nullptr;
  Split(root_, value, &left, &right);
  root_ = Merge(Merge(left, node), right);
  ++size_;
}

bool IncrementalQuantile::Erase(double value) {
  Node* existing = Find(root_, value);
  if (existing == nullptr) return false;
  if (existing->count > 1) {
    --existing->count;
    BumpSubtreesOnPath(root_, value, -1);
    --size_;
    return true;
  }
  Node* left = nullptr;
  Node* mid = nullptr;
  Node* right = nullptr;
  Split(root_, value, &left, &mid);
  // `mid` now holds values >= `value`; peel the == node off its front.
  Split(mid, std::nextafter(value, std::numeric_limits<double>::infinity()),
        &mid, &right);
  ROICL_CHECK(mid != nullptr && mid->left == nullptr &&
              mid->right == nullptr);
  delete mid;
  root_ = Merge(left, right);
  --size_;
  return true;
}

double IncrementalQuantile::Kth(std::size_t k) const {
  ROICL_CHECK_MSG(k >= 1 && k <= size_, "rank out of range");
  const Node* node = root_;
  while (true) {
    ROICL_CHECK(node != nullptr);
    std::size_t left_total = SubtreeOf(node->left);
    if (k <= left_total) {
      node = node->left;
    } else if (k <= left_total + node->count) {
      return node->value;
    } else {
      k -= left_total + node->count;
      node = node->right;
    }
  }
}

double IncrementalQuantile::QHat(double alpha) const {
  ROICL_CHECK(size_ > 0);
  ROICL_CHECK(alpha > 0.0 && alpha < 1.0);
  // Identical rank arithmetic to common/stats.h ConformalQuantile — the
  // bitwise-equality contract depends on matching it expression for
  // expression.
  double raw_rank =
      std::ceil((1.0 - alpha) * static_cast<double>(size_ + 1));
  auto rank = static_cast<std::size_t>(raw_rank);
  if (rank > size_) return std::numeric_limits<double>::infinity();
  return Kth(rank);
}

void IncrementalQuantile::Clear() {
  Destroy(root_);
  root_ = nullptr;
  size_ = 0;
}

}  // namespace roicl::core
