#include "core/lagrangian.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::core {
namespace {

/// Spend of the relaxed solution z_i = 1{v_i > lambda c_i}.
double SpendAt(const std::vector<double>& values,
               const std::vector<double>& costs, double lambda) {
  double spend = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] > lambda * costs[i]) spend += costs[i];
  }
  return spend;
}

}  // namespace

LagrangianResult LagrangianAllocate(const std::vector<double>& values,
                                    const std::vector<double>& costs,
                                    double budget, int max_iterations) {
  ROICL_CHECK(values.size() == costs.size());
  ROICL_CHECK(budget >= 0.0);
  ROICL_CHECK(max_iterations > 0);
  for (double c : costs) ROICL_CHECK_MSG(c > 0.0, "costs must be positive");

  LagrangianResult result;
  size_t n = values.size();
  if (n == 0) return result;

  // lambda = 0 selects every positive-value item; if that fits, done.
  double lambda_lo = 0.0;
  if (SpendAt(values, costs, lambda_lo) <= budget) {
    result.lambda = 0.0;
  } else {
    // Upper bracket: above max ratio nothing is selected.
    double lambda_hi = 0.0;
    for (size_t i = 0; i < n; ++i) {
      lambda_hi = std::max(lambda_hi, values[i] / costs[i]);
    }
    lambda_hi += 1.0;
    for (int iter = 0; iter < max_iterations; ++iter) {
      double mid = 0.5 * (lambda_lo + lambda_hi);
      if (SpendAt(values, costs, mid) > budget) {
        lambda_lo = mid;
      } else {
        lambda_hi = mid;
      }
    }
    result.lambda = lambda_hi;  // feasible side
  }

  // Primal solution at the feasible lambda.
  std::vector<char> picked(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (values[i] > result.lambda * costs[i]) {
      picked[i] = 1;
      result.selected.push_back(static_cast<int>(i));
      result.spent += costs[i];
      result.value += values[i];
    }
  }

  // Primal repair: fill leftover budget greedily by ratio.
  std::vector<int> rest;
  for (size_t i = 0; i < n; ++i) {
    if (!picked[i] && values[i] > 0.0) rest.push_back(static_cast<int>(i));
  }
  // Strict total order (ratio desc, index asc): std::sort on the bare
  // ratio is unstable, so duplicate ratios — common when values are
  // roi * cost with duplicated roi — made the repair order, and thus the
  // selected set at a binding budget, depend on sort internals. Ties now
  // break by stable index, matching the allocation order documented in
  // core/greedy.h and alloc::RankBefore.
  std::sort(rest.begin(), rest.end(), [&](int a, int b) {
    double ra = values[AsSize(a)] / costs[AsSize(a)];
    double rb = values[AsSize(b)] / costs[AsSize(b)];
    if (ra != rb) return ra > rb;
    return a < b;
  });
  for (int i : rest) {
    const size_t si = AsSize(i);
    if (result.spent + costs[si] <= budget) {
      result.selected.push_back(i);
      result.spent += costs[si];
      result.value += values[si];
    }
  }

  // Dual certificate at the final multiplier.
  double dual = result.lambda * budget;
  for (size_t i = 0; i < n; ++i) {
    dual += std::max(0.0, values[i] - result.lambda * costs[i]);
  }
  result.upper_bound = dual;
  return result;
}

}  // namespace roicl::core
