#ifndef ROICL_CORE_INTERVAL_BACKEND_H_
#define ROICL_CORE_INTERVAL_BACKEND_H_

#include <array>
#include <cstddef>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/conformal.h"
#include "linalg/matrix.h"
#include "metrics/coverage.h"

/// \file
/// The one conformal-interval abstraction shared by core, pipeline and
/// monitor. Every way the repo turns calibration scores into serving
/// intervals — the paper's split-conformal scalar (Algorithm 3), the
/// likelihood-ratio-weighted quantile for covariate shift (Tibshirani et
/// al. 2019), and CQR on normalized residuals (Romano et al. 2019) — is a
/// backend behind this interface, so the artifact, the scoring service
/// and the rolling recalibrator handle all three uniformly.
namespace roicl::core {

/// Registered backend names, in registry order. The single source of
/// truth the `--interval-backend` flag, the artifact manifest and
/// check_interval_backends.sh validate against.
inline constexpr std::array<const char*, 3> kIntervalBackendNames = {
    "split", "weighted", "cqr"};

/// Polymorphic conformal-interval state. One instance is owned by the
/// calibrated model, travels through the pipeline artifact (Save/Load)
/// and supplies the monitor's streaming-score arithmetic. The backend
/// holds *calibration-time* state only — the live, swappable quantile
/// stays the model's single atomic scalar, which is what makes the
/// ScoringService swap tear-free for every backend.
class IntervalBackend {
 public:
  virtual ~IntervalBackend() = default;

  /// Registry name ("split" / "weighted" / "cqr").
  virtual std::string name() const = 0;

  /// Computes conformity scores and the conformal quantile on the
  /// calibration set (Algorithm 3 steps 2-5 for split/weighted; the CQR
  /// conformity score E on normalized residuals for cqr). Emits the
  /// conformal.* metrics and falls back to the max score — the most
  /// conservative finite quantile — on a starved window, exactly like
  /// the historical in-model path.
  virtual Status Calibrate(const Matrix& x,
                           const std::vector<double>& roi_hat,
                           const std::vector<double>& r_hat,
                           const std::vector<double>& roi_star, double alpha,
                           double std_floor) = 0;

  /// Stores the per-calibration-row weight variable (the served
  /// calibrated prediction) used by weighted conformal to detect
  /// covariate shift in score space. The weighted backend rebuilds its
  /// reference quantile bins from these values; others just persist them
  /// so a stateless artifact rebind to "weighted" stays possible.
  void SetWeightReference(std::vector<double> served);

  /// Per-row auxiliary channels consumed by StreamScore. Only cqr has
  /// any (the raw quantile heads q_lo/q_hi); the default writes zeros.
  virtual Status StreamAux(const Matrix& x, std::vector<double>* aux_lo,
                           std::vector<double>* aux_hi) const;

  /// One conformity score from cached per-row ingredients — no feature
  /// matrix, no MC sweep. This is the recalibrator's O(1)-per-row hot
  /// path; for split/weighted it is exactly Eq. (3)'s
  /// |roi* - roi_hat| / max(r_hat, floor).
  virtual double StreamScore(double roi_hat, double r_hat, double roi_star,
                             double aux_lo, double aux_hi) const = 0;

  /// Number of weight bins (0 for backends without a weighted fallback).
  virtual std::size_t WeightBins() const { return 0; }

  /// Bin index of a served score under the reference binning. Only
  /// meaningful when WeightBins() > 0.
  virtual std::size_t WeightBinOf(double served_score) const;

  /// Label-free weighted conformal quantile: reweights the stored
  /// calibration scores by the likelihood ratio live/reference estimated
  /// from per-bin counts of served scores, then takes the weighted
  /// (1-alpha) quantile with the conservative max-weight test-point
  /// mass. Returns +inf when the level is unreachable (caller applies
  /// the max-score convention). FailedPrecondition for backends without
  /// weights.
  virtual StatusOr<double> FallbackQHat(
      double alpha, const std::vector<double>& live_bin_counts) const;

  /// Serving intervals for a batch, at quantile snapshot `q_hat` (the
  /// caller loads the model's atomic once per batch and passes it down,
  /// preserving the never-tearing swap contract).
  virtual std::vector<metrics::Interval> Intervals(
      const Matrix& x, const std::vector<double>& roi_hat,
      const std::vector<double>& r_hat, double q_hat) const = 0;

  /// Artifact (de)serialization, versioned per backend
  /// ("roicl-ivb-<name>-v1"). Load validates magic, ranges and
  /// truncation and never crashes on corrupt input.
  virtual Status Save(std::ostream& out) const = 0;
  virtual Status Load(std::istream& in) = 0;

  /// Rebuilds this backend from another backend's persisted calibration
  /// state — the stateless artifact rebind (split <-> weighted, which
  /// share score semantics). Backends whose scores mean something else
  /// (cqr) refuse with FailedPrecondition; rebinding to those requires a
  /// calibration dataset.
  virtual Status InitFromState(const IntervalBackend& other);

  bool calibrated() const { return calibrated_; }
  /// Calibration-time quantile (the value the model's live atomic is
  /// seeded with; subsequent online swaps do not write back here).
  double q_hat() const { return q_hat_; }
  double alpha() const { return alpha_; }
  double std_floor() const { return std_floor_; }
  const std::vector<double>& calibration_scores() const { return scores_; }
  const std::vector<double>& weight_reference() const {
    return weight_values_;
  }

 protected:
  /// True when this backend's calibration scores are Eq. (3)
  /// |roi* - roi_hat| / max(r_hat, floor) values (split/weighted), so
  /// persisted state transfers losslessly between such backends. cqr's
  /// E-scores are not, and it returns false.
  virtual bool SharesSplitScoreSemantics() const { return true; }

  /// Hook invoked whenever weight_values_ changes (SetWeightReference,
  /// LoadCommon, InitFromState); the weighted backend rebuilds bins here.
  virtual void OnWeightReferenceChanged() {}

  /// Shared Algorithm-3 tail: metrics, starved-window warning and the
  /// max-score fallback. Sets scores_/q_hat_/alpha_/std_floor_ and marks
  /// the backend calibrated.
  void FinishCalibration(std::vector<double> scores, double alpha,
                         double std_floor);

  /// Common-state body shared by every backend's Save/Load (alpha,
  /// floor, q_hat, scores, weight values).
  Status SaveCommon(std::ostream& out) const;
  Status LoadCommon(std::istream& in);

  double alpha_ = 0.1;
  double std_floor_ = kDefaultStdFloor;
  double q_hat_ = 0.0;
  bool calibrated_ = false;
  /// Calibration conformity scores, row-aligned with weight_values_.
  std::vector<double> scores_;
  std::vector<double> weight_values_;
};

/// Creates a backend by registry name; InvalidArgument (listing the
/// known names) for anything else.
StatusOr<std::unique_ptr<IntervalBackend>> MakeIntervalBackend(
    const std::string& name);

/// "split, weighted, cqr" — for flag-validation error messages.
std::string IntervalBackendNamesCsv();

/// True when `name` is a registered backend name.
bool IsIntervalBackendName(const std::string& name);

}  // namespace roicl::core

#endif  // ROICL_CORE_INTERVAL_BACKEND_H_
