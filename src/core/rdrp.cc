#include "core/rdrp.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <utility>

#include "common/macros.h"
#include "core/conformal.h"
#include "core/roi_star.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

RdrpModel::RdrpModel(RdrpModel&& other) noexcept
    : config_(std::move(other.config_)),
      drp_(std::move(other.drp_)),
      calibrated_(other.calibrated_),
      q_hat_(other.q_hat_.load(std::memory_order_relaxed)),
      roi_star_global_(other.roi_star_global_),
      form_(other.form_),
      backend_(std::move(other.backend_)) {}

RdrpModel& RdrpModel::operator=(RdrpModel&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    drp_ = std::move(other.drp_);
    calibrated_ = other.calibrated_;
    q_hat_.store(other.q_hat_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    roi_star_global_ = other.roi_star_global_;
    form_ = other.form_;
    backend_ = std::move(other.backend_);
  }
  return *this;
}

Status RdrpModel::AdoptIntervalBackend(
    std::unique_ptr<IntervalBackend> backend) {
  if (backend == nullptr || !backend->calibrated()) {
    return Status::InvalidArgument(
        "AdoptIntervalBackend needs a calibrated backend");
  }
  backend_ = std::move(backend);
  return Status::Ok();
}

void RdrpModel::set_q_hat(double q_hat) {
  ROICL_CHECK_MSG(calibrated_, "set_q_hat() before FitWithCalibration()");
  ROICL_CHECK_MSG(std::isfinite(q_hat) && q_hat >= 0.0,
                  "set_q_hat() requires a finite non-negative quantile");
  q_hat_.store(q_hat, std::memory_order_relaxed);
}

void RdrpModel::FitWithCalibration(const RctDataset& train,
                                   const RctDataset& calibration) {
  calibration.Validate();
  obs::ScopedSpan span("rdrp.fit");
  // Algorithm 4, line 2: train DRP.
  drp_.Fit(train);

  {
    obs::ScopedSpan calibrate_span("calibrate");
    // Lines 4-6: point estimates, roi*, MC-dropout stds on the
    // calibration set.
    std::vector<double> roi_hat = drp_.PredictRoi(calibration.x);
    McDropoutStats mc = drp_.PredictMcRoi(calibration.x, config_.mc_passes,
                                          config_.mc_seed, config_.drp.predict);
    roi_star_global_ = BinarySearchRoiStar(calibration, config_.epsilon);

    std::vector<double> roi_star;
    if (config_.binned_roi_star) {
      roi_star = BinnedRoiStar(roi_hat, calibration.treatment,
                               calibration.y_revenue, calibration.y_cost,
                               config_.roi_star_bins, config_.epsilon);
    } else {
      roi_star.assign(roi_hat.size(), roi_star_global_);
    }

    // Line 7: conformal score quantile, computed by the configured
    // interval backend. The "split" backend reproduces the historical
    // in-model path bit for bit (Eq. 3 scores, ceil((1-alpha)(n+1))
    // quantile, max-score fallback on a starved window); "weighted" and
    // "cqr" add shift-reweighted and residual-quantile-regression
    // calibrations behind the same interface.
    StatusOr<std::unique_ptr<IntervalBackend>> backend =
        MakeIntervalBackend(config_.interval_backend);
    ROICL_CHECK_MSG(backend.ok(), "unknown interval backend '%s'",
                    config_.interval_backend.c_str());
    backend_ = std::move(backend).value();
    Status backend_status =
        backend_->Calibrate(calibration.x, roi_hat, mc.stddev, roi_star,
                            config_.alpha, config_.std_floor);
    ROICL_CHECK_MSG(backend_status.ok(),
                    "interval-backend calibration failed: %s",
                    backend_status.message().c_str());
    double q_hat = backend_->q_hat();
    q_hat_.store(q_hat, std::memory_order_relaxed);

    // Line 8: pick the calibration form that maximizes AUCC on the
    // calibration set.
    std::vector<double> rq(roi_hat.size());
    for (size_t i = 0; i < rq.size(); ++i) {
      rq[i] = std::max(mc.stddev[i], config_.std_floor) * q_hat;
    }
    form_ = SelectCalibrationForm(roi_hat, rq, calibration);

    // Weight variable for the weighted backend's covariate-shift
    // fallback: the served calibrated prediction on each calibration
    // row. Stored by every backend so artifacts can rebind later.
    backend_->SetWeightReference(ApplyCalibrationForm(form_, roi_hat, rq));
  }
  calibrated_ = true;
  obs::Info("rdrp calibrated",
            {{"q_hat", q_hat()},
             {"roi_star", roi_star_global_},
             {"form", CalibrationFormName(form_)},
             {"calibration_n", calibration.n()},
             {"mc_passes", config_.mc_passes}});
}

std::vector<double> RdrpModel::McStdDev(const Matrix& x) const {
  McDropoutStats mc = drp_.PredictMcRoi(x, config_.mc_passes,
                                        config_.mc_seed, config_.drp.predict);
  for (double& s : mc.stddev) s = std::max(s, config_.std_floor);
  return mc.stddev;
}

std::vector<double> RdrpModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(calibrated_, "PredictRoi() before FitWithCalibration()");
  obs::ScopedSpan span("predict");
  // Algorithm 4, lines 10-12.
  std::vector<double> roi_hat = drp_.PredictRoi(x);
  std::vector<double> r_hat = McStdDev(x);
  // One load per predict call: a concurrent recalibration swap gives this
  // whole batch either the old or the new quantile, never a mix.
  const double q_hat_snapshot = q_hat();
  std::vector<double> rq(r_hat.size());
  for (size_t i = 0; i < rq.size(); ++i) rq[i] = r_hat[i] * q_hat_snapshot;
  return ApplyCalibrationForm(form_, roi_hat, rq);
}

std::vector<metrics::Interval> RdrpModel::PredictIntervals(
    const Matrix& x) const {
  ROICL_CHECK_MSG(calibrated_,
                  "PredictIntervals() before FitWithCalibration()");
  obs::ScopedSpan span("predict_intervals");
  std::vector<double> roi_hat = drp_.PredictRoi(x);
  std::vector<double> r_hat = McStdDev(x);
  // One quantile snapshot for the whole batch (never-tearing swap
  // contract), handed to the backend that shapes the intervals. A bare
  // Load() outside the pipeline artifact has no backend and keeps the
  // historical split arithmetic.
  const double q_hat_snapshot = q_hat();
  std::vector<metrics::Interval> intervals =
      backend_ != nullptr
          ? backend_->Intervals(x, roi_hat, r_hat, q_hat_snapshot)
          : ConformalIntervals(roi_hat, r_hat, q_hat_snapshot,
                               config_.std_floor);
  if (config_.clip_to_unit) {
    for (metrics::Interval& interval : intervals) {
      interval.lo = std::max(interval.lo, 0.0);
      interval.hi = std::min(interval.hi, 1.0);
    }
  }
  return intervals;
}

Status RdrpModel::Save(std::ostream& out) const {
  if (!calibrated_) return Status::FailedPrecondition("not calibrated");
  out << "roicl-rdrp-v1\n";
  out << std::setprecision(17);
  out << q_hat() << ' ' << roi_star_global_ << ' '
      << static_cast<int>(form_) << '\n';
  return drp_.Save(out);
}

Status RdrpModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

StatusOr<RdrpModel> RdrpModel::Load(std::istream& in,
                                    const RdrpConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated rdrp model stream");
  }
  if (magic != "roicl-rdrp-v1") {
    if (magic.rfind("roicl-rdrp-v", 0) == 0) {
      return Status::InvalidArgument("unsupported rdrp format version '" +
                                     magic + "' (expected roicl-rdrp-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-rdrp-v1)");
  }
  double q_hat = 0.0, roi_star = 0.0;
  int form = 0;
  if (!(in >> q_hat >> roi_star >> form) || q_hat < 0.0 || form < 0 ||
      form > 3) {
    return Status::InvalidArgument("bad rDRP calibration header");
  }
  StatusOr<DrpModel> drp = DrpModel::Load(in, config.drp);
  if (!drp.ok()) return drp.status();

  RdrpModel model(config);
  model.drp_ = std::move(drp).value();
  model.q_hat_.store(q_hat, std::memory_order_relaxed);
  model.roi_star_global_ = roi_star;
  model.form_ = static_cast<CalibrationForm>(form);
  model.calibrated_ = true;
  return model;
}

StatusOr<RdrpModel> RdrpModel::LoadFromFile(const std::string& path,
                                            const RdrpConfig& config) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in, config);
}

McCalibratedModel::McCalibratedModel(std::unique_ptr<DirectRoiModel> base,
                                     int mc_passes, uint64_t mc_seed)
    : base_(std::move(base)), mc_passes_(mc_passes), mc_seed_(mc_seed) {
  ROICL_CHECK(base_ != nullptr);
  ROICL_CHECK(mc_passes_ >= 2);
}

void McCalibratedModel::FitWithCalibration(const RctDataset& train,
                                           const RctDataset& calibration) {
  base_->Fit(train);
  std::vector<double> roi_hat = base_->PredictRoi(calibration.x);
  McDropoutStats mc =
      base_->PredictMcRoi(calibration.x, mc_passes_, mc_seed_);
  // q_hat = 1: the std enters the forms unscaled, isolating the MC
  // contribution from the conformal contribution.
  form_ = SelectCalibrationForm(roi_hat, mc.stddev, calibration);
  calibrated_ = true;
}

std::vector<double> McCalibratedModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(calibrated_, "PredictRoi() before FitWithCalibration()");
  std::vector<double> roi_hat = base_->PredictRoi(x);
  McDropoutStats mc = base_->PredictMcRoi(x, mc_passes_, mc_seed_);
  return ApplyCalibrationForm(form_, roi_hat, mc.stddev);
}

std::string McCalibratedModel::name() const {
  return base_->name() + " w/ MC";
}

}  // namespace roicl::core
