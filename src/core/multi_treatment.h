#ifndef ROICL_CORE_MULTI_TREATMENT_H_
#define ROICL_CORE_MULTI_TREATMENT_H_

#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "core/rdrp.h"
#include "synth/multi_treatment.h"

namespace roicl::core {

/// Divide-and-conquer multi-treatment rDRP (paper §VI, limitation 1):
/// decompose the K-treatment problem into K binary sub-problems
/// {control, arm k}, fit one rDRP per arm, and rank (user, arm) pairs by
/// the per-arm calibrated ROI.
class DivideAndConquerRdrp {
 public:
  /// One rDRP configuration shared by all arms; per-arm seeds are derived.
  explicit DivideAndConquerRdrp(const RdrpConfig& config)
      : config_(config) {}

  /// Fits one rDRP per arm on the binary projections of the training and
  /// calibration sets.
  void FitWithCalibration(const synth::MultiTreatmentDataset& train,
                          const synth::MultiTreatmentDataset& calibration);

  /// Per-arm calibrated ROI scores: result[k][i] is arm (k+1)'s score for
  /// row i of x.
  std::vector<std::vector<double>> PredictRoiPerArm(const Matrix& x) const;

  /// Per-arm conformal intervals: result[k][i] is arm (k+1)'s interval
  /// for row i of x, produced by that arm's own calibrated rDRP (and
  /// therefore that arm's own IntervalBackend — split/weighted/cqr per
  /// `config.interval_backend`). Each arm carries coverage >= 1 - alpha
  /// against its own convergence-point target.
  std::vector<std::vector<metrics::Interval>> PredictIntervalsPerArm(
      const Matrix& x) const;

  int num_arms() const { return static_cast<int>(models_.size()); }
  const RdrpModel& arm_model(int arm) const;
  bool fitted() const { return !models_.empty(); }

  /// Serializes all per-arm calibrated models ("roicl-dnc-rdrp-v1"): the
  /// arm count followed by each arm's full RdrpModel stream, so a trained
  /// K-arm estimator deploys without retraining. Requires fitted().
  Status Save(std::ostream& out) const;
  /// Restores a model saved by Save(). `config` supplies the shared
  /// runtime knobs; per-arm seed derivation is reapplied so reloaded
  /// models reproduce training-time predictions bit for bit.
  static StatusOr<DivideAndConquerRdrp> Load(
      std::istream& in, const RdrpConfig& config = RdrpConfig());

  /// The per-arm derived config (documented seed offsets 101/131/151 per
  /// arm) — shared by FitWithCalibration and Load.
  static RdrpConfig ArmConfig(const RdrpConfig& base, int arm);

 private:
  RdrpConfig config_;
  std::vector<std::unique_ptr<RdrpModel>> models_;
};

/// Multi-treatment budget allocation: assign at most one arm per user,
/// scanning (user, arm) pairs by ROI score descending and debiting
/// `costs[k][i]` from the shared budget (skip-unaffordable greedy).
/// Returns per-user assignment: -1 for untreated, else the 1-based arm.
struct MultiAllocationResult {
  std::vector<int> assignment;
  double spent = 0.0;
};
MultiAllocationResult GreedyAllocateMulti(
    const std::vector<std::vector<double>>& roi_scores,
    const std::vector<std::vector<double>>& costs, double budget);

}  // namespace roicl::core

#endif  // ROICL_CORE_MULTI_TREATMENT_H_
