#ifndef ROICL_CORE_MULTI_TREATMENT_H_
#define ROICL_CORE_MULTI_TREATMENT_H_

#include <memory>
#include <vector>

#include "core/rdrp.h"
#include "synth/multi_treatment.h"

namespace roicl::core {

/// Divide-and-conquer multi-treatment rDRP (paper §VI, limitation 1):
/// decompose the K-treatment problem into K binary sub-problems
/// {control, arm k}, fit one rDRP per arm, and rank (user, arm) pairs by
/// the per-arm calibrated ROI.
class DivideAndConquerRdrp {
 public:
  /// One rDRP configuration shared by all arms; per-arm seeds are derived.
  explicit DivideAndConquerRdrp(const RdrpConfig& config)
      : config_(config) {}

  /// Fits one rDRP per arm on the binary projections of the training and
  /// calibration sets.
  void FitWithCalibration(const synth::MultiTreatmentDataset& train,
                          const synth::MultiTreatmentDataset& calibration);

  /// Per-arm calibrated ROI scores: result[k][i] is arm (k+1)'s score for
  /// row i of x.
  std::vector<std::vector<double>> PredictRoiPerArm(const Matrix& x) const;

  int num_arms() const { return static_cast<int>(models_.size()); }
  const RdrpModel& arm_model(int arm) const;

 private:
  RdrpConfig config_;
  std::vector<std::unique_ptr<RdrpModel>> models_;
};

/// Multi-treatment budget allocation: assign at most one arm per user,
/// scanning (user, arm) pairs by ROI score descending and debiting
/// `costs[k][i]` from the shared budget (skip-unaffordable greedy).
/// Returns per-user assignment: -1 for untreated, else the 1-based arm.
struct MultiAllocationResult {
  std::vector<int> assignment;
  double spent = 0.0;
};
MultiAllocationResult GreedyAllocateMulti(
    const std::vector<std::vector<double>>& roi_scores,
    const std::vector<std::vector<double>>& costs, double budget);

}  // namespace roicl::core

#endif  // ROICL_CORE_MULTI_TREATMENT_H_
