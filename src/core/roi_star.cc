#include "core/roi_star.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/drp_loss.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::core {

double BinarySearchRoiStar(const std::vector<int>& treatment,
                           const std::vector<double>& y_revenue,
                           const std::vector<double>& y_cost,
                           double epsilon) {
  ROICL_CHECK(epsilon > 0.0);
  obs::ScopedSpan span("roi_star.binary_search");
  // Algorithm 2: roi_l = 0, roi_r = 1, evaluate L' at sigma^{-1}(roi*).
  double roi_l = 0.0;
  double roi_r = 1.0;
  double roi_star = 0.5 * (roi_l + roi_r);
  int iterations = 0;
  while (roi_r - roi_l > epsilon) {
    double deriv = DrpPopulationLossDeriv(treatment, y_revenue, y_cost,
                                          Logit(roi_star));
    ++iterations;
    if (std::fabs(deriv) < epsilon) break;
    if (deriv > 0.0) {
      roi_r = roi_star;  // past the minimum: shrink from the right
    } else {
      roi_l = roi_star;
    }
    roi_star = 0.5 * (roi_l + roi_r);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("roi_star.searches")->Increment();
  registry.GetGauge("roi_star.iterations")
      ->Set(static_cast<double>(iterations));
  registry.GetGauge("roi_star.bracket_width")->Set(roi_r - roi_l);
  obs::Debug("roi* binary search", {{"roi_star", roi_star},
                                    {"iterations", iterations},
                                    {"bracket_width", roi_r - roi_l},
                                    {"n", treatment.size()}});
  ROICL_DCHECK_FINITE(roi_star);
  return roi_star;
}

double BinarySearchRoiStar(const RctDataset& calibration, double epsilon) {
  return BinarySearchRoiStar(calibration.treatment, calibration.y_revenue,
                             calibration.y_cost, epsilon);
}

double AnalyticRoiStar(const std::vector<int>& treatment,
                       const std::vector<double>& y_revenue,
                       const std::vector<double>& y_cost) {
  double tau_r = RctDataset::DiffInMeans(treatment, y_revenue);
  double tau_c = RctDataset::DiffInMeans(treatment, y_cost);
  ROICL_CHECK_MSG(tau_c > 0.0,
                  "AnalyticRoiStar requires positive cost lift");
  return Clamp(tau_r / tau_c, 0.0, 1.0);
}

std::vector<double> BinnedRoiStar(const std::vector<double>& scores,
                                  const std::vector<int>& treatment,
                                  const std::vector<double>& y_revenue,
                                  const std::vector<double>& y_cost,
                                  int num_bins, double epsilon) {
  size_t n = scores.size();
  ROICL_CHECK(treatment.size() == n && y_revenue.size() == n &&
              y_cost.size() == n);
  ROICL_CHECK(num_bins >= 1);
  double global =
      BinarySearchRoiStar(treatment, y_revenue, y_cost, epsilon);

  // Assign samples to score-quantile bins.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) {
              return scores[AsSize(a)] < scores[AsSize(b)];
            });
  std::vector<int> bin_of(n);
  for (size_t rank = 0; rank < n; ++rank) {
    int bin = static_cast<int>(rank * static_cast<size_t>(num_bins) / n);
    bin_of[AsSize(order[rank])] = std::min(bin, num_bins - 1);
  }

  std::vector<double> result(n, global);
  for (int b = 0; b < num_bins; ++b) {
    std::vector<int> t_bin;
    std::vector<double> yr_bin, yc_bin;
    for (size_t i = 0; i < n; ++i) {
      if (bin_of[i] == b) {
        t_bin.push_back(treatment[i]);
        yr_bin.push_back(y_revenue[i]);
        yc_bin.push_back(y_cost[i]);
      }
    }
    int n1 = 0;
    for (int t : t_bin) n1 += (t == 1);
    int n0 = static_cast<int>(t_bin.size()) - n1;
    if (n1 < 2 || n0 < 2) continue;  // fall back to global
    double tau_c = RctDataset::DiffInMeans(t_bin, yc_bin);
    if (tau_c <= 0.0) continue;  // Assumption 4 violated in this bin
    double local = BinarySearchRoiStar(t_bin, yr_bin, yc_bin, epsilon);
    for (size_t i = 0; i < n; ++i) {
      if (bin_of[i] == b) result[i] = local;
    }
  }
  return result;
}

}  // namespace roicl::core
