#ifndef ROICL_CORE_ROI_STAR_H_
#define ROICL_CORE_ROI_STAR_H_

#include <vector>

#include "data/dataset.h"

namespace roicl::core {

/// Algorithm 2 of the paper: binary search on the convex population-level
/// DRP loss over the calibration set. Returns roi* = sigmoid(s*) where s*
/// is the convergence point — used as the stand-in "true" ROI for the
/// conformal score (Assumption 5).
///
/// `epsilon` is the paper's stopping constant (both interval width and
/// derivative tolerance). Requires both RCT arms and a positive average
/// cost lift (Assumption 4); aborts otherwise.
double BinarySearchRoiStar(const std::vector<int>& treatment,
                           const std::vector<double>& y_revenue,
                           const std::vector<double>& y_cost,
                           double epsilon = 1e-4);

/// Convenience overload on a dataset.
double BinarySearchRoiStar(const RctDataset& calibration,
                           double epsilon = 1e-4);

/// The closed form the binary search converges to:
/// roi* = tau_hat_r / tau_hat_c (difference-in-means ratio), clamped to
/// (0, 1) per Assumption 3. Used to cross-check Algorithm 2.
double AnalyticRoiStar(const std::vector<int>& treatment,
                       const std::vector<double>& y_revenue,
                       const std::vector<double>& y_cost);

/// Extension beyond the paper (§5 of DESIGN.md): instead of one global
/// convergence point, compute a separate roi* within each quantile bin of
/// a score vector (e.g. the DRP point estimates). Bins missing an arm or
/// with non-positive cost lift fall back to the global roi*.
/// Returns one roi* per sample, aligned with `scores`.
std::vector<double> BinnedRoiStar(const std::vector<double>& scores,
                                  const std::vector<int>& treatment,
                                  const std::vector<double>& y_revenue,
                                  const std::vector<double>& y_cost,
                                  int num_bins, double epsilon = 1e-4);

}  // namespace roicl::core

#endif  // ROICL_CORE_ROI_STAR_H_
