#ifndef ROICL_CORE_GREEDY_H_
#define ROICL_CORE_GREEDY_H_

#include <vector>

namespace roicl::core {

/// Result of a budgeted allocation.
struct AllocationResult {
  std::vector<int> selected;  ///< chosen individual indices.
  double spent = 0.0;         ///< total cost of the selection.
};

/// Algorithm 1 of the paper: sort individuals by predicted ROI descending
/// and allocate the binary treatment until the budget is exhausted.
/// `costs[i]` is the (estimated or true) incremental cost tau_c(x_i) of
/// treating individual i.
///
/// Allocation order is the documented strict total order
/// **(roi descending, index ascending)**: duplicate ROI keys break by
/// stable individual index. This is a repo-wide contract — the streaming
/// allocator (`alloc::RankBefore`) and the Lagrangian primal repair rank
/// by the same order, which is what makes bitwise equivalence between
/// the in-memory and streaming allocators well defined even on inputs
/// with thousands of duplicate keys.
///
/// `skip_unaffordable = false` reproduces the paper's "allocate until the
/// budget B is reached" (stop at the first individual that does not fit);
/// `true` keeps scanning for cheaper individuals further down the ranking
/// (a slightly stronger greedy; both satisfy the knapsack approximation
/// bound).
AllocationResult GreedyAllocate(const std::vector<double>& roi_scores,
                                const std::vector<double>& costs,
                                double budget,
                                bool skip_unaffordable = false);

/// Exact 0/1-knapsack optimum by exhaustive search — validation aid for
/// the greedy approximation-ratio property (usable up to ~20 items).
/// Returns the maximal total value subject to the cost budget.
double KnapsackBruteForce(const std::vector<double>& values,
                          const std::vector<double>& costs, double budget);

/// Total value of a selection.
double SelectionValue(const std::vector<int>& selected,
                      const std::vector<double>& values);

}  // namespace roicl::core

#endif  // ROICL_CORE_GREEDY_H_
