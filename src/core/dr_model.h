#ifndef ROICL_CORE_DR_MODEL_H_
#define ROICL_CORE_DR_MODEL_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/direct_model.h"
#include "data/scaler.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace roicl::core {

/// Direct Rank hyperparameters (same network shape as DRP for the fair
/// comparison the paper runs).
struct DirectRankConfig {
  /// Hidden-layer width; <= 0 selects automatically from the training-set
  /// size (mirrors DrpConfig for the paper's fair comparison).
  int hidden_units = 0;
  nn::ActivationKind activation = nn::ActivationKind::kRelu;
  double dropout = 0.2;
  nn::TrainConfig train;
  /// Independent random restarts; the net with the best validation (or
  /// final training) loss is kept. Neural uplift losses are noisy and a
  /// run occasionally diverges — restarts make the fit robust, which is
  /// exactly the deployment pain the paper's "insufficient samples"
  /// limitation describes.
  int restarts = 3;
  /// Floor for the incremental-cost denominator inside the loss.
  double cost_floor = 1e-3;
  uint64_t seed = 78;
  /// Batched prediction-engine knobs (row-block size, thread count).
  /// Throughput only — predictions are bit-identical across settings.
  nn::BatchOptions predict;
};

/// The Direct Rank (DR) baseline of Du, Lee & Ghaffarizadeh (2019):
/// a network score s(x) is softmax-weighted within each mini-batch and
/// trained to maximize the softmax-weighted revenue lift divided by the
/// softmax-weighted cost lift. The loss is NOT convex — Zhou et al.
/// (Appendix E) show its optimum need not recover the true ROI ranking,
/// which is exactly why the rDRP paper keeps it as the second-best direct
/// method.
class DirectRankModel : public DirectRoiModel {
 public:
  explicit DirectRankModel(const DirectRankConfig& config)
      : config_(config) {}

  void Fit(const RctDataset& train) override;
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override { return "DR"; }

  using DirectRoiModel::PredictMcRoi;
  McDropoutStats PredictMcRoi(const Matrix& x, int passes, uint64_t seed,
                              const nn::BatchOptions& opts) const override;

  bool fitted() const { return net_ != nullptr; }

  /// Feature dimension the model was fitted on (-1 before Fit/Load).
  int feature_dim() const {
    return scaler_.fitted() ? static_cast<int>(scaler_.means().size()) : -1;
  }

  /// Re-points the batched prediction engine. Throughput knob only.
  void set_predict_options(const nn::BatchOptions& opts) {
    config_.predict = opts;
  }

  /// Serializes the fitted model (scaler + network, "roicl-dr-v1") so a
  /// trained ranker can be deployed without retraining. Requires fitted().
  Status Save(std::ostream& out) const;
  /// Restores a model saved by Save(). `config` supplies runtime knobs;
  /// the architecture comes from the stream.
  static StatusOr<DirectRankModel> Load(
      std::istream& in, const DirectRankConfig& config = DirectRankConfig());

 private:
  DirectRankConfig config_;
  StandardScaler scaler_;
  mutable std::unique_ptr<nn::Mlp> net_;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_DR_MODEL_H_
