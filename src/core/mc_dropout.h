#ifndef ROICL_CORE_MC_DROPOUT_H_
#define ROICL_CORE_MC_DROPOUT_H_

#include <cstdint>

#include "core/direct_model.h"
#include "nn/network.h"

namespace roicl::core {

/// Monte-Carlo dropout inference (Gal & Ghahramani 2016; §IV-C2 of the
/// paper): runs `passes` forward passes in nn::Mode::kMcSample — dropout
/// active, everything else inference-mode — and accumulates per-sample
/// mean and standard deviation of the (optionally sigmoid-squashed)
/// scalar output.
///
/// `sigmoid_output` converts the network logit to ROI space before the
/// statistics, matching the paper where r_hat(x) is the std of roi_hat.
/// Requires a single-column network output.
McDropoutStats RunMcDropout(nn::Network* net, const Matrix& x, int passes,
                            uint64_t seed, bool sigmoid_output);

}  // namespace roicl::core

#endif  // ROICL_CORE_MC_DROPOUT_H_
