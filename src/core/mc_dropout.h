#ifndef ROICL_CORE_MC_DROPOUT_H_
#define ROICL_CORE_MC_DROPOUT_H_

#include <cstdint>

#include "core/direct_model.h"
#include "nn/batch_forward.h"
#include "nn/network.h"

namespace roicl::core {

/// Monte-Carlo dropout inference (Gal & Ghahramani 2016; §IV-C2 of the
/// paper): runs `passes` forward passes in nn::Mode::kMcSample — dropout
/// active, everything else inference-mode — and accumulates per-sample
/// mean and standard deviation of the (optionally sigmoid-squashed)
/// scalar output.
///
/// Batched parallel engine: samples are split into row blocks of
/// `opts.batch_size`; blocks fan out across the ThreadPool per
/// `opts.num_threads`; within a block every pass is one batched forward.
/// The dropout draws for (sample i, pass p) come from the counter-based
/// stream MakeCounterRng(seed, p * n + i), and each block owns its rows'
/// accumulators with passes applied in ascending order — so the output is
/// bit-identical to the serial sweep at any batch size and thread count.
///
/// `sigmoid_output` converts the network logit to ROI space before the
/// statistics, matching the paper where r_hat(x) is the std of roi_hat.
/// Requires a single-column network output.
McDropoutStats RunMcDropout(nn::Network* net, const Matrix& x, int passes,
                            uint64_t seed, bool sigmoid_output,
                            const nn::BatchOptions& opts = {});

}  // namespace roicl::core

#endif  // ROICL_CORE_MC_DROPOUT_H_
