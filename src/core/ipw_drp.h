#ifndef ROICL_CORE_IPW_DRP_H_
#define ROICL_CORE_IPW_DRP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/direct_model.h"
#include "core/drp_model.h"
#include "data/scaler.h"
#include "nn/mlp.h"
#include "uplift/propensity.h"

namespace roicl::core {

/// IPW-DRP: Direct ROI Prediction on OBSERVATIONAL (non-RCT) data —
/// the paper's first future-work item (§VII). DRP's loss assumes random
/// treatment assignment; with confounding, its group means are biased.
/// IPW-DRP first fits a propensity model e(x), then trains the same DRP
/// network with inverse-propensity weights
///   w_i = t_i / e(x_i) + (1 - t_i) / (1 - e(x_i)),
/// which restores the RCT-like stationary point sigma(s*) = tau_r / tau_c
/// in expectation (Horvitz-Thompson re-weighting).
struct IpwDrpConfig {
  DrpConfig drp;
  uplift::PropensityConfig propensity;
};

class IpwDrpModel : public DirectRoiModel {
 public:
  explicit IpwDrpModel(const IpwDrpConfig& config) : config_(config) {}

  /// Fits the propensity model, derives IPW weights, and trains the DRP
  /// network with the weighted loss. `train` need NOT be an RCT.
  void Fit(const RctDataset& train) override;

  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::vector<double> PredictScore(const Matrix& x) const;
  using DirectRoiModel::PredictMcRoi;
  McDropoutStats PredictMcRoi(const Matrix& x, int passes, uint64_t seed,
                              const nn::BatchOptions& opts) const override;
  std::string name() const override { return "IPW-DRP"; }

  const uplift::PropensityModel& propensity() const { return *propensity_; }
  bool fitted() const { return net_ != nullptr; }

 private:
  IpwDrpConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<uplift::PropensityModel> propensity_;
  mutable std::unique_ptr<nn::Mlp> net_;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_IPW_DRP_H_
