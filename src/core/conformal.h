#ifndef ROICL_CORE_CONFORMAL_H_
#define ROICL_CORE_CONFORMAL_H_

#include <cstddef>
#include <vector>

#include "metrics/coverage.h"

namespace roicl::core {

/// The one floor applied to MC-dropout stds before Eq. (3) divides by
/// them. Shared by core (RdrpConfig, interval backends), pipeline and
/// monitor so a collapsed posterior is floored identically at
/// calibration, serving and recalibration time.
inline constexpr double kDefaultStdFloor = 1e-4;

/// Eq. (3): conformal scores on a calibration set,
///   score_i = |roi*_i - roi_hat_i| / r_hat_i,
/// where roi* is the loss-convergence ROI (global or per-bin), roi_hat the
/// DRP point estimate and r_hat the MC-dropout std. Stds are floored at
/// `std_floor` so a collapsed posterior cannot produce infinite scores.
std::vector<double> ConformalScores(const std::vector<double>& roi_star,
                                    const std::vector<double>& roi_hat,
                                    const std::vector<double>& r_hat,
                                    double std_floor = kDefaultStdFloor);

/// Convenience overload for the paper's global (scalar) roi*.
std::vector<double> ConformalScores(double roi_star,
                                    const std::vector<double>& roi_hat,
                                    const std::vector<double>& r_hat,
                                    double std_floor = kDefaultStdFloor);

/// Algorithm 3, steps 2-5: the ceil((1-alpha)(n+1))/n empirical quantile
/// q_hat of the calibration scores. Returns +inf for tiny calibration sets
/// where the rank exceeds n (intervals then trivially cover); that case
/// also emits a WARN log and bumps the `conformal.qhat_infinite` counter
/// so a starved calibration window is visible in the metrics snapshot.
double ConformalScoreQuantile(const std::vector<double>& scores,
                              double alpha);

/// Rolling-window entry point for online recalibration: the conformal
/// quantile over the most recent `window` scores (`scores` is in arrival
/// order; `window` of 0, or >= scores.size(), uses every score). Shares
/// ConformalScoreQuantile's metrics and starved-window warning, so a
/// sliding window that shrank below ceil((1-alpha)(n+1)) is loud.
double WindowedConformalScoreQuantile(const std::vector<double>& scores,
                                      std::size_t window, double alpha);

/// Algorithm 3, step 6: C(x) = [roi_hat - r_hat * q_hat,
///                              roi_hat + r_hat * q_hat] per sample.
std::vector<metrics::Interval> ConformalIntervals(
    const std::vector<double>& roi_hat, const std::vector<double>& r_hat,
    double q_hat, double std_floor = kDefaultStdFloor);

}  // namespace roicl::core

#endif  // ROICL_CORE_CONFORMAL_H_
