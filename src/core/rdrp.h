#ifndef ROICL_CORE_RDRP_H_
#define ROICL_CORE_RDRP_H_

#include <atomic>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/drp_model.h"
#include "core/interval_backend.h"
#include "metrics/coverage.h"

namespace roicl::core {

/// rDRP hyperparameters (§IV-C / Algorithm 4).
struct RdrpConfig {
  DrpConfig drp;
  /// Conformal error rate alpha: coverage target is 1 - alpha.
  double alpha = 0.1;
  /// MC-dropout forward passes (paper: 10-100).
  int mc_passes = 30;
  /// Floor applied to r_hat(x) before divisions.
  double std_floor = kDefaultStdFloor;
  /// Binary-search stopping constant of Algorithm 2.
  double epsilon = 1e-4;
  /// Intersect intervals with [0, 1]. Sound because ROI lives in (0, 1)
  /// by Assumption 3, so clipping never evicts the target; it only
  /// removes vacuous width when the uncertainty scalar misbehaves (the
  /// paper's SS VI caveat).
  bool clip_to_unit = true;
  /// Extension: per-score-bin roi* instead of the paper's single global
  /// convergence point (DESIGN.md §5).
  bool binned_roi_star = false;
  int roi_star_bins = 10;
  uint64_t mc_seed = 99;
  /// Which core::IntervalBackend turns calibration scores into serving
  /// intervals: "split" (Algorithm 3, the default), "weighted"
  /// (shift-reweighted quantile) or "cqr" (quantile-regression heads on
  /// normalized residuals). Validated by MakeIntervalBackend at fit time.
  std::string interval_backend = "split";
  /// Batched prediction-engine knobs (row-block size, thread count) for
  /// the MC-dropout sweep and the point forward live in `drp.predict`
  /// (CLI: --batch-size / --threads). Engine settings never change the
  /// produced bits, only throughput.
};

/// Robust Direct ROI Prediction (the paper's contribution, Algorithm 4).
///
/// Pipeline: train DRP on the training set; on the calibration set obtain
/// the point estimates, the Algorithm-2 convergence point roi*, the
/// MC-dropout stds r_hat(x) and the conformal quantile q_hat; select the
/// best heuristic calibration form (Eq. 5a-5c) by calibration-set AUCC;
/// at test time, re-run MC dropout and apply the selected form.
/// Plain Fit() (no calibration set) degrades to calibrating on the
/// training data — legal but weaker, as Assumption 6 no longer holds.
class RdrpModel : public uplift::RoiModel {
 public:
  explicit RdrpModel(const RdrpConfig& config)
      : config_(config), drp_(config.drp) {}

  // q_hat_ is an atomic (it can be swapped by the online recalibrator
  // while the serving path reads it), so the moves are hand-written.
  RdrpModel(RdrpModel&& other) noexcept;
  RdrpModel& operator=(RdrpModel&& other) noexcept;

  void Fit(const RctDataset& train) override {
    FitWithCalibration(train, train);
  }
  void FitWithCalibration(const RctDataset& train,
                          const RctDataset& calibration) override;

  /// Calibrated point estimates (the rDRP score used for ranking).
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override { return "rDRP"; }

  /// Rigorous conformal intervals C(x) with coverage >= 1 - alpha against
  /// the convergence-point target (Eq. 4).
  std::vector<metrics::Interval> PredictIntervals(const Matrix& x) const;

  /// Uncalibrated DRP point estimates (for ablations/diagnostics).
  std::vector<double> PredictPointRoi(const Matrix& x) const {
    return drp_.PredictRoi(x);
  }

  /// Floored MC-dropout stds r_hat(x) — the uncertainty scalar Eq. (3)
  /// divides by. Exposed so the online recalibrator can recompute
  /// conformal scores on a feedback window.
  std::vector<double> PredictMcStd(const Matrix& x) const {
    return McStdDev(x);
  }

  const DrpModel& drp() const { return drp_; }

  /// Feature dimension of the underlying DRP net (-1 before Fit/Load).
  int feature_dim() const { return drp_.feature_dim(); }

  /// Re-points the batched prediction engine for both the point forward
  /// and the MC-dropout sweep. Throughput knob only — bits never change.
  void set_predict_options(const nn::BatchOptions& opts) {
    config_.drp.predict = opts;
    drp_.set_predict_options(opts);
  }

  /// The interval backend fitted alongside the model (nullptr only for a
  /// bare Load() outside the pipeline artifact, where PredictIntervals
  /// falls back to the split arithmetic). The backend holds
  /// calibration-time state; the live swappable quantile is q_hat_.
  const IntervalBackend* interval_backend() const { return backend_.get(); }

  /// Installs a calibrated backend (the pipeline artifact's interval
  /// section, or a rebind). Never touches the live q_hat_ atomic — the
  /// caller decides whether to swap the serving quantile.
  Status AdoptIntervalBackend(std::unique_ptr<IntervalBackend> backend);

  double q_hat() const { return q_hat_.load(std::memory_order_relaxed); }
  /// Atomically swaps the conformal quantile in place — the online
  /// recalibration hook. A concurrent PredictRoi/PredictIntervals sees
  /// either the old or the new value, never a torn mix: each predict call
  /// loads q_hat exactly once. Requires a calibrated model and a finite,
  /// non-negative quantile.
  void set_q_hat(double q_hat);
  double roi_star() const { return roi_star_global_; }
  CalibrationForm selected_form() const { return form_; }
  bool calibrated() const { return calibrated_; }

  /// Serializes the full calibrated pipeline — the DRP network, the
  /// conformal quantile q_hat, roi*, and the selected form — so the
  /// deployed service only loads and predicts. Requires calibrated().
  Status Save(std::ostream& out) const;
  Status SaveToFile(const std::string& path) const;
  static StatusOr<RdrpModel> Load(std::istream& in,
                                  const RdrpConfig& config = RdrpConfig());
  static StatusOr<RdrpModel> LoadFromFile(
      const std::string& path, const RdrpConfig& config = RdrpConfig());

 private:
  std::vector<double> McStdDev(const Matrix& x) const;

  RdrpConfig config_;
  DrpModel drp_;
  bool calibrated_ = false;
  std::atomic<double> q_hat_{0.0};
  double roi_star_global_ = 0.0;
  CalibrationForm form_ = CalibrationForm::kNone;
  std::unique_ptr<IntervalBackend> backend_;
};

/// Ablation wrapper "<base> w/ MC" (Table II): combines a direct model's
/// point estimate with its MC-dropout std using the same heuristic forms
/// as rDRP but with q_hat fixed to 1 (no conformal scaling). The form is
/// selected on the calibration set. Applying conformal prediction on top
/// of this is exactly rDRP — so this wrapper isolates the MC contribution.
class McCalibratedModel : public uplift::RoiModel {
 public:
  McCalibratedModel(std::unique_ptr<DirectRoiModel> base, int mc_passes = 30,
                    uint64_t mc_seed = 99);

  void Fit(const RctDataset& train) override {
    FitWithCalibration(train, train);
  }
  void FitWithCalibration(const RctDataset& train,
                          const RctDataset& calibration) override;
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override;

  CalibrationForm selected_form() const { return form_; }
  const DirectRoiModel& base() const { return *base_; }

 private:
  std::unique_ptr<DirectRoiModel> base_;
  int mc_passes_;
  uint64_t mc_seed_;
  bool calibrated_ = false;
  CalibrationForm form_ = CalibrationForm::kNone;
};

}  // namespace roicl::core

#endif  // ROICL_CORE_RDRP_H_
