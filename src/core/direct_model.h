#ifndef ROICL_CORE_DIRECT_MODEL_H_
#define ROICL_CORE_DIRECT_MODEL_H_

#include <vector>

#include "nn/batch_forward.h"
#include "uplift/roi_model.h"

namespace roicl::core {

/// Per-sample Monte-Carlo-dropout statistics of the predicted ROI:
/// `mean[i]` and `stddev[i]` over the stochastic forward passes.
struct McDropoutStats {
  std::vector<double> mean;
  std::vector<double> stddev;
};

/// A model that predicts ROI *directly* with a single neural network —
/// DRP and Direct Rank. Only direct models support MC dropout
/// uncertainty: TPM cannot, because the std of a ratio is not the ratio of
/// stds (the paper's ablation-study argument, §V-B).
class DirectRoiModel : public uplift::RoiModel {
 public:
  /// Runs `passes` stochastic forward passes (dropout active) and returns
  /// per-sample mean and standard deviation of the ROI prediction. This is
  /// r_hat(x) of Eq. (3). Deterministic given `seed`: `opts` only selects
  /// the batch size and thread count of the engine, never the bits of the
  /// result (counter-based per-(sample, pass) RNG streams).
  virtual McDropoutStats PredictMcRoi(
      const Matrix& x, int passes, uint64_t seed,
      const nn::BatchOptions& opts) const = 0;

  /// Convenience overload with default engine options.
  McDropoutStats PredictMcRoi(const Matrix& x, int passes,
                              uint64_t seed) const {
    return PredictMcRoi(x, passes, seed, nn::BatchOptions());
  }
};

}  // namespace roicl::core

#endif  // ROICL_CORE_DIRECT_MODEL_H_
