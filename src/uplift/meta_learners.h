#ifndef ROICL_UPLIFT_META_LEARNERS_H_
#define ROICL_UPLIFT_META_LEARNERS_H_

#include <memory>
#include <vector>

#include "uplift/cate_model.h"
#include "uplift/regressor.h"

namespace roicl::uplift {

/// S-Learner (Künzel et al. 2019): one regressor on the augmented design
/// [X, t]; tau(x) = f(x, 1) - f(x, 0).
class SLearner : public CateModel {
 public:
  explicit SLearner(RegressorFactory base_factory)
      : base_factory_(std::move(base_factory)) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

  /// Delegates to the base regressor's Save/Load ("roicl-slearner-v1"
  /// envelope); Load builds a fresh base learner from the factory.
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;

 private:
  RegressorFactory base_factory_;
  std::unique_ptr<Regressor> model_;
};

/// T-Learner: independent outcome regressors per arm;
/// tau(x) = mu1(x) - mu0(x). (Building block for the X-learner; also a
/// useful standalone baseline.)
class TLearner : public CateModel {
 public:
  explicit TLearner(RegressorFactory base_factory)
      : base_factory_(std::move(base_factory)) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

  const Regressor* mu0() const { return mu0_.get(); }
  const Regressor* mu1() const { return mu1_.get(); }

 private:
  RegressorFactory base_factory_;
  std::unique_ptr<Regressor> mu0_;
  std::unique_ptr<Regressor> mu1_;
};

/// X-Learner (Künzel et al. 2019): stage 1 fits per-arm outcome models;
/// stage 2 regresses the imputed individual effects
///   D1_i = y_i - mu0(x_i) (treated), D0_i = mu1(x_i) - y_i (control);
/// the final effect blends the two stage-2 models with the propensity
/// e(x): tau = e * tau0 + (1 - e) * tau1. Under RCT data e = P(T=1) is a
/// constant estimated from the sample.
class XLearner : public CateModel {
 public:
  explicit XLearner(RegressorFactory base_factory)
      : base_factory_(std::move(base_factory)) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

  /// Serializes the two stage-2 regressors plus the estimated propensity
  /// ("roicl-xlearner-v1"); Load builds fresh base learners from the
  /// factory.
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;

 private:
  RegressorFactory base_factory_;
  std::unique_ptr<Regressor> tau0_;
  std::unique_ptr<Regressor> tau1_;
  double propensity_ = 0.5;
};

/// DR-Learner (doubly robust; Kennedy 2020 / Athey-Wager policy
/// learning lineage): stage 1 fits per-arm outcome models mu0, mu1; the
/// doubly robust pseudo-outcome
///   psi_i = mu1(x_i) - mu0(x_i)
///         + t_i (y_i - mu1(x_i)) / e - (1 - t_i)(y_i - mu0(x_i)) / (1 - e)
/// is regressed on x in stage 2. Under RCT data the propensity e is the
/// sample treated fraction.
class DrLearner : public CateModel {
 public:
  explicit DrLearner(RegressorFactory base_factory)
      : base_factory_(std::move(base_factory)) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

 private:
  RegressorFactory base_factory_;
  std::unique_ptr<Regressor> tau_;
};

/// R-Learner (Nie & Wager 2021), RCT specialization: with m(x) = E[y|x]
/// and constant propensity e, the R-loss
///   sum_i ((y_i - m(x_i)) - (t_i - e) tau(x_i))^2
/// is minimized by the weighted regression of
/// (y_i - m(x_i)) / (t_i - e) on x_i with weights (t_i - e)^2. Under an
/// RCT the propensity is constant, so the weights are uniform and plain
/// regression on the transformed pseudo-outcome suffices.
class RLearner : public CateModel {
 public:
  explicit RLearner(RegressorFactory base_factory)
      : base_factory_(std::move(base_factory)) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

 private:
  RegressorFactory base_factory_;
  std::unique_ptr<Regressor> tau_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_META_LEARNERS_H_
