#ifndef ROICL_UPLIFT_ROI_MODEL_H_
#define ROICL_UPLIFT_ROI_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace roicl::uplift {

/// A model that ranks individuals by predicted ROI = tau_r(x) / tau_c(x).
///
/// Every benchmark method in Tables I/II implements this interface: the
/// seven TPM baselines, Direct Rank, DRP and rDRP. Models that use a
/// calibration set (rDRP) override FitWithCalibration; the default simply
/// ignores the calibration data, which is correct for all point-estimate
/// methods.
class RoiModel {
 public:
  virtual ~RoiModel() = default;

  /// Fits on RCT training data.
  virtual void Fit(const RctDataset& train) = 0;

  /// Fits with an extra calibration set (Algorithm 4 of the paper).
  /// Default: delegate to Fit and ignore the calibration data.
  virtual void FitWithCalibration(const RctDataset& train,
                                  const RctDataset& calibration) {
    (void)calibration;
    Fit(train);
  }

  /// Predicted ROI (or any monotone score of it) for each row of `x`.
  virtual std::vector<double> PredictRoi(const Matrix& x) const = 0;

  /// Display name used in benchmark tables.
  virtual std::string name() const = 0;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_ROI_MODEL_H_
