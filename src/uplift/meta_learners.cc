#include "uplift/meta_learners.h"

#include <iomanip>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::uplift {
namespace {

/// Splits row indices by treatment arm.
void SplitByArm(const std::vector<int>& treatment, std::vector<int>* treated,
                std::vector<int>* control) {
  for (size_t i = 0; i < treatment.size(); ++i) {
    (treatment[i] == 1 ? treated : control)
        ->push_back(static_cast<int>(i));
  }
  ROICL_CHECK_MSG(!treated->empty() && !control->empty(),
                  "both treatment arms are required");
}

std::vector<double> SelectValues(const std::vector<double>& values,
                                 const std::vector<int>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(values[AsSize(i)]);
  return out;
}

}  // namespace

void SLearner::Fit(const Matrix& x, const std::vector<int>& treatment,
                   const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  Matrix t_col(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    t_col(r, 0) = static_cast<double>(treatment[AsSize(r)]);
  }
  Matrix augmented = HStack(x, t_col);
  model_ = base_factory_();
  model_->Fit(augmented, y);
}

std::vector<double> SLearner::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(model_ != nullptr, "PredictCate() before Fit()");
  Matrix ones(x.rows(), 1, 1.0);
  Matrix zeros(x.rows(), 1, 0.0);
  std::vector<double> mu1 = model_->Predict(HStack(x, ones));
  std::vector<double> mu0 = model_->Predict(HStack(x, zeros));
  std::vector<double> tau(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    tau[AsSize(i)] = mu1[AsSize(i)] - mu0[AsSize(i)];
  }
  return tau;
}

Status SLearner::Save(std::ostream& out) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("s-learner not fitted");
  }
  out << "roicl-slearner-v1\n";
  if (Status status = model_->Save(out); !status.ok()) return status;
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status SLearner::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-slearner-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-slearner-v1)");
  }
  std::unique_ptr<Regressor> model = base_factory_();
  if (Status status = model->Load(in); !status.ok()) return status;
  model_ = std::move(model);
  return Status::Ok();
}

void TLearner::Fit(const Matrix& x, const std::vector<int>& treatment,
                   const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  std::vector<int> treated, control;
  SplitByArm(treatment, &treated, &control);
  mu1_ = base_factory_();
  mu1_->Fit(x.SelectRows(treated), SelectValues(y, treated));
  mu0_ = base_factory_();
  mu0_->Fit(x.SelectRows(control), SelectValues(y, control));
}

std::vector<double> TLearner::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(mu0_ != nullptr && mu1_ != nullptr,
                  "PredictCate() before Fit()");
  std::vector<double> mu1 = mu1_->Predict(x);
  std::vector<double> mu0 = mu0_->Predict(x);
  std::vector<double> tau(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    tau[AsSize(i)] = mu1[AsSize(i)] - mu0[AsSize(i)];
  }
  return tau;
}

void XLearner::Fit(const Matrix& x, const std::vector<int>& treatment,
                   const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  std::vector<int> treated, control;
  SplitByArm(treatment, &treated, &control);

  // Stage 1: per-arm outcome models.
  TLearner stage1(base_factory_);
  stage1.Fit(x, treatment, y);

  Matrix x_treated = x.SelectRows(treated);
  Matrix x_control = x.SelectRows(control);

  // Stage 2: imputed individual treatment effects.
  std::vector<double> mu0_on_treated = stage1.mu0()->Predict(x_treated);
  std::vector<double> mu1_on_control = stage1.mu1()->Predict(x_control);
  std::vector<double> d1(treated.size());
  for (size_t i = 0; i < treated.size(); ++i) {
    d1[i] = y[AsSize(treated[i])] - mu0_on_treated[i];
  }
  std::vector<double> d0(control.size());
  for (size_t i = 0; i < control.size(); ++i) {
    d0[i] = mu1_on_control[i] - y[AsSize(control[i])];
  }
  tau1_ = base_factory_();
  tau1_->Fit(x_treated, d1);
  tau0_ = base_factory_();
  tau0_->Fit(x_control, d0);

  propensity_ = static_cast<double>(treated.size()) /
                static_cast<double>(treatment.size());
}

std::vector<double> XLearner::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(tau0_ != nullptr && tau1_ != nullptr,
                  "PredictCate() before Fit()");
  std::vector<double> t0 = tau0_->Predict(x);
  std::vector<double> t1 = tau1_->Predict(x);
  std::vector<double> tau(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    tau[AsSize(i)] =
        propensity_ * t0[AsSize(i)] + (1.0 - propensity_) * t1[AsSize(i)];
  }
  return tau;
}

Status XLearner::Save(std::ostream& out) const {
  if (tau0_ == nullptr || tau1_ == nullptr) {
    return Status::FailedPrecondition("x-learner not fitted");
  }
  out << "roicl-xlearner-v1\n"
      << std::setprecision(17) << propensity_ << '\n';
  if (Status status = tau0_->Save(out); !status.ok()) return status;
  if (Status status = tau1_->Save(out); !status.ok()) return status;
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status XLearner::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-xlearner-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-xlearner-v1)");
  }
  double propensity = 0.0;
  if (!(in >> propensity) || !(propensity > 0.0 && propensity < 1.0)) {
    return Status::InvalidArgument(
        "x-learner propensity must be in (0, 1)");
  }
  std::unique_ptr<Regressor> tau0 = base_factory_();
  if (Status status = tau0->Load(in); !status.ok()) return status;
  std::unique_ptr<Regressor> tau1 = base_factory_();
  if (Status status = tau1->Load(in); !status.ok()) return status;
  tau0_ = std::move(tau0);
  tau1_ = std::move(tau1);
  propensity_ = propensity;
  return Status::Ok();
}

void DrLearner::Fit(const Matrix& x, const std::vector<int>& treatment,
                    const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  TLearner stage1(base_factory_);
  stage1.Fit(x, treatment, y);
  std::vector<double> mu0 = stage1.mu0()->Predict(x);
  std::vector<double> mu1 = stage1.mu1()->Predict(x);

  int n1 = 0;
  for (int t : treatment) n1 += (t == 1);
  double e = static_cast<double>(n1) / static_cast<double>(treatment.size());
  ROICL_CHECK_MSG(e > 0.0 && e < 1.0, "both arms required");

  std::vector<double> psi(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    double correction =
        treatment[i] == 1 ? (y[i] - mu1[i]) / e : -(y[i] - mu0[i]) / (1 - e);
    psi[i] = mu1[i] - mu0[i] + correction;
  }
  tau_ = base_factory_();
  tau_->Fit(x, psi);
}

std::vector<double> DrLearner::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(tau_ != nullptr, "PredictCate() before Fit()");
  return tau_->Predict(x);
}

void RLearner::Fit(const Matrix& x, const std::vector<int>& treatment,
                   const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  // Nuisance m(x) = E[y | x], fit on the pooled sample.
  std::unique_ptr<Regressor> m = base_factory_();
  m->Fit(x, y);
  std::vector<double> m_hat = m->Predict(x);

  int n1 = 0;
  for (int t : treatment) n1 += (t == 1);
  double e = static_cast<double>(n1) / static_cast<double>(treatment.size());
  ROICL_CHECK_MSG(e > 0.0 && e < 1.0, "both arms required");

  // RCT specialization: constant propensity -> uniform R-loss weights,
  // pseudo-outcome (y - m) / (t - e).
  std::vector<double> pseudo(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    double denom = static_cast<double>(treatment[i]) - e;
    pseudo[i] = (y[i] - m_hat[i]) / denom;
  }
  tau_ = base_factory_();
  tau_->Fit(x, pseudo);
}

std::vector<double> RLearner::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(tau_ != nullptr, "PredictCate() before Fit()");
  return tau_->Predict(x);
}

}  // namespace roicl::uplift
