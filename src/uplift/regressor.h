#ifndef ROICL_UPLIFT_REGRESSOR_H_
#define ROICL_UPLIFT_REGRESSOR_H_

#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "trees/random_forest.h"

namespace roicl::uplift {

/// Generic supervised regressor — the pluggable base learner used by the
/// S- and X-meta-learners.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void Fit(const Matrix& x, const std::vector<double>& y) = 0;
  virtual std::vector<double> Predict(const Matrix& x) const = 0;

  /// Serialization hooks. Concrete learners that can round-trip their
  /// fitted state override both; the defaults return FailedPrecondition
  /// so unsupported learners fail loudly instead of writing garbage.
  virtual Status Save(std::ostream& /*out*/) const {
    return Status::FailedPrecondition(
        "regressor does not support serialization");
  }
  virtual Status Load(std::istream& /*in*/) {
    return Status::FailedPrecondition(
        "regressor does not support serialization");
  }
};

/// Factory producing fresh base learners (meta-learners need several
/// independent instances).
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// L2-regularized linear regression via the normal equations.
class RidgeRegressor : public Regressor {
 public:
  explicit RidgeRegressor(double lambda = 1.0) : lambda_(lambda) {}

  void Fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const Matrix& x) const override;

  /// Writes the fitted weight vector ("roicl-ridge-v1"). Requires Fit().
  Status Save(std::ostream& out) const override;
  /// Restores weights written by Save(); malformed input returns a
  /// descriptive Status and leaves the regressor unchanged.
  Status Load(std::istream& in) override;

 private:
  double lambda_;
  std::vector<double> weights_;  // last entry is the intercept
};

/// Random-forest regressor adapter over trees::RandomForestRegressor.
class ForestRegressor : public Regressor {
 public:
  explicit ForestRegressor(const trees::ForestConfig& config)
      : forest_(config) {}

  void Fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const Matrix& x) const override;

  Status Save(std::ostream& out) const override { return forest_.Save(out); }
  Status Load(std::istream& in) override { return forest_.Load(in); }

 private:
  trees::RandomForestRegressor forest_;
};

/// Convenience factories.
RegressorFactory MakeRidgeFactory(double lambda = 1.0);
RegressorFactory MakeForestFactory(const trees::ForestConfig& config);

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_REGRESSOR_H_
