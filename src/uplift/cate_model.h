#ifndef ROICL_UPLIFT_CATE_MODEL_H_
#define ROICL_UPLIFT_CATE_MODEL_H_

#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace roicl::uplift {

/// A CATE (uplift) estimator for one outcome column: fits on
/// (X, t, y) and predicts tau(x) = E[Y(1) - Y(0) | X = x].
///
/// The Two-Phase Method (TPM) composes two of these — one for revenue and
/// one for cost — and divides the predictions (§II-A of the paper, with
/// the error-amplification caveat the paper highlights).
class CateModel {
 public:
  virtual ~CateModel() = default;

  virtual void Fit(const Matrix& x, const std::vector<int>& treatment,
                   const std::vector<double>& y) = 0;

  virtual std::vector<double> PredictCate(const Matrix& x) const = 0;

  /// Serialization hooks. Models that can round-trip their fitted state
  /// override both; the defaults fail loudly so unsupported models never
  /// silently write or read garbage.
  virtual Status Save(std::ostream& /*out*/) const {
    return Status::FailedPrecondition(
        "cate model does not support serialization");
  }
  virtual Status Load(std::istream& /*in*/) {
    return Status::FailedPrecondition(
        "cate model does not support serialization");
  }
};

/// Factory producing fresh CATE models (TPM needs two independent ones).
using CateModelFactory = std::function<std::unique_ptr<CateModel>()>;

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_CATE_MODEL_H_
