#ifndef ROICL_UPLIFT_TPM_H_
#define ROICL_UPLIFT_TPM_H_

#include <memory>
#include <string>
#include <vector>

#include "uplift/cate_model.h"
#include "uplift/roi_model.h"

namespace roicl::uplift {

/// Two-Phase Method (TPM): fit one uplift model for the revenue outcome
/// and one for the cost outcome, then score individuals by
///   roi(x) = tau_r(x) / max(tau_c(x), floor).
///
/// The division is exactly the error-amplification step the paper
/// criticizes (§I, §II-A) — TPM is the family of baselines in Table I
/// (TPM-SL, TPM-XL, TPM-CF, TPM-DragonNet, TPM-TARNet, TPM-OffsetNet,
/// TPM-SNet), differing only in the CATE model plugged in.
class TpmRoiModel : public RoiModel {
 public:
  /// `display_name` e.g. "TPM-SL". `cost_floor` guards the division when
  /// the cost-uplift prediction collapses toward zero.
  TpmRoiModel(std::string display_name, CateModelFactory factory,
              double cost_floor = 1e-3);

  void Fit(const RctDataset& train) override;
  std::vector<double> PredictRoi(const Matrix& x) const override;
  std::string name() const override { return display_name_; }

  /// Serializes the revenue and cost CATE models ("roicl-tpm-v1").
  /// Requires Fit() and a CATE family that supports serialization.
  Status Save(std::ostream& out) const;
  /// Restores a pair written by Save() into fresh factory instances.
  Status Load(std::istream& in);

  /// Feature dimension recorded at Fit() time (-1 before Fit/Load).
  int feature_dim() const { return feature_dim_; }

 private:
  std::string display_name_;
  CateModelFactory factory_;
  double cost_floor_;
  int feature_dim_ = -1;
  std::unique_ptr<CateModel> revenue_model_;
  std::unique_ptr<CateModel> cost_model_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_TPM_H_
