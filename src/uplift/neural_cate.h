#ifndef ROICL_UPLIFT_NEURAL_CATE_H_
#define ROICL_UPLIFT_NEURAL_CATE_H_

#include <memory>
#include <vector>

#include "data/scaler.h"
#include "nn/trainer.h"
#include "uplift/cate_model.h"
#include "uplift/multi_head_net.h"

namespace roicl::uplift {

/// Shared hyperparameters for the neural CATE baselines.
struct NeuralCateConfig {
  std::vector<int> trunk_hidden = {32};
  std::vector<int> head_hidden = {16};
  nn::ActivationKind activation = nn::ActivationKind::kElu;
  double dropout = 0.0;
  nn::TrainConfig train;
  /// DragonNet only: weight of the propensity (treatment) head loss.
  double propensity_weight = 1.0;
  uint64_t seed = 33;
};

/// Which representation-learning architecture to instantiate.
enum class NeuralCateKind {
  kTarnet,     ///< Shalit et al. 2017: trunk + per-arm outcome heads.
  kDragonnet,  ///< Shi et al. 2019: TARNet + propensity head (targeted
               ///< regularization omitted; the propensity head still
               ///< shapes the representation, which is the main effect on
               ///< RCT data where propensity is constant anyway).
  kOffsetnet,  ///< Curth & van der Schaar 2021: base head mu0 and offset
               ///< head delta with y_hat = mu0 + t * delta.
  kSnet,       ///< Curth & van der Schaar 2021 (simplified): disentangled
               ///< shared + arm-specific representations.
};

/// Neural CATE estimator covering TARNet / DragonNet / OffsetNet / SNet.
/// Features are standardized internally (scaler fit on the training set).
class NeuralCate : public CateModel {
 public:
  NeuralCate(NeuralCateKind kind, const NeuralCateConfig& config)
      : kind_(kind), config_(config) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override;
  std::vector<double> PredictCate(const Matrix& x) const override;

  /// Serializes scaler moments plus the flat parameter blob
  /// ("roicl-ncate-v1"). Requires Fit().
  Status Save(std::ostream& out) const override;
  /// Rebuilds the architecture from this model's config (kind, widths,
  /// seed) and restores the saved parameters; shape mismatches return a
  /// descriptive Status.
  Status Load(std::istream& in) override;

  NeuralCateKind kind() const { return kind_; }

 private:
  NeuralCateKind kind_;
  NeuralCateConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<nn::Network> net_;
};

/// Convenience factory.
CateModelFactory MakeNeuralCateFactory(NeuralCateKind kind,
                                       const NeuralCateConfig& config);

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_NEURAL_CATE_H_
