#include "uplift/propensity.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "nn/batch_forward.h"
#include "nn/loss.h"

namespace roicl::uplift {

void PropensityModel::Fit(const Matrix& x,
                          const std::vector<int>& treatment) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(x.rows() > 0);
  Matrix x_scaled = scaler_.FitTransform(x);

  Rng rng(config_.seed, /*stream=*/53);
  net_ = std::make_unique<nn::Mlp>(
      nn::Mlp::MakeMlp(x.cols(), config_.hidden, /*output_dim=*/1,
                       nn::ActivationKind::kRelu, /*dropout_rate=*/0.0,
                       &rng));

  std::vector<double> targets(treatment.size());
  for (size_t i = 0; i < treatment.size(); ++i) {
    targets[i] = static_cast<double>(treatment[i]);
  }
  nn::BceWithLogitsLoss loss(&targets);
  std::vector<int> index(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) index[AsSize(i)] = i;
  nn::TrainNetwork(net_.get(), x_scaled, index, {}, loss, config_.train);
}

std::vector<double> PropensityModel::Predict(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = nn::BatchedInferForward(net_.get(), x_scaled);
  std::vector<double> e(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    e[AsSize(i)] = Clamp(Sigmoid(out(i, 0)), config_.clip_lo, config_.clip_hi);
  }
  return e;
}

std::vector<double> PropensityModel::InverseWeights(
    const Matrix& x, const std::vector<int>& treatment,
    bool stabilized) const {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  std::vector<double> e = Predict(x);
  double p1 = 1.0, p0 = 1.0;
  if (stabilized) {
    int n1 = 0;
    for (int t : treatment) n1 += (t == 1);
    p1 = static_cast<double>(n1) / static_cast<double>(treatment.size());
    p0 = 1.0 - p1;
  }
  std::vector<double> weights(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    weights[i] = treatment[i] == 1 ? p1 / e[i] : p0 / (1.0 - e[i]);
  }
  return weights;
}

}  // namespace roicl::uplift
