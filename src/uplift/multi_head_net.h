#ifndef ROICL_UPLIFT_MULTI_HEAD_NET_H_
#define ROICL_UPLIFT_MULTI_HEAD_NET_H_

#include <vector>

#include "nn/mlp.h"
#include "nn/network.h"

namespace roicl::uplift {

/// Shared-representation multi-head network: a trunk MLP produces a
/// representation phi(x); each head MLP maps phi(x) to one output column.
/// Forward output is the horizontal concatenation of the head outputs.
///
/// This is the common skeleton of TARNet (two outcome heads), DragonNet
/// (two outcome heads + a propensity head) and OffsetNet (a base head and
/// an offset head).
class MultiHeadNet : public nn::Network {
 public:
  MultiHeadNet(nn::Mlp trunk, std::vector<nn::Mlp> heads);

  /// Convenience builder for the K-arm campaign nets: a trunk
  /// `input_dim -> trunk_hidden -> trunk_out` feeding `num_heads` heads
  /// `trunk_out -> head_hidden -> 1`, one per treatment arm. All layers
  /// share the activation and dropout rate; initialization draws from
  /// `rng` in a fixed order (trunk, then heads ascending), so a given
  /// seed rebuilds the identical architecture and initial weights.
  static MultiHeadNet MakeKHead(int input_dim,
                                const std::vector<int>& trunk_hidden,
                                int trunk_out, int num_heads,
                                const std::vector<int>& head_hidden,
                                nn::ActivationKind activation,
                                double dropout_rate, Rng* rng);

  Matrix Forward(const Matrix& input, nn::Mode mode, Rng* rng) override;

  /// Inference-only forward with per-row RNG streams, chained through the
  /// trunk and every head so stochastic masks stay partition-independent
  /// (see nn::RowRngs). Required by the batched prediction engine.
  Matrix ForwardRows(const Matrix& input, nn::Mode mode,
                     nn::RowRngs* row_rngs) override;

  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override;
  std::vector<Matrix*> Grads() override;

  int num_heads() const { return static_cast<int>(heads_.size()); }

 private:
  nn::Mlp trunk_;
  std::vector<nn::Mlp> heads_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_MULTI_HEAD_NET_H_
