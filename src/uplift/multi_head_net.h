#ifndef ROICL_UPLIFT_MULTI_HEAD_NET_H_
#define ROICL_UPLIFT_MULTI_HEAD_NET_H_

#include <vector>

#include "nn/mlp.h"
#include "nn/network.h"

namespace roicl::uplift {

/// Shared-representation multi-head network: a trunk MLP produces a
/// representation phi(x); each head MLP maps phi(x) to one output column.
/// Forward output is the horizontal concatenation of the head outputs.
///
/// This is the common skeleton of TARNet (two outcome heads), DragonNet
/// (two outcome heads + a propensity head) and OffsetNet (a base head and
/// an offset head).
class MultiHeadNet : public nn::Network {
 public:
  MultiHeadNet(nn::Mlp trunk, std::vector<nn::Mlp> heads);

  Matrix Forward(const Matrix& input, nn::Mode mode, Rng* rng) override;

  /// Inference-only forward with per-row RNG streams, chained through the
  /// trunk and every head so stochastic masks stay partition-independent
  /// (see nn::RowRngs). Required by the batched prediction engine.
  Matrix ForwardRows(const Matrix& input, nn::Mode mode,
                     nn::RowRngs* row_rngs) override;

  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override;
  std::vector<Matrix*> Grads() override;

  int num_heads() const { return static_cast<int>(heads_.size()); }

 private:
  nn::Mlp trunk_;
  std::vector<nn::Mlp> heads_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_MULTI_HEAD_NET_H_
