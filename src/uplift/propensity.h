#ifndef ROICL_UPLIFT_PROPENSITY_H_
#define ROICL_UPLIFT_PROPENSITY_H_

#include <memory>
#include <vector>

#include "data/scaler.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace roicl::uplift {

/// Propensity estimator e(x) = P(T = 1 | X = x) for observational data:
/// a (optionally shallow) logistic network trained with BCE on logits.
/// Predictions are clipped away from {0, 1} so inverse-propensity weights
/// stay bounded.
struct PropensityConfig {
  /// Empty = plain logistic regression; otherwise hidden widths.
  std::vector<int> hidden = {};
  nn::TrainConfig train;
  /// Clip range of the predicted propensity.
  double clip_lo = 0.05;
  double clip_hi = 0.95;
  uint64_t seed = 61;
};

class PropensityModel {
 public:
  explicit PropensityModel(const PropensityConfig& config)
      : config_(config) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment);

  /// Clipped propensity estimates for each row of x.
  std::vector<double> Predict(const Matrix& x) const;

  /// Inverse-propensity weights. `stabilized` (default) multiplies by the
  /// marginal arm rates — w = t * p1 / e(x) + (1 - t)(1 - p1)/(1 - e(x)) —
  /// which leaves expectations identical but sharply reduces weight
  /// variance (Robins' stabilized weights).
  std::vector<double> InverseWeights(const Matrix& x,
                                     const std::vector<int>& treatment,
                                     bool stabilized = true) const;

  bool fitted() const { return net_ != nullptr; }

 private:
  PropensityConfig config_;
  StandardScaler scaler_;
  mutable std::unique_ptr<nn::Mlp> net_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_PROPENSITY_H_
