#include "uplift/neural_cate.h"

#include <cmath>
#include <iomanip>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "nn/batch_forward.h"
#include "nn/serialize.h"

namespace roicl::uplift {
namespace {

/// TARNet / SNet loss: squared error on the head matching the realized
/// arm. preds: [mu0, mu1].
class FactualMseLoss : public nn::BatchLoss {
 public:
  FactualMseLoss(const std::vector<int>* treatment,
                 const std::vector<double>* y)
      : treatment_(treatment), y_(y) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(preds.cols() == 2);
    *grad = Matrix(preds.rows(), 2);
    double n = static_cast<double>(preds.rows());
    double loss = 0.0;
    for (int i = 0; i < preds.rows(); ++i) {
      int row = index[AsSize(i)];
      int col = (*treatment_)[AsSize(row)];
      double diff = preds(i, col) - (*y_)[AsSize(row)];
      loss += diff * diff;
      (*grad)(i, col) = 2.0 * diff / n;
    }
    return loss / n;
  }
  int output_dim() const override { return 2; }

 private:
  const std::vector<int>* treatment_;
  const std::vector<double>* y_;
};

/// DragonNet loss: factual MSE on [mu0, mu1] plus alpha * BCE on the
/// propensity logit column. preds: [mu0, mu1, g_logit].
class DragonnetLoss : public nn::BatchLoss {
 public:
  DragonnetLoss(const std::vector<int>* treatment,
                const std::vector<double>* y, double alpha)
      : treatment_(treatment), y_(y), alpha_(alpha) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(preds.cols() == 3);
    *grad = Matrix(preds.rows(), 3);
    double n = static_cast<double>(preds.rows());
    double loss = 0.0;
    for (int i = 0; i < preds.rows(); ++i) {
      int row = index[AsSize(i)];
      int t = (*treatment_)[AsSize(row)];
      double diff = preds(i, t) - (*y_)[AsSize(row)];
      loss += diff * diff;
      (*grad)(i, t) = 2.0 * diff / n;

      double z = preds(i, 2);
      double yt = static_cast<double>(t);
      loss += alpha_ * (std::max(z, 0.0) - z * yt +
                        std::log1p(std::exp(-std::fabs(z))));
      (*grad)(i, 2) = alpha_ * (Sigmoid(z) - yt) / n;
    }
    return loss / n;
  }
  int output_dim() const override { return 3; }

 private:
  const std::vector<int>* treatment_;
  const std::vector<double>* y_;
  double alpha_;
};

/// OffsetNet loss: y_hat = mu0 + t * delta, squared error.
/// preds: [mu0, delta].
class OffsetLoss : public nn::BatchLoss {
 public:
  OffsetLoss(const std::vector<int>* treatment, const std::vector<double>* y)
      : treatment_(treatment), y_(y) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(preds.cols() == 2);
    *grad = Matrix(preds.rows(), 2);
    double n = static_cast<double>(preds.rows());
    double loss = 0.0;
    for (int i = 0; i < preds.rows(); ++i) {
      int row = index[AsSize(i)];
      double t = static_cast<double>((*treatment_)[AsSize(row)]);
      double y_hat = preds(i, 0) + t * preds(i, 1);
      double diff = y_hat - (*y_)[AsSize(row)];
      loss += diff * diff;
      (*grad)(i, 0) = 2.0 * diff / n;
      (*grad)(i, 1) = 2.0 * diff * t / n;
    }
    return loss / n;
  }
  int output_dim() const override { return 2; }

 private:
  const std::vector<int>* treatment_;
  const std::vector<double>* y_;
};

/// SNet (simplified, Curth & van der Schaar 2021): three representation
/// trunks — one shared, one per arm — with each outcome head consuming
/// [shared, arm-specific]. Output: [mu0, mu1].
class SNetNetwork : public nn::Network {
 public:
  SNetNetwork(int input_dim, const NeuralCateConfig& config, Rng* rng)
      : shared_dim_(config.trunk_hidden.back()),
        specific_dim_(std::max(2, config.trunk_hidden.back() / 2)) {
    shared_ = nn::Mlp::MakeMlp(input_dim, config.trunk_hidden, shared_dim_,
                               config.activation, config.dropout, rng);
    phi0_ = nn::Mlp::MakeMlp(input_dim, config.trunk_hidden, specific_dim_,
                             config.activation, config.dropout, rng);
    phi1_ = nn::Mlp::MakeMlp(input_dim, config.trunk_hidden, specific_dim_,
                             config.activation, config.dropout, rng);
    head0_ = nn::Mlp::MakeMlp(shared_dim_ + specific_dim_,
                              config.head_hidden, 1, config.activation,
                              config.dropout, rng);
    head1_ = nn::Mlp::MakeMlp(shared_dim_ + specific_dim_,
                              config.head_hidden, 1, config.activation,
                              config.dropout, rng);
  }

  Matrix Forward(const Matrix& input, nn::Mode mode, Rng* rng) override {
    Matrix s = shared_.Forward(input, mode, rng);
    Matrix p0 = phi0_.Forward(input, mode, rng);
    Matrix p1 = phi1_.Forward(input, mode, rng);
    Matrix h0 = head0_.Forward(HStack(s, p0), mode, rng);
    Matrix h1 = head1_.Forward(HStack(s, p1), mode, rng);
    Matrix out(input.rows(), 2);
    for (int r = 0; r < input.rows(); ++r) {
      out(r, 0) = h0(r, 0);
      out(r, 1) = h1(r, 0);
    }
    return out;
  }

  Matrix Backward(const Matrix& grad_output) override {
    ROICL_CHECK(grad_output.cols() == 2);
    int n = grad_output.rows();
    Matrix g0(n, 1), g1(n, 1);
    for (int r = 0; r < n; ++r) {
      g0(r, 0) = grad_output(r, 0);
      g1(r, 0) = grad_output(r, 1);
    }
    Matrix gin0 = head0_.Backward(g0);  // n x (shared + specific)
    Matrix gin1 = head1_.Backward(g1);
    Matrix g_shared(n, shared_dim_);
    Matrix gp0(n, specific_dim_), gp1(n, specific_dim_);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < shared_dim_; ++c) {
        g_shared(r, c) = gin0(r, c) + gin1(r, c);
      }
      for (int c = 0; c < specific_dim_; ++c) {
        gp0(r, c) = gin0(r, shared_dim_ + c);
        gp1(r, c) = gin1(r, shared_dim_ + c);
      }
    }
    Matrix gx = shared_.Backward(g_shared);
    gx += phi0_.Backward(gp0);
    gx += phi1_.Backward(gp1);
    return gx;
  }

  std::vector<Matrix*> Params() override {
    return Collect(&nn::Mlp::Params);
  }
  std::vector<Matrix*> Grads() override { return Collect(&nn::Mlp::Grads); }

 private:
  std::vector<Matrix*> Collect(std::vector<Matrix*> (nn::Mlp::*getter)()) {
    std::vector<Matrix*> out;
    for (nn::Mlp* part : {&shared_, &phi0_, &phi1_, &head0_, &head1_}) {
      for (Matrix* m : (part->*getter)()) out.push_back(m);
    }
    return out;
  }

  int shared_dim_;
  int specific_dim_;
  nn::Mlp shared_, phi0_, phi1_, head0_, head1_;
};

std::unique_ptr<nn::Network> BuildNet(NeuralCateKind kind, int input_dim,
                                      const NeuralCateConfig& config,
                                      Rng* rng) {
  if (kind == NeuralCateKind::kSnet) {
    return std::make_unique<SNetNetwork>(input_dim, config, rng);
  }
  int rep_dim = config.trunk_hidden.back();
  nn::Mlp trunk = nn::Mlp::MakeMlp(input_dim, config.trunk_hidden, rep_dim,
                                   config.activation, config.dropout, rng);
  int num_heads = kind == NeuralCateKind::kDragonnet ? 3 : 2;
  std::vector<nn::Mlp> heads;
  heads.reserve(AsSize(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    heads.push_back(nn::Mlp::MakeMlp(rep_dim, config.head_hidden, 1,
                                     config.activation, config.dropout,
                                     rng));
  }
  return std::make_unique<MultiHeadNet>(std::move(trunk), std::move(heads));
}

std::unique_ptr<nn::BatchLoss> BuildLoss(NeuralCateKind kind,
                                         const std::vector<int>* treatment,
                                         const std::vector<double>* y,
                                         const NeuralCateConfig& config) {
  switch (kind) {
    case NeuralCateKind::kTarnet:
    case NeuralCateKind::kSnet:
      return std::make_unique<FactualMseLoss>(treatment, y);
    case NeuralCateKind::kDragonnet:
      return std::make_unique<DragonnetLoss>(treatment, y,
                                             config.propensity_weight);
    case NeuralCateKind::kOffsetnet:
      return std::make_unique<OffsetLoss>(treatment, y);
  }
  ROICL_CHECK_MSG(false, "unknown NeuralCateKind");
  return nullptr;
}

}  // namespace

void NeuralCate::Fit(const Matrix& x, const std::vector<int>& treatment,
                     const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(treatment.size()));
  ROICL_CHECK(treatment.size() == y.size());
  Matrix x_scaled = scaler_.FitTransform(x);

  Rng rng(config_.seed, /*stream=*/23);
  net_ = BuildNet(kind_, x.cols(), config_, &rng);
  std::unique_ptr<nn::BatchLoss> loss =
      BuildLoss(kind_, &treatment, &y, config_);

  // Carve a validation slice out of the training rows when early stopping
  // is requested.
  int n = x.rows();
  std::vector<int> all = rng.Permutation(n);
  std::vector<int> train_index = all;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && n >= 50) {
    int n_val = std::max(1, n / 10);
    validation_index.assign(all.begin(), all.begin() + n_val);
    train_index.assign(all.begin() + n_val, all.end());
  }
  nn::TrainNetwork(net_.get(), x_scaled, train_index, validation_index,
                   *loss, config_.train);
}

std::vector<double> NeuralCate::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(net_ != nullptr, "PredictCate() before Fit()");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix preds = nn::BatchedInferForward(net_.get(), x_scaled);
  std::vector<double> tau(AsSize(x.rows()));
  if (kind_ == NeuralCateKind::kOffsetnet) {
    for (int i = 0; i < x.rows(); ++i) {
      tau[AsSize(i)] = preds(i, 1);  // delta head
    }
  } else {
    for (int i = 0; i < x.rows(); ++i) {
      tau[AsSize(i)] = preds(i, 1) - preds(i, 0);
    }
  }
  return tau;
}

Status NeuralCate::Save(std::ostream& out) const {
  if (net_ == nullptr) {
    return Status::FailedPrecondition("neural cate model not fitted");
  }
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stds = scaler_.stddevs();
  out << "roicl-ncate-v1\n" << means.size() << '\n';
  out << std::setprecision(17);
  for (size_t i = 0; i < means.size(); ++i) {
    if (i > 0) out << ' ';
    out << means[i];
  }
  out << '\n';
  for (size_t i = 0; i < stds.size(); ++i) {
    if (i > 0) out << ' ';
    out << stds[i];
  }
  out << '\n';
  return nn::SaveNetworkParams(*net_, out);
}

Status NeuralCate::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-ncate-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-ncate-v1)");
  }
  int dim = 0;
  if (!(in >> dim) || dim <= 0 || dim > 1000000) {
    return Status::InvalidArgument("bad neural cate feature dimension");
  }
  std::vector<double> means(AsSize(dim)), stds(AsSize(dim));
  for (double& m : means) {
    if (!(in >> m)) {
      return Status::InvalidArgument("truncated scaler means");
    }
  }
  for (double& s : stds) {
    if (!(in >> s)) {
      return Status::InvalidArgument("truncated scaler stddevs");
    }
    if (!(s > 0.0)) {
      return Status::InvalidArgument("scaler stddevs must be positive");
    }
  }
  // Rebuild the architecture exactly as Fit() does (same config, same
  // init stream) and then overwrite every parameter from the blob.
  Rng rng(config_.seed, /*stream=*/23);
  std::unique_ptr<nn::Network> net = BuildNet(kind_, dim, config_, &rng);
  if (Status status = nn::LoadNetworkParams(net.get(), in); !status.ok()) {
    return status;
  }
  scaler_ = StandardScaler::FromMoments(std::move(means), std::move(stds));
  net_ = std::move(net);
  return Status::Ok();
}

CateModelFactory MakeNeuralCateFactory(NeuralCateKind kind,
                                       const NeuralCateConfig& config) {
  return [kind, config] { return std::make_unique<NeuralCate>(kind, config); };
}

}  // namespace roicl::uplift
