#include "uplift/multi_head_net.h"

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::uplift {

MultiHeadNet::MultiHeadNet(nn::Mlp trunk, std::vector<nn::Mlp> heads)
    : trunk_(std::move(trunk)), heads_(std::move(heads)) {
  ROICL_CHECK(!heads_.empty());
}

MultiHeadNet MultiHeadNet::MakeKHead(int input_dim,
                                     const std::vector<int>& trunk_hidden,
                                     int trunk_out, int num_heads,
                                     const std::vector<int>& head_hidden,
                                     nn::ActivationKind activation,
                                     double dropout_rate, Rng* rng) {
  ROICL_CHECK(input_dim > 0);
  ROICL_CHECK(trunk_out > 0);
  ROICL_CHECK(num_heads >= 1);
  nn::Mlp trunk = nn::Mlp::MakeMlp(input_dim, trunk_hidden, trunk_out,
                                   activation, dropout_rate, rng);
  std::vector<nn::Mlp> heads;
  heads.reserve(AsSize(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    heads.push_back(nn::Mlp::MakeMlp(trunk_out, head_hidden,
                                     /*output_dim=*/1, activation,
                                     dropout_rate, rng));
  }
  return MultiHeadNet(std::move(trunk), std::move(heads));
}

Matrix MultiHeadNet::Forward(const Matrix& input, nn::Mode mode, Rng* rng) {
  Matrix rep = trunk_.Forward(input, mode, rng);
  Matrix out(input.rows(), num_heads());
  for (int h = 0; h < num_heads(); ++h) {
    Matrix head_out = heads_[AsSize(h)].Forward(rep, mode, rng);
    ROICL_CHECK_MSG(head_out.cols() == 1,
                    "each head must output one column");
    for (int r = 0; r < out.rows(); ++r) out(r, h) = head_out(r, 0);
  }
  return out;
}

Matrix MultiHeadNet::ForwardRows(const Matrix& input, nn::Mode mode,
                                 nn::RowRngs* row_rngs) {
  ROICL_DCHECK(row_rngs == nullptr ||
               static_cast<int>(row_rngs->size()) == input.rows());
  Matrix rep = trunk_.ForwardRows(input, mode, row_rngs);
  ROICL_DCHECK(rep.rows() == input.rows());
  Matrix out(input.rows(), num_heads());
  for (int h = 0; h < num_heads(); ++h) {
    Matrix head_out = heads_[AsSize(h)].ForwardRows(rep, mode, row_rngs);
    ROICL_CHECK_MSG(head_out.cols() == 1,
                    "each head must output one column");
    for (int r = 0; r < out.rows(); ++r) out(r, h) = head_out(r, 0);
  }
  return out;
}

Matrix MultiHeadNet::Backward(const Matrix& grad_output) {
  ROICL_CHECK(grad_output.cols() == num_heads());
  Matrix grad_rep;
  for (int h = 0; h < num_heads(); ++h) {
    Matrix head_grad(grad_output.rows(), 1);
    for (int r = 0; r < grad_output.rows(); ++r) {
      head_grad(r, 0) = grad_output(r, h);
    }
    Matrix g = heads_[AsSize(h)].Backward(head_grad);
    if (h == 0) {
      grad_rep = std::move(g);
    } else {
      grad_rep += g;
    }
  }
  return trunk_.Backward(grad_rep);
}

std::vector<Matrix*> MultiHeadNet::Params() {
  std::vector<Matrix*> params = trunk_.Params();
  for (nn::Mlp& head : heads_) {
    for (Matrix* p : head.Params()) params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> MultiHeadNet::Grads() {
  std::vector<Matrix*> grads = trunk_.Grads();
  for (nn::Mlp& head : heads_) {
    for (Matrix* g : head.Grads()) grads.push_back(g);
  }
  return grads;
}

}  // namespace roicl::uplift
