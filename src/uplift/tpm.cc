#include "uplift/tpm.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::uplift {

TpmRoiModel::TpmRoiModel(std::string display_name, CateModelFactory factory,
                         double cost_floor)
    : display_name_(std::move(display_name)),
      factory_(std::move(factory)),
      cost_floor_(cost_floor) {
  ROICL_CHECK(cost_floor_ > 0.0);
}

void TpmRoiModel::Fit(const RctDataset& train) {
  train.Validate();
  revenue_model_ = factory_();
  revenue_model_->Fit(train.x, train.treatment, train.y_revenue);
  cost_model_ = factory_();
  cost_model_->Fit(train.x, train.treatment, train.y_cost);
}

std::vector<double> TpmRoiModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(revenue_model_ != nullptr && cost_model_ != nullptr,
                  "PredictRoi() before Fit()");
  std::vector<double> tau_r = revenue_model_->PredictCate(x);
  std::vector<double> tau_c = cost_model_->PredictCate(x);
  std::vector<double> roi(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    roi[AsSize(i)] =
        tau_r[AsSize(i)] / std::max(tau_c[AsSize(i)], cost_floor_);
    ROICL_DCHECK_FINITE(roi[AsSize(i)]);
  }
  return roi;
}

}  // namespace roicl::uplift
