#include "uplift/tpm.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::uplift {

TpmRoiModel::TpmRoiModel(std::string display_name, CateModelFactory factory,
                         double cost_floor)
    : display_name_(std::move(display_name)),
      factory_(std::move(factory)),
      cost_floor_(cost_floor) {
  ROICL_CHECK(cost_floor_ > 0.0);
}

void TpmRoiModel::Fit(const RctDataset& train) {
  train.Validate();
  feature_dim_ = train.x.cols();
  revenue_model_ = factory_();
  revenue_model_->Fit(train.x, train.treatment, train.y_revenue);
  cost_model_ = factory_();
  cost_model_->Fit(train.x, train.treatment, train.y_cost);
}

Status TpmRoiModel::Save(std::ostream& out) const {
  if (revenue_model_ == nullptr || cost_model_ == nullptr) {
    return Status::FailedPrecondition("tpm model not fitted");
  }
  out << "roicl-tpm-v1\n" << feature_dim_ << '\n';
  if (Status status = revenue_model_->Save(out); !status.ok()) {
    return status;
  }
  if (Status status = cost_model_->Save(out); !status.ok()) return status;
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status TpmRoiModel::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-tpm-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-tpm-v1)");
  }
  int dim = 0;
  if (!(in >> dim) || dim <= 0 || dim > 1000000) {
    return Status::InvalidArgument("bad tpm feature dimension");
  }
  std::unique_ptr<CateModel> revenue = factory_();
  if (Status status = revenue->Load(in); !status.ok()) return status;
  std::unique_ptr<CateModel> cost = factory_();
  if (Status status = cost->Load(in); !status.ok()) return status;
  feature_dim_ = dim;
  revenue_model_ = std::move(revenue);
  cost_model_ = std::move(cost);
  return Status::Ok();
}

std::vector<double> TpmRoiModel::PredictRoi(const Matrix& x) const {
  ROICL_CHECK_MSG(revenue_model_ != nullptr && cost_model_ != nullptr,
                  "PredictRoi() before Fit()");
  std::vector<double> tau_r = revenue_model_->PredictCate(x);
  std::vector<double> tau_c = cost_model_->PredictCate(x);
  std::vector<double> roi(AsSize(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    roi[AsSize(i)] =
        tau_r[AsSize(i)] / std::max(tau_c[AsSize(i)], cost_floor_);
    ROICL_DCHECK_FINITE(roi[AsSize(i)]);
  }
  return roi;
}

}  // namespace roicl::uplift
