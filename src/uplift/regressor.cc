#include "uplift/regressor.h"

#include <iomanip>
#include <string>

#include "common/macros.h"
#include "common/math_util.h"
#include "linalg/solve.h"

namespace roicl::uplift {

void RidgeRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  StatusOr<std::vector<double>> solved =
      SolveRidge(x, y, lambda_, /*fit_intercept=*/true);
  ROICL_CHECK_MSG(solved.ok(), "ridge solve failed: %s",
                  solved.status().message().c_str());
  weights_ = std::move(solved).value();
}

std::vector<double> RidgeRegressor::Predict(const Matrix& x) const {
  ROICL_CHECK_MSG(!weights_.empty(), "Predict() before Fit()");
  ROICL_CHECK(x.cols() + 1 == static_cast<int>(weights_.size()));
  std::vector<double> out(AsSize(x.rows()));
  double intercept = weights_.back();
  for (int r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    double acc = intercept;
    for (int c = 0; c < x.cols(); ++c) acc += row[c] * weights_[AsSize(c)];
    out[AsSize(r)] = acc;
  }
  return out;
}

Status RidgeRegressor::Save(std::ostream& out) const {
  if (weights_.empty()) {
    return Status::FailedPrecondition("ridge regressor not fitted");
  }
  out << "roicl-ridge-v1\n" << weights_.size() << '\n';
  out << std::setprecision(17);
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) out << ' ';
    out << weights_[i];
  }
  out << '\n';
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status RidgeRegressor::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-ridge-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-ridge-v1)");
  }
  size_t count = 0;
  if (!(in >> count) || count == 0 || count > 1000000) {
    return Status::InvalidArgument("bad ridge weight count");
  }
  std::vector<double> weights(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> weights[i])) {
      return Status::InvalidArgument("truncated ridge weight vector");
    }
  }
  weights_ = std::move(weights);
  return Status::Ok();
}

void ForestRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  forest_.Fit(x, y);
}

std::vector<double> ForestRegressor::Predict(const Matrix& x) const {
  return forest_.Predict(x);
}

RegressorFactory MakeRidgeFactory(double lambda) {
  return [lambda] { return std::make_unique<RidgeRegressor>(lambda); };
}

RegressorFactory MakeForestFactory(const trees::ForestConfig& config) {
  return [config] { return std::make_unique<ForestRegressor>(config); };
}

}  // namespace roicl::uplift
