#include "uplift/regressor.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "linalg/solve.h"

namespace roicl::uplift {

void RidgeRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  StatusOr<std::vector<double>> solved =
      SolveRidge(x, y, lambda_, /*fit_intercept=*/true);
  ROICL_CHECK_MSG(solved.ok(), "ridge solve failed: %s",
                  solved.status().message().c_str());
  weights_ = std::move(solved).value();
}

std::vector<double> RidgeRegressor::Predict(const Matrix& x) const {
  ROICL_CHECK_MSG(!weights_.empty(), "Predict() before Fit()");
  ROICL_CHECK(x.cols() + 1 == static_cast<int>(weights_.size()));
  std::vector<double> out(AsSize(x.rows()));
  double intercept = weights_.back();
  for (int r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    double acc = intercept;
    for (int c = 0; c < x.cols(); ++c) acc += row[c] * weights_[AsSize(c)];
    out[AsSize(r)] = acc;
  }
  return out;
}

void ForestRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  forest_.Fit(x, y);
}

std::vector<double> ForestRegressor::Predict(const Matrix& x) const {
  return forest_.Predict(x);
}

RegressorFactory MakeRidgeFactory(double lambda) {
  return [lambda] { return std::make_unique<RidgeRegressor>(lambda); };
}

RegressorFactory MakeForestFactory(const trees::ForestConfig& config) {
  return [config] { return std::make_unique<ForestRegressor>(config); };
}

}  // namespace roicl::uplift
