#ifndef ROICL_UPLIFT_CAUSAL_FOREST_CATE_H_
#define ROICL_UPLIFT_CAUSAL_FOREST_CATE_H_

#include "trees/causal_forest.h"
#include "uplift/cate_model.h"

namespace roicl::uplift {

/// CateModel adapter over the honest causal forest — the "CF" base of the
/// TPM-CF baseline (Athey, Tibshirani & Wager 2019 style).
class CausalForestCate : public CateModel {
 public:
  explicit CausalForestCate(const trees::CausalForestConfig& config)
      : forest_(config) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y) override {
    forest_.Fit(x, treatment, y);
  }

  std::vector<double> PredictCate(const Matrix& x) const override {
    return forest_.PredictCate(x);
  }

  Status Save(std::ostream& out) const override { return forest_.Save(out); }
  Status Load(std::istream& in) override { return forest_.Load(in); }

  const trees::CausalForest& forest() const { return forest_; }

 private:
  trees::CausalForest forest_;
};

}  // namespace roicl::uplift

#endif  // ROICL_UPLIFT_CAUSAL_FOREST_CATE_H_
