#ifndef ROICL_NN_DROPOUT_H_
#define ROICL_NN_DROPOUT_H_

#include <memory>

#include "nn/layer.h"

namespace roicl::nn {

/// Inverted dropout.
///
/// - kTrain: units are zeroed with probability `rate` and survivors are
///   scaled by 1/(1-rate) (standard inverted dropout, Srivastava et al.).
/// - kInfer: identity.
/// - kMcSample: same stochastic behaviour as training — this is the
///   Monte-Carlo dropout of Gal & Ghahramani used by rDRP to obtain the
///   per-sample standard deviation r̂(x) without retraining (§IV-C2).
class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1).
  explicit Dropout(double rate);

  Matrix Forward(const Matrix& input, Mode mode, Rng* rng) override;

  /// Per-row-stream variant: the mask for row r is drawn from
  /// (*row_rngs)[r] alone, so the output for a sample is independent of
  /// the rows batched with it (kMcSample reproducibility contract).
  Matrix ForwardRows(const Matrix& input, Mode mode,
                     RowRngs* row_rngs) override;

  Matrix Backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Dropout>(rate_);
  }

  double rate() const { return rate_; }

 private:
  double rate_;
  Matrix mask_;  // keep/scale mask cached in kTrain for the backward pass
};

}  // namespace roicl::nn

#endif  // ROICL_NN_DROPOUT_H_
