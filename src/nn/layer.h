#ifndef ROICL_NN_LAYER_H_
#define ROICL_NN_LAYER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace roicl::nn {

/// Forward-pass mode.
///
/// kMcSample is the Monte-Carlo-dropout mode of Gal & Ghahramani (2016)
/// used by rDRP: dropout stays *active* at inference so that repeated
/// forward passes sample from the approximate posterior, while every other
/// layer behaves as in plain inference.
enum class Mode {
  kTrain,
  kInfer,
  kMcSample,
};

/// One independent RNG stream per row of the current batch, indexed by
/// row position. Used by ForwardRows() so a stochastic layer's draws for
/// sample i depend only on sample i's stream — never on which other rows
/// share the batch — making batched stochastic inference bit-identical
/// under any row partition or thread count.
using RowRngs = std::vector<Rng>;

/// A differentiable layer. Layers own their parameters and accumulated
/// gradients and cache whatever activations their backward pass needs, so
/// Forward(kTrain)/Backward must be called in matched pairs.
///
/// Thread safety: Forward/ForwardRows in kInfer and kMcSample modes do not
/// mutate layer state, so concurrent non-train forwards on a shared layer
/// are safe. Only kTrain writes the caches backward needs.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch (rows = samples).
  /// `rng` is only consulted by stochastic layers (dropout) and may be
  /// nullptr in kInfer mode.
  virtual Matrix Forward(const Matrix& input, Mode mode, Rng* rng) = 0;

  /// Batched forward with one RNG stream per input row (partition
  /// independence; see RowRngs). Deterministic layers fall through to
  /// Forward(); stochastic layers override. `row_rngs` may be nullptr in
  /// kInfer mode; otherwise it must hold input.rows() generators.
  virtual Matrix ForwardRows(const Matrix& input, Mode mode,
                             RowRngs* row_rngs) {
    return Forward(input, mode,
                   row_rngs && !row_rngs->empty() ? row_rngs->data()
                                                  : nullptr);
  }

  /// Propagates `grad_output` (dLoss/dOutput) backwards, accumulating
  /// parameter gradients, and returns dLoss/dInput.
  virtual Matrix Backward(const Matrix& grad_output) = 0;

  /// Mutable views of parameters and their gradient buffers (same order).
  virtual std::vector<Matrix*> Params() { return {}; }
  virtual std::vector<Matrix*> Grads() { return {}; }

  /// Clears accumulated gradients.
  void ZeroGrads() {
    for (Matrix* g : Grads()) *g *= 0.0;
  }

  /// Deep copy (used to snapshot the best model during early stopping).
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

}  // namespace roicl::nn

#endif  // ROICL_NN_LAYER_H_
