#include "nn/optimizer.h"

#include <cmath>

#include "common/macros.h"

namespace roicl::nn {
namespace {

void CheckAligned(const std::vector<Matrix*>& params,
                  const std::vector<Matrix*>& grads) {
  ROICL_CHECK(params.size() == grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ROICL_CHECK(params[i] != nullptr && grads[i] != nullptr);
    ROICL_CHECK(params[i]->size() == grads[i]->size());
  }
}

void LazyInitState(const std::vector<Matrix*>& params,
                   std::vector<Matrix>* state) {
  if (!state->empty()) {
    ROICL_CHECK_MSG(state->size() == params.size(),
                    "optimizer reused with a different parameter list");
    return;
  }
  state->reserve(params.size());
  for (const Matrix* p : params) {
    state->emplace_back(p->rows(), p->cols());
  }
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  ROICL_CHECK(learning_rate > 0.0);
  ROICL_CHECK(momentum >= 0.0 && momentum < 1.0);
  ROICL_CHECK(weight_decay >= 0.0);
}

void Sgd::Step(const std::vector<Matrix*>& params,
               const std::vector<Matrix*>& grads) {
  CheckAligned(params, grads);
  LazyInitState(params, &velocity_);
  for (size_t i = 0; i < params.size(); ++i) {
    std::vector<double>& p = params[i]->data();
    const std::vector<double>& g = grads[i]->data();
    std::vector<double>& v = velocity_[i].data();
    for (size_t k = 0; k < p.size(); ++k) {
      v[k] = momentum_ * v[k] + g[k];
      p[k] -= learning_rate_ * (v[k] + weight_decay_ * p[k]);
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon,
           double weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  ROICL_CHECK(learning_rate > 0.0);
  ROICL_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  ROICL_CHECK(beta2 >= 0.0 && beta2 < 1.0);
  ROICL_CHECK(epsilon > 0.0);
  ROICL_CHECK(weight_decay >= 0.0);
}

void Adam::Step(const std::vector<Matrix*>& params,
                const std::vector<Matrix*>& grads) {
  CheckAligned(params, grads);
  LazyInitState(params, &m_);
  LazyInitState(params, &v_);
  ++step_;
  double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (size_t i = 0; i < params.size(); ++i) {
    std::vector<double>& p = params[i]->data();
    const std::vector<double>& g = grads[i]->data();
    std::vector<double>& m = m_[i].data();
    std::vector<double>& v = v_[i].data();
    for (size_t k = 0; k < p.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g[k] * g[k];
      double m_hat = m[k] / bias1;
      double v_hat = v[k] / bias2;
      p[k] -= learning_rate_ *
              (m_hat / (std::sqrt(v_hat) + epsilon_) + weight_decay_ * p[k]);
    }
  }
}

}  // namespace roicl::nn
