#include "nn/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/dropout.h"

namespace roicl::nn {
namespace {

constexpr char kMagic[] = "roicl-mlp-v1";

const char* ActivationName(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kRelu:
      return "relu";
    case ActivationKind::kElu:
      return "elu";
    case ActivationKind::kSigmoid:
      return "sigmoid";
    case ActivationKind::kTanh:
      return "tanh";
  }
  return "?";
}

StatusOr<ActivationKind> ActivationFromName(const std::string& name) {
  if (name == "relu") return ActivationKind::kRelu;
  if (name == "elu") return ActivationKind::kElu;
  if (name == "sigmoid") return ActivationKind::kSigmoid;
  if (name == "tanh") return ActivationKind::kTanh;
  return Status::InvalidArgument("unknown activation: " + name);
}

void WriteMatrix(const Matrix& m, std::ostream& out) {
  out << m.rows() << ' ' << m.cols();
  for (double v : m.data()) out << ' ' << v;
  out << '\n';
}

StatusOr<Matrix> ReadMatrix(std::istream& in) {
  int rows = 0, cols = 0;
  if (!(in >> rows >> cols) || rows < 0 || cols < 0) {
    return Status::InvalidArgument("malformed matrix header");
  }
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    if (!(in >> v)) return Status::InvalidArgument("truncated matrix data");
  }
  return m;
}

}  // namespace

Status SaveMlp(Mlp& net, std::ostream& out) {
  out << kMagic << '\n' << net.num_layers() << '\n';
  out << std::setprecision(17);
  for (size_t l = 0; l < net.num_layers(); ++l) {
    Layer* layer = net.layer(l);
    if (auto* dense = dynamic_cast<Dense*>(layer)) {
      out << "dense " << dense->in_features() << ' '
          << dense->out_features() << '\n';
      std::vector<Matrix*> params = dense->Params();
      WriteMatrix(*params[0], out);
      WriteMatrix(*params[1], out);
    } else if (auto* activation = dynamic_cast<Activation*>(layer)) {
      out << "activation " << ActivationName(activation->kind()) << '\n';
    } else if (auto* dropout = dynamic_cast<Dropout*>(layer)) {
      out << "dropout " << dropout->rate() << '\n';
    } else {
      return Status::InvalidArgument("unserializable layer type");
    }
  }
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

StatusOr<Mlp> LoadMlp(std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument(
        "empty or truncated stream (expected roicl-mlp-v1 header)");
  }
  if (magic != kMagic) {
    if (magic.rfind("roicl-mlp-v", 0) == 0) {
      return Status::InvalidArgument("unsupported mlp format version '" +
                                     magic + "' (this build reads " +
                                     kMagic + ")");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-mlp-v1)");
  }
  size_t num_layers = 0;
  if (!(in >> num_layers) || num_layers > 10000) {
    return Status::InvalidArgument("bad layer count");
  }
  Mlp net;
  int prev_width = -1;  // output width of the previous dense layer
  for (size_t l = 0; l < num_layers; ++l) {
    std::string kind;
    if (!(in >> kind)) return Status::InvalidArgument("truncated layers");
    if (kind == "dense") {
      int in_features = 0, out_features = 0;
      if (!(in >> in_features >> out_features) || in_features <= 0 ||
          out_features <= 0) {
        return Status::InvalidArgument("bad dense header");
      }
      if (prev_width >= 0 && in_features != prev_width) {
        return Status::InvalidArgument(
            "dense layer width mismatch: layer " + std::to_string(l) +
            " expects " + std::to_string(in_features) +
            " inputs but the previous dense layer produces " +
            std::to_string(prev_width));
      }
      prev_width = out_features;
      auto dense = std::make_unique<Dense>(in_features, out_features,
                                           Init::kZero, nullptr);
      StatusOr<Matrix> weights = ReadMatrix(in);
      if (!weights.ok()) return weights.status();
      StatusOr<Matrix> bias = ReadMatrix(in);
      if (!bias.ok()) return bias.status();
      if (weights.value().rows() != in_features ||
          weights.value().cols() != out_features ||
          bias.value().rows() != 1 ||
          bias.value().cols() != out_features) {
        return Status::InvalidArgument("dense parameter shape mismatch");
      }
      std::vector<Matrix*> params = dense->Params();
      *params[0] = std::move(weights).value();
      *params[1] = std::move(bias).value();
      net.Add(std::move(dense));
    } else if (kind == "activation") {
      std::string name;
      if (!(in >> name)) return Status::InvalidArgument("bad activation");
      StatusOr<ActivationKind> activation = ActivationFromName(name);
      if (!activation.ok()) return activation.status();
      net.Add(std::make_unique<Activation>(activation.value()));
    } else if (kind == "dropout") {
      double rate = 0.0;
      if (!(in >> rate) || rate < 0.0 || rate >= 1.0) {
        return Status::InvalidArgument("bad dropout rate");
      }
      net.Add(std::make_unique<Dropout>(rate));
    } else {
      return Status::InvalidArgument("unknown layer kind: " + kind);
    }
  }
  return net;
}

Status SaveMlpToFile(Mlp& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return SaveMlp(net, out);
}

StatusOr<Mlp> LoadMlpFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return LoadMlp(in);
}

Status SaveNetworkParams(Network& net, std::ostream& out) {
  std::vector<Matrix*> params = net.Params();
  out << "roicl-params-v1\n" << params.size() << '\n';
  out << std::setprecision(17);
  for (Matrix* p : params) WriteMatrix(*p, out);
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status LoadNetworkParams(Network* net, std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument(
        "empty or truncated stream (expected roicl-params-v1 header)");
  }
  if (magic != "roicl-params-v1") {
    if (magic.rfind("roicl-params-v", 0) == 0) {
      return Status::InvalidArgument(
          "unsupported params format version '" + magic +
          "' (this build reads roicl-params-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-params-v1)");
  }
  std::vector<Matrix*> params = net->Params();
  size_t count = 0;
  if (!(in >> count) || count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: blob has " + std::to_string(count) +
        ", network expects " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    StatusOr<Matrix> m = ReadMatrix(in);
    if (!m.ok()) return m.status();
    if (m.value().rows() != params[i]->rows() ||
        m.value().cols() != params[i]->cols()) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " shape mismatch: blob is " +
          std::to_string(m.value().rows()) + "x" +
          std::to_string(m.value().cols()) + ", network expects " +
          std::to_string(params[i]->rows()) + "x" +
          std::to_string(params[i]->cols()));
    }
    *params[i] = std::move(m).value();
  }
  return Status::Ok();
}

}  // namespace roicl::nn
