#ifndef ROICL_NN_LOSS_H_
#define ROICL_NN_LOSS_H_

#include <vector>

#include "linalg/matrix.h"

namespace roicl::nn {

/// Loss evaluated on a mini-batch of network outputs.
///
/// `preds` is the (batch x k) output of the network; `index[i]` is the
/// dataset row id of batch row i, so the loss implementation can look up
/// labels it captured at construction time. The loss writes
/// dLoss/dPreds into `*grad` (same shape as preds) and returns the scalar
/// loss value. This indirection lets custom causal losses (DRP, Direct
/// Rank) normalize per treatment group within the batch.
class BatchLoss {
 public:
  virtual ~BatchLoss() = default;

  virtual double Compute(const Matrix& preds, const std::vector<int>& index,
                         Matrix* grad) const = 0;

  /// Number of output columns the loss expects.
  virtual int output_dim() const { return 1; }
};

/// Mean squared error against a captured target vector (by dataset index).
class MseLoss : public BatchLoss {
 public:
  explicit MseLoss(const std::vector<double>* targets) : targets_(targets) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override;

 private:
  const std::vector<double>* targets_;  // not owned
};

/// Binary cross-entropy on logits against a captured 0/1 target vector.
class BceWithLogitsLoss : public BatchLoss {
 public:
  explicit BceWithLogitsLoss(const std::vector<double>* targets)
      : targets_(targets) {}

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override;

 private:
  const std::vector<double>* targets_;  // not owned
};

}  // namespace roicl::nn

#endif  // ROICL_NN_LOSS_H_
