#ifndef ROICL_NN_TRAINER_H_
#define ROICL_NN_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace roicl::nn {

/// Mini-batch training configuration.
struct TrainConfig {
  int epochs = 50;
  int batch_size = 256;
  double learning_rate = 1e-3;
  double weight_decay = 0.0;
  /// When > 0 and a validation index set is supplied, training stops after
  /// `patience` epochs without validation-loss improvement and the best
  /// snapshot is restored.
  int patience = 0;
  uint64_t seed = 42;
};

/// Result of a training run.
struct TrainResult {
  double final_train_loss = 0.0;
  double best_validation_loss = 0.0;
  int epochs_run = 0;
  bool early_stopped = false;
};

/// Shuffled mini-batch SGD loop shared by every neural model in the repo.
///
/// `x` holds the full feature matrix; `train_index` selects training rows
/// and `validation_index` (optional, may be empty) rows used for early
/// stopping. The loss looks labels up by dataset row id, so one loss object
/// serves both sets.
TrainResult TrainNetwork(Network* net, const Matrix& x,
                         const std::vector<int>& train_index,
                         const std::vector<int>& validation_index,
                         const BatchLoss& loss, const TrainConfig& config);

/// Evaluates `loss` on the given rows in inference mode (no dropout).
double EvaluateLoss(Network* net, const Matrix& x, const std::vector<int>& index,
                    const BatchLoss& loss);

}  // namespace roicl::nn

#endif  // ROICL_NN_TRAINER_H_
