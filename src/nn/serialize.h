#ifndef ROICL_NN_SERIALIZE_H_
#define ROICL_NN_SERIALIZE_H_

#include <istream>
#include <ostream>

#include "common/status.h"
#include "nn/mlp.h"

namespace roicl::nn {

/// Writes an Mlp — architecture and parameters — to a stream in a simple
/// line-oriented text format ("roicl-mlp-v1"). Deterministic and
/// diff-friendly; weights are printed with 17 significant digits so a
/// save/load round trip is bit-exact for doubles.
Status SaveMlp(Mlp& net, std::ostream& out);

/// Reads an Mlp previously written by SaveMlp.
StatusOr<Mlp> LoadMlp(std::istream& in);

/// Convenience file wrappers.
Status SaveMlpToFile(Mlp& net, const std::string& path);
StatusOr<Mlp> LoadMlpFromFile(const std::string& path);

}  // namespace roicl::nn

#endif  // ROICL_NN_SERIALIZE_H_
