#ifndef ROICL_NN_SERIALIZE_H_
#define ROICL_NN_SERIALIZE_H_

#include <istream>
#include <ostream>

#include "common/status.h"
#include "nn/mlp.h"

namespace roicl::nn {

/// Writes an Mlp — architecture and parameters — to a stream in a simple
/// line-oriented text format ("roicl-mlp-v1"). Deterministic and
/// diff-friendly; weights are printed with 17 significant digits so a
/// save/load round trip is bit-exact for doubles.
Status SaveMlp(Mlp& net, std::ostream& out);

/// Reads an Mlp previously written by SaveMlp. Malformed input — a
/// truncated stream, an unknown or version-bumped magic, a dense layer
/// whose input width does not match the previous layer's output — returns
/// a descriptive InvalidArgument Status; it never crashes.
StatusOr<Mlp> LoadMlp(std::istream& in);

/// Convenience file wrappers.
Status SaveMlpToFile(Mlp& net, const std::string& path);
StatusOr<Mlp> LoadMlpFromFile(const std::string& path);

/// Architecture-agnostic parameter blob ("roicl-params-v1"): the flat
/// Params() list of any Network, written as shape-prefixed matrices.
/// Pairs with LoadNetworkParams into a freshly constructed network of the
/// identical architecture (rebuilt from its config); shapes are checked
/// parameter-by-parameter on load. This is how multi-head CATE networks
/// round-trip without per-layer-kind serialization.
Status SaveNetworkParams(Network& net, std::ostream& out);

/// Restores a parameter blob written by SaveNetworkParams into `net`.
/// Fails with a descriptive Status on magic/version mismatch, truncation,
/// parameter-count mismatch, or any per-parameter shape mismatch.
Status LoadNetworkParams(Network* net, std::istream& in);

}  // namespace roicl::nn

#endif  // ROICL_NN_SERIALIZE_H_
