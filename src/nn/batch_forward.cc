#include "nn/batch_forward.h"

#include <algorithm>

#include "common/annotated_mutex.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace roicl::nn {

void ForEachRowBlock(int num_rows, const BatchOptions& opts,
                     const std::function<void(int block, int row_begin,
                                              int row_end)>& body) {
  ROICL_CHECK(num_rows >= 0);
  ROICL_CHECK(opts.batch_size > 0);
  ROICL_CHECK(opts.num_threads >= 0);
  if (num_rows == 0) return;
  int num_blocks = (num_rows + opts.batch_size - 1) / opts.batch_size;
  auto run_block = [&](int block) {
    int row_begin = block * opts.batch_size;
    int row_end = std::min(num_rows, row_begin + opts.batch_size);
    body(block, row_begin, row_end);
  };
  if (opts.num_threads == 1 || num_blocks == 1) {
    for (int block = 0; block < num_blocks; ++block) run_block(block);
  } else if (opts.num_threads == 0) {
    GlobalThreadPool().ParallelFor(0, num_blocks, run_block);
  } else {
    ThreadPool pool(static_cast<unsigned>(opts.num_threads));
    pool.ParallelFor(0, num_blocks, run_block);
  }
}

Matrix BatchedInferForward(Network* net, const Matrix& x,
                           const BatchOptions& opts) {
  ROICL_CHECK(net != nullptr);
  Matrix out;
  Mutex init_mutex;
  ForEachRowBlock(x.rows(), opts, [&](int /*block*/, int row_begin,
                                      int row_end) {
    std::vector<int> rows(AsSize(row_end - row_begin));
    for (int r = row_begin; r < row_end; ++r) {
      rows[AsSize(r - row_begin)] = r;
    }
    Matrix block_out =
        net->Forward(x.SelectRows(rows), Mode::kInfer, nullptr);
    // First finished block sizes the output; every block then writes its
    // disjoint row range, so concurrent writes never overlap.
    {
      MutexLock lock(init_mutex);
      if (out.empty()) out = Matrix(x.rows(), block_out.cols());
    }
    for (int r = row_begin; r < row_end; ++r) {
      std::copy(block_out.RowPtr(r - row_begin),
                block_out.RowPtr(r - row_begin) + block_out.cols(),
                out.RowPtr(r));
    }
  });
  return out;
}

}  // namespace roicl::nn
