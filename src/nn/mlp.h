#ifndef ROICL_NN_MLP_H_
#define ROICL_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/layer.h"
#include "nn/network.h"

namespace roicl::nn {

/// A sequential stack of layers — the multilayer perceptron used by every
/// neural model in this library (DRP itself is one hidden layer of 10-100
/// units per §IV-D of the paper).
class Mlp : public Network {
 public:
  Mlp() = default;
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;
  /// Deep copies (layer-wise Clone); used for early-stopping snapshots.
  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);

  /// Convenience builder: `input_dim -> hidden[0] -> ... -> output_dim`
  /// with the given activation after each hidden Dense, and a Dropout
  /// layer (if `dropout_rate > 0`) after each hidden activation. The final
  /// Dense is linear.
  static Mlp MakeMlp(int input_dim, const std::vector<int>& hidden,
                     int output_dim, ActivationKind activation,
                     double dropout_rate, Rng* rng);

  void Add(std::unique_ptr<Layer> layer);

  /// Runs the full stack. Matched Forward(kTrain)/Backward pairs are the
  /// caller's responsibility (the Trainer handles this).
  Matrix Forward(const Matrix& input, Mode mode, Rng* rng) override;

  /// Runs the stack with per-row RNG streams (layer-wise ForwardRows);
  /// each dropout layer continues row r's stream where the previous one
  /// left off.
  Matrix ForwardRows(const Matrix& input, Mode mode,
                     RowRngs* row_rngs) override;

  /// Backpropagates dLoss/dOutput; returns dLoss/dInput.
  Matrix Backward(const Matrix& grad_output) override;

  std::vector<Matrix*> Params() override;
  std::vector<Matrix*> Grads() override;
  using Network::ZeroGrads;

  size_t num_layers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

  /// Total number of scalar parameters.
  size_t NumParameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace roicl::nn

#endif  // ROICL_NN_MLP_H_
