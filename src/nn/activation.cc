#include "nn/activation.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::nn {

Matrix Activation::Forward(const Matrix& input, Mode mode, Rng* /*rng*/) {
  Matrix out = input;
  switch (kind_) {
    case ActivationKind::kRelu:
      for (double& v : out.data()) v = v > 0.0 ? v : 0.0;
      break;
    case ActivationKind::kElu:
      for (double& v : out.data()) v = v > 0.0 ? v : std::expm1(v);
      break;
    case ActivationKind::kSigmoid:
      for (double& v : out.data()) v = Sigmoid(v);
      break;
    case ActivationKind::kTanh:
      for (double& v : out.data()) v = std::tanh(v);
      break;
  }
  if (mode == Mode::kTrain) {
    cached_input_ = input;
    cached_output_ = out;
  }
  return out;
}

Matrix Activation::Backward(const Matrix& grad_output) {
  ROICL_CHECK_MSG(cached_input_.rows() == grad_output.rows(),
                  "Backward without matching Forward(kTrain)");
  Matrix grad = grad_output;
  const std::vector<double>& in = cached_input_.data();
  const std::vector<double>& out = cached_output_.data();
  std::vector<double>& g = grad.data();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (size_t i = 0; i < g.size(); ++i) g[i] *= in[i] > 0.0 ? 1.0 : 0.0;
      break;
    case ActivationKind::kElu:
      // d/dx ELU(x) = 1 for x > 0, ELU(x) + 1 otherwise.
      for (size_t i = 0; i < g.size(); ++i) {
        g[i] *= in[i] > 0.0 ? 1.0 : out[i] + 1.0;
      }
      break;
    case ActivationKind::kSigmoid:
      for (size_t i = 0; i < g.size(); ++i) g[i] *= out[i] * (1.0 - out[i]);
      break;
    case ActivationKind::kTanh:
      for (size_t i = 0; i < g.size(); ++i) g[i] *= 1.0 - out[i] * out[i];
      break;
  }
  return grad;
}

}  // namespace roicl::nn
