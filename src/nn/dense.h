#ifndef ROICL_NN_DENSE_H_
#define ROICL_NN_DENSE_H_

#include <memory>

#include "nn/layer.h"

namespace roicl::nn {

/// Weight-initialization schemes.
enum class Init {
  kXavier,  ///< Glorot uniform — good default for tanh/sigmoid.
  kHe,      ///< He normal — good default for ReLU/ELU.
  kZero,
};

/// Fully connected layer: output = input * W + b.
/// W is (in x out), b is (1 x out).
class Dense : public Layer {
 public:
  /// Initializes weights with `init` using `rng`; biases start at zero.
  Dense(int in_features, int out_features, Init init, Rng* rng);

  Matrix Forward(const Matrix& input, Mode mode, Rng* rng) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::vector<Matrix*> Params() override { return {&weights_, &bias_}; }
  std::vector<Matrix*> Grads() override {
    return {&grad_weights_, &grad_bias_};
  }
  std::unique_ptr<Layer> Clone() const override;

  int in_features() const { return weights_.rows(); }
  int out_features() const { return weights_.cols(); }
  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }

 private:
  Dense() = default;  // for Clone

  Matrix weights_;
  Matrix bias_;
  Matrix grad_weights_;
  Matrix grad_bias_;
  Matrix cached_input_;
};

}  // namespace roicl::nn

#endif  // ROICL_NN_DENSE_H_
