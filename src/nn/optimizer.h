#ifndef ROICL_NN_OPTIMIZER_H_
#define ROICL_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"

namespace roicl::nn {

/// First-order optimizer over a flat list of (param, grad) matrix pairs.
/// State (momentum/moment buffers) is allocated lazily on the first Step
/// and keyed by position, so the same param list must be passed each time.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients. Does NOT zero the
  /// gradients; the trainer owns that.
  virtual void Step(const std::vector<Matrix*>& params,
                    const std::vector<Matrix*>& grads) = 0;

  /// Drops internal state (e.g. before refitting a cloned model).
  virtual void Reset() = 0;
};

/// SGD with classical momentum and optional decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0,
               double weight_decay = 0.0);

  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  void Reset() override { velocity_.clear(); }

 private:
  double learning_rate_;
  double momentum_;
  double weight_decay_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8,
                double weight_decay = 0.0);

  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  void Reset() override {
    m_.clear();
    v_.clear();
    step_ = 0;
  }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  long step_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace roicl::nn

#endif  // ROICL_NN_OPTIMIZER_H_
