#ifndef ROICL_NN_NETWORK_H_
#define ROICL_NN_NETWORK_H_

#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "nn/layer.h"

namespace roicl::nn {

/// Abstract trainable network: anything with a batched Forward/Backward
/// and a flat parameter list. `Mlp` is the sequential implementation;
/// multi-head CATE architectures (TARNet & friends) implement this
/// directly so the shared trainer works for all of them.
class Network {
 public:
  virtual ~Network() = default;

  virtual Matrix Forward(const Matrix& input, Mode mode, Rng* rng) = 0;

  /// Batched forward with one independent RNG stream per input row (see
  /// RowRngs in nn/layer.h). The contract backing the parallel prediction
  /// engine: the output row for sample i depends only on the weights, the
  /// input row, and stream i — never on the surrounding batch — so any
  /// row partition at any thread count reproduces the same bits.
  /// Default: fall through to Forward() (correct for networks without
  /// stochastic layers); stochastic networks must override.
  virtual Matrix ForwardRows(const Matrix& input, Mode mode,
                             RowRngs* row_rngs) {
    return Forward(input, mode,
                   row_rngs && !row_rngs->empty() ? row_rngs->data()
                                                  : nullptr);
  }

  virtual Matrix Backward(const Matrix& grad_output) = 0;
  virtual std::vector<Matrix*> Params() = 0;
  virtual std::vector<Matrix*> Grads() = 0;

  void ZeroGrads() {
    for (Matrix* g : Grads()) *g *= 0.0;
  }

  /// Copies parameter values from a network with identical architecture.
  /// Used to snapshot/restore weights for early stopping.
  void CopyParamsFrom(Network& other) {
    std::vector<Matrix*> dst = Params();
    std::vector<Matrix*> src = other.Params();
    ROICL_CHECK(dst.size() == src.size());
    for (size_t i = 0; i < dst.size(); ++i) {
      ROICL_CHECK(dst[i]->size() == src[i]->size());
      *dst[i] = *src[i];
    }
  }

  /// Snapshots all parameters into a flat list of matrices.
  std::vector<Matrix> SnapshotParams() {
    std::vector<Matrix> snapshot;
    for (Matrix* p : Params()) snapshot.push_back(*p);
    return snapshot;
  }

  /// Restores parameters from SnapshotParams().
  void RestoreParams(const std::vector<Matrix>& snapshot) {
    std::vector<Matrix*> params = Params();
    ROICL_CHECK(params.size() == snapshot.size());
    for (size_t i = 0; i < params.size(); ++i) *params[i] = snapshot[i];
  }
};

}  // namespace roicl::nn

#endif  // ROICL_NN_NETWORK_H_
