#include "nn/mlp.h"

#include "common/macros.h"

namespace roicl::nn {

Mlp::Mlp(const Mlp& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->Clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->Clone());
  return *this;
}

Mlp Mlp::MakeMlp(int input_dim, const std::vector<int>& hidden,
                 int output_dim, ActivationKind activation,
                 double dropout_rate, Rng* rng) {
  ROICL_CHECK(rng != nullptr);
  Mlp net;
  Init init = (activation == ActivationKind::kRelu ||
               activation == ActivationKind::kElu)
                  ? Init::kHe
                  : Init::kXavier;
  int in_dim = input_dim;
  for (int width : hidden) {
    net.Add(std::make_unique<Dense>(in_dim, width, init, rng));
    net.Add(std::make_unique<Activation>(activation));
    if (dropout_rate > 0.0) {
      net.Add(std::make_unique<Dropout>(dropout_rate));
    }
    in_dim = width;
  }
  net.Add(std::make_unique<Dense>(in_dim, output_dim, Init::kXavier, rng));
  return net;
}

void Mlp::Add(std::unique_ptr<Layer> layer) {
  ROICL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Matrix Mlp::Forward(const Matrix& input, Mode mode, Rng* rng) {
  ROICL_CHECK(!layers_.empty());
  Matrix activation = input;
  for (auto& layer : layers_) {
    activation = layer->Forward(activation, mode, rng);
  }
  return activation;
}

Matrix Mlp::ForwardRows(const Matrix& input, Mode mode, RowRngs* row_rngs) {
  ROICL_CHECK(!layers_.empty());
  ROICL_DCHECK(row_rngs == nullptr ||
               static_cast<int>(row_rngs->size()) == input.rows());
  Matrix activation = input;
  for (auto& layer : layers_) {
    activation = layer->ForwardRows(activation, mode, row_rngs);
    ROICL_DCHECK(activation.rows() == input.rows());
  }
  return activation;
}

Matrix Mlp::Backward(const Matrix& grad_output) {
  ROICL_CHECK(!layers_.empty());
  Matrix grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

std::vector<Matrix*> Mlp::Params() {
  std::vector<Matrix*> params;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<Matrix*> Mlp::Grads() {
  std::vector<Matrix*> grads;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) grads.push_back(g);
  }
  return grads;
}

size_t Mlp::NumParameters() {
  size_t total = 0;
  for (Matrix* p : Params()) total += p->size();
  return total;
}

}  // namespace roicl::nn
