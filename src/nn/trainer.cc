#include "nn/trainer.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace roicl::nn {

double EvaluateLoss(Network* net, const Matrix& x, const std::vector<int>& index,
                    const BatchLoss& loss) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(!index.empty());
  Matrix batch = x.SelectRows(index);
  Matrix preds = net->Forward(batch, Mode::kInfer, nullptr);
  Matrix grad;
  return loss.Compute(preds, index, &grad);
}

TrainResult TrainNetwork(Network* net, const Matrix& x,
                         const std::vector<int>& train_index,
                         const std::vector<int>& validation_index,
                         const BatchLoss& loss, const TrainConfig& config) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(!train_index.empty());
  ROICL_CHECK(config.epochs > 0);
  ROICL_CHECK(config.batch_size > 0);

  Rng rng(config.seed, /*stream=*/7);
  Adam optimizer(config.learning_rate, 0.9, 0.999, 1e-8,
                 config.weight_decay);

  std::vector<int> order = train_index;
  bool use_early_stop = config.patience > 0 && !validation_index.empty();
  double best_val = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::vector<Matrix> best_snapshot;

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      std::vector<int> batch_index(order.begin() + start,
                                   order.begin() + end);
      Matrix batch = x.SelectRows(batch_index);
      Matrix preds = net->Forward(batch, Mode::kTrain, &rng);
      Matrix grad;
      epoch_loss += loss.Compute(preds, batch_index, &grad);
      ++batches;
      net->ZeroGrads();
      net->Backward(grad);
      optimizer.Step(net->Params(), net->Grads());
    }
    result.final_train_loss = batches > 0 ? epoch_loss / batches : 0.0;
    result.epochs_run = epoch + 1;

    if (use_early_stop) {
      double val = EvaluateLoss(net, x, validation_index, loss);
      if (val < best_val - 1e-12) {
        best_val = val;
        epochs_since_best = 0;
        best_snapshot = net->SnapshotParams();
      } else {
        ++epochs_since_best;
        if (epochs_since_best >= config.patience) {
          net->RestoreParams(best_snapshot);
          result.early_stopped = true;
          break;
        }
      }
    }
  }
  if (use_early_stop && !result.early_stopped &&
      best_val < std::numeric_limits<double>::infinity()) {
    // Training ran to the epoch limit; still hand back the best snapshot.
    double final_val = EvaluateLoss(net, x, validation_index, loss);
    if (best_val < final_val) net->RestoreParams(best_snapshot);
  }
  result.best_validation_loss = best_val;
  return result;
}

}  // namespace roicl::nn
