#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::nn {
namespace {

double GradL2Norm(Network* net) {
  double sum_sq = 0.0;
  for (Matrix* grad : net->Grads()) {
    for (double g : grad->data()) sum_sq += g * g;
  }
  return std::sqrt(sum_sq);
}

}  // namespace

double EvaluateLoss(Network* net, const Matrix& x, const std::vector<int>& index,
                    const BatchLoss& loss) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(!index.empty());
  Matrix batch = x.SelectRows(index);
  Matrix preds = net->Forward(batch, Mode::kInfer, nullptr);
  Matrix grad;
  return loss.Compute(preds, index, &grad);
}

TrainResult TrainNetwork(Network* net, const Matrix& x,
                         const std::vector<int>& train_index,
                         const std::vector<int>& validation_index,
                         const BatchLoss& loss, const TrainConfig& config) {
  ROICL_CHECK(net != nullptr);
  ROICL_CHECK(!train_index.empty());
  ROICL_CHECK(config.epochs > 0);
  ROICL_CHECK(config.batch_size > 0);

  obs::ScopedSpan train_span("train");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_counter = registry.GetCounter("train.epochs");
  obs::Gauge* loss_gauge = registry.GetGauge("train.loss");
  obs::Gauge* grad_norm_gauge = registry.GetGauge("train.grad_norm");
  registry.GetGauge("train.lr")->Set(config.learning_rate);
  obs::Debug("train start", {{"n_train", train_index.size()},
                             {"n_val", validation_index.size()},
                             {"epochs", config.epochs},
                             {"batch_size", config.batch_size},
                             {"lr", config.learning_rate}});

  Rng rng(config.seed, /*stream=*/7);
  Adam optimizer(config.learning_rate, 0.9, 0.999, 1e-8,
                 config.weight_decay);

  std::vector<int> order = train_index;
  bool use_early_stop = config.patience > 0 && !validation_index.empty();
  double best_val = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::vector<Matrix> best_snapshot;

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("epoch");
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      std::vector<int> batch_index(
          order.begin() + static_cast<ptrdiff_t>(start),
          order.begin() + static_cast<ptrdiff_t>(end));
      Matrix batch = x.SelectRows(batch_index);
      Matrix preds = net->Forward(batch, Mode::kTrain, &rng);
      Matrix grad;
      epoch_loss += loss.Compute(preds, batch_index, &grad);
      ++batches;
      net->ZeroGrads();
      net->Backward(grad);
      optimizer.Step(net->Params(), net->Grads());
    }
    result.final_train_loss = batches > 0 ? epoch_loss / batches : 0.0;
    result.epochs_run = epoch + 1;
    epochs_counter->Increment();
    loss_gauge->Set(result.final_train_loss);
    // Gradient norm of the last mini-batch: one pass over the parameter
    // tensors per epoch, negligible next to the batches themselves.
    double grad_norm = GradL2Norm(net);
    grad_norm_gauge->Set(grad_norm);

    double val = std::numeric_limits<double>::quiet_NaN();
    if (use_early_stop) {
      val = EvaluateLoss(net, x, validation_index, loss);
      if (val < best_val - 1e-12) {
        best_val = val;
        epochs_since_best = 0;
        best_snapshot = net->SnapshotParams();
      } else {
        ++epochs_since_best;
        if (epochs_since_best >= config.patience) {
          net->RestoreParams(best_snapshot);
          result.early_stopped = true;
          registry.GetCounter("train.early_stops")->Increment();
          obs::Debug("early stop",
                     {{"epoch", epoch + 1},
                      {"best_val_loss", best_val},
                      {"patience", config.patience}});
        }
      }
    }
    obs::Debug("epoch", {{"epoch", epoch + 1},
                         {"loss", result.final_train_loss},
                         {"val_loss", val},
                         {"grad_norm", grad_norm}});
    if (result.early_stopped) break;
  }
  if (use_early_stop && !result.early_stopped &&
      best_val < std::numeric_limits<double>::infinity()) {
    // Training ran to the epoch limit; still hand back the best snapshot.
    double final_val = EvaluateLoss(net, x, validation_index, loss);
    if (best_val < final_val) net->RestoreParams(best_snapshot);
  }
  result.best_validation_loss = best_val;
  registry.GetGauge("train.final_loss")->Set(result.final_train_loss);
  obs::Debug("train done", {{"epochs_run", result.epochs_run},
                            {"final_loss", result.final_train_loss},
                            {"best_val_loss", best_val},
                            {"early_stopped", result.early_stopped}});
  return result;
}

}  // namespace roicl::nn
