#ifndef ROICL_NN_BATCH_FORWARD_H_
#define ROICL_NN_BATCH_FORWARD_H_

#include <functional>

#include "linalg/matrix.h"
#include "nn/network.h"

namespace roicl::nn {

/// Knobs for the batched prediction engine (deterministic inference
/// forward and the MC-dropout sweep built on top of it).
struct BatchOptions {
  /// Rows per forward call. Blocks amortize the per-call overhead into one
  /// matrix-matrix multiply and bound the working set per task.
  int batch_size = 256;
  /// 1 runs inline on the caller's thread; 0 fans blocks out across the
  /// process-global ThreadPool; any other value uses a dedicated pool of
  /// that size. The choice never changes the produced bits — only the
  /// wall clock.
  int num_threads = 0;
};

/// Deterministic batched kInfer forward: splits `x` into row blocks of
/// `opts.batch_size`, forwards each block (in parallel per `num_threads`),
/// and stitches the outputs back in row order. Because kInfer forwards are
/// state-free and each output row depends only on its input row, the
/// result equals net->Forward(x, kInfer, nullptr) bit-for-bit at any
/// batch size or thread count.
Matrix BatchedInferForward(Network* net, const Matrix& x,
                           const BatchOptions& opts = {});

/// Runs `body(block)` for each row block [block*batch_size,
/// min(n, (block+1)*batch_size)) according to the threading policy above.
/// Shared by the inference forward and the MC-dropout engine so both hot
/// paths schedule identically.
void ForEachRowBlock(int num_rows, const BatchOptions& opts,
                     const std::function<void(int block, int row_begin,
                                              int row_end)>& body);

}  // namespace roicl::nn

#endif  // ROICL_NN_BATCH_FORWARD_H_
