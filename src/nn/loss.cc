#include "nn/loss.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::nn {

double MseLoss::Compute(const Matrix& preds, const std::vector<int>& index,
                        Matrix* grad) const {
  ROICL_CHECK(grad != nullptr && targets_ != nullptr);
  ROICL_CHECK(preds.cols() == 1);
  ROICL_CHECK(preds.rows() == static_cast<int>(index.size()));
  *grad = Matrix(preds.rows(), 1);
  double n = static_cast<double>(preds.rows());
  double loss = 0.0;
  for (int i = 0; i < preds.rows(); ++i) {
    double target = (*targets_)[AsSize(index[AsSize(i)])];
    double diff = preds(i, 0) - target;
    loss += diff * diff;
    (*grad)(i, 0) = 2.0 * diff / n;
  }
  return loss / n;
}

double BceWithLogitsLoss::Compute(const Matrix& preds,
                                  const std::vector<int>& index,
                                  Matrix* grad) const {
  ROICL_CHECK(grad != nullptr && targets_ != nullptr);
  ROICL_CHECK(preds.cols() == 1);
  ROICL_CHECK(preds.rows() == static_cast<int>(index.size()));
  *grad = Matrix(preds.rows(), 1);
  double n = static_cast<double>(preds.rows());
  double loss = 0.0;
  for (int i = 0; i < preds.rows(); ++i) {
    double y = (*targets_)[AsSize(index[AsSize(i)])];
    double z = preds(i, 0);
    // Stable softplus form: BCE = max(z,0) - z*y + log(1 + exp(-|z|)).
    loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
    (*grad)(i, 0) = (Sigmoid(z) - y) / n;
  }
  return loss / n;
}

}  // namespace roicl::nn
