#include "nn/dense.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::nn {

Dense::Dense(int in_features, int out_features, Init init, Rng* rng) {
  ROICL_CHECK(in_features > 0 && out_features > 0);
  weights_ = Matrix(in_features, out_features);
  bias_ = Matrix(1, out_features);
  grad_weights_ = Matrix(in_features, out_features);
  grad_bias_ = Matrix(1, out_features);

  if (init != Init::kZero) {
    ROICL_CHECK(rng != nullptr);
    if (init == Init::kXavier) {
      double bound = std::sqrt(6.0 / (in_features + out_features));
      for (double& w : weights_.data()) w = rng->Uniform(-bound, bound);
    } else {  // He
      double stddev = std::sqrt(2.0 / in_features);
      for (double& w : weights_.data()) w = rng->Normal(0.0, stddev);
    }
  }
}

Matrix Dense::Forward(const Matrix& input, Mode mode, Rng* /*rng*/) {
  ROICL_CHECK(input.cols() == weights_.rows());
  if (mode == Mode::kTrain) cached_input_ = input;
  Matrix out = Matmul(input, weights_);
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    const double* b = bias_.RowPtr(0);
    for (int c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  return out;
}

Matrix Dense::Backward(const Matrix& grad_output) {
  ROICL_CHECK_MSG(cached_input_.rows() == grad_output.rows(),
                  "Backward without matching Forward(kTrain)");
  // dW += X^T g ; db += colsum(g) ; dX = g W^T.
  grad_weights_ += Matmul(cached_input_.Transposed(), grad_output);
  std::vector<double> col_sums = ColumnSums(grad_output);
  for (int c = 0; c < grad_bias_.cols(); ++c) {
    grad_bias_(0, c) += col_sums[AsSize(c)];
  }
  return Matmul(grad_output, weights_.Transposed());
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense());
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  copy->grad_weights_ = Matrix(weights_.rows(), weights_.cols());
  copy->grad_bias_ = Matrix(1, bias_.cols());
  return copy;
}

}  // namespace roicl::nn
