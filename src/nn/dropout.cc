#include "nn/dropout.h"

#include "common/macros.h"

namespace roicl::nn {

Dropout::Dropout(double rate) : rate_(rate) {
  ROICL_CHECK(rate >= 0.0 && rate < 1.0);
}

Matrix Dropout::Forward(const Matrix& input, Mode mode, Rng* rng) {
  if (mode == Mode::kInfer || rate_ == 0.0) {
    mask_ = Matrix();
    return input;
  }
  ROICL_CHECK_MSG(rng != nullptr, "stochastic dropout needs an Rng");
  double keep = 1.0 - rate_;
  double scale = 1.0 / keep;
  mask_ = Matrix(input.rows(), input.cols());
  Matrix out = input;
  std::vector<double>& m = mask_.data();
  std::vector<double>& o = out.data();
  for (size_t i = 0; i < o.size(); ++i) {
    double keep_scale = rng->Bernoulli(keep) ? scale : 0.0;
    m[i] = keep_scale;
    o[i] *= keep_scale;
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;  // identity pass (kInfer / rate 0)
  ROICL_CHECK(mask_.rows() == grad_output.rows() &&
              mask_.cols() == grad_output.cols());
  Matrix grad = grad_output;
  const std::vector<double>& m = mask_.data();
  std::vector<double>& g = grad.data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= m[i];
  return grad;
}

}  // namespace roicl::nn
