#include "nn/dropout.h"

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::nn {

Dropout::Dropout(double rate) : rate_(rate) {
  ROICL_CHECK(rate >= 0.0 && rate < 1.0);
}

Matrix Dropout::Forward(const Matrix& input, Mode mode, Rng* rng) {
  if (mode == Mode::kInfer || rate_ == 0.0) {
    if (mode == Mode::kTrain) mask_ = Matrix();
    return input;
  }
  ROICL_CHECK_MSG(rng != nullptr, "stochastic dropout needs an Rng");
  double keep = 1.0 - rate_;
  double scale = 1.0 / keep;
  Matrix out = input;
  std::vector<double>& o = out.data();
  if (mode == Mode::kTrain) {
    // Only the training path caches the mask (Backward needs it). The
    // kMcSample path stays state-free so concurrent MC forward passes can
    // share one network.
    mask_ = Matrix(input.rows(), input.cols());
    std::vector<double>& m = mask_.data();
    for (size_t i = 0; i < o.size(); ++i) {
      double keep_scale = rng->Bernoulli(keep) ? scale : 0.0;
      m[i] = keep_scale;
      o[i] *= keep_scale;
    }
  } else {  // kMcSample
    for (size_t i = 0; i < o.size(); ++i) {
      o[i] *= rng->Bernoulli(keep) ? scale : 0.0;
    }
  }
  return out;
}

Matrix Dropout::ForwardRows(const Matrix& input, Mode mode,
                            RowRngs* row_rngs) {
  if (mode == Mode::kInfer || rate_ == 0.0) return input;
  ROICL_CHECK_MSG(mode != Mode::kTrain,
                  "ForwardRows is an inference-only path (no mask cache)");
  ROICL_CHECK_MSG(row_rngs != nullptr &&
                      static_cast<int>(row_rngs->size()) == input.rows(),
                  "ForwardRows needs one Rng per input row");
  double keep = 1.0 - rate_;
  double scale = 1.0 / keep;
  Matrix out = input;
  for (int r = 0; r < out.rows(); ++r) {
    Rng& rng = (*row_rngs)[AsSize(r)];
    double* row = out.RowPtr(r);
    for (int c = 0; c < out.cols(); ++c) {
      row[c] *= rng.Bernoulli(keep) ? scale : 0.0;
    }
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_output) {
  if (mask_.empty()) return grad_output;  // identity pass (kInfer / rate 0)
  ROICL_CHECK(mask_.rows() == grad_output.rows() &&
              mask_.cols() == grad_output.cols());
  Matrix grad = grad_output;
  const std::vector<double>& m = mask_.data();
  std::vector<double>& g = grad.data();
  for (size_t i = 0; i < g.size(); ++i) g[i] *= m[i];
  return grad;
}

}  // namespace roicl::nn
