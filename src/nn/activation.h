#ifndef ROICL_NN_ACTIVATION_H_
#define ROICL_NN_ACTIVATION_H_

#include <memory>

#include "nn/layer.h"

namespace roicl::nn {

/// Supported element-wise activations.
enum class ActivationKind {
  kRelu,
  kElu,
  kSigmoid,
  kTanh,
};

/// Element-wise activation layer.
class Activation : public Layer {
 public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}

  Matrix Forward(const Matrix& input, Mode mode, Rng* rng) override;
  Matrix Backward(const Matrix& grad_output) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Activation>(kind_);
  }

  ActivationKind kind() const { return kind_; }

 private:
  ActivationKind kind_;
  Matrix cached_input_;
  Matrix cached_output_;
};

}  // namespace roicl::nn

#endif  // ROICL_NN_ACTIVATION_H_
