#ifndef ROICL_OBS_SLO_H_
#define ROICL_OBS_SLO_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated_mutex.h"

/// \file
/// Declarative SLO engine: specs parsed from a `.slo` config are evaluated
/// over rolling event-count windows with multi-window burn-rate alerting.
///
/// Each spec names an objective kind, a target, and two windows. An event
/// is *bad* when it violates the objective (latency over target, rejected
/// submit, uncovered outcome, drift-triggered window). The *burn rate* is
/// the bad fraction of a window divided by the objective's error budget:
/// burn 1.0 means the budget is being consumed exactly as fast as allowed,
/// 2.0 twice as fast. A state trips only when BOTH the short and the long
/// window burn past the threshold — the short window makes alerts fast,
/// the long window keeps one transient spike from paging (the classic
/// multi-window burn-rate rule, with event counts standing in for wall
/// time so replays stay deterministic).
///
/// Spec file format (one record per line, `#` comments allowed):
///
///   slo <name> kind=<kind> target=<num> short_window=<n>
///       long_window=<n> warn_burn=<x> breach_burn=<x>   (one line)
///
/// Kinds and their bad-event/budget semantics:
///   p99_latency_us     bad: latency > target (us); budget fixed at 0.01
///   reject_rate        bad: submit rejected;       budget = target
///   coverage_floor     bad: outcome uncovered;     budget = 1 - target
///   drift_alert_budget bad: window drift-flagged;  budget = target
///
/// `tools/check_slo_specs.sh` lints spec files; `configs/serving.slo` is
/// the canonical serving config consumed by the `load-replay` subcommand.

namespace roicl::obs {

enum class SloKind {
  kP99LatencyUs,
  kRejectRate,
  kCoverageFloor,
  kDriftAlertBudget,
};

enum class SloState { kOk, kWarn, kBreach };

std::string_view SloKindName(SloKind kind);
std::string_view SloStateName(SloState state);

struct SloSpec {
  std::string name;
  SloKind kind = SloKind::kP99LatencyUs;
  /// Latency threshold in microseconds for p99_latency_us; an allowed /
  /// required fraction for the rate kinds (see the budget table above).
  double target = 0.0;
  size_t short_window = 0;  ///< events; must be >= 1
  size_t long_window = 0;   ///< events; must be > short_window
  double warn_burn = 1.0;
  double breach_burn = 2.0;
};

/// Parses spec text; on malformed input returns false and describes the
/// first offending line in `*error`. `*specs` is replaced on success.
bool ParseSloSpecs(std::string_view text, std::vector<SloSpec>* specs,
                   std::string* error);

/// Reads `path` and delegates to ParseSloSpecs; false on I/O failure too.
bool LoadSloSpecs(const std::string& path, std::vector<SloSpec>* specs,
                  std::string* error);

/// Evaluates a set of SloSpecs against a live event stream. Record* calls
/// are routed to every spec of the matching kind; each call updates the
/// spec's rolling windows and recomputes its state, so StateOf() and
/// VerdictJson() are always current. Thread-safe (one mutex; SLO events
/// are orders of magnitude rarer than metric increments).
///
/// State transitions feed the process-wide metrics registry:
/// `slo.events` / `slo.warn_transitions` / `slo.breach_transitions`
/// counters and the `slo.worst_state` gauge (0 OK, 1 WARN, 2 BREACH).
class SloEngine {
 public:
  explicit SloEngine(std::vector<SloSpec> specs);

  void RecordLatency(double latency_us)  ///< kP99LatencyUs specs
      ROICL_EXCLUDES(mutex_);
  void RecordAdmission(bool admitted)  ///< kRejectRate specs
      ROICL_EXCLUDES(mutex_);
  void RecordCoverage(bool covered)  ///< kCoverageFloor specs
      ROICL_EXCLUDES(mutex_);
  void RecordDriftWindow(bool triggered)  ///< kDriftAlertBudget specs
      ROICL_EXCLUDES(mutex_);

  /// Current state of the named spec; kOk for unknown names (an absent
  /// spec cannot breach).
  SloState StateOf(std::string_view name) const ROICL_EXCLUDES(mutex_);

  /// Worst state across all specs.
  SloState WorstState() const ROICL_EXCLUDES(mutex_);

  /// Worst state any spec has *ever* reached — a breach that recovered
  /// still reads BREACH here. Replay reports use this: the verdict at
  /// the end of a run must not forget a mid-run page.
  SloState PeakWorstState() const ROICL_EXCLUDES(mutex_);

  /// {"slos":[{"name":...,"kind":...,"target":...,"state":"OK",
  ///   "peak":"OK","short_burn":...,"long_burn":...,"events":N,
  ///   "bad_events":N}],"worst":"OK","worst_peak":"OK"} — the verdict
  /// snapshot written next to metrics. `state`/`worst` are current;
  /// `peak`/`worst_peak` latch the worst ever reached.
  std::string VerdictJson() const ROICL_EXCLUDES(mutex_);

 private:
  struct Tracker {
    SloSpec spec;
    double budget = 0.01;
    std::deque<bool> window;  ///< most recent long_window outcomes
    uint64_t events = 0;
    uint64_t bad_events = 0;
    SloState state = SloState::kOk;
    SloState peak = SloState::kOk;  ///< worst state ever reached
    double short_burn = 0.0;
    double long_burn = 0.0;
  };

  void RecordKind(SloKind kind, bool bad) ROICL_EXCLUDES(mutex_);
  void EvaluateLocked(Tracker* tracker) ROICL_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<Tracker> trackers_ ROICL_GUARDED_BY(mutex_);
};

}  // namespace roicl::obs

#endif  // ROICL_OBS_SLO_H_
