#ifndef ROICL_OBS_TRACE_H_
#define ROICL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated_mutex.h"

/// \file
/// RAII trace spans exportable as Chrome `chrome://tracing` JSON.
///
/// `ScopedSpan` measures the lifetime of a scope and records one
/// "complete" event (`"ph":"X"`) with a start timestamp and duration in
/// microseconds. Parent/child nesting is implicit: Chrome nests
/// overlapping X-events on the same thread track, and `CurrentDepth()`
/// exposes the per-thread nesting level for tests and diagnostics.
///
/// `RecordFlowEvent` adds chrome://tracing *flow* events ("ph":"s"/"t"/
/// "f"), the arrows Chrome draws between slices on different thread
/// tracks. A request that is enqueued on a client thread and scored on
/// the dispatcher thread emits one flow per request (id = its trace ID),
/// visually stitching queue wait -> batch assembly -> scorer compute ->
/// monitor observe into one request-scoped lane across threads.
///
/// Collection is off by default, in which case a span costs one relaxed
/// atomic load. The CLI's `--trace-out FILE` enables collection and
/// writes the JSON on exit; load the file via chrome://tracing or
/// https://ui.perfetto.dev.

namespace roicl::obs {

struct TraceEvent {
  std::string name;
  /// Optional free-form annotation, exported as args.detail.
  std::string detail;
  /// Microseconds since the collector's construction (process start in
  /// practice, since the collector is a process-wide singleton).
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  /// Trace-event phase: 'X' complete span (the default), or a flow event
  /// 's' (start), 't' (step), 'f' (finish) binding slices across threads.
  char phase = 'X';
  /// Flow binding id (the request's trace ID); meaningful for s/t/f.
  uint64_t flow_id = 0;
};

class TraceCollector {
 public:
  /// The process-wide collector used by all ScopedSpan instances.
  static TraceCollector& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void Record(TraceEvent event) ROICL_EXCLUDES(mutex_);

  /// Records one flow event when collection is enabled (no-op otherwise).
  /// `phase` must be 's', 't', or 'f'; `flow_id` binds the arrows of one
  /// request together across thread tracks.
  void RecordFlowEvent(std::string_view name, char phase, uint64_t flow_id)
      ROICL_EXCLUDES(mutex_);

  std::vector<TraceEvent> Snapshot() const ROICL_EXCLUDES(mutex_);
  size_t size() const ROICL_EXCLUDES(mutex_);
  void Clear() ROICL_EXCLUDES(mutex_);

  /// Chrome trace-event JSON: an array of
  /// {"name":...,"ph":"X","ts":...,"dur":...,"pid":1,"tid":...} objects.
  std::string ToChromeJson() const ROICL_EXCLUDES(mutex_);
  /// Writes ToChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  /// Microseconds since collector construction (monotonic).
  uint64_t NowMicros() const;

 private:
  TraceCollector();

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ ROICL_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point epoch_;  ///< set once, then read-only
};

/// Monotonic microseconds since process start (the trace collector's
/// construction). This is the one sanctioned wall-clock read for library
/// code: timing observability (latency histograms, throughput gauges)
/// goes through here so tools/check_determinism.sh can ban every other
/// `std::chrono::*_clock::now()` — clock reads must never feed
/// computation, only metrics.
uint64_t MonotonicMicros();

/// RAII span: records the enclosing scope's duration under `name` when
/// collection is enabled at construction time. Move/copy are disabled;
/// spans live exactly as long as their scope.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view detail = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Nesting depth of live spans on the calling thread (0 outside any
  /// span). Only spans created while collection is enabled count.
  static int CurrentDepth();

 private:
  bool active_ = false;
  std::string name_;
  std::string detail_;
  uint64_t start_us_ = 0;
};

}  // namespace roicl::obs

#endif  // ROICL_OBS_TRACE_H_
