#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/log.h"
#include "obs/metrics.h"

namespace roicl::obs {
namespace {

std::string RenderNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

bool ParseDouble(std::string_view text, double* out) {
  try {
    size_t consumed = 0;
    *out = std::stod(std::string(text), &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

bool ParseSize(std::string_view text, size_t* out) {
  double v = 0.0;
  if (!ParseDouble(text, &v)) return false;
  if (v < 0.0 || v != std::floor(v) || v > 1e9) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ParseKind(std::string_view text, SloKind* out) {
  if (text == "p99_latency_us") {
    *out = SloKind::kP99LatencyUs;
  } else if (text == "reject_rate") {
    *out = SloKind::kRejectRate;
  } else if (text == "coverage_floor") {
    *out = SloKind::kCoverageFloor;
  } else if (text == "drift_alert_budget") {
    *out = SloKind::kDriftAlertBudget;
  } else {
    return false;
  }
  return true;
}

/// Error budget (allowed bad fraction) implied by kind + target; negative
/// when the target is out of range for the kind.
double BudgetFor(SloKind kind, double target) {
  switch (kind) {
    case SloKind::kP99LatencyUs:
      // "99% of requests under `target` us": the budget is the 1% tail.
      return target > 0.0 ? 0.01 : -1.0;
    case SloKind::kRejectRate:
    case SloKind::kDriftAlertBudget:
      return target > 0.0 && target < 1.0 ? target : -1.0;
    case SloKind::kCoverageFloor:
      return target > 0.0 && target < 1.0 ? 1.0 - target : -1.0;
  }
  return -1.0;
}

}  // namespace

std::string_view SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kP99LatencyUs:
      return "p99_latency_us";
    case SloKind::kRejectRate:
      return "reject_rate";
    case SloKind::kCoverageFloor:
      return "coverage_floor";
    case SloKind::kDriftAlertBudget:
      return "drift_alert_budget";
  }
  return "unknown";
}

std::string_view SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "OK";
    case SloState::kWarn:
      return "WARN";
    case SloState::kBreach:
      return "BREACH";
  }
  return "unknown";
}

bool ParseSloSpecs(std::string_view text, std::vector<SloSpec>* specs,
                   std::string* error) {
  std::vector<SloSpec> parsed;
  std::istringstream lines{std::string(text)};
  std::string line;
  size_t line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message;
    }
    return false;
  };
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string token;
    if (!(tokens >> token) || token[0] == '#') continue;
    if (token != "slo") return fail("expected 'slo', got '" + token + "'");
    SloSpec spec;
    if (!(tokens >> spec.name) || spec.name[0] == '#') {
      return fail("missing slo name");
    }
    for (const SloSpec& existing : parsed) {
      if (existing.name == spec.name) {
        return fail("duplicate slo name '" + spec.name + "'");
      }
    }
    bool have_kind = false;
    bool have_target = false;
    while (tokens >> token) {
      if (token[0] == '#') break;
      size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        return fail("expected key=value, got '" + token + "'");
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      bool ok = true;
      if (key == "kind") {
        ok = ParseKind(value, &spec.kind);
        have_kind = ok;
      } else if (key == "target") {
        ok = ParseDouble(value, &spec.target);
        have_target = ok;
      } else if (key == "short_window") {
        ok = ParseSize(value, &spec.short_window);
      } else if (key == "long_window") {
        ok = ParseSize(value, &spec.long_window);
      } else if (key == "warn_burn") {
        ok = ParseDouble(value, &spec.warn_burn);
      } else if (key == "breach_burn") {
        ok = ParseDouble(value, &spec.breach_burn);
      } else {
        return fail("unknown key '" + key + "'");
      }
      if (!ok) return fail("bad value for '" + key + "': '" + value + "'");
    }
    if (!have_kind) return fail("slo '" + spec.name + "' is missing kind=");
    if (!have_target) {
      return fail("slo '" + spec.name + "' is missing target=");
    }
    if (BudgetFor(spec.kind, spec.target) <= 0.0) {
      return fail("slo '" + spec.name + "': target " +
                  RenderNumber(spec.target) + " is out of range for kind " +
                  std::string(SloKindName(spec.kind)));
    }
    if (spec.short_window < 1) {
      return fail("slo '" + spec.name + "': short_window must be >= 1");
    }
    if (spec.long_window <= spec.short_window) {
      return fail("slo '" + spec.name +
                  "': long_window must exceed short_window");
    }
    if (spec.warn_burn <= 0.0 || spec.breach_burn < spec.warn_burn) {
      return fail("slo '" + spec.name +
                  "': need 0 < warn_burn <= breach_burn");
    }
    parsed.push_back(std::move(spec));
  }
  if (parsed.empty()) {
    line_number = 0;
    return fail("no slo records found");
  }
  *specs = std::move(parsed);
  return true;
}

bool LoadSloSpecs(const std::string& path, std::vector<SloSpec>* specs,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseSloSpecs(text.str(), specs, error);
}

SloEngine::SloEngine(std::vector<SloSpec> specs) {
  trackers_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    Tracker tracker;
    tracker.budget = BudgetFor(spec.kind, spec.target);
    tracker.spec = std::move(spec);
    trackers_.push_back(std::move(tracker));
  }
}

void SloEngine::RecordLatency(double latency_us) {
  MutexLock lock(mutex_);
  for (Tracker& tracker : trackers_) {
    if (tracker.spec.kind != SloKind::kP99LatencyUs) continue;
    tracker.events += 1;
    const bool bad = latency_us > tracker.spec.target;
    tracker.bad_events += bad ? 1 : 0;
    tracker.window.push_back(bad);
    if (tracker.window.size() > tracker.spec.long_window) {
      tracker.window.pop_front();
    }
    EvaluateLocked(&tracker);
  }
}

void SloEngine::RecordAdmission(bool admitted) {
  RecordKind(SloKind::kRejectRate, !admitted);
}

void SloEngine::RecordCoverage(bool covered) {
  RecordKind(SloKind::kCoverageFloor, !covered);
}

void SloEngine::RecordDriftWindow(bool triggered) {
  RecordKind(SloKind::kDriftAlertBudget, triggered);
}

void SloEngine::RecordKind(SloKind kind, bool bad) {
  MutexLock lock(mutex_);
  for (Tracker& tracker : trackers_) {
    if (tracker.spec.kind != kind) continue;
    tracker.events += 1;
    tracker.bad_events += bad ? 1 : 0;
    tracker.window.push_back(bad);
    if (tracker.window.size() > tracker.spec.long_window) {
      tracker.window.pop_front();
    }
    EvaluateLocked(&tracker);
  }
}

void SloEngine::EvaluateLocked(Tracker* tracker) {
  static Counter* events =
      MetricsRegistry::Global().GetCounter("slo.events");
  static Counter* warns =
      MetricsRegistry::Global().GetCounter("slo.warn_transitions");
  static Counter* breaches =
      MetricsRegistry::Global().GetCounter("slo.breach_transitions");
  static Gauge* worst = MetricsRegistry::Global().GetGauge("slo.worst_state");
  events->Increment();

  const SloSpec& spec = tracker->spec;
  const size_t total = tracker->window.size();
  size_t long_bad = 0;
  for (bool bad : tracker->window) long_bad += bad ? 1 : 0;
  const size_t short_n = std::min(total, spec.short_window);
  size_t short_bad = 0;
  for (size_t i = total - short_n; i < total; ++i) {
    short_bad += tracker->window[i] ? 1 : 0;
  }
  tracker->long_burn = total == 0 ? 0.0
                                  : static_cast<double>(long_bad) /
                                        static_cast<double>(total) /
                                        tracker->budget;
  tracker->short_burn = short_n == 0 ? 0.0
                                     : static_cast<double>(short_bad) /
                                           static_cast<double>(short_n) /
                                           tracker->budget;

  // Until the short window has filled once, the burn estimate is too
  // noisy to alert on — a single bad first event would read as burn
  // 1/budget. Stay OK while warming up.
  SloState next = SloState::kOk;
  if (total >= spec.short_window) {
    if (tracker->short_burn >= spec.breach_burn &&
        tracker->long_burn >= spec.breach_burn) {
      next = SloState::kBreach;
    } else if (tracker->short_burn >= spec.warn_burn &&
               tracker->long_burn >= spec.warn_burn) {
      next = SloState::kWarn;
    }
  }
  if (next != tracker->state) {
    if (next == SloState::kWarn) warns->Increment();
    if (next == SloState::kBreach) breaches->Increment();
    tracker->state = next;
    if (static_cast<int>(next) > static_cast<int>(tracker->peak)) {
      tracker->peak = next;
    }
  }
  SloState worst_state = SloState::kOk;
  for (const Tracker& t : trackers_) {
    if (static_cast<int>(t.state) > static_cast<int>(worst_state)) {
      worst_state = t.state;
    }
  }
  worst->Set(static_cast<double>(worst_state));
}

SloState SloEngine::StateOf(std::string_view name) const {
  MutexLock lock(mutex_);
  for (const Tracker& tracker : trackers_) {
    if (tracker.spec.name == name) return tracker.state;
  }
  return SloState::kOk;
}

SloState SloEngine::WorstState() const {
  MutexLock lock(mutex_);
  SloState worst = SloState::kOk;
  for (const Tracker& tracker : trackers_) {
    if (static_cast<int>(tracker.state) > static_cast<int>(worst)) {
      worst = tracker.state;
    }
  }
  return worst;
}

SloState SloEngine::PeakWorstState() const {
  MutexLock lock(mutex_);
  SloState worst = SloState::kOk;
  for (const Tracker& tracker : trackers_) {
    if (static_cast<int>(tracker.peak) > static_cast<int>(worst)) {
      worst = tracker.peak;
    }
  }
  return worst;
}

std::string SloEngine::VerdictJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\"slos\":[";
  SloState worst = SloState::kOk;
  SloState worst_peak = SloState::kOk;
  for (size_t i = 0; i < trackers_.size(); ++i) {
    const Tracker& tracker = trackers_[i];
    if (static_cast<int>(tracker.state) > static_cast<int>(worst)) {
      worst = tracker.state;
    }
    if (static_cast<int>(tracker.peak) > static_cast<int>(worst_peak)) {
      worst_peak = tracker.peak;
    }
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    out += JsonEscape(tracker.spec.name);
    out += "\",\"kind\":\"";
    out += SloKindName(tracker.spec.kind);
    out += "\",\"target\":";
    out += RenderNumber(tracker.spec.target);
    out += ",\"state\":\"";
    out += SloStateName(tracker.state);
    out += "\",\"peak\":\"";
    out += SloStateName(tracker.peak);
    out += "\",\"short_burn\":";
    out += RenderNumber(tracker.short_burn);
    out += ",\"long_burn\":";
    out += RenderNumber(tracker.long_burn);
    out += ",\"events\":";
    out += std::to_string(tracker.events);
    out += ",\"bad_events\":";
    out += std::to_string(tracker.bad_events);
    out += '}';
  }
  out += "],\"worst\":\"";
  out += SloStateName(worst);
  out += "\",\"worst_peak\":\"";
  out += SloStateName(worst_peak);
  out += "\"}";
  return out;
}

}  // namespace roicl::obs
