#ifndef ROICL_OBS_LOG_H_
#define ROICL_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated_mutex.h"

/// \file
/// Structured, leveled, thread-safe logging for the roicl library.
///
/// Design goals, in order: (1) a filtered-out call costs one relaxed
/// atomic load plus the construction of its fields; (2) records carry
/// key=value fields rather than pre-formatted text, so sinks can render
/// either human-readable lines (stderr) or machine-readable JSON lines;
/// (3) no dependency on any other roicl library, so even `roicl_common`
/// (thread pool) can log and export metrics without a cycle.
///
/// Level selection: `ROICL_LOG_LEVEL` environment variable
/// (debug|info|warn|error|off) at first use of `Logger::Global()`, or
/// `SetLevel()` programmatically (the CLI maps `--log-level` onto it).
/// The library default is `warn`: quiet under tests and benches.

namespace roicl::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "DEBUG" / "INFO" / "WARN" / "ERROR" / "OFF".
const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns false (leaving `*out` untouched) on unknown text.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// Process-unique small integer for the calling thread (1, 2, ...),
/// assigned on first use. Shared by log records and trace events so the
/// two streams can be correlated.
uint32_t CurrentThreadId();

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// One key=value pair attached to a log record. Values are rendered to
/// text at construction; `quoted` records whether a JSON sink must quote
/// the value (strings/bools yes, numbers no).
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, const std::string& v)
      : key(k), value(v), quoted(true) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), quoted(false) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, int v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, long long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, unsigned v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, unsigned long v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, unsigned long long v)
      : key(k), value(std::to_string(v)), quoted(false) {}

  std::string key;
  std::string value;
  bool quoted;
};

/// A log record as handed to sinks. Field storage is borrowed from the
/// caller; sinks must not retain pointers past Write().
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view message;
  const LogField* fields = nullptr;
  size_t num_fields = 0;
  /// Seconds since the Unix epoch at the time of the call.
  double unix_seconds = 0.0;
  uint32_t thread_id = 0;
};

/// Output target for log records. Write() calls are serialized by the
/// owning Logger; sinks need no locking of their own.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Human-readable single-line text sink:
///   `12.345 INFO  message key=value key="two words"` to a FILE*
/// (stderr by default, not owned).
class TextSink : public LogSink {
 public:
  explicit TextSink(std::FILE* stream = stderr) : stream_(stream) {}
  void Write(const LogRecord& record) override;

 private:
  std::FILE* stream_;
};

/// JSON-lines sink: one JSON object per record,
///   {"ts":...,"level":"INFO","tid":1,"msg":"...","key":value,...}
class JsonLinesSink : public LogSink {
 public:
  explicit JsonLinesSink(const std::string& path);
  bool ok() const { return out_.is_open(); }
  void Write(const LogRecord& record) override;

 private:
  std::ofstream out_;
};

/// Leveled structured logger with pluggable sinks. All methods are
/// thread-safe; the level check is lock-free.
class Logger {
 public:
  /// A fresh logger (used by tests). When `with_default_sink`, starts
  /// with one TextSink on stderr; otherwise with no sinks.
  explicit Logger(bool with_default_sink = true);

  /// The process-wide logger used by all library instrumentation.
  /// Initialized on first use; honors ROICL_LOG_LEVEL.
  static Logger& Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const {
    return level != LogLevel::kOff &&
           static_cast<int>(level) >=
               level_.load(std::memory_order_relaxed);
  }

  void AddSink(std::unique_ptr<LogSink> sink) ROICL_EXCLUDES(mutex_);
  /// Replaces the sink list, returning the previous sinks (tests use
  /// this to install a capture sink and restore the original).
  std::vector<std::unique_ptr<LogSink>> SwapSinks(
      std::vector<std::unique_ptr<LogSink>> sinks) ROICL_EXCLUDES(mutex_);

  void Log(LogLevel level, std::string_view message,
           std::initializer_list<LogField> fields = {}) {
    if (!ShouldLog(level)) return;
    LogImpl(level, message, fields.begin(), fields.size());
  }
  /// Same as Log() but with a dynamically built field list.
  void LogV(LogLevel level, std::string_view message,
            const std::vector<LogField>& fields) {
    if (!ShouldLog(level)) return;
    LogImpl(level, message, fields.data(), fields.size());
  }

 private:
  void LogImpl(LogLevel level, std::string_view message,
               const LogField* fields, size_t num_fields)
      ROICL_EXCLUDES(mutex_);

  std::atomic<int> level_;
  Mutex mutex_;
  /// Sink list AND each sink's Write() are serialized under mutex_; that
  /// serialization is the "sinks need no locking of their own" contract.
  std::vector<std::unique_ptr<LogSink>> sinks_ ROICL_GUARDED_BY(mutex_);
};

/// Convenience wrappers over Logger::Global().
inline void Debug(std::string_view message,
                  std::initializer_list<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kDebug, message, fields);
}
inline void Info(std::string_view message,
                 std::initializer_list<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kInfo, message, fields);
}
inline void Warn(std::string_view message,
                 std::initializer_list<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kWarn, message, fields);
}
inline void Error(std::string_view message,
                  std::initializer_list<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kError, message, fields);
}

}  // namespace roicl::obs

#endif  // ROICL_OBS_LOG_H_
