#ifndef ROICL_OBS_METRICS_H_
#define ROICL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated_mutex.h"

/// \file
/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// histograms. The hot path (Increment / Set / Observe) is lock-free
/// `std::atomic` arithmetic; only registration (name -> instrument lookup)
/// takes a mutex, so call sites cache the returned pointer in a
/// function-local static. Instrument pointers remain valid for the
/// lifetime of the registry.
///
/// `SnapshotJson()` exports everything as one JSON object; the CLI's
/// `--metrics-out` writes it to a file on exit.

namespace roicl::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value-wins double (e.g. current loss, queue depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One retained exemplar: a sampled observation that carries the trace ID
/// of the request that produced it, so a slow histogram bucket can be
/// chased back to a complete per-request flow in the exported trace.
struct Exemplar {
  double value = 0.0;
  uint64_t trace_id = 0;
  bool valid = false;
};

/// Fixed-bucket histogram. Bucket `i` counts observations
/// `v <= upper_bounds[i]`; one implicit overflow bucket catches the rest.
/// Observe() is two relaxed atomic adds plus a CAS loop for the sum.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  /// Observe() plus an exemplar offer: the bucket `v` lands in retains
  /// the largest (value, trace_id) pair offered so far. Max-keeping (not
  /// last-write-wins) makes the retained exemplar independent of thread
  /// interleaving: given deterministic values and a deterministic sampled
  /// set of trace IDs, the final exemplars are identical at any thread
  /// count. Callers decide *whether* to offer (see the counter-RNG
  /// sampling in pipeline::ExemplarSampler); the slot mutex is only
  /// touched on the sampled path.
  void ObserveWithExemplar(double v, uint64_t trace_id)
      ROICL_EXCLUDES(exemplar_mu_);

  /// Per-bucket exemplar slots (size upper_bounds().size() + 1, overflow
  /// last); entries with valid == false have retained nothing.
  std::vector<Exemplar> Exemplars() const ROICL_EXCLUDES(exemplar_mu_);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size == upper_bounds().size() + 1,
  /// the last entry being the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Approximate quantile (`q` in [0, 1]) reconstructed from the bucket
  /// counts by linear interpolation within the bucket holding the target
  /// rank (0 is the floor of the first bucket, the last finite bound
  /// caps the overflow bucket). Exact-ish: the error is bounded by the
  /// bucket width around the quantile. NaN when the histogram is empty —
  /// SnapshotJson renders that as null.
  double ApproxQuantile(double q) const;

  void Reset() ROICL_EXCLUDES(exemplar_mu_);

 private:
  size_t BucketIndex(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  mutable Mutex exemplar_mu_;
  /// One slot per bucket, overflow last. The vector itself is sized once in
  /// the constructor; the slots are what the mutex guards.
  std::vector<Exemplar> exemplars_ ROICL_GUARDED_BY(exemplar_mu_);
};

/// Canonical bucket layouts shared by instrumentation sites and the CLI's
/// metric preregistration, so both resolve to identical histograms.
std::vector<double> LatencyMicrosBuckets();   // 10us .. 10s, decades
std::vector<double> ConformalScoreBuckets();  // 0.25 .. 512, octaves

class MetricsRegistry {
 public:
  /// The process-wide registry used by all library instrumentation.
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument. For histograms, the bucket
  /// layout is fixed by whichever call registers the name first; later
  /// calls return the existing instrument unchanged.
  Counter* GetCounter(std::string_view name) ROICL_EXCLUDES(mutex_);
  Gauge* GetGauge(std::string_view name) ROICL_EXCLUDES(mutex_);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds)
      ROICL_EXCLUDES(mutex_);

  /// {"counters":{...},"gauges":{...},"histograms":{name:
  ///   {"count":N,"sum":S,"bounds":[...],"counts":[...]}}}
  /// Non-finite gauge values are emitted as null to keep the JSON valid.
  std::string SnapshotJson() const ROICL_EXCLUDES(mutex_);
  /// Writes SnapshotJson() to `path`; false on I/O failure.
  bool WriteSnapshotJson(const std::string& path) const;

  /// Prometheus/OpenMetrics text exposition: counters and gauges as
  /// single samples, histograms as cumulative `_bucket{le=...}` series
  /// plus `_sum`/`_count`. Metric names are sanitized ('.' and '-' become
  /// '_'); retained exemplars ride along OpenMetrics-style
  /// (`... # {trace_id="17"} 9501`). The scrape-endpoint twin of
  /// SnapshotJson for dashboards that speak Prometheus.
  std::string PrometheusText() const ROICL_EXCLUDES(mutex_);
  /// Writes PrometheusText() to `path`; false on I/O failure.
  bool WritePrometheusText(const std::string& path) const;

  /// Zeroes every registered instrument (registration survives).
  /// For tests and benchmark repetitions.
  void Reset() ROICL_EXCLUDES(mutex_);

  void ForEachCounter(
      const std::function<void(const std::string&, uint64_t)>& fn) const
      ROICL_EXCLUDES(mutex_);
  void ForEachGauge(
      const std::function<void(const std::string&, double)>& fn) const
      ROICL_EXCLUDES(mutex_);
  void ForEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const ROICL_EXCLUDES(mutex_);

 private:
  /// Guards registration only; instrument updates are lock-free atomics on
  /// the pointers handed out. Acquired before any Histogram::exemplar_mu_
  /// (SnapshotJson/PrometheusText read exemplars under the registry lock).
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ROICL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ROICL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ROICL_GUARDED_BY(mutex_);
};

}  // namespace roicl::obs

#endif  // ROICL_OBS_METRICS_H_
