#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace roicl::obs {
namespace {

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Shortest representation that round-trips doubles through text well
/// enough for diagnostics; non-finite values are handled by the caller.
std::string RenderDouble(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"') return true;
  }
  return false;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)));
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

LogField::LogField(std::string_view k, double v) : key(k), quoted(false) {
  if (std::isfinite(v)) {
    value = RenderDouble(v);
  } else {
    // JSON has no Infinity/NaN literals; quote so sinks stay parseable.
    value = v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
    quoted = true;
  }
}

void TextSink::Write(const LogRecord& record) {
  std::string line;
  line.reserve(96);
  char head[64];
  std::snprintf(head, sizeof(head), "%.3f %-5s [t%u] ",
                record.unix_seconds, LogLevelName(record.level),
                record.thread_id);
  line += head;
  line.append(record.message);
  for (size_t i = 0; i < record.num_fields; ++i) {
    const LogField& field = record.fields[i];
    line += ' ';
    line += field.key;
    line += '=';
    if (field.quoted && NeedsQuoting(field.value)) {
      line += '"';
      line += field.value;
      line += '"';
    } else {
      line += field.value;
    }
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fflush(stream_);
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : out_(path, std::ios::out | std::ios::app) {}

void JsonLinesSink::Write(const LogRecord& record) {
  if (!out_) return;
  std::string line;
  line.reserve(128);
  line += "{\"ts\":";
  line += RenderDouble(record.unix_seconds);
  line += ",\"level\":\"";
  line += LogLevelName(record.level);
  line += "\",\"tid\":";
  line += std::to_string(record.thread_id);
  line += ",\"msg\":\"";
  line += JsonEscape(record.message);
  line += '"';
  for (size_t i = 0; i < record.num_fields; ++i) {
    const LogField& field = record.fields[i];
    line += ",\"";
    line += JsonEscape(field.key);
    line += "\":";
    if (field.quoted) {
      line += '"';
      line += JsonEscape(field.value);
      line += '"';
    } else {
      line += field.value;
    }
  }
  line += "}\n";
  out_ << line;
  out_.flush();
}

Logger::Logger(bool with_default_sink)
    : level_(static_cast<int>(LogLevel::kWarn)) {
  if (with_default_sink) {
    sinks_.push_back(std::make_unique<TextSink>(stderr));
  }
}

Logger& Logger::Global() {
  static Logger& logger = *[] {
    auto* l = new Logger(/*with_default_sink=*/true);
    if (const char* env = std::getenv("ROICL_LOG_LEVEL")) {
      LogLevel level;
      if (ParseLogLevel(env, &level)) l->SetLevel(level);
    }
    return l;
  }();
  return logger;
}

void Logger::AddSink(std::unique_ptr<LogSink> sink) {
  MutexLock lock(mutex_);
  sinks_.push_back(std::move(sink));
}

std::vector<std::unique_ptr<LogSink>> Logger::SwapSinks(
    std::vector<std::unique_ptr<LogSink>> sinks) {
  MutexLock lock(mutex_);
  sinks_.swap(sinks);
  return sinks;
}

void Logger::LogImpl(LogLevel level, std::string_view message,
                     const LogField* fields, size_t num_fields) {
  LogRecord record;
  record.level = level;
  record.message = message;
  record.fields = fields;
  record.num_fields = num_fields;
  record.unix_seconds = UnixSecondsNow();
  record.thread_id = CurrentThreadId();
  MutexLock lock(mutex_);
  for (std::unique_ptr<LogSink>& sink : sinks_) sink->Write(record);
}

}  // namespace roicl::obs
