#include "obs/trace.h"

#include <fstream>

#include "obs/log.h"

namespace roicl::obs {
namespace {

thread_local int g_span_depth = 0;

}  // namespace

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::Global() {
  static TraceCollector& collector = *new TraceCollector();
  return collector;
}

void TraceCollector::Record(TraceEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceCollector::RecordFlowEvent(std::string_view name, char phase,
                                     uint64_t flow_id) {
  if (!enabled()) return;
  TraceEvent event;
  event.name.assign(name);
  event.ts_us = NowMicros();
  event.tid = CurrentThreadId();
  event.phase = phase;
  event.flow_id = flow_id;
  Record(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  MutexLock lock(mutex_);
  return events_;
}

size_t TraceCollector::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

void TraceCollector::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

std::string TraceCollector::ToChromeJson() const {
  MutexLock lock(mutex_);
  std::string out = "[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += '"';
    if (event.phase == 's' || event.phase == 't' || event.phase == 'f') {
      // Flow events: Chrome binds s/t/f arrows by (cat, id); "bp":"e"
      // attaches the finish arrow to the enclosing slice, not the next.
      out += ",\"cat\":\"flow\",\"id\":";
      out += std::to_string(event.flow_id);
      if (event.phase == 'f') out += ",\"bp\":\"e\"";
    }
    out += ",\"ts\":";
    out += std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(event.dur_us);
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    if (!event.detail.empty()) {
      out += ",\"args\":{\"detail\":\"";
      out += JsonEscape(event.detail);
      out += "\"}";
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

bool TraceCollector::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToChromeJson();
  return static_cast<bool>(out);
}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint64_t MonotonicMicros() { return TraceCollector::Global().NowMicros(); }

ScopedSpan::ScopedSpan(std::string_view name, std::string_view detail) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;
  active_ = true;
  name_.assign(name);
  detail_.assign(detail);
  start_us_ = collector.NowMicros();
  ++g_span_depth;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --g_span_depth;
  TraceCollector& collector = TraceCollector::Global();
  TraceEvent event;
  event.name = std::move(name_);
  event.detail = std::move(detail_);
  event.ts_us = start_us_;
  event.dur_us = collector.NowMicros() - start_us_;
  event.tid = CurrentThreadId();
  collector.Record(std::move(event));
}

int ScopedSpan::CurrentDepth() { return g_span_depth; }

}  // namespace roicl::obs
