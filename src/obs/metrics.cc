#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/log.h"

namespace roicl::obs {
namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double expected = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(expected, expected + delta,
                                        std::memory_order_relaxed)) {
  }
}

std::string RenderJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  exemplars_.resize(bounds_.size() + 1);
}

size_t Histogram::BucketIndex(double v) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
}

void Histogram::ObserveWithExemplar(double v, uint64_t trace_id) {
  Observe(v);
  Exemplar offer{v, trace_id, true};
  MutexLock lock(exemplar_mu_);
  Exemplar& slot = exemplars_[BucketIndex(v)];
  // Keep the lexicographic max of (value, trace_id): deterministic under
  // any interleaving, and "slowest wins" within a bucket.
  if (!slot.valid || offer.value > slot.value ||
      (offer.value == slot.value && offer.trace_id > slot.trace_id)) {
    slot = offer;
  }
}

std::vector<Exemplar> Histogram::Exemplars() const {
  MutexLock lock(exemplar_mu_);
  return exemplars_;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::ApproxQuantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return std::nan("");
  // Rank of the target observation (1-based ceil, like the "higher"
  // conformal convention at q = 1).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Bucket i holds the target rank. Interpolate within its bounds; the
    // overflow bucket has no upper bound, so report its lower edge (an
    // honest floor rather than an invented extrapolation).
    double lo = i == 0 ? 0.0 : bounds_[i - 1];
    if (i == bounds_.size()) return lo;
    double hi = bounds_[i];
    double frac = (static_cast<double>(rank - seen) - 0.5) /
                  static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  MutexLock lock(exemplar_mu_);
  for (Exemplar& slot : exemplars_) slot = Exemplar{};
}

std::vector<double> LatencyMicrosBuckets() {
  return {10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

std::vector<double> ConformalScoreBuckets() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 512.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += RenderJsonNumber(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":";
    out += std::to_string(histogram->count());
    out += ",\"sum\":";
    out += RenderJsonNumber(histogram->sum());
    out += ",\"bounds\":[";
    const std::vector<double>& bounds = histogram->upper_bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += RenderJsonNumber(bounds[i]);
    }
    out += "],\"counts\":[";
    std::vector<uint64_t> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"p50\":";
    out += RenderJsonNumber(histogram->ApproxQuantile(0.50));
    out += ",\"p95\":";
    out += RenderJsonNumber(histogram->ApproxQuantile(0.95));
    out += ",\"p99\":";
    out += RenderJsonNumber(histogram->ApproxQuantile(0.99));
    std::vector<Exemplar> exemplars = histogram->Exemplars();
    bool any_valid = false;
    for (const Exemplar& e : exemplars) any_valid |= e.valid;
    if (any_valid) {
      out += ",\"exemplars\":[";
      bool first_exemplar = true;
      for (size_t i = 0; i < exemplars.size(); ++i) {
        if (!exemplars[i].valid) continue;
        if (!first_exemplar) out += ',';
        first_exemplar = false;
        out += "{\"bucket\":";
        out += std::to_string(i);
        out += ",\"value\":";
        out += RenderJsonNumber(exemplars[i].value);
        out += ",\"trace_id\":";
        out += std::to_string(exemplars[i].trace_id);
        out += '}';
      }
      out += ']';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::WriteSnapshotJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << SnapshotJson() << '\n';
  return static_cast<bool>(out);
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::string PromNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + PromNumber(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<double>& bounds = histogram->upper_bounds();
    std::vector<uint64_t> counts = histogram->BucketCounts();
    std::vector<Exemplar> exemplars = histogram->Exemplars();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += prom + "_bucket{le=\"";
      out += i < bounds.size() ? PromNumber(bounds[i]) : "+Inf";
      out += "\"} " + std::to_string(cumulative);
      if (i < exemplars.size() && exemplars[i].valid) {
        // OpenMetrics exemplar suffix: the slow sample's trace ID rides
        // along on the bucket it landed in.
        out += " # {trace_id=\"" +
               std::to_string(exemplars[i].trace_id) + "\"} " +
               PromNumber(exemplars[i].value);
      }
      out += '\n';
    }
    out += prom + "_sum " + PromNumber(histogram->sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

bool MetricsRegistry::WritePrometheusText(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << PrometheusText();
  return static_cast<bool>(out);
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const std::string&, uint64_t)>& fn) const {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) fn(name, counter->value());
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, double)>& fn) const {
  MutexLock lock(mutex_);
  for (const auto& [name, gauge] : gauges_) fn(name, gauge->value());
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  MutexLock lock(mutex_);
  for (const auto& [name, histogram] : histograms_) fn(name, *histogram);
}

}  // namespace roicl::obs
