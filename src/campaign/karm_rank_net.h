#ifndef ROICL_CAMPAIGN_KARM_RANK_NET_H_
#define ROICL_CAMPAIGN_KARM_RANK_NET_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/scaler.h"
#include "nn/batch_forward.h"
#include "nn/trainer.h"
#include "synth/multi_treatment.h"
#include "uplift/multi_head_net.h"

namespace roicl::campaign {

/// K-arm ranking scorer hyperparameters. Empty hidden lists auto-size
/// from the training-set size (mirrors DrpConfig's convention).
struct KArmRankNetConfig {
  std::vector<int> trunk_hidden;  ///< empty = auto
  int trunk_out = 32;
  std::vector<int> head_hidden = {16};
  nn::ActivationKind activation = nn::ActivationKind::kRelu;
  double dropout = 0.2;
  nn::TrainConfig train;
  /// Independent random restarts ranked by (validation, else train) loss.
  int restarts = 1;
  uint64_t seed = 137;
  /// Batched prediction-engine knobs. Throughput only — per-arm scores
  /// are bit-identical across settings.
  nn::BatchOptions predict;
};

/// Joint K-arm RankNet: one shared trunk, one scoring head per arm
/// (uplift::MultiHeadNet::MakeKHead), trained with the transformed-
/// outcome pairwise ranking loss of core::RankNetModel applied per head.
/// Head k's loss sums over batch-row pairs whose treatment is control or
/// arm k (other rows contribute nothing to that head), so every arm
/// learns its own {control, arm k} ranking while the trunk is shaped by
/// all arms jointly — the representation-sharing the divide-and-conquer
/// rDRP deliberately gives up.
class KArmRankNet {
 public:
  explicit KArmRankNet(const KArmRankNetConfig& config) : config_(config) {}

  /// Trains trunk + heads jointly on the full multi-treatment sample.
  /// Requires every arm (and control) to be present in `train`.
  void Fit(const synth::MultiTreatmentDataset& train);

  /// Per-arm ranking scores mapped through a sigmoid into (0, 1):
  /// result[k][i] is arm (k+1)'s score for row i of x.
  std::vector<std::vector<double>> PredictRoiPerArm(const Matrix& x) const;

  bool fitted() const { return net_ != nullptr; }
  int num_arms() const { return num_arms_; }
  int feature_dim() const { return feature_dim_; }
  void set_predict_options(const nn::BatchOptions& opts) {
    config_.predict = opts;
  }

  /// Serializes scaler moments, the resolved architecture, and the
  /// parameter blob ("roicl-karm-ranknet-v1"; weights at 17 significant
  /// digits, so save -> load -> predict is bit-exact).
  Status Save(std::ostream& out) const;
  static StatusOr<KArmRankNet> Load(std::istream& in,
                                    const KArmRankNetConfig& config = {});

 private:
  KArmRankNetConfig config_;
  StandardScaler scaler_;
  int num_arms_ = 0;
  int feature_dim_ = -1;
  /// Architecture as actually built (auto fields resolved at Fit time);
  /// Save/Load rebuild the identical net before restoring parameters.
  std::vector<int> arch_trunk_hidden_;
  int arch_trunk_out_ = 0;
  std::vector<int> arch_head_hidden_;
  mutable std::unique_ptr<uplift::MultiHeadNet> net_;
};

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_KARM_RANK_NET_H_
