#ifndef ROICL_CAMPAIGN_KARM_SOURCE_H_
#define ROICL_CAMPAIGN_KARM_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Chunked (user, arm) row streams for the K-arm campaign allocator.
///
/// The binary allocator streams (roi, cost) pairs (alloc/row_source.h);
/// a K-arm campaign streams one row *per user* carrying that user's K
/// candidate pairs side by side. Handing all of a user's arms to the
/// allocator at once is load-bearing: the streaming allocator reduces
/// each user to their best pair locally (see karm_streaming.h), which is
/// only possible when the pairs arrive together. Every implementation
/// must be deterministic: repeated passes yield bitwise-identical rows in
/// identical order at any chunk size.

namespace roicl::campaign {

/// One chunk of the user stream: for users
/// [base_user, base_user + size()), `roi[k][i]` / `cost[k][i]` are the
/// predicted ROI and incremental cost of treating user (base_user + i)
/// with arm (k + 1). The allocator holds at most one chunk at a time.
struct KArmRowChunk {
  int64_t base_user = 0;
  /// Outer index is the 0-based arm slot (arm k+1); inner vectors are
  /// parallel across arms.
  std::vector<std::vector<double>> roi;
  std::vector<std::vector<double>> cost;

  int num_arms() const { return static_cast<int>(roi.size()); }
  int64_t size() const {
    return roi.empty() ? 0 : static_cast<int64_t>(roi[0].size());
  }
};

/// Pull-based chunked K-arm stream; `Reset` rewinds to the first user.
class KArmRowSource {
 public:
  virtual ~KArmRowSource() = default;

  virtual bool Next(KArmRowChunk* chunk) = 0;
  virtual void Reset() = 0;

  /// Total users the stream yields per pass (known up front).
  virtual int64_t total_users() const = 0;
  virtual int num_arms() const = 0;

  /// Bytes of chunk buffer a `Next` call may hand out — charged against
  /// the allocator's memory cap like the binary source's chunk buffer.
  virtual size_t chunk_bytes() const = 0;
};

/// Adapts in-memory per-arm score/cost matrices (the scenario runner and
/// the equivalence tests) to the chunked interface. `roi[k]` and
/// `cost[k]` must all have equal length.
class VectorKArmRowSource : public KArmRowSource {
 public:
  VectorKArmRowSource(std::vector<std::vector<double>> roi,
                      std::vector<std::vector<double>> cost, int chunk_rows);

  bool Next(KArmRowChunk* chunk) override;
  void Reset() override { pos_ = 0; }
  int64_t total_users() const override {
    return roi_.empty() ? 0 : static_cast<int64_t>(roi_[0].size());
  }
  int num_arms() const override { return static_cast<int>(roi_.size()); }
  size_t chunk_bytes() const override;

 private:
  std::vector<std::vector<double>> roi_;
  std::vector<std::vector<double>> cost_;
  int64_t chunk_rows_;
  int64_t pos_ = 0;
};

/// Deterministic synthetic K-arm population for scale tests and
/// benchmarks: user u's pair for arm k is a pure function of
/// (seed, u, k) via the binary SyntheticRowSource generator on a
/// SplitMix64-derived per-arm seed, so any chunking yields identical
/// rows and a pinned seed reproduces the exact stream.
class SyntheticKArmRowSource : public KArmRowSource {
 public:
  SyntheticKArmRowSource(int64_t n, int num_arms, uint64_t seed,
                         int chunk_rows);

  bool Next(KArmRowChunk* chunk) override;
  void Reset() override { pos_ = 0; }
  int64_t total_users() const override { return n_; }
  int num_arms() const override { return num_arms_; }
  size_t chunk_bytes() const override;

  /// The (roi, cost) pair of (user, arm) — pure function of
  /// (seed, user, arm). `arm` is 1-based.
  static void PairAt(uint64_t seed, int64_t user, int arm, double* roi,
                     double* cost);

 private:
  int64_t n_;
  int num_arms_;
  uint64_t seed_;
  int64_t chunk_rows_;
  int64_t pos_ = 0;
};

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_KARM_SOURCE_H_
