#include "campaign/karm_allocate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::campaign {
namespace {

void ValidateInputs(const std::vector<std::vector<double>>& roi,
                    const std::vector<std::vector<double>>& cost,
                    const KArmBudgets& budgets) {
  ROICL_CHECK_MSG(!roi.empty(), "K-arm allocation needs at least one arm");
  ROICL_CHECK(roi.size() == cost.size());
  ROICL_CHECK_MSG(budgets.per_arm.size() == roi.size(),
                  "budgets.per_arm must have one entry per arm");
  ROICL_CHECK(std::isfinite(budgets.global) && budgets.global >= 0.0);
  const size_t n = roi[0].size();
  for (size_t k = 0; k < roi.size(); ++k) {
    ROICL_CHECK(roi[k].size() == n);
    ROICL_CHECK(cost[k].size() == n);
    ROICL_CHECK(budgets.per_arm[k] >= 0.0);  // +inf = unbounded arm
    for (size_t i = 0; i < n; ++i) {
      ROICL_CHECK_MSG(std::isfinite(roi[k][i]), "non-finite roi score");
      ROICL_CHECK_MSG(std::isfinite(cost[k][i]) && cost[k][i] >= 0.0,
                      "negative or non-finite cost");
    }
  }
}

}  // namespace

KArmAllocationResult KArmGreedyReference(
    const std::vector<std::vector<double>>& roi,
    const std::vector<std::vector<double>>& cost,
    const KArmBudgets& budgets) {
  ValidateInputs(roi, cost, budgets);
  const int64_t num_arms = static_cast<int64_t>(roi.size());
  const int64_t n = static_cast<int64_t>(roi[0].size());

  // All K*n pairs under the documented total order: (roi desc, index asc)
  // with index = (arm - 1) * n + user, i.e. (roi desc, arm asc, user asc).
  struct Pair {
    double roi;
    int64_t index;
  };
  std::vector<Pair> pairs;
  pairs.reserve(AsSize64(num_arms * n));
  for (int64_t a = 0; a < num_arms; ++a) {
    for (int64_t u = 0; u < n; ++u) {
      pairs.push_back(Pair{roi[AsSize64(a)][AsSize64(u)], a * n + u});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    if (x.roi != y.roi) return x.roi > y.roi;
    return x.index < y.index;
  });

  KArmAllocationResult result;
  result.assignment.assign(AsSize64(n), -1);
  result.arm_spent.assign(AsSize64(num_arms), 0.0);
  for (const Pair& pair : pairs) {
    const int64_t a = pair.index / n;
    const int64_t u = pair.index % n;
    if (result.assignment[AsSize64(u)] != -1) continue;  // skips spend 0
    const double c = cost[AsSize64(a)][AsSize64(u)];
    // Algorithm-1 semantics lifted to two constraints: the first pair
    // that would overflow *either* budget stops the whole scan.
    if (!(result.spent + c <= budgets.global)) break;
    if (!(result.arm_spent[AsSize64(a)] + c <=
          budgets.per_arm[AsSize64(a)])) {
      break;
    }
    result.assignment[AsSize64(u)] = static_cast<int>(a) + 1;
    result.selection_order.push_back(pair.index);
    result.spent += c;
    result.arm_spent[AsSize64(a)] += c;
    result.value += pair.roi * c;
  }
  return result;
}

KArmDualResult KArmDualAllocate(const std::vector<std::vector<double>>& roi,
                                const std::vector<std::vector<double>>& cost,
                                const KArmBudgets& budgets,
                                const KArmDualConfig& config) {
  ValidateInputs(roi, cost, budgets);
  ROICL_CHECK(config.max_iters >= 1);
  const int64_t num_arms = static_cast<int64_t>(roi.size());
  const int64_t n = static_cast<int64_t>(roi[0].size());

  double max_roi = 0.0;
  for (int64_t a = 0; a < num_arms; ++a) {
    for (int64_t u = 0; u < n; ++u) {
      max_roi = std::max(max_roi, std::fabs(roi[AsSize64(a)][AsSize64(u)]));
    }
  }
  if (max_roi == 0.0) max_roi = 1.0;

  // Per-user best reduced pair under lambda; selected iff the reduced
  // value is strictly positive. Ties in the argmax go to the smaller arm
  // (matching the documented total order's tie-break).
  std::vector<double> lambda_arm(AsSize64(num_arms), 0.0);
  double lambda_global = 0.0;
  // Evaluates L(lambda) in ascending-user order and records the
  // selection. Terms lambda * budget are skipped while lambda == 0 so an
  // unbounded (infinite) arm budget never produces 0 * inf.
  std::vector<int> selection(AsSize64(n));  // -1 or 0-based arm slot
  auto evaluate = [&](double lg, const std::vector<double>& la,
                      std::vector<int>* sel) {
    double bound = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      double best = 0.0;
      int best_arm = -1;
      for (int64_t a = 0; a < num_arms; ++a) {
        const double c = cost[AsSize64(a)][AsSize64(u)];
        const double v = roi[AsSize64(a)][AsSize64(u)] * c;
        const double reduced = v - (lg + la[AsSize64(a)]) * c;
        if (reduced > best) {
          best = reduced;
          best_arm = static_cast<int>(a);
        }
      }
      (*sel)[AsSize64(u)] = best_arm;
      if (best_arm >= 0) bound += best;
    }
    if (lg > 0.0) bound += lg * budgets.global;
    for (int64_t a = 0; a < num_arms; ++a) {
      if (la[AsSize64(a)] > 0.0) {
        bound += la[AsSize64(a)] * budgets.per_arm[AsSize64(a)];
      }
    }
    return bound;
  };

  KArmDualResult result;
  result.dual_bound = std::numeric_limits<double>::infinity();
  result.lambda_arm.assign(AsSize64(num_arms), 0.0);
  std::vector<int> best_selection(AsSize64(n), -1);
  std::vector<double> sel_arm_spend(AsSize64(num_arms));
  for (int t = 0; t < config.max_iters; ++t) {
    double bound = evaluate(lambda_global, lambda_arm, &selection);
    ++result.iterations;
    if (bound < result.dual_bound) {
      result.dual_bound = bound;
      result.lambda_global = lambda_global;
      result.lambda_arm = lambda_arm;
      best_selection = selection;
    }
    // Projected subgradient step on the selection's budget violations,
    // per-component bounded so one wild violation cannot blow lambda up.
    std::fill(sel_arm_spend.begin(), sel_arm_spend.end(), 0.0);
    double sel_spend = 0.0;
    for (int64_t u = 0; u < n; ++u) {
      int a = selection[AsSize64(u)];
      if (a < 0) continue;
      const double c = cost[AsSize64(a)][AsSize64(u)];
      sel_spend += c;
      sel_arm_spend[AsSize64(a)] += c;
    }
    const double step =
        config.step0 * max_roi / std::sqrt(static_cast<double>(t) + 1.0);
    auto ascend = [step](double lambda, double violation) {
      return std::max(0.0, lambda + step * violation /
                               (1.0 + std::fabs(violation)));
    };
    bool any_binding = sel_spend > budgets.global;
    lambda_global = ascend(lambda_global, sel_spend - budgets.global);
    for (int64_t a = 0; a < num_arms; ++a) {
      const double b = budgets.per_arm[AsSize64(a)];
      if (!std::isfinite(b)) continue;  // unbounded arm: multiplier stays 0
      if (sel_arm_spend[AsSize64(a)] > b) any_binding = true;
      lambda_arm[AsSize64(a)] =
          ascend(lambda_arm[AsSize64(a)], sel_arm_spend[AsSize64(a)] - b);
    }
    // All constraints slack and all multipliers at zero: L cannot improve.
    if (!any_binding && lambda_global == 0.0 &&
        std::all_of(lambda_arm.begin(), lambda_arm.end(),
                    [](double l) { return l == 0.0; })) {
      break;
    }
  }

  // Feasibility guard: replay the best dual selection through a greedy
  // pass in the documented total order, skipping any pair that would
  // overflow a budget (repair maximizes retained value; the reference's
  // stop semantics belong to the greedy contract, not to repair).
  struct Pair {
    double roi;
    int64_t index;
  };
  std::vector<Pair> picked;
  for (int64_t u = 0; u < n; ++u) {
    int a = best_selection[AsSize64(u)];
    if (a < 0) continue;
    picked.push_back(Pair{roi[AsSize64(a)][AsSize64(u)],
                          static_cast<int64_t>(a) * n + u});
  }
  std::sort(picked.begin(), picked.end(), [](const Pair& x, const Pair& y) {
    if (x.roi != y.roi) return x.roi > y.roi;
    return x.index < y.index;
  });
  KArmAllocationResult& primal = result.primal;
  primal.assignment.assign(AsSize64(n), -1);
  primal.arm_spent.assign(AsSize64(num_arms), 0.0);
  for (const Pair& pair : picked) {
    const int64_t a = pair.index / n;
    const int64_t u = pair.index % n;
    const double c = cost[AsSize64(a)][AsSize64(u)];
    if (!(primal.spent + c <= budgets.global)) continue;
    if (!(primal.arm_spent[AsSize64(a)] + c <=
          budgets.per_arm[AsSize64(a)])) {
      continue;
    }
    primal.assignment[AsSize64(u)] = static_cast<int>(a) + 1;
    primal.selection_order.push_back(pair.index);
    primal.spent += c;
    primal.arm_spent[AsSize64(a)] += c;
    primal.value += pair.roi * c;
  }
  // Certificate arithmetic in ascending-user order — the same term order
  // evaluate() used — so a provably-optimal case closes to a gap of
  // exactly 0.0 instead of an FP residue.
  for (int64_t u = 0; u < n; ++u) {
    int arm = primal.assignment[AsSize64(u)];
    if (arm <= 0) continue;
    const size_t a = AsSize64(static_cast<int64_t>(arm) - 1);
    result.primal_value +=
        roi[a][AsSize64(u)] * cost[a][AsSize64(u)];
  }
  result.dual_gap = result.dual_bound - result.primal_value;
  return result;
}

}  // namespace roicl::campaign
