#include "campaign/scorer.h"

#include <utility>

#include "common/macros.h"
#include "core/multi_treatment.h"

namespace roicl::campaign {
namespace {

/// Divide-and-conquer rDRP scorer: one calibrated binary rDRP per arm,
/// so every arm inherits the full conformal machinery (per-arm
/// IntervalBackend, per-arm coverage guarantee).
class DncRdrpScorer : public KArmScorer {
 public:
  explicit DncRdrpScorer(const CampaignScorerConfig& config)
      : model_(config.rdrp) {}
  explicit DncRdrpScorer(core::DivideAndConquerRdrp model)
      : model_(std::move(model)) {}

  void FitWithCalibration(
      const synth::MultiTreatmentDataset& train,
      const synth::MultiTreatmentDataset& calibration) override {
    model_.FitWithCalibration(train, calibration);
  }

  std::vector<std::vector<double>> PredictRoiPerArm(
      const Matrix& x) const override {
    return model_.PredictRoiPerArm(x);
  }

  bool supports_intervals() const override { return true; }

  std::vector<std::vector<metrics::Interval>> PredictIntervalsPerArm(
      const Matrix& x) const override {
    return model_.PredictIntervalsPerArm(x);
  }

  Status Save(std::ostream& out) const override { return model_.Save(out); }

  static StatusOr<std::unique_ptr<KArmScorer>> Load(
      std::istream& in, const CampaignScorerConfig& config) {
    StatusOr<core::DivideAndConquerRdrp> model =
        core::DivideAndConquerRdrp::Load(in, config.rdrp);
    if (!model.ok()) return model.status();
    return std::unique_ptr<KArmScorer>(
        new DncRdrpScorer(std::move(model).value()));
  }

 private:
  core::DivideAndConquerRdrp model_;
};

/// Joint K-head RankNet scorer: shared trunk, per-arm ranking heads,
/// trained on the pairwise transformed-outcome loss. Ranking only — no
/// conformal intervals.
class DncRankNetScorer : public KArmScorer {
 public:
  explicit DncRankNetScorer(const CampaignScorerConfig& config)
      : model_(config.ranknet) {}
  explicit DncRankNetScorer(KArmRankNet model) : model_(std::move(model)) {}

  void FitWithCalibration(
      const synth::MultiTreatmentDataset& train,
      const synth::MultiTreatmentDataset& calibration) override {
    // A ranking loss has nothing to calibrate; the calibration split is
    // deliberately unused rather than folded into training so every
    // scorer sees identical training data.
    (void)calibration;
    model_.Fit(train);
  }

  std::vector<std::vector<double>> PredictRoiPerArm(
      const Matrix& x) const override {
    return model_.PredictRoiPerArm(x);
  }

  Status Save(std::ostream& out) const override { return model_.Save(out); }

  static StatusOr<std::unique_ptr<KArmScorer>> Load(
      std::istream& in, const CampaignScorerConfig& config) {
    StatusOr<KArmRankNet> model = KArmRankNet::Load(in, config.ranknet);
    if (!model.ok()) return model.status();
    return std::unique_ptr<KArmScorer>(
        new DncRankNetScorer(std::move(model).value()));
  }

 private:
  KArmRankNet model_;
};

CampaignScorerRegistry BuildGlobalRegistry() {
  CampaignScorerRegistry registry;
  registry.Register("dnc-rdrp",
                    [](const CampaignScorerConfig& config) {
                      return std::make_unique<DncRdrpScorer>(config);
                    },
                    DncRdrpScorer::Load);
  registry.Register("dnc-ranknet",
                    [](const CampaignScorerConfig& config) {
                      return std::make_unique<DncRankNetScorer>(config);
                    },
                    DncRankNetScorer::Load);
  return registry;
}

}  // namespace

std::vector<std::vector<metrics::Interval>> KArmScorer::PredictIntervalsPerArm(
    const Matrix& x) const {
  (void)x;
  ROICL_CHECK_MSG(false, "scorer does not support conformal intervals");
}

void CampaignScorerRegistry::Register(const std::string& name, Factory factory,
                                      Loader loader) {
  ROICL_CHECK_MSG(entries_.emplace(name,
                                   Entry{std::move(factory),
                                         std::move(loader)})
                      .second,
                  "duplicate campaign scorer registration");
}

StatusOr<std::unique_ptr<KArmScorer>> CampaignScorerRegistry::Create(
    const std::string& name, const CampaignScorerConfig& config) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown campaign scorer '" + name + "'");
  }
  return it->second.factory(config);
}

StatusOr<std::unique_ptr<KArmScorer>> CampaignScorerRegistry::Load(
    const std::string& name, std::istream& in,
    const CampaignScorerConfig& config) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown campaign scorer '" + name + "'");
  }
  return it->second.loader(in, config);
}

std::vector<std::string> CampaignScorerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

const CampaignScorerRegistry& CampaignScorerRegistry::Global() {
  static const CampaignScorerRegistry* registry =
      new CampaignScorerRegistry(BuildGlobalRegistry());
  return *registry;
}

}  // namespace roicl::campaign
