#ifndef ROICL_CAMPAIGN_KARM_ALLOCATE_H_
#define ROICL_CAMPAIGN_KARM_ALLOCATE_H_

#include <cstdint>
#include <vector>

/// \file
/// K-arm campaign knapsack: assign each user to exactly one treatment
/// arm (or control) under per-arm budgets plus a global cap.
///
/// The campaign contract extends Algorithm 1 (stop-at-first-overflow
/// greedy) to (user, arm) pairs under the documented total order
///   (roi descending, arm ascending, user ascending),
/// realized as (roi descending, pair-index ascending) with the pair
/// encoding index = (arm - 1) * n + user — the same strict order the
/// binary allocators share, so streaming equivalence (karm_streaming.h)
/// is well defined. The scan skips pairs of already-assigned users
/// (skips spend nothing) and STOPS outright at the first pair that would
/// overflow either the global budget or its own arm's budget.
///
/// Collapse lemma (why per-user reduction is exact): a user's best pair
/// — max roi, ties to the smaller arm — ranks first among that user's
/// pairs. If the scan reaches pair p = (u, k) with u still unassigned,
/// then u's best pair p* ranks at or before p; when the scan visited p*,
/// u was unassigned, so the scan either charged p* (assigning u —
/// contradiction unless p == p*) or stopped at p* (contradiction with
/// reaching p). Hence every pair the scan charges *or stops at* is its
/// user's best pair, and the K·n-pair scan is exactly the binary
/// Algorithm-1 scan over the n best pairs. `KArmGreedyReference` runs
/// the full K·n-pair scan; the streaming allocator runs the reduced
/// form; the equivalence tests pin them bitwise to each other.

namespace roicl::campaign {

/// Per-arm budgets b_k plus the global cap B. `per_arm` must have one
/// entry per arm; use an effectively-infinite entry for an unbounded
/// arm. All budgets must be finite-or-infinite and >= 0.
struct KArmBudgets {
  double global = 0.0;
  std::vector<double> per_arm;
};

/// Result of a K-arm allocation.
struct KArmAllocationResult {
  /// Per-user assignment: -1 control, else the 1-based arm.
  std::vector<int> assignment;
  /// Charged (user, arm) pairs in charge (rank) order, encoded as
  /// (arm - 1) * n + user — the unit the streaming allocator is
  /// bitwise-compared against.
  std::vector<int64_t> selection_order;
  double spent = 0.0;                ///< FP sum in charge order.
  std::vector<double> arm_spent;     ///< per-arm FP sums in charge order.
  double value = 0.0;                ///< sum of roi * cost in charge order.
};

/// The in-memory reference: materializes all K·n pairs, sorts by the
/// documented total order, and runs the skip-assigned /
/// stop-at-first-overflow scan described above. O(Kn log Kn) time,
/// O(Kn) memory — the streaming allocator exists because this dies at
/// campaign scale.
KArmAllocationResult KArmGreedyReference(
    const std::vector<std::vector<double>>& roi,
    const std::vector<std::vector<double>>& cost, const KArmBudgets& budgets);

/// Lagrangian dual-ascent mode (paper's "Free Lunch" threshold form
/// lifted to K constraints). With values v_uk = roi_uk * cost_uk, the
/// dual of the assignment LP is
///   L(lambda) = sum_u max(0, max_k (v_uk - (lambda_g + lambda_k) c_uk))
///             + lambda_g * B + sum_k lambda_k * b_k,
/// an upper bound on the optimal primal value for every lambda >= 0.
/// Projected subgradient ascent tightens the bound; the primal is
/// recovered by a feasibility guard: the selected pairs replay through
/// a greedy pass in the documented total order, skipping any pair that
/// would overflow a budget. `dual_gap = best bound - primal value >= 0`
/// is the optimality-gap certificate — gap 0 proves the repaired
/// allocation optimal.
struct KArmDualConfig {
  int max_iters = 200;
  /// Initial step scale for the normalized subgradient schedule
  /// step_t = step0 * max_roi / sqrt(t + 1).
  double step0 = 0.5;
};

struct KArmDualResult {
  KArmAllocationResult primal;   ///< feasible (repaired) allocation
  double dual_bound = 0.0;       ///< best L(lambda) seen — upper bound
  double dual_gap = 0.0;         ///< dual_bound - primal value, >= 0
  double lambda_global = 0.0;    ///< multiplier at the best bound
  std::vector<double> lambda_arm;
  int iterations = 0;
  /// Primal objective evaluated in ascending-user order (one term per
  /// assigned user). Matching evaluation order against L(lambda) is what
  /// makes an exactly-zero gap reachable in FP; `primal.value` keeps the
  /// charge-order sum shared with the greedy contract.
  double primal_value = 0.0;
};

KArmDualResult KArmDualAllocate(const std::vector<std::vector<double>>& roi,
                                const std::vector<std::vector<double>>& cost,
                                const KArmBudgets& budgets,
                                const KArmDualConfig& config = {});

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_KARM_ALLOCATE_H_
