#include "campaign/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "campaign/karm_source.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "core/roi_star.h"
#include "metrics/per_arm.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/multi_treatment.h"
#include "synth/synthetic_generator.h"

namespace roicl::campaign {
namespace {

StatusOr<synth::SyntheticConfig> PresetByName(const std::string& name) {
  if (name == "criteo") return synth::CriteoSynthConfig();
  if (name == "meituan") return synth::MeituanSynthConfig();
  if (name == "alibaba") return synth::AlibabaSynthConfig();
  return Status::InvalidArgument(
      "unknown dataset '" + name + "' (expected criteo|meituan|alibaba)");
}

/// The default arm grid: arm k is cheaper (cost_scale 1/(1 + 0.15(k-1)))
/// but converts at diminishing ROI (roi_shift -0.03(k-1)) — the
/// coupon-size trade-off the multi-treatment extension exists for.
/// Scales stay in (0, 1] so the grid clears the generator's outcome
/// saturation guard for every preset (alibaba tolerates at most ~1.16).
std::vector<synth::ArmEffect> DefaultArmGrid(int num_arms) {
  std::vector<synth::ArmEffect> arms;
  arms.reserve(AsSize(num_arms));
  for (int k = 1; k <= num_arms; ++k) {
    arms.push_back(
        synth::ArmEffect{1.0 / (1.0 + 0.15 * (k - 1)), -0.03 * (k - 1)});
  }
  return arms;
}

void RecordScenarioMetrics(const CampaignScenarioResult& result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("campaign.runs")->Increment();
  if (result.has_intervals && !result.arms.empty()) {
    double min_coverage = std::numeric_limits<double>::infinity();
    for (const CampaignArmReport& arm : result.arms) {
      min_coverage = std::min(min_coverage, arm.coverage.coverage);
    }
    registry.GetGauge("campaign.coverage_min")->Set(min_coverage);
  }
  registry.GetGauge("campaign.dual_gap")->Set(result.dual_gap);
  obs::Info("campaign scenario",
            {{"dataset", result.dataset},
             {"scorer", result.scorer},
             {"mode", result.mode},
             {"arms", result.num_arms},
             {"assigned", result.assigned},
             {"spent", result.spent},
             {"value", result.value},
             {"dual_gap", result.dual_gap}});
}

}  // namespace

StatusOr<CampaignScenarioResult> RunCampaignScenario(
    const CampaignScenarioConfig& config) {
  obs::ScopedSpan span("campaign.scenario");
  if (config.num_arms < 1 || config.num_arms > 64) {
    return Status::InvalidArgument("num_arms must be in [1, 64]");
  }
  if (config.n_train < 10 || config.n_calibration < 10 ||
      config.n_test < 10) {
    return Status::InvalidArgument("split sizes must each be >= 10");
  }
  if (!(config.budget_fraction > 0.0) || config.budget_fraction > 1.0) {
    return Status::InvalidArgument("budget_fraction must be in (0, 1]");
  }
  if (!config.arm_budget_fractions.empty() &&
      static_cast<int>(config.arm_budget_fractions.size()) !=
          config.num_arms) {
    return Status::InvalidArgument(
        "arm_budget_fractions must be empty or have one entry per arm");
  }
  if (config.mode != "greedy" && config.mode != "dual") {
    return Status::InvalidArgument("mode must be greedy or dual");
  }
  StatusOr<synth::SyntheticConfig> preset = PresetByName(config.dataset);
  if (!preset.ok()) return preset.status();

  const int num_arms = config.num_arms;
  synth::MultiTreatmentGenerator generator(preset.value(),
                                           DefaultArmGrid(num_arms));
  // Independent draws per split; calibration and test use the shifted
  // mixture (Algorithm-4 deployment regime, same as the binary tests).
  Rng train_rng(config.seed, /*stream=*/1);
  Rng calibration_rng(config.seed, /*stream=*/2);
  Rng test_rng(config.seed, /*stream=*/3);
  synth::MultiTreatmentDataset train =
      generator.Generate(config.n_train, /*shifted=*/false, &train_rng);
  synth::MultiTreatmentDataset calibration = generator.Generate(
      config.n_calibration, /*shifted=*/true, &calibration_rng);
  synth::MultiTreatmentDataset test =
      generator.Generate(config.n_test, /*shifted=*/true, &test_rng);

  StatusOr<std::unique_ptr<KArmScorer>> scorer =
      CampaignScorerRegistry::Global().Create(config.scorer,
                                              config.scorer_config);
  if (!scorer.ok()) return scorer.status();
  scorer.value()->FitWithCalibration(train, calibration);

  CampaignScenarioResult result;
  result.dataset = config.dataset;
  result.scorer = config.scorer;
  result.mode = config.mode;
  result.num_arms = num_arms;
  result.has_intervals = scorer.value()->supports_intervals();
  result.arms.resize(AsSize(num_arms));

  // Per-arm ranking quality on each arm's binary sub-problem, scored the
  // way Table I scores the binary methods.
  std::vector<RctDataset> per_arm_eval;
  std::vector<std::vector<double>> per_arm_scores;
  per_arm_eval.reserve(AsSize(num_arms));
  per_arm_scores.reserve(AsSize(num_arms));
  for (int k = 1; k <= num_arms; ++k) {
    RctDataset sub = test.BinarySubproblem(k);
    per_arm_scores.push_back(
        scorer.value()->PredictRoiPerArm(sub.x)[AsSize(k - 1)]);
    per_arm_eval.push_back(std::move(sub));
  }
  metrics::PerArmCurveMetrics curves =
      metrics::ComputePerArmMetrics(per_arm_scores, per_arm_eval);
  for (int k = 0; k < num_arms; ++k) {
    result.arms[AsSize(k)].aucc = curves.aucc[AsSize(k)];
    result.arms[AsSize(k)].qini = curves.qini[AsSize(k)];
    result.arms[AsSize(k)].roi_star_target =
        core::BinarySearchRoiStar(per_arm_eval[AsSize(k)]);
  }

  // Per-arm conformal coverage against each arm's own convergence-point
  // target (the rigorous guarantee the paper proves per binary problem).
  if (result.has_intervals) {
    std::vector<std::vector<metrics::Interval>> intervals =
        scorer.value()->PredictIntervalsPerArm(test.x);
    for (int k = 0; k < num_arms; ++k) {
      std::vector<double> targets(intervals[AsSize(k)].size(),
                                  result.arms[AsSize(k)].roi_star_target);
      result.arms[AsSize(k)].coverage =
          metrics::EvaluateCoverage(intervals[AsSize(k)], targets);
    }
  }

  // Allocation inputs: the scorer's per-arm ROI and the oracle per-arm
  // cost book (true tau_c — what each arm actually costs per user).
  std::vector<std::vector<double>> roi =
      scorer.value()->PredictRoiPerArm(test.x);
  const std::vector<std::vector<double>>& cost = test.true_tau_c;
  double base_cost = 0.0;
  for (int i = 0; i < test.n(); ++i) {
    double mean = 0.0;
    for (int k = 0; k < num_arms; ++k) mean += cost[AsSize(k)][AsSize(i)];
    base_cost += mean / num_arms;
  }
  KArmBudgets budgets;
  budgets.global = config.budget_fraction * base_cost;
  budgets.per_arm.assign(AsSize(num_arms),
                         std::numeric_limits<double>::infinity());
  for (size_t k = 0; k < config.arm_budget_fractions.size(); ++k) {
    if (config.arm_budget_fractions[k] > 0.0) {
      budgets.per_arm[k] = config.arm_budget_fractions[k] * base_cost;
    }
  }
  result.global_budget = budgets.global;
  for (int k = 0; k < num_arms; ++k) {
    result.arms[AsSize(k)].budget = budgets.per_arm[AsSize(k)];
  }

  const int64_t n = test.n();
  auto tally = [&](const std::vector<int64_t>& selection, double spent,
                   const std::vector<double>& arm_spent, double value) {
    result.assigned = static_cast<int64_t>(selection.size());
    result.spent = spent;
    result.value = value;
    for (int64_t index : selection) {
      result.arms[AsSize64(index / n)].assigned++;
    }
    for (int k = 0; k < num_arms; ++k) {
      result.arms[AsSize(k)].spent = arm_spent[AsSize(k)];
    }
  };
  if (config.mode == "greedy") {
    VectorKArmRowSource source(roi, cost, /*chunk_rows=*/512);
    StatusOr<KArmStreamingResult> allocation =
        StreamingKArmAllocate(&source, budgets, config.streaming);
    if (!allocation.ok()) return allocation.status();
    tally(allocation.value().selected_pairs, allocation.value().spent,
          allocation.value().arm_spent, allocation.value().value);
  } else {
    KArmDualResult dual = KArmDualAllocate(roi, cost, budgets, config.dual);
    tally(dual.primal.selection_order, dual.primal.spent,
          dual.primal.arm_spent, dual.primal.value);
    result.dual_bound = dual.dual_bound;
    result.dual_gap = dual.dual_gap;
    result.dual_iterations = dual.iterations;
  }
  RecordScenarioMetrics(result);
  return result;
}

StatusOr<std::vector<CampaignScenarioResult>> RunCampaignGrid(
    const CampaignScenarioConfig& config, std::vector<std::string> datasets) {
  if (datasets.empty()) datasets = {"criteo", "meituan", "alibaba"};
  std::vector<CampaignScenarioResult> results;
  results.reserve(datasets.size());
  for (const std::string& dataset : datasets) {
    CampaignScenarioConfig run = config;
    run.dataset = dataset;
    StatusOr<CampaignScenarioResult> result = RunCampaignScenario(run);
    if (!result.ok()) return result.status();
    results.push_back(std::move(result).value());
  }
  return results;
}

}  // namespace roicl::campaign
