#ifndef ROICL_CAMPAIGN_KARM_STREAMING_H_
#define ROICL_CAMPAIGN_KARM_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "campaign/karm_allocate.h"
#include "campaign/karm_source.h"
#include "common/status.h"

/// \file
/// Streaming K-arm campaign allocator: the binary sharded-frontier
/// machinery (alloc/streaming.h) reused for (user, arm) pairs, bitwise
/// identical to `KArmGreedyReference` at any shard count or chunk size
/// while holding only frontier state under a hard memory cap.
///
/// Soundness sketch. By the collapse lemma (karm_allocate.h) the
/// reference's K·n-pair scan charges — and stops at — only per-user
/// *best* pairs. The stream hands each user's K pairs over together
/// (KArmRowChunk), so the allocator reduces every user to their best
/// pair in O(K) with no extra state, then runs the binary frontier over
/// those n pairs: shard by user index, frontier budget = the global cap
/// B only. A best pair dropped by a frontier has a shard-local
/// best-pair prefix spend above B; the reference's spend when it reaches
/// that pair is the FP sum over ALL best pairs ranked before it — a
/// superset, hence (FP summation of non-negative terms is monotone
/// under inserting terms) at least the shard prefix minus the pair's own
/// cost — so the pair could never be charged, and an arm-budget stop can
/// only shorten the charged prefix further. Conversely the stop row
/// itself — global or arm overflow — always survives the cut (its
/// shard prefix is <= B + its own cost, and the frontier keeps the first
/// over-budget row as the stop sentinel). The merged frontiers therefore
/// contain the full reference selection plus its stop row in rank
/// order, and the replay reproduces the reference's selections, FP
/// spend, per-arm FP spends, and value bit for bit.

namespace roicl::campaign {

struct KArmStreamingOptions {
  /// Users are assigned to shards by user % num_shards; the result is
  /// independent of the shard count (it only bounds per-shard state).
  int num_shards = 1;
  /// Hard cap on accounted working memory: chunk buffer + per-user
  /// reduction scratch + frontiers + merge scratch + the selection
  /// vector. Exceeding it fails with kFailedPrecondition.
  size_t memory_cap_bytes = size_t{256} << 20;
  /// Accumulate shard frontiers concurrently on the global thread pool.
  /// Bitwise identical either way: each shard sees its users in index
  /// order regardless of interleaving.
  bool parallel_shards = false;
};

struct KArmStreamingResult {
  /// Charged (user, arm) pairs in charge (rank) order, encoded as
  /// (arm - 1) * n + user — bitwise equal to the reference's
  /// `selection_order`.
  std::vector<int64_t> selected_pairs;
  double spent = 0.0;             ///< bitwise equal to the reference.
  std::vector<double> arm_spent;  ///< bitwise equal to the reference.
  double value = 0.0;
  int64_t users_streamed = 0;
  size_t peak_memory_bytes = 0;
  int64_t frontier_evictions = 0;
  int64_t merge_candidates = 0;
};

/// Streams `source` and allocates at most one arm per user under
/// `budgets`. Errors: kInvalidArgument for non-finite budgets/scores or
/// negative costs; kFailedPrecondition when the memory cap cannot hold
/// the working state.
StatusOr<KArmStreamingResult> StreamingKArmAllocate(
    KArmRowSource* source, const KArmBudgets& budgets,
    const KArmStreamingOptions& options);

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_KARM_STREAMING_H_
