#ifndef ROICL_CAMPAIGN_SCORER_H_
#define ROICL_CAMPAIGN_SCORER_H_

#include <array>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "campaign/karm_rank_net.h"
#include "core/rdrp.h"
#include "data/dataset.h"
#include "metrics/coverage.h"
#include "synth/multi_treatment.h"

namespace roicl::campaign {

/// Shared knobs for every registered K-arm scorer. Kept as plain configs
/// (no pipeline dependency) so the campaign layer sits beside, not on
/// top of, the binary pipeline.
struct CampaignScorerConfig {
  core::RdrpConfig rdrp;
  KArmRankNetConfig ranknet;
};

/// A K-arm campaign scorer: fits on a multi-treatment RCT sample and
/// scores every (user, arm) pair. Scorers that calibrate conformal
/// intervals additionally expose per-arm intervals; ranking-only scorers
/// report supports_intervals() == false and CHECK on interval calls.
class KArmScorer {
 public:
  virtual ~KArmScorer() = default;

  virtual void FitWithCalibration(
      const synth::MultiTreatmentDataset& train,
      const synth::MultiTreatmentDataset& calibration) = 0;

  /// result[k][i] is arm (k+1)'s score for row i of x.
  virtual std::vector<std::vector<double>> PredictRoiPerArm(
      const Matrix& x) const = 0;

  virtual bool supports_intervals() const { return false; }
  virtual std::vector<std::vector<metrics::Interval>> PredictIntervalsPerArm(
      const Matrix& x) const;

  /// Bitwise-stable serialization: save -> load -> predict must equal the
  /// fitted model's predictions exactly (enforced per scorer by the
  /// campaign registry lint's roundtrip-test requirement).
  virtual Status Save(std::ostream& out) const = 0;
};

/// The registered K-arm scorer names, in registry (lexicographic) order.
/// Kept as a compile-time array so tests and the CLI can iterate the
/// full roster; the campaign registry lint pins it against the
/// Register() calls in scorer.cc.
inline constexpr std::array<const char*, 2> kCampaignScorerNames = {
    "dnc-ranknet", "dnc-rdrp"};

/// Name -> factory/loader registry for K-arm campaign scorers, mirroring
/// the binary pipeline's ScorerRegistry shape at campaign scope.
class CampaignScorerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<KArmScorer>(
      const CampaignScorerConfig&)>;
  using Loader = std::function<StatusOr<std::unique_ptr<KArmScorer>>(
      std::istream&, const CampaignScorerConfig&)>;

  void Register(const std::string& name, Factory factory, Loader loader);

  /// Creates an unfitted scorer; InvalidArgument for unknown names.
  StatusOr<std::unique_ptr<KArmScorer>> Create(
      const std::string& name, const CampaignScorerConfig& config) const;

  /// Restores a scorer saved by KArmScorer::Save.
  StatusOr<std::unique_ptr<KArmScorer>> Load(
      const std::string& name, std::istream& in,
      const CampaignScorerConfig& config) const;

  std::vector<std::string> Names() const;

  /// The process-wide registry, populated with the built-in scorers on
  /// first use.
  static const CampaignScorerRegistry& Global();

 private:
  struct Entry {
    Factory factory;
    Loader loader;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_SCORER_H_
