#include "campaign/karm_streaming.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "alloc/streaming.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::campaign {
namespace {

Status ValidatePair(int64_t user, int arm, double roi, double cost) {
  if (!std::isfinite(roi)) {
    return Status::InvalidArgument(
        "non-finite roi score at user " + std::to_string(user) + " arm " +
        std::to_string(arm));
  }
  if (!(cost >= 0.0) || !std::isfinite(cost)) {
    return Status::InvalidArgument(
        "negative or non-finite cost at user " + std::to_string(user) +
        " arm " + std::to_string(arm));
  }
  return Status::Ok();
}

Status CapExceeded(const alloc::MemoryAccountant& accountant) {
  return Status::FailedPrecondition(
      "streaming campaign allocation exceeded its memory cap (" +
      std::to_string(accountant.cap()) +
      " bytes); raise the cap or lower the budget/shard count");
}

/// Appends to `result->selected_pairs`, growing through the accountant so
/// the selection buffer counts against the cap too.
bool PushSelected(int64_t index, alloc::MemoryAccountant* accountant,
                  KArmStreamingResult* result) {
  std::vector<int64_t>& selected = result->selected_pairs;
  if (selected.size() == selected.capacity()) {
    size_t grow = std::max<size_t>(1024, selected.capacity() * 2);
    if (!accountant->TryCharge((grow - selected.capacity()) *
                               sizeof(int64_t))) {
      return false;
    }
    selected.reserve(grow);
  }
  selected.push_back(index);
  return true;
}

/// The per-user reduction of the collapse lemma: the user's best pair is
/// their highest-roi arm, ties to the smaller arm — exactly the first of
/// the user's pairs under (roi desc, arm asc, user asc).
int BestArmSlot(const KArmRowChunk& chunk, int64_t i) {
  int best = 0;
  for (int a = 1; a < chunk.num_arms(); ++a) {
    // Strict > keeps the smaller arm on ties.
    if (chunk.roi[AsSize(a)][AsSize64(i)] >
        chunk.roi[AsSize(best)][AsSize64(i)]) {
      best = a;
    }
  }
  return best;
}

void RecordMetrics(const KArmStreamingOptions& options, int num_arms,
                   const KArmStreamingResult& result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("campaign.streaming_calls")->Increment();
  registry.GetCounter("campaign.users_streamed")
      ->Increment(static_cast<uint64_t>(result.users_streamed));
  registry.GetCounter("campaign.frontier_evictions")
      ->Increment(static_cast<uint64_t>(result.frontier_evictions));
  registry.GetGauge("campaign.arms")->Set(static_cast<double>(num_arms));
  registry.GetGauge("campaign.shards")
      ->Set(static_cast<double>(options.num_shards));
  registry.GetGauge("campaign.assigned")
      ->Set(static_cast<double>(result.selected_pairs.size()));
  registry.GetGauge("campaign.spent")->Set(result.spent);
  registry.GetGauge("campaign.merge_candidates")
      ->Set(static_cast<double>(result.merge_candidates));
  registry.GetGauge("campaign.peak_memory_bytes")
      ->Set(static_cast<double>(result.peak_memory_bytes));
  obs::Debug("streaming campaign allocation",
             {{"arms", num_arms},
              {"shards", options.num_shards},
              {"users_streamed", result.users_streamed},
              {"assigned", result.selected_pairs.size()},
              {"spent", result.spent},
              {"evictions", result.frontier_evictions},
              {"peak_memory_bytes", result.peak_memory_bytes}});
}

}  // namespace

StatusOr<KArmStreamingResult> StreamingKArmAllocate(
    KArmRowSource* source, const KArmBudgets& budgets,
    const KArmStreamingOptions& options) {
  ROICL_CHECK(source != nullptr);
  obs::ScopedSpan span("campaign.allocate");
  const int num_arms = source->num_arms();
  const int64_t n = source->total_users();
  if (num_arms < 1) {
    return Status::InvalidArgument("source must carry at least one arm");
  }
  if (!std::isfinite(budgets.global) || budgets.global < 0.0) {
    return Status::InvalidArgument("global budget must be finite and >= 0");
  }
  if (static_cast<int>(budgets.per_arm.size()) != num_arms) {
    return Status::InvalidArgument(
        "budgets.per_arm must have one entry per arm");
  }
  for (double b : budgets.per_arm) {
    if (std::isnan(b) || b < 0.0) {
      return Status::InvalidArgument("per-arm budgets must be >= 0");
    }
  }
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }

  alloc::MemoryAccountant accountant(options.memory_cap_bytes);
  if (!accountant.TryCharge(source->chunk_bytes())) {
    return Status::FailedPrecondition(
        "memory cap (" + std::to_string(options.memory_cap_bytes) +
        " bytes) cannot hold one chunk buffer (" +
        std::to_string(source->chunk_bytes()) + " bytes)");
  }

  const int num_shards = options.num_shards;
  std::vector<std::unique_ptr<alloc::ShardFrontier>> shards;
  shards.reserve(AsSize(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards.push_back(
        std::make_unique<alloc::ShardFrontier>(budgets.global, &accountant));
  }

  KArmStreamingResult result;
  result.arm_spent.assign(AsSize(num_arms), 0.0);
  source->Reset();
  KArmRowChunk chunk;
  bool over_cap = false;
  {
    obs::ScopedSpan stream_span("campaign.allocate.stream");
    while (!over_cap && source->Next(&chunk)) {
      const int64_t size = chunk.size();
      if (chunk.num_arms() != num_arms) {
        return Status::InvalidArgument(
            "source yielded a chunk with the wrong arm count");
      }
      for (int a = 0; a < num_arms; ++a) {
        if (static_cast<int64_t>(chunk.roi[AsSize(a)].size()) != size ||
            static_cast<int64_t>(chunk.cost[AsSize(a)].size()) != size) {
          return Status::InvalidArgument(
              "source yielded ragged per-arm chunk vectors");
        }
      }
      result.users_streamed += size;
      // Validate every pair serially first: the first bad pair reported
      // is then deterministic at any shard count or interleaving.
      for (int64_t i = 0; i < size; ++i) {
        for (int a = 0; a < num_arms; ++a) {
          Status pair_status = ValidatePair(
              chunk.base_user + i, a + 1, chunk.roi[AsSize(a)][AsSize64(i)],
              chunk.cost[AsSize(a)][AsSize64(i)]);
          if (!pair_status.ok()) return pair_status;
        }
      }
      // Per-user best-pair reduction, then the binary frontier path. The
      // pair encoding index = (arm - 1) * n + user makes alloc's
      // (roi desc, index asc) rank order coincide with the campaign's
      // (roi desc, arm asc, user asc) total order.
      if (options.parallel_shards && num_shards > 1) {
        std::atomic<bool> chunk_over_cap{false};
        GlobalThreadPool().ParallelFor(0, num_shards, [&](int s) {
          alloc::ShardFrontier* frontier = shards[AsSize(s)].get();
          for (int64_t i = 0; i < size; ++i) {
            int64_t user = chunk.base_user + i;
            if (user % num_shards != s) continue;
            int a = BestArmSlot(chunk, i);
            if (!frontier->Add(static_cast<int64_t>(a) * n + user,
                               chunk.roi[AsSize(a)][AsSize64(i)],
                               chunk.cost[AsSize(a)][AsSize64(i)])) {
              chunk_over_cap.store(true, std::memory_order_relaxed);
              return;
            }
          }
        });
        over_cap = chunk_over_cap.load(std::memory_order_relaxed);
      } else {
        for (int64_t i = 0; i < size && !over_cap; ++i) {
          int64_t user = chunk.base_user + i;
          int s = static_cast<int>(user % num_shards);
          int a = BestArmSlot(chunk, i);
          over_cap = !shards[AsSize(s)]->Add(
              static_cast<int64_t>(a) * n + user,
              chunk.roi[AsSize(a)][AsSize64(i)],
              chunk.cost[AsSize(a)][AsSize64(i)]);
        }
      }
    }
  }
  if (over_cap) return CapExceeded(accountant);

  obs::ScopedSpan merge_span("campaign.allocate.merge");
  size_t total = 0;
  for (std::unique_ptr<alloc::ShardFrontier>& shard : shards) {
    if (!shard->Compact()) return CapExceeded(accountant);
    total += shard->items().size();
    result.frontier_evictions += shard->evictions();
  }
  if (!accountant.TryCharge(total * sizeof(alloc::FrontierItem))) {
    return CapExceeded(accountant);
  }
  std::vector<alloc::FrontierItem> merged;
  merged.reserve(total);
  for (std::unique_ptr<alloc::ShardFrontier>& shard : shards) {
    merged.insert(merged.end(), shard->items().begin(),
                  shard->items().end());
  }
  std::sort(merged.begin(), merged.end(), alloc::RankBefore);
  result.merge_candidates = static_cast<int64_t>(total);

  // Exact reconciliation: replay the reference's skip-assigned /
  // stop-at-first-overflow scan. Every item is already its user's best
  // pair and users are unique across frontiers, so no assigned-user
  // skip can occur here; the comparisons and accumulation order match
  // KArmGreedyReference exactly.
  for (const alloc::FrontierItem& item : merged) {
    const size_t a = AsSize64(item.index / n);
    if (!(result.spent + item.cost <= budgets.global)) break;
    if (!(result.arm_spent[a] + item.cost <= budgets.per_arm[a])) break;
    if (!PushSelected(item.index, &accountant, &result)) {
      return CapExceeded(accountant);
    }
    result.spent += item.cost;
    result.arm_spent[a] += item.cost;
    result.value += item.roi * item.cost;
  }
  result.peak_memory_bytes = accountant.peak();
  RecordMetrics(options, num_arms, result);
  return result;
}

}  // namespace roicl::campaign
