#ifndef ROICL_CAMPAIGN_SCENARIO_H_
#define ROICL_CAMPAIGN_SCENARIO_H_

#include <string>
#include <vector>

#include "campaign/karm_allocate.h"
#include "campaign/karm_streaming.h"
#include "campaign/scorer.h"
#include "common/status.h"
#include "metrics/coverage.h"

namespace roicl::campaign {

/// End-to-end K-arm campaign configuration: synthetic multi-treatment
/// data -> scorer fit -> per-arm conformal intervals -> K-arm budget
/// allocation. The dataset names map to the three synthetic presets of
/// the binary experiments ("criteo", "meituan", "alibaba").
struct CampaignScenarioConfig {
  std::string dataset = "criteo";
  int num_arms = 3;
  int n_train = 5000;
  int n_calibration = 1500;
  int n_test = 2500;
  uint64_t seed = 20240819;
  /// A registered campaign scorer name (kCampaignScorerNames).
  std::string scorer = "dnc-rdrp";
  CampaignScorerConfig scorer_config;
  /// Global budget as a fraction of the cost of treating every test user
  /// at their mean arm cost.
  double budget_fraction = 0.35;
  /// Per-arm budget fractions of the same base; empty = all unbounded,
  /// else one entry per arm (<= 0 marks that arm unbounded).
  std::vector<double> arm_budget_fractions;
  /// "greedy" (streaming sharded frontier) or "dual" (Lagrangian ascent
  /// with an optimality-gap certificate).
  std::string mode = "greedy";
  KArmStreamingOptions streaming;
  KArmDualConfig dual;
};

/// Per-arm quality diagnostics of one scenario run.
struct CampaignArmReport {
  double aucc = 0.0;
  double qini = 0.0;
  /// Conformal coverage against the arm's own convergence-point target;
  /// populated only when the scorer supports intervals.
  metrics::CoverageReport coverage;
  double roi_star_target = 0.0;
  double budget = 0.0;  ///< resolved absolute per-arm budget.
  double spent = 0.0;
  int64_t assigned = 0;
};

struct CampaignScenarioResult {
  std::string dataset;
  std::string scorer;
  std::string mode;
  int num_arms = 0;
  bool has_intervals = false;
  std::vector<CampaignArmReport> arms;
  double global_budget = 0.0;
  double spent = 0.0;
  double value = 0.0;
  int64_t assigned = 0;
  /// Dual-mode certificate (zeros in greedy mode).
  double dual_bound = 0.0;
  double dual_gap = 0.0;
  int dual_iterations = 0;
};

/// Runs one campaign scenario. Errors: kInvalidArgument for unknown
/// datasets/scorers/modes or malformed budget fractions; allocation
/// failures propagate from the streaming allocator.
StatusOr<CampaignScenarioResult> RunCampaignScenario(
    const CampaignScenarioConfig& config);

/// Table-I-style grid: the scenario on every named dataset (empty =
/// all three presets), shared config otherwise.
StatusOr<std::vector<CampaignScenarioResult>> RunCampaignGrid(
    const CampaignScenarioConfig& config, std::vector<std::string> datasets);

}  // namespace roicl::campaign

#endif  // ROICL_CAMPAIGN_SCENARIO_H_
