#include "campaign/karm_rank_net.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "nn/serialize.h"

namespace roicl::campaign {
namespace {

/// Numerically stable softplus(x) = log(1 + exp(x)).
double Softplus(double x) {
  return std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0);
}

/// Joint per-head pairwise ranking loss over a K-column prediction
/// matrix. Head k (column k) runs the binary transformed-outcome loss of
/// core::PairwiseRoiRankLoss restricted to batch rows whose treatment is
/// control (0) or arm k+1; rows of other arms contribute nothing to that
/// head. Each head normalizes by its own pair count and the total is the
/// mean over heads that produced pairs, so no arm dominates just because
/// its batch slice was larger.
class KArmPairwiseLoss : public nn::BatchLoss {
 public:
  KArmPairwiseLoss(int num_arms, const std::vector<int>* treatment,
                   const std::vector<double>* y_revenue,
                   const std::vector<double>* y_cost)
      : num_arms_(num_arms),
        treatment_(treatment),
        y_revenue_(y_revenue),
        y_cost_(y_cost) {}

  int output_dim() const override { return num_arms_; }

  double Compute(const Matrix& preds, const std::vector<int>& index,
                 Matrix* grad) const override {
    ROICL_CHECK(grad != nullptr);
    ROICL_CHECK(preds.cols() == num_arms_);
    const int n = preds.rows();
    *grad = Matrix(n, num_arms_);

    double total = 0.0;
    int heads_with_pairs = 0;
    std::vector<int> rows;   // batch positions in head k's subset
    std::vector<double> zr, zc;
    for (int k = 0; k < num_arms_; ++k) {
      const int arm = k + 1;
      rows.clear();
      int n1 = 0, n0 = 0;
      for (int i = 0; i < n; ++i) {
        const int t = (*treatment_)[AsSize(index[AsSize(i)])];
        if (t != 0 && t != arm) continue;
        rows.push_back(i);
        (t == arm ? n1 : n0)++;
      }
      if (n1 == 0 || n0 == 0) continue;  // degenerate slice: skip head

      const int m = static_cast<int>(rows.size());
      zr.assign(AsSize(m), 0.0);
      zc.assign(AsSize(m), 0.0);
      for (int p = 0; p < m; ++p) {
        const size_t row = AsSize(index[AsSize(rows[AsSize(p)])]);
        double g = (*treatment_)[row] == arm ? static_cast<double>(m) / n1
                                             : -static_cast<double>(m) / n0;
        zr[AsSize(p)] = g * (*y_revenue_)[row];
        zc[AsSize(p)] = g * (*y_cost_)[row];
      }

      double loss = 0.0;
      int64_t pairs = 0;
      for (int p = 0; p < m; ++p) {
        for (int q = p + 1; q < m; ++q) {
          const size_t sp = AsSize(p), sq = AsSize(q);
          double w = zr[sp] * zc[sq] - zr[sq] * zc[sp];
          if (w == 0.0) continue;
          double sign = w > 0.0 ? 1.0 : -1.0;
          double mag = std::fabs(w);
          const int i = rows[sp], j = rows[sq];
          double margin = sign * (preds(i, k) - preds(j, k));
          loss += mag * Softplus(-margin);
          // d softplus(-m)/dm = -sigmoid(-m).
          double d = -mag * sign * Sigmoid(-margin);
          (*grad)(i, k) += d;
          (*grad)(j, k) -= d;
          ++pairs;
        }
      }
      if (pairs == 0) continue;
      double inv = 1.0 / static_cast<double>(pairs);
      for (int p : rows) (*grad)(p, k) *= inv;
      total += loss * inv;
      ++heads_with_pairs;
    }
    if (heads_with_pairs == 0) return 0.0;
    double inv_heads = 1.0 / static_cast<double>(heads_with_pairs);
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < num_arms_; ++k) (*grad)(i, k) *= inv_heads;
    }
    return total * inv_heads;
  }

 private:
  int num_arms_;
  const std::vector<int>* treatment_;
  const std::vector<double>* y_revenue_;
  const std::vector<double>* y_cost_;
};

}  // namespace

void KArmRankNet::Fit(const synth::MultiTreatmentDataset& train) {
  const int num_arms = train.num_arms();
  ROICL_CHECK_MSG(num_arms >= 1, "dataset carries no treatment arms");
  std::vector<int> counts(AsSize(num_arms + 1), 0);
  for (int t : train.treatment) {
    ROICL_CHECK_MSG(t >= 0 && t <= num_arms, "treatment label out of range");
    counts[AsSize(t)]++;
  }
  for (int t = 0; t <= num_arms; ++t) {
    ROICL_CHECK_MSG(counts[AsSize(t)] > 0,
                    "KArmRankNet requires control and every arm present");
  }

  num_arms_ = num_arms;
  feature_dim_ = train.x.cols();
  Matrix x_scaled = scaler_.FitTransform(train.x);

  arch_trunk_hidden_ = config_.trunk_hidden;
  if (arch_trunk_hidden_.empty()) {
    arch_trunk_hidden_ = {train.n() < 4000 ? 32 : 64};
  }
  arch_trunk_out_ = config_.trunk_out;
  arch_head_hidden_ = config_.head_hidden;

  KArmPairwiseLoss loss(num_arms, &train.treatment, &train.y_revenue,
                        &train.y_cost);
  std::vector<int> train_index(AsSize(train.n()));
  for (int i = 0; i < train.n(); ++i) train_index[AsSize(i)] = i;
  std::vector<int> validation_index;
  if (config_.train.patience > 0 && train.n() >= 100) {
    int n_val = std::max(1, train.n() / 10);
    validation_index.assign(train_index.end() - n_val, train_index.end());
    train_index.resize(train_index.size() - AsSize(n_val));
  }

  int restarts = std::max(1, config_.restarts);
  double best_score = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < restarts; ++restart) {
    Rng rng(config_.seed + static_cast<uint64_t>(restart) * 7919,
            /*stream=*/59);
    auto candidate =
        std::make_unique<uplift::MultiHeadNet>(uplift::MultiHeadNet::MakeKHead(
            feature_dim_, arch_trunk_hidden_, arch_trunk_out_, num_arms,
            arch_head_hidden_, config_.activation, config_.dropout, &rng));
    nn::TrainConfig train_config = config_.train;
    train_config.seed =
        config_.train.seed + static_cast<uint64_t>(restart) * 104729;
    nn::TrainResult result =
        nn::TrainNetwork(candidate.get(), x_scaled, train_index,
                         validation_index, loss, train_config);
    double score = validation_index.empty() ? result.final_train_loss
                                            : result.best_validation_loss;
    if (score < best_score) {
      best_score = score;
      net_ = std::move(candidate);
    }
  }
}

std::vector<std::vector<double>> KArmRankNet::PredictRoiPerArm(
    const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictRoiPerArm() before Fit()");
  ROICL_CHECK_MSG(x.cols() == feature_dim_, "feature dimension mismatch");
  Matrix x_scaled = scaler_.Transform(x);
  Matrix out = nn::BatchedInferForward(net_.get(), x_scaled, config_.predict);
  std::vector<std::vector<double>> per_arm(AsSize(num_arms_));
  for (int k = 0; k < num_arms_; ++k) {
    std::vector<double> scores = out.Col(k);
    // Ranking scores only; the sigmoid maps them into (0, 1) so the
    // allocator sees the same convention as every other direct scorer.
    for (double& v : scores) {
      v = Sigmoid(v);
      ROICL_DCHECK_FINITE(v);
    }
    per_arm[AsSize(k)] = std::move(scores);
  }
  return per_arm;
}

Status KArmRankNet::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  out << "roicl-karm-ranknet-v1\n";
  // Architecture header: everything Load needs to rebuild the identical
  // net before restoring parameters. The activation is persisted because
  // it changes inference, not just training.
  out << num_arms_ << ' ' << feature_dim_ << ' '
      << static_cast<int>(config_.activation) << '\n';
  out << arch_trunk_hidden_.size();
  for (int h : arch_trunk_hidden_) out << ' ' << h;
  out << ' ' << arch_trunk_out_ << '\n';
  out << arch_head_hidden_.size();
  for (int h : arch_head_hidden_) out << ' ' << h;
  out << '\n';
  out << std::setprecision(17);
  const std::vector<double>& means = scaler_.means();
  const std::vector<double>& stds = scaler_.stddevs();
  for (size_t i = 0; i < means.size(); ++i) {
    out << (i ? " " : "") << means[i];
  }
  out << '\n';
  for (size_t i = 0; i < stds.size(); ++i) {
    out << (i ? " " : "") << stds[i];
  }
  out << '\n';
  return nn::SaveNetworkParams(*net_, out);
}

StatusOr<KArmRankNet> KArmRankNet::Load(std::istream& in,
                                        const KArmRankNetConfig& config) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument(
        "empty or truncated karm-ranknet model stream");
  }
  if (magic != "roicl-karm-ranknet-v1") {
    if (magic.rfind("roicl-karm-ranknet-v", 0) == 0) {
      return Status::InvalidArgument(
          "unsupported karm-ranknet format version '" + magic +
          "' (expected roicl-karm-ranknet-v1)");
    }
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-karm-ranknet-v1)");
  }
  int num_arms = 0, dim = 0, activation = -1;
  if (!(in >> num_arms >> dim >> activation) || num_arms <= 0 ||
      num_arms > 1000 || dim <= 0 || dim > 1000000) {
    return Status::InvalidArgument("bad karm-ranknet architecture header");
  }
  if (activation < 0 || activation > 3) {
    return Status::InvalidArgument("unknown activation kind " +
                                   std::to_string(activation));
  }
  auto read_dims = [&in](std::vector<int>* dims) -> bool {
    size_t count = 0;
    if (!(in >> count) || count > 64) return false;
    dims->assign(count, 0);
    for (int& d : *dims) {
      if (!(in >> d) || d <= 0 || d > 1000000) return false;
    }
    return true;
  };
  std::vector<int> trunk_hidden;
  int trunk_out = 0;
  std::vector<int> head_hidden;
  if (!read_dims(&trunk_hidden) || !(in >> trunk_out) || trunk_out <= 0 ||
      !read_dims(&head_hidden)) {
    return Status::InvalidArgument("bad karm-ranknet layer dimensions");
  }
  std::vector<double> means(AsSize(dim)), stds(AsSize(dim));
  for (double& v : means) {
    if (!(in >> v)) return Status::InvalidArgument("truncated means");
  }
  for (double& v : stds) {
    if (!(in >> v)) return Status::InvalidArgument("truncated stds");
    if (v <= 0.0) return Status::InvalidArgument("non-positive stddev");
  }

  KArmRankNet model(config);
  model.num_arms_ = num_arms;
  model.feature_dim_ = dim;
  model.config_.activation = static_cast<nn::ActivationKind>(activation);
  model.arch_trunk_hidden_ = std::move(trunk_hidden);
  model.arch_trunk_out_ = trunk_out;
  model.arch_head_hidden_ = std::move(head_hidden);
  // Rebuild the architecture (initial weights are irrelevant — the
  // parameter blob overwrites them, shape-checked by LoadNetworkParams).
  Rng rng(1, /*stream=*/59);
  model.net_ =
      std::make_unique<uplift::MultiHeadNet>(uplift::MultiHeadNet::MakeKHead(
          dim, model.arch_trunk_hidden_, trunk_out, num_arms,
          model.arch_head_hidden_, model.config_.activation, config.dropout,
          &rng));
  Status params = nn::LoadNetworkParams(model.net_.get(), in);
  if (!params.ok()) return params;
  model.scaler_ =
      StandardScaler::FromMoments(std::move(means), std::move(stds));
  return model;
}

}  // namespace roicl::campaign
