#include "campaign/karm_source.h"

#include <algorithm>

#include "alloc/row_source.h"
#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::campaign {
namespace {

/// SplitMix64 finalizer — decorrelates the per-arm seeds so arm streams
/// share no low-bit structure with each other or with the base seed.
uint64_t MixSeed(uint64_t seed, int arm) {
  uint64_t z = seed + static_cast<uint64_t>(arm) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

VectorKArmRowSource::VectorKArmRowSource(
    std::vector<std::vector<double>> roi,
    std::vector<std::vector<double>> cost, int chunk_rows)
    : roi_(std::move(roi)), cost_(std::move(cost)), chunk_rows_(chunk_rows) {
  ROICL_CHECK(!roi_.empty());
  ROICL_CHECK(roi_.size() == cost_.size());
  for (size_t k = 0; k < roi_.size(); ++k) {
    ROICL_CHECK(roi_[k].size() == roi_[0].size());
    ROICL_CHECK(cost_[k].size() == roi_[0].size());
  }
  ROICL_CHECK(chunk_rows > 0);
}

bool VectorKArmRowSource::Next(KArmRowChunk* chunk) {
  int64_t n = total_users();
  if (pos_ >= n) return false;
  int64_t end = std::min(n, pos_ + chunk_rows_);
  chunk->base_user = pos_;
  chunk->roi.assign(roi_.size(), {});
  chunk->cost.assign(roi_.size(), {});
  for (size_t k = 0; k < roi_.size(); ++k) {
    chunk->roi[k].assign(roi_[k].begin() + pos_, roi_[k].begin() + end);
    chunk->cost[k].assign(cost_[k].begin() + pos_, cost_[k].begin() + end);
  }
  pos_ = end;
  return true;
}

size_t VectorKArmRowSource::chunk_bytes() const {
  return static_cast<size_t>(chunk_rows_) * roi_.size() * 2 *
         sizeof(double);
}

SyntheticKArmRowSource::SyntheticKArmRowSource(int64_t n, int num_arms,
                                               uint64_t seed, int chunk_rows)
    : n_(n), num_arms_(num_arms), seed_(seed), chunk_rows_(chunk_rows) {
  ROICL_CHECK(n >= 0);
  ROICL_CHECK(num_arms >= 1);
  ROICL_CHECK(chunk_rows > 0);
}

void SyntheticKArmRowSource::PairAt(uint64_t seed, int64_t user, int arm,
                                    double* roi, double* cost) {
  alloc::SyntheticRowSource::RowAt(MixSeed(seed, arm), user, roi, cost);
}

bool SyntheticKArmRowSource::Next(KArmRowChunk* chunk) {
  if (pos_ >= n_) return false;
  int64_t end = std::min(n_, pos_ + chunk_rows_);
  int64_t size = end - pos_;
  chunk->base_user = pos_;
  chunk->roi.assign(AsSize(num_arms_), {});
  chunk->cost.assign(AsSize(num_arms_), {});
  for (int k = 0; k < num_arms_; ++k) {
    std::vector<double>& roi = chunk->roi[AsSize(k)];
    std::vector<double>& cost = chunk->cost[AsSize(k)];
    roi.resize(AsSize64(size));
    cost.resize(AsSize64(size));
    for (int64_t i = 0; i < size; ++i) {
      PairAt(seed_, pos_ + i, k + 1, &roi[AsSize64(i)], &cost[AsSize64(i)]);
    }
  }
  pos_ = end;
  return true;
}

size_t SyntheticKArmRowSource::chunk_bytes() const {
  return static_cast<size_t>(chunk_rows_) * AsSize(num_arms_) * 2 *
         sizeof(double);
}

}  // namespace roicl::campaign
