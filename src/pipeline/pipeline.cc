#include "pipeline/pipeline.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "obs/log.h"

namespace roicl::pipeline {
namespace {

constexpr char kMagic[] = "roicl-pipeline-v1";
constexpr char kMagicPrefix[] = "roicl-pipeline-v";

/// Reads one "<key> <rest of line>" manifest entry; the value may be
/// empty. Returns false on stream end or key mismatch.
bool ReadKeyedLine(std::istream& in, const std::string& key,
                   std::string* value) {
  std::string token;
  if (!(in >> token) || token != key) return false;
  // Consume the single separating space (if any), then take the rest of
  // the line verbatim so dataset names may contain spaces.
  if (in.peek() == ' ') in.get();
  std::getline(in, *value);
  return static_cast<bool>(in);
}

}  // namespace

StatusOr<Pipeline> Pipeline::Train(const std::string& scorer_name,
                                   const Hyperparams& hp,
                                   const RctDataset& train,
                                   const RctDataset* calibration,
                                   Provenance provenance) {
  ScorerRegistry& registry = ScorerRegistry::Global();
  StatusOr<std::string> resolved = registry.Resolve(scorer_name);
  if (!resolved.ok()) return resolved.status();
  StatusOr<std::unique_ptr<RoiScorer>> scorer =
      registry.Create(resolved.value(), hp);
  if (!scorer.ok()) return scorer.status();

  Pipeline pipeline;
  pipeline.scorer_name_ = resolved.value();
  pipeline.hp_ = hp;
  pipeline.provenance_ = std::move(provenance);
  pipeline.scorer_ = std::move(scorer).value();
  if (calibration != nullptr) {
    pipeline.scorer_->FitWithCalibration(train, *calibration);
  } else {
    pipeline.scorer_->Fit(train);
  }
  pipeline.feature_dim_ = train.dim();
  obs::Info("pipeline trained", {{"scorer", pipeline.scorer_name_},
                                 {"n", train.n()},
                                 {"dim", pipeline.feature_dim_}});
  return pipeline;
}

StatusOr<std::vector<double>> Pipeline::Score(const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->PredictRoi(x);
}

StatusOr<core::McDropoutStats> Pipeline::ScoreMc(const Matrix& x,
                                                 int passes,
                                                 uint64_t seed) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ScoreMc(x, passes, seed);
}

StatusOr<std::vector<metrics::Interval>> Pipeline::ScoreIntervals(
    const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ScoreIntervals(x);
}

StatusOr<RoiScorer::ConformalInputs> Pipeline::ConformalScoreInputs(
    const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ConformalScoreInputs(x);
}

Status Pipeline::Save(std::ostream& out) const {
  if (scorer_ == nullptr || feature_dim_ <= 0) {
    return Status::FailedPrecondition("pipeline not trained");
  }
  out << kMagic << '\n';
  out << "scorer " << scorer_name_ << '\n';
  out << "feature_dim " << feature_dim_ << '\n';
  out << "provenance.seed " << provenance_.seed << '\n';
  out << "provenance.dataset " << provenance_.dataset << '\n';
  out << "provenance.git " << provenance_.git_describe << '\n';
  out << "provenance.tool " << provenance_.tool << '\n';
  out << "hyperparams " << SerializeHyperparams(hp_) << '\n';
  out << "model\n";
  if (Status status = scorer_->SaveModel(out); !status.ok()) return status;
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status Pipeline::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

StatusOr<Pipeline> Pipeline::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated pipeline stream");
  }
  if (magic != kMagic) {
    if (magic.rfind(kMagicPrefix, 0) == 0) {
      return Status::InvalidArgument("unsupported pipeline format version '" +
                                     magic + "' (expected " + kMagic + ")");
    }
    return Status::InvalidArgument("bad magic '" + magic + "' (expected " +
                                   kMagic + ")");
  }
  std::string scorer_name;
  if (!ReadKeyedLine(in, "scorer", &scorer_name) || scorer_name.empty()) {
    return Status::InvalidArgument("missing scorer name in manifest");
  }
  std::string dim_text;
  if (!ReadKeyedLine(in, "feature_dim", &dim_text)) {
    return Status::InvalidArgument("missing feature_dim in manifest");
  }
  int feature_dim = 0;
  {
    std::istringstream dim_in(dim_text);
    if (!(dim_in >> feature_dim) || feature_dim <= 0 ||
        feature_dim > 1000000) {
      return Status::InvalidArgument("bad manifest feature_dim '" +
                                     dim_text + "'");
    }
  }
  Provenance provenance;
  std::string seed_text;
  if (!ReadKeyedLine(in, "provenance.seed", &seed_text)) {
    return Status::InvalidArgument("missing provenance.seed in manifest");
  }
  {
    std::istringstream seed_in(seed_text);
    if (!(seed_in >> provenance.seed)) {
      return Status::InvalidArgument("bad provenance.seed '" + seed_text +
                                     "'");
    }
  }
  if (!ReadKeyedLine(in, "provenance.dataset", &provenance.dataset) ||
      !ReadKeyedLine(in, "provenance.git", &provenance.git_describe) ||
      !ReadKeyedLine(in, "provenance.tool", &provenance.tool)) {
    return Status::InvalidArgument("truncated provenance block");
  }
  std::string hp_line;
  if (!ReadKeyedLine(in, "hyperparams", &hp_line)) {
    return Status::InvalidArgument("missing hyperparams in manifest");
  }
  StatusOr<Hyperparams> hp = ParseHyperparams(hp_line);
  if (!hp.ok()) return hp.status();
  std::string marker;
  if (!(in >> marker) || marker != "model") {
    return Status::InvalidArgument("missing model section marker");
  }

  ScorerRegistry& registry = ScorerRegistry::Global();
  if (!registry.Has(scorer_name)) {
    StatusOr<std::string> resolved = registry.Resolve(scorer_name);
    if (!resolved.ok()) return resolved.status();
    scorer_name = resolved.value();
  }
  StatusOr<std::unique_ptr<RoiScorer>> scorer =
      registry.Create(scorer_name, hp.value());
  if (!scorer.ok()) return scorer.status();
  if (Status status = scorer.value()->LoadModel(in); !status.ok()) {
    return status;
  }
  // Strict manifest/model agreement: a tampered or mispaired blob must
  // not survive to prediction time.
  int model_dim = scorer.value()->feature_dim();
  if (model_dim > 0 && model_dim != feature_dim) {
    return Status::InvalidArgument(
        "manifest/model feature-dimension mismatch: manifest says " +
        std::to_string(feature_dim) + ", model expects " +
        std::to_string(model_dim));
  }

  Pipeline pipeline;
  pipeline.scorer_name_ = scorer_name;
  pipeline.feature_dim_ = feature_dim;
  pipeline.hp_ = hp.value();
  pipeline.provenance_ = std::move(provenance);
  pipeline.scorer_ = std::move(scorer).value();
  return pipeline;
}

StatusOr<Pipeline> Pipeline::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in);
}

}  // namespace roicl::pipeline
