#include "pipeline/pipeline.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "core/interval_backend.h"
#include "core/roi_star.h"
#include "obs/log.h"

namespace roicl::pipeline {
namespace {

// v2 added the mandatory interval_backend manifest section; v1 artifacts
// (which baked split-conformal semantics into the model blob alone) are
// rejected with a version error rather than silently defaulted.
constexpr char kMagic[] = "roicl-pipeline-v2";
constexpr char kMagicPrefix[] = "roicl-pipeline-v";

/// Reads one "<key> <rest of line>" manifest entry; the value may be
/// empty. Returns false on stream end or key mismatch.
bool ReadKeyedLine(std::istream& in, const std::string& key,
                   std::string* value) {
  std::string token;
  if (!(in >> token) || token != key) return false;
  // Consume the single separating space (if any), then take the rest of
  // the line verbatim so dataset names may contain spaces.
  if (in.peek() == ' ') in.get();
  std::getline(in, *value);
  return static_cast<bool>(in);
}

}  // namespace

StatusOr<Pipeline> Pipeline::Train(const std::string& scorer_name,
                                   const Hyperparams& hp,
                                   const RctDataset& train,
                                   const RctDataset* calibration,
                                   Provenance provenance) {
  ScorerRegistry& registry = ScorerRegistry::Global();
  StatusOr<std::string> resolved = registry.Resolve(scorer_name);
  if (!resolved.ok()) return resolved.status();
  StatusOr<std::unique_ptr<RoiScorer>> scorer =
      registry.Create(resolved.value(), hp);
  if (!scorer.ok()) return scorer.status();

  Pipeline pipeline;
  pipeline.scorer_name_ = resolved.value();
  pipeline.hp_ = hp;
  pipeline.provenance_ = std::move(provenance);
  pipeline.scorer_ = std::move(scorer).value();
  if (calibration != nullptr) {
    pipeline.scorer_->FitWithCalibration(train, *calibration);
  } else {
    pipeline.scorer_->Fit(train);
  }
  pipeline.feature_dim_ = train.dim();
  obs::Info("pipeline trained", {{"scorer", pipeline.scorer_name_},
                                 {"n", train.n()},
                                 {"dim", pipeline.feature_dim_}});
  return pipeline;
}

StatusOr<std::vector<double>> Pipeline::Score(const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->PredictRoi(x);
}

StatusOr<core::McDropoutStats> Pipeline::ScoreMc(const Matrix& x,
                                                 int passes,
                                                 uint64_t seed) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ScoreMc(x, passes, seed);
}

StatusOr<std::vector<metrics::Interval>> Pipeline::ScoreIntervals(
    const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ScoreIntervals(x);
}

StatusOr<RoiScorer::ConformalInputs> Pipeline::ConformalScoreInputs(
    const Matrix& x) const {
  if (x.cols() != feature_dim_) {
    return Status::InvalidArgument(
        "feature dimension mismatch: pipeline expects " +
        std::to_string(feature_dim_) + " features but input has " +
        std::to_string(x.cols()));
  }
  return scorer_->ConformalScoreInputs(x);
}

Status Pipeline::RebindIntervalBackend(const std::string& name,
                                       const RctDataset* calibration) {
  if (!scorer_->has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "scorer '" + scorer_name_ + "' has no interval state to rebind");
  }
  const core::IntervalBackend* current = scorer_->interval_backend();
  if (current == nullptr) {
    return Status::FailedPrecondition(
        "pipeline carries no interval backend");
  }
  if (current->name() == name) return Status::Ok();
  StatusOr<std::unique_ptr<core::IntervalBackend>> made =
      core::MakeIntervalBackend(name);
  if (!made.ok()) return made.status();
  std::unique_ptr<core::IntervalBackend> target = std::move(made).value();
  if (calibration != nullptr) {
    // Full recalibration: the same ingredients FitWithCalibration fed the
    // original backend (point estimates, MC stds, the Algorithm-2
    // convergence point), so rebinding on the training-time calibration
    // set reproduces the would-have-been-trained backend exactly.
    StatusOr<RoiScorer::ConformalInputs> inputs =
        ConformalScoreInputs(calibration->x);
    if (!inputs.ok()) return inputs.status();
    double roi_star =
        core::BinarySearchRoiStar(*calibration, core::RdrpConfig().epsilon);
    std::vector<double> roi_star_vec(inputs.value().roi_hat.size(),
                                     roi_star);
    if (Status status = target->Calibrate(
            calibration->x, inputs.value().roi_hat, inputs.value().r_hat,
            roi_star_vec, hp_.alpha, core::kDefaultStdFloor);
        !status.ok()) {
      return status;
    }
    StatusOr<std::vector<double>> served = Score(calibration->x);
    if (!served.ok()) return served.status();
    target->SetWeightReference(std::move(served).value());
  } else {
    // Stateless conversion from the persisted calibration state; only
    // legal between backends sharing Eq.(3) score semantics.
    if (Status status = target->InitFromState(*current); !status.ok()) {
      return status;
    }
  }
  double q_hat = target->q_hat();
  if (Status status = scorer_->AdoptIntervalBackend(std::move(target));
      !status.ok()) {
    return status;
  }
  hp_.interval_backend = name;
  // Seed the live serving scalar with the rebound backend's calibration
  // quantile (one atomic swap; concurrent scoring never tears).
  return SetConformalQuantile(q_hat);
}

Status Pipeline::Save(std::ostream& out) const {
  if (scorer_ == nullptr || feature_dim_ <= 0) {
    return Status::FailedPrecondition("pipeline not trained");
  }
  out << kMagic << '\n';
  out << "scorer " << scorer_name_ << '\n';
  out << "feature_dim " << feature_dim_ << '\n';
  out << "provenance.seed " << provenance_.seed << '\n';
  out << "provenance.dataset " << provenance_.dataset << '\n';
  out << "provenance.git " << provenance_.git_describe << '\n';
  out << "provenance.tool " << provenance_.tool << '\n';
  out << "hyperparams " << SerializeHyperparams(hp_) << '\n';
  const core::IntervalBackend* backend = scorer_->interval_backend();
  if (backend != nullptr) {
    out << "interval_backend " << backend->name() << '\n';
    if (Status status = backend->Save(out); !status.ok()) return status;
  } else {
    out << "interval_backend none\n";
  }
  out << "model\n";
  if (Status status = scorer_->SaveModel(out); !status.ok()) return status;
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status Pipeline::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return Save(out);
}

StatusOr<Pipeline> Pipeline::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    return Status::InvalidArgument("empty or truncated pipeline stream");
  }
  if (magic != kMagic) {
    if (magic.rfind(kMagicPrefix, 0) == 0) {
      return Status::InvalidArgument("unsupported pipeline format version '" +
                                     magic + "' (expected " + kMagic + ")");
    }
    return Status::InvalidArgument("bad magic '" + magic + "' (expected " +
                                   kMagic + ")");
  }
  std::string scorer_name;
  if (!ReadKeyedLine(in, "scorer", &scorer_name) || scorer_name.empty()) {
    return Status::InvalidArgument("missing scorer name in manifest");
  }
  std::string dim_text;
  if (!ReadKeyedLine(in, "feature_dim", &dim_text)) {
    return Status::InvalidArgument("missing feature_dim in manifest");
  }
  int feature_dim = 0;
  {
    std::istringstream dim_in(dim_text);
    if (!(dim_in >> feature_dim) || feature_dim <= 0 ||
        feature_dim > 1000000) {
      return Status::InvalidArgument("bad manifest feature_dim '" +
                                     dim_text + "'");
    }
  }
  Provenance provenance;
  std::string seed_text;
  if (!ReadKeyedLine(in, "provenance.seed", &seed_text)) {
    return Status::InvalidArgument("missing provenance.seed in manifest");
  }
  {
    std::istringstream seed_in(seed_text);
    if (!(seed_in >> provenance.seed)) {
      return Status::InvalidArgument("bad provenance.seed '" + seed_text +
                                     "'");
    }
  }
  if (!ReadKeyedLine(in, "provenance.dataset", &provenance.dataset) ||
      !ReadKeyedLine(in, "provenance.git", &provenance.git_describe) ||
      !ReadKeyedLine(in, "provenance.tool", &provenance.tool)) {
    return Status::InvalidArgument("truncated provenance block");
  }
  std::string hp_line;
  if (!ReadKeyedLine(in, "hyperparams", &hp_line)) {
    return Status::InvalidArgument("missing hyperparams in manifest");
  }
  StatusOr<Hyperparams> hp = ParseHyperparams(hp_line);
  if (!hp.ok()) return hp.status();
  std::string backend_name;
  if (!ReadKeyedLine(in, "interval_backend", &backend_name) ||
      backend_name.empty()) {
    return Status::InvalidArgument(
        "missing interval_backend section in manifest");
  }
  std::unique_ptr<core::IntervalBackend> backend;
  if (backend_name != "none") {
    StatusOr<std::unique_ptr<core::IntervalBackend>> made =
        core::MakeIntervalBackend(backend_name);
    if (!made.ok()) return made.status();
    backend = std::move(made).value();
    if (Status status = backend->Load(in); !status.ok()) return status;
    // The hyperparam knob and the persisted section must agree, or the
    // artifact was stitched together from mismatched halves.
    if (hp.value().interval_backend != backend_name) {
      return Status::InvalidArgument(
          "manifest hyperparams say interval_backend=" +
          hp.value().interval_backend + " but the interval section is '" +
          backend_name + "'");
    }
  }
  std::string marker;
  if (!(in >> marker) || marker != "model") {
    return Status::InvalidArgument("missing model section marker");
  }

  ScorerRegistry& registry = ScorerRegistry::Global();
  if (!registry.Has(scorer_name)) {
    StatusOr<std::string> resolved = registry.Resolve(scorer_name);
    if (!resolved.ok()) return resolved.status();
    scorer_name = resolved.value();
  }
  StatusOr<std::unique_ptr<RoiScorer>> scorer =
      registry.Create(scorer_name, hp.value());
  if (!scorer.ok()) return scorer.status();
  if (Status status = scorer.value()->LoadModel(in); !status.ok()) {
    return status;
  }
  // Strict manifest/model agreement: a tampered or mispaired blob must
  // not survive to prediction time.
  int model_dim = scorer.value()->feature_dim();
  if (model_dim > 0 && model_dim != feature_dim) {
    return Status::InvalidArgument(
        "manifest/model feature-dimension mismatch: manifest says " +
        std::to_string(feature_dim) + ", model expects " +
        std::to_string(model_dim));
  }
  // Interval state and scorer capability must pair up exactly: a
  // conformal scorer without its interval section (or a point scorer
  // carrying one) is a corrupt or mispaired artifact.
  if (backend != nullptr) {
    if (Status status =
            scorer.value()->AdoptIntervalBackend(std::move(backend));
        !status.ok()) {
      return Status::InvalidArgument(
          "artifact carries interval state but scorer '" + scorer_name +
          "' cannot adopt it: " + status.message());
    }
  } else if (scorer.value()->has_conformal_quantile()) {
    return Status::InvalidArgument(
        "conformal scorer '" + scorer_name +
        "' artifact is missing its interval-backend section");
  }

  Pipeline pipeline;
  pipeline.scorer_name_ = scorer_name;
  pipeline.feature_dim_ = feature_dim;
  pipeline.hp_ = hp.value();
  pipeline.provenance_ = std::move(provenance);
  pipeline.scorer_ = std::move(scorer).value();
  return pipeline;
}

StatusOr<Pipeline> Pipeline::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return Load(in);
}

}  // namespace roicl::pipeline
