#include "pipeline/service.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::pipeline {
namespace {

std::vector<double> OccupancyBuckets() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

/// Routes a stage latency into its histogram, attaching the request's
/// trace ID when the request was exemplar-sampled.
void ObserveStage(obs::Histogram* histogram, double value, bool sampled,
                  uint64_t trace_id) {
  if (sampled) {
    histogram->ObserveWithExemplar(value, trace_id);
  } else {
    histogram->Observe(value);
  }
}

std::string TraceTag(bool tracing, uint64_t trace_id) {
  return tracing ? "trace=" + std::to_string(trace_id) : std::string();
}

}  // namespace

ScoringService::ScoringService(Pipeline pipeline, ServiceOptions options)
    : pipeline_(std::move(pipeline)), options_(options) {
  pipeline_.set_batch_options(options_.engine);
  obs::Info("scoring service up",
            {{"scorer", pipeline_.scorer_name()},
             {"feature_dim", pipeline_.feature_dim()},
             {"max_batch_requests", options_.max_batch_requests},
             {"engine_threads", options_.engine.num_threads}});
  dispatcher_ = std::thread([this] { Loop(); });
}

ScoringService::~ScoringService() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail anything still queued so no future is left dangling. The
  // dispatcher is gone, but the lock keeps the guarded-access discipline
  // uniform (the analysis does not check destructors; TSan does).
  MutexLock lock(mu_);
  for (Request& request : queue_) {
    request.promise.set_value(
        Status::FailedPrecondition("scoring service shut down"));
  }
}

std::future<StatusOr<std::vector<double>>> ScoringService::Submit(
    Matrix x, int64_t deadline_micros) {
  Request request;
  request.x = std::move(x);
  request.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  request.enqueue_micros = obs::MonotonicMicros();
  request.deadline_micros = deadline_micros > 0
                                ? deadline_micros
                                : options_.default_deadline_micros;
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const bool tracing = collector.enabled();
  obs::ScopedSpan span("serve.submit",
                       TraceTag(tracing, request.trace_id));
  const uint64_t trace_id = request.trace_id;
  std::future<StatusOr<std::vector<double>>> future =
      request.promise.get_future();
  {
    MutexLock lock(mu_);
    if (stopping_) {
      request.promise.set_value(
          Status::FailedPrecondition("scoring service shut down"));
      return future;
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue) {
      obs::MetricsRegistry::Global().GetCounter("serve.rejected")
          ->Increment();
      request.promise.set_value(Status::FailedPrecondition(
          "scoring queue full (" + std::to_string(queue_.size()) +
          " requests)"));
      return future;
    }
    queue_.push_back(std::move(request));
    obs::MetricsRegistry::Global().GetGauge("serve.queue_depth")
        ->Set(static_cast<double>(queue_.size()));
  }
  // Flow start on the client thread, inside the submit span, only for
  // admitted requests — the dispatcher steps ('t') and finishes ('f')
  // the same flow id on its own track.
  if (tracing) collector.RecordFlowEvent("serve.request", 's', trace_id);
  cv_.NotifyOne();
  return future;
}

StatusOr<std::vector<double>> ScoringService::Score(
    Matrix x, int64_t deadline_micros) {
  return Submit(std::move(x), deadline_micros).get();
}

uint64_t ScoringService::requests_served() const {
  MutexLock lock(mu_);
  return served_;
}

Status ScoringService::SetConformalQuantile(double q_hat) {
  if (!pipeline_.has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "served scorer '" + pipeline_.scorer_name() +
        "' carries no conformal quantile");
  }
  return pipeline_.SetConformalQuantile(q_hat);
}

void ScoringService::Loop() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter* requests = metrics.GetCounter("serve.requests");
  obs::Counter* deadline_exceeded =
      metrics.GetCounter("serve.deadline_exceeded");
  obs::Counter* errors = metrics.GetCounter("serve.errors");
  obs::Gauge* queue_depth = metrics.GetGauge("serve.queue_depth");
  obs::Histogram* occupancy =
      metrics.GetHistogram("serve.batch_occupancy", OccupancyBuckets());
  obs::Histogram* latency = metrics.GetHistogram(
      "serve.latency_micros", obs::LatencyMicrosBuckets());
  obs::Histogram* stage_queue = metrics.GetHistogram(
      "serve.stage.queue_us", obs::LatencyMicrosBuckets());
  obs::Histogram* stage_assemble = metrics.GetHistogram(
      "serve.stage.assemble_us", obs::LatencyMicrosBuckets());
  obs::Histogram* stage_score = metrics.GetHistogram(
      "serve.stage.score_us", obs::LatencyMicrosBuckets());
  obs::Histogram* stage_conformal = metrics.GetHistogram(
      "serve.stage.conformal_us", obs::LatencyMicrosBuckets());
  obs::Histogram* stage_observe = metrics.GetHistogram(
      "serve.stage.observe_us", obs::LatencyMicrosBuckets());
  obs::Gauge* interval_width = metrics.GetGauge("serve.interval_width");
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  const ExemplarSampler sampler{options_.exemplar_seed,
                                options_.exemplar_rate};
  // Shadow conformal-interval cadence; disarmed permanently on the first
  // "scorer doesn't support intervals" error instead of failing per tick.
  uint64_t shadow_tick = 0;
  bool shadow_armed = options_.shadow_interval_every > 0;

  for (;;) {
    std::vector<Request> batch;
    uint64_t assemble_start = 0;
    {
      MutexLock lock(mu_);
      // Explicit while loop, not a predicate lambda: the analysis checks a
      // lambda as a separate function holding no capabilities, so the
      // guarded reads must stay in this provably-locked scope.
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (stopping_) return;
      assemble_start = obs::MonotonicMicros();
      int take = std::min<int>(options_.max_batch_requests,
                               static_cast<int>(queue_.size()));
      batch.reserve(AsSize(take));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth->Set(static_cast<double>(queue_.size()));
    }
    const uint64_t assemble_us =
        obs::MonotonicMicros() - assemble_start;
    occupancy->Observe(static_cast<double>(batch.size()));

    // Score each request's matrix independently (see class comment: the
    // MC-dropout streams key on absolute row indices, so concatenating
    // requests would change stochastic scorers' bits). The engine still
    // parallelizes across each request's row blocks.
    for (Request& request : batch) {
      requests->Increment();
      const bool tracing = collector.enabled();
      const bool sampled = sampler.Sample(request.trace_id);
      const std::string trace_tag = TraceTag(tracing, request.trace_id);
      obs::ScopedSpan process_span("serve.process", trace_tag);
      if (tracing) {
        collector.RecordFlowEvent("serve.request", 't', request.trace_id);
      }
      const uint64_t dequeued = obs::MonotonicMicros();
      const uint64_t queue_us = dequeued - request.enqueue_micros;
      ObserveStage(stage_queue, static_cast<double>(queue_us), sampled,
                   request.trace_id);
      ObserveStage(stage_assemble, static_cast<double>(assemble_us),
                   sampled, request.trace_id);
      if (request.deadline_micros > 0 &&
          static_cast<int64_t>(queue_us) > request.deadline_micros) {
        deadline_exceeded->Increment();
        if (tracing) {
          collector.RecordFlowEvent("serve.request", 'f',
                                    request.trace_id);
        }
        request.promise.set_value(Status::FailedPrecondition(
            "deadline exceeded: waited " + std::to_string(queue_us) +
            "us, deadline " + std::to_string(request.deadline_micros) +
            "us"));
        continue;
      }
      StatusOr<std::vector<double>> result = [&] {
        obs::ScopedSpan score_span("serve.score", trace_tag);
        return pipeline_.Score(request.x);
      }();
      const uint64_t scored = obs::MonotonicMicros();
      const uint64_t score_us = scored - dequeued;
      ObserveStage(stage_score, static_cast<double>(score_us), sampled,
                   request.trace_id);
      if (!result.ok()) {
        errors->Increment();
      } else {
        if (shadow_armed &&
            ++shadow_tick %
                    static_cast<uint64_t>(options_.shadow_interval_every) ==
                0) {
          obs::ScopedSpan conformal_span("serve.conformal", trace_tag);
          StatusOr<std::vector<metrics::Interval>> intervals =
              pipeline_.ScoreIntervals(request.x);
          if (intervals.ok() && !intervals.value().empty()) {
            double width_sum = 0.0;
            for (const metrics::Interval& iv : intervals.value()) {
              width_sum += iv.width();
            }
            interval_width->Set(
                width_sum / static_cast<double>(intervals.value().size()));
          } else if (!intervals.ok()) {
            shadow_armed = false;
            obs::Warn("shadow interval stage disarmed",
                      {{"reason", intervals.status().message()}});
          }
          ObserveStage(stage_conformal,
                       static_cast<double>(obs::MonotonicMicros() - scored),
                       sampled, request.trace_id);
        }
        if (options_.on_scored) {
          obs::ScopedSpan observe_span("serve.observe", trace_tag);
          const uint64_t observe_start = obs::MonotonicMicros();
          ServeContext ctx;
          ctx.trace_id = request.trace_id;
          ctx.queue_us = queue_us;
          ctx.score_us = score_us;
          ctx.exemplar = sampled;
          options_.on_scored(ctx, request.x, result.value());
          ObserveStage(
              stage_observe,
              static_cast<double>(obs::MonotonicMicros() - observe_start),
              sampled, request.trace_id);
        }
      }
      ObserveStage(latency,
                   static_cast<double>(obs::MonotonicMicros() -
                                       request.enqueue_micros),
                   sampled, request.trace_id);
      if (tracing) {
        collector.RecordFlowEvent("serve.request", 'f', request.trace_id);
      }
      // Count before fulfilling the promise: a client that has observed
      // its future resolve must already be visible in requests_served().
      {
        MutexLock lock(mu_);
        ++served_;
      }
      request.promise.set_value(std::move(result));
    }
  }
}

}  // namespace roicl::pipeline
