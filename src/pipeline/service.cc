#include "pipeline/service.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::pipeline {
namespace {

std::vector<double> OccupancyBuckets() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

}  // namespace

ScoringService::ScoringService(Pipeline pipeline, ServiceOptions options)
    : pipeline_(std::move(pipeline)), options_(options) {
  pipeline_.set_batch_options(options_.engine);
  obs::Info("scoring service up",
            {{"scorer", pipeline_.scorer_name()},
             {"feature_dim", pipeline_.feature_dim()},
             {"max_batch_requests", options_.max_batch_requests},
             {"engine_threads", options_.engine.num_threads}});
  dispatcher_ = std::thread([this] { Loop(); });
}

ScoringService::~ScoringService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Fail anything still queued so no future is left dangling.
  for (Request& request : queue_) {
    request.promise.set_value(
        Status::FailedPrecondition("scoring service shut down"));
  }
}

std::future<StatusOr<std::vector<double>>> ScoringService::Submit(
    Matrix x, int64_t deadline_micros) {
  Request request;
  request.x = std::move(x);
  request.enqueue_micros = obs::MonotonicMicros();
  request.deadline_micros = deadline_micros > 0
                                ? deadline_micros
                                : options_.default_deadline_micros;
  std::future<StatusOr<std::vector<double>>> future =
      request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      request.promise.set_value(
          Status::FailedPrecondition("scoring service shut down"));
      return future;
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue) {
      obs::MetricsRegistry::Global().GetCounter("serve.rejected")
          ->Increment();
      request.promise.set_value(Status::FailedPrecondition(
          "scoring queue full (" + std::to_string(queue_.size()) +
          " requests)"));
      return future;
    }
    queue_.push_back(std::move(request));
    obs::MetricsRegistry::Global().GetGauge("serve.queue_depth")
        ->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

StatusOr<std::vector<double>> ScoringService::Score(
    Matrix x, int64_t deadline_micros) {
  return Submit(std::move(x), deadline_micros).get();
}

uint64_t ScoringService::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_;
}

Status ScoringService::SetConformalQuantile(double q_hat) {
  if (!pipeline_.has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "served scorer '" + pipeline_.scorer_name() +
        "' carries no conformal quantile");
  }
  return pipeline_.SetConformalQuantile(q_hat);
}

void ScoringService::Loop() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter* requests = metrics.GetCounter("serve.requests");
  obs::Counter* deadline_exceeded =
      metrics.GetCounter("serve.deadline_exceeded");
  obs::Counter* errors = metrics.GetCounter("serve.errors");
  obs::Gauge* queue_depth = metrics.GetGauge("serve.queue_depth");
  obs::Histogram* occupancy =
      metrics.GetHistogram("serve.batch_occupancy", OccupancyBuckets());
  obs::Histogram* latency = metrics.GetHistogram(
      "serve.latency_micros", obs::LatencyMicrosBuckets());

  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      int take = std::min<int>(options_.max_batch_requests,
                               static_cast<int>(queue_.size()));
      batch.reserve(AsSize(take));
      for (int i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth->Set(static_cast<double>(queue_.size()));
    }
    occupancy->Observe(static_cast<double>(batch.size()));

    // Score each request's matrix independently (see class comment: the
    // MC-dropout streams key on absolute row indices, so concatenating
    // requests would change stochastic scorers' bits). The engine still
    // parallelizes across each request's row blocks.
    for (Request& request : batch) {
      requests->Increment();
      uint64_t now = obs::MonotonicMicros();
      int64_t waited =
          static_cast<int64_t>(now - request.enqueue_micros);
      if (request.deadline_micros > 0 &&
          waited > request.deadline_micros) {
        deadline_exceeded->Increment();
        request.promise.set_value(Status::FailedPrecondition(
            "deadline exceeded: waited " + std::to_string(waited) +
            "us, deadline " + std::to_string(request.deadline_micros) +
            "us"));
        continue;
      }
      StatusOr<std::vector<double>> result = pipeline_.Score(request.x);
      if (!result.ok()) {
        errors->Increment();
      } else if (options_.on_scored) {
        options_.on_scored(request.x, result.value());
      }
      latency->Observe(static_cast<double>(obs::MonotonicMicros() -
                                           request.enqueue_micros));
      // Count before fulfilling the promise: a client that has observed
      // its future resolve must already be visible in requests_served().
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++served_;
      }
      request.promise.set_value(std::move(result));
    }
  }
}

}  // namespace roicl::pipeline
