#ifndef ROICL_PIPELINE_REGISTRY_H_
#define ROICL_PIPELINE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pipeline/hyperparams.h"
#include "pipeline/scorer.h"

namespace roicl::pipeline {

/// Builds a fresh, unfitted scorer configured from the shared hyperparam
/// block.
using ScorerFactory =
    std::function<std::unique_ptr<RoiScorer>(const Hyperparams&)>;

/// Name -> factory registry for every benchmark method. exp/, the CLI and
/// the serving layer construct models exclusively through this, so adding
/// a method is one Register call — no switch chain to extend.
class ScorerRegistry {
 public:
  /// The process-wide registry, with the ten Table-I methods
  /// pre-registered on first use.
  static ScorerRegistry& Global();

  /// Registers `factory` under `name` (e.g. "rDRP"). Re-registering an
  /// existing name replaces its factory (useful for tests).
  void Register(const std::string& name, ScorerFactory factory);

  /// Exact-match lookup (no alias resolution).
  bool Has(const std::string& name) const;

  /// Resolves `name` to its canonical registered spelling: exact match
  /// first, then case-insensitive (so the CLI accepts "rdrp" for "rDRP").
  /// NotFound lists every registered name.
  StatusOr<std::string> Resolve(const std::string& name) const;

  /// Creates a fresh scorer for `name` (resolved as in Resolve).
  StatusOr<std::unique_ptr<RoiScorer>> Create(const std::string& name,
                                              const Hyperparams& hp) const;

  /// Registered names in registration order (Table-I row order for the
  /// built-ins).
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::string name;
    ScorerFactory factory;
  };
  std::vector<Entry> entries_;
};

namespace internal {
/// Defined in builtin_scorers.cc; called once by ScorerRegistry::Global().
/// The hard symbol reference keeps the built-in registrations from being
/// dropped by the linker when the library is consumed statically.
void RegisterBuiltinScorers(ScorerRegistry* registry);
}  // namespace internal

}  // namespace roicl::pipeline

#endif  // ROICL_PIPELINE_REGISTRY_H_
