#ifndef ROICL_PIPELINE_PIPELINE_H_
#define ROICL_PIPELINE_PIPELINE_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "pipeline/hyperparams.h"
#include "pipeline/registry.h"
#include "pipeline/scorer.h"

namespace roicl::pipeline {

/// Training provenance baked into every artifact so a served score can be
/// traced back to the run that produced it.
struct Provenance {
  uint64_t seed = 0;
  std::string dataset;       ///< e.g. "synth:insufficient" or a CSV path.
  std::string git_describe;  ///< build identity of the training binary.
  std::string tool;          ///< producing command, e.g. "roicl_cli train".
};

/// A versioned, self-describing bundle of everything needed to score:
/// the scorer name (registry key), the shared hyperparam block (from
/// which every per-family config and derived seed is rebuilt), the
/// feature dimension, provenance, and the fitted model state.
///
/// Train once, Save, then Load anywhere and get bit-identical
/// predictions — the contract the round-trip tests enforce for every
/// registered scorer at multiple engine thread counts.
class Pipeline {
 public:
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Trains a fresh `scorer_name` scorer (resolved through the global
  /// registry) on `train`, calibrating on `calibration` when non-null
  /// (rDRP's Algorithm 4; point methods ignore it).
  static StatusOr<Pipeline> Train(const std::string& scorer_name,
                                  const Hyperparams& hp,
                                  const RctDataset& train,
                                  const RctDataset* calibration,
                                  Provenance provenance);

  /// Point ROI scores. Rejects a feature-dimension mismatch with a
  /// descriptive error instead of crashing.
  StatusOr<std::vector<double>> Score(const Matrix& x) const;

  /// MC-dropout uncertainty via the scorer (when supported).
  StatusOr<core::McDropoutStats> ScoreMc(const Matrix& x, int passes,
                                         uint64_t seed) const;

  /// Conformal intervals via the scorer (when supported).
  StatusOr<std::vector<metrics::Interval>> ScoreIntervals(
      const Matrix& x) const;

  /// Conformal-quantile plumbing for the online recalibrator (rDRP
  /// only): read / atomically swap q_hat, and recompute Eq. (3) score
  /// ingredients on a feedback window. All forward to the scorer.
  bool has_conformal_quantile() const {
    return scorer_->has_conformal_quantile();
  }
  StatusOr<double> conformal_quantile() const {
    return scorer_->conformal_quantile();
  }
  Status SetConformalQuantile(double q_hat) {
    return scorer_->SetConformalQuantile(q_hat);
  }
  StatusOr<RoiScorer::ConformalInputs> ConformalScoreInputs(
      const Matrix& x) const;

  /// The interval backend behind this pipeline's conformal intervals
  /// (nullptr for point scorers without interval state).
  const core::IntervalBackend* interval_backend() const {
    return scorer_->interval_backend();
  }

  /// Replaces the interval backend with a freshly built `name` backend
  /// ("split" / "weighted" / "cqr") and seeds the live serving quantile
  /// with its calibration q_hat. Without a calibration set, only
  /// backends sharing split score semantics can be rebuilt from the
  /// persisted state (split <-> weighted); rebinding to cqr needs
  /// `calibration` to refit its quantile heads. No-op when the backend
  /// already has that name.
  Status RebindIntervalBackend(const std::string& name,
                               const RctDataset* calibration);

  /// Serializes the manifest + model blob ("roicl-pipeline-v2"; the
  /// manifest carries a versioned interval-backend section between the
  /// hyperparams and the model blob).
  Status Save(std::ostream& out) const;
  Status SaveToFile(const std::string& path) const;

  /// Restores an artifact written by Save: version check, manifest parse,
  /// scorer construction through the registry, model load, and a strict
  /// feature-dimension cross-check between manifest and model.
  static StatusOr<Pipeline> Load(std::istream& in);
  static StatusOr<Pipeline> LoadFromFile(const std::string& path);

  /// Re-points the scorer's batched prediction engine (throughput only).
  void set_batch_options(const nn::BatchOptions& opts) {
    scorer_->set_batch_options(opts);
  }

  const RoiScorer& scorer() const { return *scorer_; }
  const std::string& scorer_name() const { return scorer_name_; }
  int feature_dim() const { return feature_dim_; }
  const Hyperparams& hyperparams() const { return hp_; }
  const Provenance& provenance() const { return provenance_; }

 private:
  Pipeline() = default;

  std::string scorer_name_;
  int feature_dim_ = -1;
  Hyperparams hp_;
  Provenance provenance_;
  std::unique_ptr<RoiScorer> scorer_;
};

}  // namespace roicl::pipeline

#endif  // ROICL_PIPELINE_PIPELINE_H_
