#include "pipeline/hyperparams.h"

#include <cstdio>
#include <sstream>
#include <string>

#include "common/math_util.h"
#include "core/interval_backend.h"

namespace roicl::pipeline {
namespace {

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

template <typename T>
bool ParseValue(const std::string& text, T* out) {
  std::istringstream in(text);
  T value{};
  if (!(in >> value)) return false;
  in >> std::ws;
  if (!in.eof()) return false;  // trailing garbage
  *out = value;
  return true;
}

bool ParseInt(const std::string& text, int* out) {
  return ParseValue(text, out);
}

bool ParseU64(const std::string& text, uint64_t* out) {
  return ParseValue(text, out);
}

bool ParseDouble(const std::string& text, double* out) {
  return ParseValue(text, out);
}

}  // namespace

core::DrpConfig MakeDrpConfig(const Hyperparams& hp) {
  core::DrpConfig config;
  config.hidden_units = hp.drp_hidden;
  config.dropout = hp.drp_dropout;
  config.train.epochs = hp.neural_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.patience;
  config.train.seed = hp.seed;
  config.restarts = hp.restarts;
  config.seed = hp.seed + 1;
  config.predict.batch_size = hp.predict_batch_size;
  config.predict.num_threads = hp.predict_threads;
  return config;
}

core::DirectRankConfig MakeDrConfig(const Hyperparams& hp) {
  core::DirectRankConfig config;
  config.hidden_units = hp.drp_hidden;
  config.dropout = hp.drp_dropout;
  config.train.epochs = hp.neural_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.patience;
  config.train.seed = hp.seed;
  config.restarts = hp.restarts;
  config.seed = hp.seed + 2;
  config.predict.batch_size = hp.predict_batch_size;
  config.predict.num_threads = hp.predict_threads;
  return config;
}

core::RankNetConfig MakeRankNetConfig(const Hyperparams& hp) {
  core::RankNetConfig config;
  config.hidden_units = hp.drp_hidden;
  config.dropout = hp.drp_dropout;
  config.train.epochs = hp.neural_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.patience;
  config.train.seed = hp.seed;
  config.restarts = hp.restarts;
  config.seed = hp.seed + 11;
  config.predict.batch_size = hp.predict_batch_size;
  config.predict.num_threads = hp.predict_threads;
  return config;
}

core::RdrpConfig MakeRdrpConfig(const Hyperparams& hp) {
  core::RdrpConfig config;
  config.drp = MakeDrpConfig(hp);  // identical DRP for fair comparison
  config.mc_passes = hp.mc_passes;
  config.alpha = hp.alpha;
  config.mc_seed = hp.seed + 3;
  config.interval_backend = hp.interval_backend;
  return config;
}

uplift::NeuralCateConfig MakeNeuralCateConfig(const Hyperparams& hp) {
  uplift::NeuralCateConfig config;
  config.trunk_hidden = {hp.cate_trunk};
  config.head_hidden = {hp.cate_head};
  config.dropout = 0.1;
  config.train.epochs = hp.cate_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.cate_patience;
  config.train.seed = hp.seed + 4;
  config.seed = hp.seed + 5;
  return config;
}

trees::ForestConfig MakeForestConfig(const Hyperparams& hp) {
  trees::ForestConfig config;
  config.num_trees = hp.forest_trees;
  config.tree.max_depth = hp.forest_depth;
  config.seed = hp.seed + 6;
  return config;
}

trees::CausalForestConfig MakeCausalForestConfig(const Hyperparams& hp) {
  trees::CausalForestConfig config;
  config.num_trees = hp.causal_forest_trees;
  config.tree.max_depth = hp.forest_depth;
  config.seed = hp.seed + 7;
  return config;
}

std::string SerializeHyperparams(const Hyperparams& hp) {
  std::ostringstream out;
  out << "neural_epochs=" << hp.neural_epochs
      << " batch_size=" << hp.batch_size
      << " learning_rate=" << FormatDouble(hp.learning_rate)
      << " patience=" << hp.patience << " drp_hidden=" << hp.drp_hidden
      << " drp_dropout=" << FormatDouble(hp.drp_dropout)
      << " restarts=" << hp.restarts << " cate_epochs=" << hp.cate_epochs
      << " cate_patience=" << hp.cate_patience
      << " cate_trunk=" << hp.cate_trunk << " cate_head=" << hp.cate_head
      << " forest_trees=" << hp.forest_trees
      << " forest_depth=" << hp.forest_depth
      << " causal_forest_trees=" << hp.causal_forest_trees
      << " ridge_lambda=" << FormatDouble(hp.ridge_lambda)
      << " mc_passes=" << hp.mc_passes
      << " alpha=" << FormatDouble(hp.alpha)
      << " interval_backend=" << hp.interval_backend
      << " predict_batch_size=" << hp.predict_batch_size
      << " predict_threads=" << hp.predict_threads << " seed=" << hp.seed;
  return out.str();
}

StatusOr<Hyperparams> ParseHyperparams(const std::string& line) {
  Hyperparams hp;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed hyperparam token '" + token +
                                     "' (expected key=value)");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    bool parsed;
    if (key == "neural_epochs") {
      parsed = ParseInt(value, &hp.neural_epochs);
    } else if (key == "batch_size") {
      parsed = ParseInt(value, &hp.batch_size);
    } else if (key == "learning_rate") {
      parsed = ParseDouble(value, &hp.learning_rate);
    } else if (key == "patience") {
      parsed = ParseInt(value, &hp.patience);
    } else if (key == "drp_hidden") {
      parsed = ParseInt(value, &hp.drp_hidden);
    } else if (key == "drp_dropout") {
      parsed = ParseDouble(value, &hp.drp_dropout);
    } else if (key == "restarts") {
      parsed = ParseInt(value, &hp.restarts);
    } else if (key == "cate_epochs") {
      parsed = ParseInt(value, &hp.cate_epochs);
    } else if (key == "cate_patience") {
      parsed = ParseInt(value, &hp.cate_patience);
    } else if (key == "cate_trunk") {
      parsed = ParseInt(value, &hp.cate_trunk);
    } else if (key == "cate_head") {
      parsed = ParseInt(value, &hp.cate_head);
    } else if (key == "forest_trees") {
      parsed = ParseInt(value, &hp.forest_trees);
    } else if (key == "forest_depth") {
      parsed = ParseInt(value, &hp.forest_depth);
    } else if (key == "causal_forest_trees") {
      parsed = ParseInt(value, &hp.causal_forest_trees);
    } else if (key == "ridge_lambda") {
      parsed = ParseDouble(value, &hp.ridge_lambda);
    } else if (key == "mc_passes") {
      parsed = ParseInt(value, &hp.mc_passes);
    } else if (key == "alpha") {
      parsed = ParseDouble(value, &hp.alpha);
    } else if (key == "interval_backend") {
      parsed = core::IsIntervalBackendName(value);
      hp.interval_backend = value;
    } else if (key == "predict_batch_size") {
      parsed = ParseInt(value, &hp.predict_batch_size);
    } else if (key == "predict_threads") {
      parsed = ParseInt(value, &hp.predict_threads);
    } else if (key == "seed") {
      parsed = ParseU64(value, &hp.seed);
    } else {
      return Status::InvalidArgument(
          "unknown hyperparam key '" + key +
          "' (artifact written by a newer version?)");
    }
    if (!parsed) {
      return Status::InvalidArgument("bad value for hyperparam '" + key +
                                     "': '" + value + "'");
    }
  }
  return hp;
}

}  // namespace roicl::pipeline
