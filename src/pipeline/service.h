#ifndef ROICL_PIPELINE_SERVICE_H_
#define ROICL_PIPELINE_SERVICE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "nn/batch_forward.h"
#include "pipeline/pipeline.h"

namespace roicl::pipeline {

/// Request-scoped context handed to the on_scored hook: the trace ID
/// minted at Submit (the flow id binding this request's spans across the
/// client and dispatcher thread tracks) plus the stage timings measured
/// for this request. Consumers that export per-request data (the serving
/// monitor, load-replay) carry the trace ID along so every downstream
/// artifact resolves back to one flow in the exported trace.
struct ServeContext {
  uint64_t trace_id = 0;
  uint64_t queue_us = 0;   ///< Submit -> dequeue on the dispatcher.
  uint64_t score_us = 0;   ///< scorer compute for this request.
  bool exemplar = false;   ///< request was exemplar-sampled.
};

/// Deterministic exemplar sampling: a request is sampled iff
/// `MakeCounterRng(seed, trace_id).Uniform() < rate`. Keying the
/// counter-RNG on the trace ID (not on call order or a shared stream)
/// makes the sampled *set* of requests a pure function of (seed, rate,
/// trace IDs) — identical at any thread count or interleaving, which is
/// what lets the exemplar-determinism test assert exact trace IDs.
struct ExemplarSampler {
  uint64_t seed = 0;
  double rate = 0.0;
  bool Sample(uint64_t trace_id) const {
    return rate > 0.0 && MakeCounterRng(seed, trace_id).Uniform() < rate;
  }
};

/// Knobs for a long-lived scoring service.
struct ServiceOptions {
  /// Engine options applied to the pipeline's scorer (row-block size,
  /// thread count for the batched prediction engine). Throughput only.
  nn::BatchOptions engine;
  /// Max requests drained per dispatch cycle (micro-batch bound).
  int max_batch_requests = 32;
  /// Requests queued beyond this are rejected immediately.
  int max_queue = 1024;
  /// Deadline applied to requests that don't carry their own; 0 = none.
  /// A request still queued when its deadline passes fails with
  /// FailedPrecondition instead of occupying the engine.
  int64_t default_deadline_micros = 0;
  /// Exemplar sampling for the serve.stage.* histograms: requests whose
  /// counter-RNG draw lands under `exemplar_rate` attach their trace ID
  /// to the stage latency buckets they land in (see ExemplarSampler).
  uint64_t exemplar_seed = 17;
  double exemplar_rate = 0.05;
  /// Shadow conformal-interval stage: every Nth scored request also runs
  /// ScoreIntervals under serve.stage.conformal_us and publishes the mean
  /// interval width to the serve.interval_width gauge. 0 disables. The
  /// response API is unchanged — this prices the conformal stage and
  /// surfaces width drift without making every request pay for it.
  int shadow_interval_every = 0;
  /// Called on the dispatcher thread after every successfully scored
  /// request, with the request's context (trace ID, stage timings), its
  /// features, and the produced scores. The hook the serving monitor
  /// hangs its drift detector on; it runs inline, so a slow callback
  /// backpressures the queue by design.
  std::function<void(const ServeContext& ctx, const Matrix& x,
                     const std::vector<double>& scores)>
      on_scored;
};

/// Long-lived serving front end: loads a Pipeline once, then serves
/// Score(batch) requests from a single dispatcher thread that drains the
/// queue in micro-batches through the batched prediction engine.
///
/// Each request's matrix is scored independently — never concatenated
/// with other requests — because the MC-dropout RNG streams key on the
/// absolute row index within the scored matrix; concatenation would
/// change the bits for stochastic scorers. Micro-batching still
/// amortizes dispatcher wakeups, and each Score call fans out across the
/// thread pool internally.
///
/// Metrics (obs registry): serve.requests, serve.deadline_exceeded,
/// serve.errors counters; serve.queue_depth gauge; serve.batch_occupancy
/// and serve.latency_micros histograms (p99 via the histogram buckets).
///
/// Observability v2: Submit mints a monotone trace ID per request and,
/// when tracing is enabled, opens a request flow (`"ph":"s"`) on the
/// client thread that the dispatcher steps ('t') and finishes ('f'),
/// stitching queue wait -> batch assembly -> scorer compute -> conformal
/// shadow -> monitor observe into one lane across threads. Per-stage
/// latencies land in serve.stage.{queue,assemble,score,conformal,
/// observe}_us histograms; exemplar-sampled requests (ExemplarSampler)
/// attach their trace ID to the buckets they land in.
class ScoringService {
 public:
  explicit ScoringService(Pipeline pipeline, ServiceOptions options = {});
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Enqueues a scoring request; the future resolves when the dispatcher
  /// has scored it (or rejected it: queue full, deadline exceeded,
  /// dimension mismatch). `deadline_micros` overrides the default; 0
  /// falls back to options.default_deadline_micros.
  std::future<StatusOr<std::vector<double>>> Submit(
      Matrix x, int64_t deadline_micros = 0) ROICL_EXCLUDES(mu_);

  /// Blocking convenience: Submit and wait.
  StatusOr<std::vector<double>> Score(Matrix x,
                                      int64_t deadline_micros = 0);

  const Pipeline& pipeline() const { return pipeline_; }
  uint64_t requests_served() const ROICL_EXCLUDES(mu_);

  /// Atomically swaps the conformal quantile in the live pipeline — the
  /// online-recalibration entry point. Safe against in-flight Submit:
  /// the scorer's q_hat is an atomic loaded once per predict call, so a
  /// concurrent request sees either the old or the new quantile, never a
  /// torn mix. Fails when the scorer carries no conformal quantile.
  Status SetConformalQuantile(double q_hat);

 private:
  struct Request {
    Matrix x;
    uint64_t trace_id = 0;
    uint64_t enqueue_micros = 0;
    int64_t deadline_micros = 0;
    std::promise<StatusOr<std::vector<double>>> promise;
  };

  void Loop() ROICL_EXCLUDES(mu_);

  Pipeline pipeline_;
  ServiceOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> queue_ ROICL_GUARDED_BY(mu_);
  bool stopping_ ROICL_GUARDED_BY(mu_) = false;
  uint64_t served_ ROICL_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> next_trace_id_{1};
  std::thread dispatcher_;
};

}  // namespace roicl::pipeline

#endif  // ROICL_PIPELINE_SERVICE_H_
