#ifndef ROICL_PIPELINE_SCORER_H_
#define ROICL_PIPELINE_SCORER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "core/direct_model.h"
#include "core/interval_backend.h"
#include "metrics/coverage.h"
#include "nn/batch_forward.h"
#include "uplift/roi_model.h"

namespace roicl::pipeline {

/// The polymorphic scoring interface every benchmark method is served
/// through: a point ROI estimate (inherited from uplift::RoiModel), plus
/// two optional capabilities — MC-dropout uncertainty and conformal
/// intervals — and serialization hooks so a fitted scorer can travel
/// inside a Pipeline artifact.
///
/// Capability discovery is explicit (`has_mc_uncertainty()` /
/// `has_intervals()`): callers branch on the capability, never on the
/// concrete type, which is what lets exp/, the CLI and the serving layer
/// dispatch through the registry with no per-family switch chains.
class RoiScorer : public uplift::RoiModel {
 public:
  /// True when ScoreMc is implemented (direct neural models only: TPM
  /// cannot, because the std of a ratio is not the ratio of stds).
  virtual bool has_mc_uncertainty() const { return false; }

  /// MC-dropout mean/std of the predicted ROI over `passes` stochastic
  /// forward passes. Deterministic given `seed` at any engine setting.
  virtual StatusOr<core::McDropoutStats> ScoreMc(const Matrix& /*x*/,
                                                 int /*passes*/,
                                                 uint64_t /*seed*/) const {
    return Status::FailedPrecondition(
        "scorer does not support MC-dropout uncertainty");
  }

  /// True when ScoreIntervals is implemented (conformal methods only).
  virtual bool has_intervals() const { return false; }

  /// Conformal intervals with coverage >= 1 - alpha (rDRP's Eq. 4).
  virtual StatusOr<std::vector<metrics::Interval>> ScoreIntervals(
      const Matrix& /*x*/) const {
    return Status::FailedPrecondition(
        "scorer does not produce conformal intervals");
  }

  /// True when the scorer carries a swappable conformal quantile q_hat
  /// (rDRP). Implies has_intervals().
  virtual bool has_conformal_quantile() const { return false; }

  /// The live conformal quantile (requires has_conformal_quantile()).
  virtual StatusOr<double> conformal_quantile() const {
    return Status::FailedPrecondition(
        "scorer does not carry a conformal quantile");
  }

  /// Atomically swaps the conformal quantile — the online-recalibration
  /// hook. Concurrent Score/ScoreIntervals calls see either the old or
  /// the new value, never a torn mix.
  virtual Status SetConformalQuantile(double /*q_hat*/) {
    return Status::FailedPrecondition(
        "scorer does not carry a conformal quantile");
  }

  /// The Eq. (3) score ingredients on fresh rows: the *uncalibrated*
  /// point estimate roi_hat and the floored MC std r_hat, so a feedback
  /// window can recompute conformal scores |roi* - roi_hat| / r_hat
  /// exactly as calibration did. Requires has_conformal_quantile().
  struct ConformalInputs {
    std::vector<double> roi_hat;
    std::vector<double> r_hat;
  };
  virtual StatusOr<ConformalInputs> ConformalScoreInputs(
      const Matrix& /*x*/) const {
    return Status::FailedPrecondition(
        "scorer does not carry a conformal quantile");
  }

  /// The interval backend shaping this scorer's conformal intervals, or
  /// nullptr for scorers without interval state. Non-null exactly when
  /// the pipeline artifact carries an interval-backend section.
  virtual const core::IntervalBackend* interval_backend() const {
    return nullptr;
  }

  /// Installs a calibrated interval backend (artifact load or rebind).
  /// The live serving quantile is not touched — swapping it stays the
  /// caller's explicit SetConformalQuantile decision.
  virtual Status AdoptIntervalBackend(
      std::unique_ptr<core::IntervalBackend> /*backend*/) {
    return Status::FailedPrecondition(
        "scorer does not carry interval state");
  }

  /// Re-points the batched prediction engine (row-block size, thread
  /// count). Throughput knob only — scores are bit-identical across
  /// settings. Default: no engine to configure (tree/meta families).
  virtual void set_batch_options(const nn::BatchOptions& /*opts*/) {}

  /// Feature dimension the scorer was fitted on, or -1 before Fit/Load.
  virtual int feature_dim() const = 0;

  /// Serializes the fitted model state (no hyperparameters — those live
  /// in the Pipeline manifest). Requires a fitted scorer.
  virtual Status SaveModel(std::ostream& out) const = 0;

  /// Restores state written by SaveModel into this (configured but
  /// unfitted) scorer. Malformed input returns a descriptive Status.
  virtual Status LoadModel(std::istream& in) = 0;
};

}  // namespace roicl::pipeline

#endif  // ROICL_PIPELINE_SCORER_H_
