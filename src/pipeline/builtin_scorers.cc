#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "core/dr_model.h"
#include "core/drp_model.h"
#include "core/rank_net.h"
#include "core/rdrp.h"
#include "pipeline/registry.h"
#include "uplift/causal_forest_cate.h"
#include "uplift/meta_learners.h"
#include "uplift/neural_cate.h"
#include "uplift/tpm.h"

namespace roicl::pipeline {
namespace {

/// TPM family (TPM-SL, TPM-XL, TPM-CF and the four neural CATE variants):
/// a point-only scorer — no MC uncertainty, no intervals, exactly the
/// limitation the paper's ablation isolates.
class TpmScorer : public RoiScorer {
 public:
  TpmScorer(const std::string& display_name,
            uplift::CateModelFactory cate_factory)
      : model_(display_name, std::move(cate_factory)) {}

  void Fit(const RctDataset& train) override { model_.Fit(train); }
  void FitWithCalibration(const RctDataset& train,
                          const RctDataset& calibration) override {
    model_.FitWithCalibration(train, calibration);
  }
  std::vector<double> PredictRoi(const Matrix& x) const override {
    return model_.PredictRoi(x);
  }
  std::string name() const override { return model_.name(); }
  int feature_dim() const override { return model_.feature_dim(); }
  Status SaveModel(std::ostream& out) const override {
    return model_.Save(out);
  }
  Status LoadModel(std::istream& in) override { return model_.Load(in); }

 private:
  uplift::TpmRoiModel model_;
};

/// Direct Rank: direct neural scorer with MC-dropout uncertainty.
class DrScorer : public RoiScorer {
 public:
  explicit DrScorer(const Hyperparams& hp)
      : config_(MakeDrConfig(hp)), model_(config_) {}

  void Fit(const RctDataset& train) override { model_.Fit(train); }
  std::vector<double> PredictRoi(const Matrix& x) const override {
    return model_.PredictRoi(x);
  }
  std::string name() const override { return model_.name(); }
  int feature_dim() const override { return model_.feature_dim(); }

  bool has_mc_uncertainty() const override { return true; }
  StatusOr<core::McDropoutStats> ScoreMc(const Matrix& x, int passes,
                                         uint64_t seed) const override {
    if (!model_.fitted()) {
      return Status::FailedPrecondition("scorer not fitted");
    }
    return model_.PredictMcRoi(x, passes, seed, config_.predict);
  }

  void set_batch_options(const nn::BatchOptions& opts) override {
    config_.predict = opts;
    model_.set_predict_options(opts);
  }

  Status SaveModel(std::ostream& out) const override {
    return model_.Save(out);
  }
  Status LoadModel(std::istream& in) override {
    StatusOr<core::DirectRankModel> loaded =
        core::DirectRankModel::Load(in, config_);
    if (!loaded.ok()) return loaded.status();
    model_ = std::move(loaded).value();
    return Status::Ok();
  }

 private:
  core::DirectRankConfig config_;
  core::DirectRankModel model_;
};

/// DRP: the paper's direct ROI model, with MC-dropout uncertainty.
class DrpScorer : public RoiScorer {
 public:
  explicit DrpScorer(const Hyperparams& hp)
      : config_(MakeDrpConfig(hp)), model_(config_) {}

  void Fit(const RctDataset& train) override { model_.Fit(train); }
  std::vector<double> PredictRoi(const Matrix& x) const override {
    return model_.PredictRoi(x);
  }
  std::string name() const override { return model_.name(); }
  int feature_dim() const override { return model_.feature_dim(); }

  bool has_mc_uncertainty() const override { return true; }
  StatusOr<core::McDropoutStats> ScoreMc(const Matrix& x, int passes,
                                         uint64_t seed) const override {
    if (!model_.fitted()) {
      return Status::FailedPrecondition("scorer not fitted");
    }
    return model_.PredictMcRoi(x, passes, seed, config_.predict);
  }

  void set_batch_options(const nn::BatchOptions& opts) override {
    config_.predict = opts;
    model_.set_predict_options(opts);
  }

  Status SaveModel(std::ostream& out) const override {
    return model_.Save(out);
  }
  Status LoadModel(std::istream& in) override {
    StatusOr<core::DrpModel> loaded = core::DrpModel::Load(in, config_);
    if (!loaded.ok()) return loaded.status();
    model_ = std::move(loaded).value();
    return Status::Ok();
  }

 private:
  core::DrpConfig config_;
  core::DrpModel model_;
};

/// rDRP: the paper's contribution — calibrated points, MC uncertainty AND
/// rigorous conformal intervals.
class RdrpScorer : public RoiScorer {
 public:
  explicit RdrpScorer(const Hyperparams& hp)
      : config_(MakeRdrpConfig(hp)), model_(config_) {}

  void Fit(const RctDataset& train) override { model_.Fit(train); }
  void FitWithCalibration(const RctDataset& train,
                          const RctDataset& calibration) override {
    model_.FitWithCalibration(train, calibration);
  }
  std::vector<double> PredictRoi(const Matrix& x) const override {
    return model_.PredictRoi(x);
  }
  std::string name() const override { return model_.name(); }
  int feature_dim() const override { return model_.feature_dim(); }

  bool has_mc_uncertainty() const override { return true; }
  StatusOr<core::McDropoutStats> ScoreMc(const Matrix& x, int passes,
                                         uint64_t seed) const override {
    if (!model_.drp().fitted()) {
      return Status::FailedPrecondition("scorer not fitted");
    }
    return model_.drp().PredictMcRoi(x, passes, seed,
                                     config_.drp.predict);
  }

  bool has_intervals() const override { return true; }
  StatusOr<std::vector<metrics::Interval>> ScoreIntervals(
      const Matrix& x) const override {
    if (!model_.calibrated()) {
      return Status::FailedPrecondition("scorer not calibrated");
    }
    return model_.PredictIntervals(x);
  }

  bool has_conformal_quantile() const override { return true; }
  StatusOr<double> conformal_quantile() const override {
    if (!model_.calibrated()) {
      return Status::FailedPrecondition("scorer not calibrated");
    }
    return model_.q_hat();
  }
  Status SetConformalQuantile(double q_hat) override {
    if (!model_.calibrated()) {
      return Status::FailedPrecondition("scorer not calibrated");
    }
    if (!std::isfinite(q_hat) || q_hat < 0.0) {
      return Status::InvalidArgument(
          "conformal quantile must be finite and non-negative");
    }
    model_.set_q_hat(q_hat);
    return Status::Ok();
  }
  StatusOr<ConformalInputs> ConformalScoreInputs(
      const Matrix& x) const override {
    if (!model_.calibrated()) {
      return Status::FailedPrecondition("scorer not calibrated");
    }
    ConformalInputs inputs;
    inputs.roi_hat = model_.PredictPointRoi(x);
    inputs.r_hat = model_.PredictMcStd(x);
    return inputs;
  }

  const core::IntervalBackend* interval_backend() const override {
    return model_.interval_backend();
  }
  Status AdoptIntervalBackend(
      std::unique_ptr<core::IntervalBackend> backend) override {
    if (!model_.calibrated()) {
      return Status::FailedPrecondition("scorer not calibrated");
    }
    return model_.AdoptIntervalBackend(std::move(backend));
  }

  void set_batch_options(const nn::BatchOptions& opts) override {
    config_.drp.predict = opts;
    model_.set_predict_options(opts);
  }

  Status SaveModel(std::ostream& out) const override {
    return model_.Save(out);
  }
  Status LoadModel(std::istream& in) override {
    StatusOr<core::RdrpModel> loaded = core::RdrpModel::Load(in, config_);
    if (!loaded.ok()) return loaded.status();
    model_ = std::move(loaded).value();
    return Status::Ok();
  }

 private:
  core::RdrpConfig config_;
  core::RdrpModel model_;
};

/// RankNet: ranking-objective direct scorer (Vanderschueren et al.) with
/// MC-dropout uncertainty — the eleventh Table-I row.
class RankNetScorer : public RoiScorer {
 public:
  explicit RankNetScorer(const Hyperparams& hp)
      : config_(MakeRankNetConfig(hp)), model_(config_) {}

  void Fit(const RctDataset& train) override { model_.Fit(train); }
  std::vector<double> PredictRoi(const Matrix& x) const override {
    return model_.PredictRoi(x);
  }
  std::string name() const override { return model_.name(); }
  int feature_dim() const override { return model_.feature_dim(); }

  bool has_mc_uncertainty() const override { return true; }
  StatusOr<core::McDropoutStats> ScoreMc(const Matrix& x, int passes,
                                         uint64_t seed) const override {
    if (!model_.fitted()) {
      return Status::FailedPrecondition("scorer not fitted");
    }
    return model_.PredictMcRoi(x, passes, seed, config_.predict);
  }

  void set_batch_options(const nn::BatchOptions& opts) override {
    config_.predict = opts;
    model_.set_predict_options(opts);
  }

  Status SaveModel(std::ostream& out) const override {
    return model_.Save(out);
  }
  Status LoadModel(std::istream& in) override {
    StatusOr<core::RankNetModel> loaded =
        core::RankNetModel::Load(in, config_);
    if (!loaded.ok()) return loaded.status();
    model_ = std::move(loaded).value();
    return Status::Ok();
  }

 private:
  core::RankNetConfig config_;
  core::RankNetModel model_;
};

std::unique_ptr<RoiScorer> MakeTpmNeural(const Hyperparams& hp,
                                         uplift::NeuralCateKind kind,
                                         const std::string& name) {
  return std::make_unique<TpmScorer>(
      name, uplift::MakeNeuralCateFactory(kind, MakeNeuralCateConfig(hp)));
}

}  // namespace

namespace internal {

void RegisterBuiltinScorers(ScorerRegistry* registry) {
  // Table-I row order. The check_registry_complete.sh lint greps these
  // Register("...") literals against exp::kTable1MethodNames.
  registry->Register("TPM-SL", [](const Hyperparams& hp) {
    trees::ForestConfig forest = MakeForestConfig(hp);
    return std::make_unique<TpmScorer>("TPM-SL", [forest] {
      return std::make_unique<uplift::SLearner>(
          uplift::MakeForestFactory(forest));
    });
  });
  registry->Register("TPM-XL", [](const Hyperparams& hp) {
    trees::ForestConfig forest = MakeForestConfig(hp);
    return std::make_unique<TpmScorer>("TPM-XL", [forest] {
      return std::make_unique<uplift::XLearner>(
          uplift::MakeForestFactory(forest));
    });
  });
  registry->Register("TPM-CF", [](const Hyperparams& hp) {
    trees::CausalForestConfig cf = MakeCausalForestConfig(hp);
    return std::make_unique<TpmScorer>("TPM-CF", [cf] {
      return std::make_unique<uplift::CausalForestCate>(cf);
    });
  });
  registry->Register("TPM-DragonNet", [](const Hyperparams& hp) {
    return MakeTpmNeural(hp, uplift::NeuralCateKind::kDragonnet,
                         "TPM-DragonNet");
  });
  registry->Register("TPM-TARNet", [](const Hyperparams& hp) {
    return MakeTpmNeural(hp, uplift::NeuralCateKind::kTarnet, "TPM-TARNet");
  });
  registry->Register("TPM-OffsetNet", [](const Hyperparams& hp) {
    return MakeTpmNeural(hp, uplift::NeuralCateKind::kOffsetnet,
                         "TPM-OffsetNet");
  });
  registry->Register("TPM-SNet", [](const Hyperparams& hp) {
    return MakeTpmNeural(hp, uplift::NeuralCateKind::kSnet, "TPM-SNet");
  });
  registry->Register("DR", [](const Hyperparams& hp) {
    return std::make_unique<DrScorer>(hp);
  });
  registry->Register("DRP", [](const Hyperparams& hp) {
    return std::make_unique<DrpScorer>(hp);
  });
  registry->Register("rDRP", [](const Hyperparams& hp) {
    return std::make_unique<RdrpScorer>(hp);
  });
  registry->Register("RankNet", [](const Hyperparams& hp) {
    return std::make_unique<RankNetScorer>(hp);
  });
}

}  // namespace internal
}  // namespace roicl::pipeline
