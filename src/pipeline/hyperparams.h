#ifndef ROICL_PIPELINE_HYPERPARAMS_H_
#define ROICL_PIPELINE_HYPERPARAMS_H_

#include <string>

#include "common/status.h"
#include "core/dr_model.h"
#include "core/drp_model.h"
#include "core/rank_net.h"
#include "core/rdrp.h"
#include "trees/causal_forest.h"
#include "trees/random_forest.h"
#include "uplift/neural_cate.h"

namespace roicl::pipeline {

/// One knob block controlling every registered scorer, so all ten
/// benchmark rows are trained under comparable budgets (the paper keeps
/// DRP/rDRP hyperparameters identical for fairness).
///
/// This struct is the portable half of a Pipeline artifact: it is
/// serialized as a single `k=v` line and must be able to reconstruct the
/// exact per-family configs (including every derived seed) so a loaded
/// model reproduces its training-time predictions bit for bit.
struct Hyperparams {
  // Direct neural models (DRP, DR).
  int neural_epochs = 120;
  int batch_size = 256;
  double learning_rate = 5e-3;
  int patience = 12;
  int drp_hidden = 0;  // auto from data size
  double drp_dropout = 0.2;
  int restarts = 3;

  // Neural CATE baselines (TARNet/DragonNet/OffsetNet/SNet).
  int cate_epochs = 20;
  int cate_patience = 4;
  int cate_trunk = 32;
  int cate_head = 16;

  // Tree ensembles.
  int forest_trees = 30;
  int forest_depth = 6;
  int causal_forest_trees = 40;

  // Meta-learner ridge penalty.
  double ridge_lambda = 1.0;

  // rDRP knobs.
  int mc_passes = 30;
  double alpha = 0.1;
  /// Interval backend for conformal scorers: "split" / "weighted" /
  /// "cqr" (core::kIntervalBackendNames). Ignored by scorers without
  /// interval state.
  std::string interval_backend = "split";

  // Batched prediction-engine knobs (throughput only; never the bits).
  int predict_batch_size = 256;
  int predict_threads = 0;

  uint64_t seed = 1234;
};

/// Derived config helpers. Every scorer family derives its full config —
/// architecture, training budget, and seed offsets — from the one shared
/// block through these, so an artifact that stores `Hyperparams` can
/// rebuild identical models.
core::DrpConfig MakeDrpConfig(const Hyperparams& hp);
core::DirectRankConfig MakeDrConfig(const Hyperparams& hp);
core::RdrpConfig MakeRdrpConfig(const Hyperparams& hp);
core::RankNetConfig MakeRankNetConfig(const Hyperparams& hp);
uplift::NeuralCateConfig MakeNeuralCateConfig(const Hyperparams& hp);
trees::ForestConfig MakeForestConfig(const Hyperparams& hp);
trees::CausalForestConfig MakeCausalForestConfig(const Hyperparams& hp);

/// Renders `hp` as one `key=value key=value ...` line (doubles at full
/// round-trip precision). Keys are emitted in a fixed order.
std::string SerializeHyperparams(const Hyperparams& hp);

/// Parses a line written by SerializeHyperparams. Unknown keys are an
/// error (they signal a newer writer); missing keys keep their defaults,
/// so older artifacts stay loadable when new knobs are added.
StatusOr<Hyperparams> ParseHyperparams(const std::string& line);

}  // namespace roicl::pipeline

#endif  // ROICL_PIPELINE_HYPERPARAMS_H_
