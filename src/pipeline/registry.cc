#include "pipeline/registry.h"

#include <cctype>
#include <utility>

namespace roicl::pipeline {
namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

ScorerRegistry& ScorerRegistry::Global() {
  static ScorerRegistry* registry = [] {
    auto* r = new ScorerRegistry();
    internal::RegisterBuiltinScorers(r);
    return r;
  }();
  return *registry;
}

void ScorerRegistry::Register(const std::string& name,
                              ScorerFactory factory) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back({name, std::move(factory)});
}

bool ScorerRegistry::Has(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

StatusOr<std::string> ScorerRegistry::Resolve(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.name;
  }
  std::string lower = ToLower(name);
  for (const Entry& entry : entries_) {
    if (ToLower(entry.name) == lower) return entry.name;
  }
  std::string known;
  for (const Entry& entry : entries_) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  return Status::NotFound("unknown method '" + name +
                          "'; registered methods: " + known);
}

StatusOr<std::unique_ptr<RoiScorer>> ScorerRegistry::Create(
    const std::string& name, const Hyperparams& hp) const {
  StatusOr<std::string> resolved = Resolve(name);
  if (!resolved.ok()) return resolved.status();
  for (const Entry& entry : entries_) {
    if (entry.name == resolved.value()) return entry.factory(hp);
  }
  return Status::Internal("registry entry vanished for '" + name + "'");
}

std::vector<std::string> ScorerRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

}  // namespace roicl::pipeline
