#include "exp/setting.h"

namespace roicl::exp {

const std::vector<Setting>& AllSettings() {
  static const std::vector<Setting>& settings = *new std::vector<Setting>{
      Setting::kSuNo, Setting::kSuCo, Setting::kInNo, Setting::kInCo};
  return settings;
}

std::string SettingName(Setting setting) {
  switch (setting) {
    case Setting::kSuNo:
      return "SuNo";
    case Setting::kSuCo:
      return "SuCo";
    case Setting::kInNo:
      return "InNo";
    case Setting::kInCo:
      return "InCo";
  }
  return "?";
}

bool IsSufficient(Setting setting) {
  return setting == Setting::kSuNo || setting == Setting::kSuCo;
}

bool HasCovariateShift(Setting setting) {
  return setting == Setting::kSuCo || setting == Setting::kInCo;
}

}  // namespace roicl::exp
