#include "exp/datasets.h"

#include "common/macros.h"
#include "data/split.h"

namespace roicl::exp {

const std::vector<DatasetId>& AllDatasets() {
  static const std::vector<DatasetId>& ids = *new std::vector<DatasetId>{
      DatasetId::kCriteo, DatasetId::kMeituan, DatasetId::kAlibaba};
  return ids;
}

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCriteo:
      return "CRITEO-UPLIFT v2";
    case DatasetId::kMeituan:
      return "Meituan-LIFT";
    case DatasetId::kAlibaba:
      return "Alibaba-LIFT";
  }
  return "?";
}

synth::SyntheticGenerator MakeGenerator(DatasetId id) {
  switch (id) {
    case DatasetId::kCriteo:
      return synth::SyntheticGenerator(synth::CriteoSynthConfig());
    case DatasetId::kMeituan:
      return synth::SyntheticGenerator(synth::MeituanSynthConfig());
    case DatasetId::kAlibaba:
      return synth::SyntheticGenerator(synth::AlibabaSynthConfig());
  }
  ROICL_CHECK_MSG(false, "unknown DatasetId");
  return synth::SyntheticGenerator(synth::CriteoSynthConfig());
}

DatasetSplits BuildSplits(const synth::SyntheticGenerator& generator,
                          Setting setting, const SplitSizes& sizes,
                          uint64_t seed) {
  ROICL_CHECK(sizes.train_sufficient > 0);
  ROICL_CHECK(sizes.insufficient_rate > 0.0 &&
              sizes.insufficient_rate <= 1.0);
  Rng rng(seed, /*stream=*/43);
  bool shifted = HasCovariateShift(setting);

  DatasetSplits splits;
  Rng train_rng = rng.Split();
  splits.train =
      generator.Generate(sizes.train_sufficient, /*shifted=*/false,
                         &train_rng);
  if (!IsSufficient(setting)) {
    Rng sub_rng = rng.Split();
    splits.train = Subsample(splits.train, sizes.insufficient_rate,
                             &sub_rng);
  } else {
    rng.Split();  // keep RNG alignment across settings
  }
  Rng calib_rng = rng.Split();
  splits.calibration = generator.Generate(sizes.calibration, shifted,
                                          &calib_rng);
  Rng test_rng = rng.Split();
  splits.test = generator.Generate(sizes.test, shifted, &test_rng);
  return splits;
}

}  // namespace roicl::exp
