#ifndef ROICL_EXP_DATASETS_H_
#define ROICL_EXP_DATASETS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "exp/setting.h"
#include "synth/synthetic_generator.h"

namespace roicl::exp {

/// The three public datasets of §V-A (synthetic stand-ins; see DESIGN.md
/// substitution table).
enum class DatasetId {
  kCriteo,
  kMeituan,
  kAlibaba,
};

const std::vector<DatasetId>& AllDatasets();
std::string DatasetName(DatasetId id);

/// Generator preset for a dataset id.
synth::SyntheticGenerator MakeGenerator(DatasetId id);

/// Sample-size knobs for building experiment splits.
struct SplitSizes {
  int train_sufficient = 12000;
  /// The paper subsamples the sufficient set at rate 0.15 for the
  /// "Insufficient" settings.
  double insufficient_rate = 0.15;
  int calibration = 3000;
  int test = 6000;
};

/// Builds the train/calibration/test triplet for one (dataset, setting):
/// training data always comes from the unshifted mixture; the calibration
/// and test sets come from the shifted mixture iff the setting has
/// covariate shift; insufficient settings subsample the training set at
/// `insufficient_rate` (treatment-stratified).
DatasetSplits BuildSplits(const synth::SyntheticGenerator& generator,
                          Setting setting, const SplitSizes& sizes,
                          uint64_t seed);

}  // namespace roicl::exp

#endif  // ROICL_EXP_DATASETS_H_
