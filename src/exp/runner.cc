#include "exp/runner.h"

#include <chrono>

#include "common/macros.h"
#include "metrics/cost_curve.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::exp {

double EvaluateMethodOnSplits(uplift::RoiModel* model,
                              const DatasetSplits& splits) {
  ROICL_CHECK(model != nullptr);
  model->FitWithCalibration(splits.train, splits.calibration);
  auto predict_start = std::chrono::steady_clock::now();
  std::vector<double> scores = model->PredictRoi(splits.test.x);
  double predict_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    predict_start)
          .count();
  if (predict_seconds > 0.0) {
    obs::MetricsRegistry::Global()
        .GetGauge("exp.predict_samples_per_sec")
        ->Set(static_cast<double>(splits.test.n()) / predict_seconds);
  }
  return metrics::Aucc(scores, splits.test);
}

std::vector<OfflineCell> RunSetting(DatasetId dataset, Setting setting,
                                    const std::vector<MethodSpec>& methods,
                                    const SplitSizes& sizes, uint64_t seed,
                                    bool verbose) {
  obs::ScopedSpan setting_span(
      "exp.setting", DatasetName(dataset) + "/" + SettingName(setting));
  synth::SyntheticGenerator generator = MakeGenerator(dataset);
  DatasetSplits splits = BuildSplits(generator, setting, sizes, seed);

  std::vector<OfflineCell> cells;
  cells.reserve(methods.size());
  for (const MethodSpec& spec : methods) {
    obs::ScopedSpan method_span("exp.method", spec.name);
    auto start = std::chrono::steady_clock::now();
    std::unique_ptr<uplift::RoiModel> model = spec.factory();
    double aucc = EvaluateMethodOnSplits(model.get(), splits);
    auto end = std::chrono::steady_clock::now();
    OfflineCell cell;
    cell.method = spec.name;
    cell.dataset = dataset;
    cell.setting = setting;
    cell.aucc = aucc;
    cell.seconds = std::chrono::duration<double>(end - start).count();
    cells.push_back(cell);
    if (verbose) {
      obs::Info("method evaluated", {{"dataset", DatasetName(dataset)},
                                     {"setting", SettingName(setting)},
                                     {"method", spec.name},
                                     {"aucc", aucc},
                                     {"seconds", cell.seconds}});
    }
  }
  return cells;
}

std::vector<OfflineCell> RunOfflineSweep(
    const std::vector<MethodSpec>& methods, const SplitSizes& sizes,
    uint64_t seed, bool verbose) {
  std::vector<OfflineCell> all;
  for (DatasetId dataset : AllDatasets()) {
    for (Setting setting : AllSettings()) {
      std::vector<OfflineCell> cells =
          RunSetting(dataset, setting, methods, sizes, seed, verbose);
      all.insert(all.end(), cells.begin(), cells.end());
    }
  }
  return all;
}

}  // namespace roicl::exp
