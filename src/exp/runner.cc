#include "exp/runner.h"

#include "common/macros.h"
#include "metrics/cost_curve.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::exp {

double EvaluateMethodOnSplits(uplift::RoiModel* model,
                              const DatasetSplits& splits) {
  ROICL_CHECK(model != nullptr);
  model->FitWithCalibration(splits.train, splits.calibration);
  uint64_t predict_start_us = obs::MonotonicMicros();
  std::vector<double> scores = model->PredictRoi(splits.test.x);
  double predict_seconds =
      static_cast<double>(obs::MonotonicMicros() - predict_start_us) * 1e-6;
  if (predict_seconds > 0.0) {
    obs::MetricsRegistry::Global()
        .GetGauge("exp.predict_samples_per_sec")
        ->Set(static_cast<double>(splits.test.n()) / predict_seconds);
  }
  return metrics::Aucc(scores, splits.test);
}

std::vector<OfflineCell> RunSetting(DatasetId dataset, Setting setting,
                                    const std::vector<MethodSpec>& methods,
                                    const SplitSizes& sizes, uint64_t seed,
                                    bool verbose) {
  obs::ScopedSpan setting_span(
      "exp.setting", DatasetName(dataset) + "/" + SettingName(setting));
  synth::SyntheticGenerator generator = MakeGenerator(dataset);
  DatasetSplits splits = BuildSplits(generator, setting, sizes, seed);

  std::vector<OfflineCell> cells;
  cells.reserve(methods.size());
  for (const MethodSpec& spec : methods) {
    obs::ScopedSpan method_span("exp.method", spec.name);
    uint64_t start_us = obs::MonotonicMicros();
    std::unique_ptr<uplift::RoiModel> model = spec.factory();
    double aucc = EvaluateMethodOnSplits(model.get(), splits);
    uint64_t end_us = obs::MonotonicMicros();
    OfflineCell cell;
    cell.method = spec.name;
    cell.dataset = dataset;
    cell.setting = setting;
    cell.aucc = aucc;
    cell.seconds = static_cast<double>(end_us - start_us) * 1e-6;
    cells.push_back(cell);
    if (verbose) {
      obs::Info("method evaluated", {{"dataset", DatasetName(dataset)},
                                     {"setting", SettingName(setting)},
                                     {"method", spec.name},
                                     {"aucc", aucc},
                                     {"seconds", cell.seconds}});
    }
  }
  return cells;
}

std::vector<OfflineCell> RunOfflineSweep(
    const std::vector<MethodSpec>& methods, const SplitSizes& sizes,
    uint64_t seed, bool verbose) {
  std::vector<OfflineCell> all;
  for (DatasetId dataset : AllDatasets()) {
    for (Setting setting : AllSettings()) {
      std::vector<OfflineCell> cells =
          RunSetting(dataset, setting, methods, sizes, seed, verbose);
      all.insert(all.end(), cells.begin(), cells.end());
    }
  }
  return all;
}

}  // namespace roicl::exp
