#ifndef ROICL_EXP_METHODS_H_
#define ROICL_EXP_METHODS_H_

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/hyperparams.h"
#include "pipeline/registry.h"
#include "uplift/neural_cate.h"
#include "uplift/roi_model.h"

namespace roicl::exp {

/// A named benchmark method (one row of Table I).
struct MethodSpec {
  std::string name;
  std::function<std::unique_ptr<uplift::RoiModel>()> factory;
};

/// The shared hyperparam block now lives in the pipeline layer (it is
/// half of every saved artifact); exp keeps the historical names as
/// aliases so experiment and bench code reads unchanged.
using MethodHyperparams = pipeline::Hyperparams;

inline core::DrpConfig MakeDrpConfig(const MethodHyperparams& hp) {
  return pipeline::MakeDrpConfig(hp);
}
inline core::DirectRankConfig MakeDrConfig(const MethodHyperparams& hp) {
  return pipeline::MakeDrConfig(hp);
}
inline core::RdrpConfig MakeRdrpConfig(const MethodHyperparams& hp) {
  return pipeline::MakeRdrpConfig(hp);
}
inline uplift::NeuralCateConfig MakeNeuralCateConfig(
    const MethodHyperparams& hp) {
  return pipeline::MakeNeuralCateConfig(hp);
}
inline trees::ForestConfig MakeForestConfig(const MethodHyperparams& hp) {
  return pipeline::MakeForestConfig(hp);
}
inline trees::CausalForestConfig MakeCausalForestConfig(
    const MethodHyperparams& hp) {
  return pipeline::MakeCausalForestConfig(hp);
}

/// The ten Table-I method names in the paper's row order, plus the
/// ranking-objective extension row (RankNet, per "Metalearners for
/// Ranking Treatment Effects"). This array is the single source of truth
/// the registry-completeness lint greps: every entry must resolve through
/// pipeline::ScorerRegistry.
inline constexpr std::array<const char*, 11> kTable1MethodNames = {
    "TPM-SL",     "TPM-XL",        "TPM-CF", "TPM-DragonNet",
    "TPM-TARNet", "TPM-OffsetNet", "TPM-SNet", "DR",
    "DRP",        "rDRP",          "RankNet"};

/// One MethodSpec whose factory builds `name` through the global scorer
/// registry. CHECK-fails on an unregistered name (benchmark tables are
/// static; user-facing lookups go through the registry's StatusOr API).
MethodSpec RegistryMethod(const std::string& name,
                          const MethodHyperparams& hp);

/// The ten Table-I methods in the paper's row order, all dispatched
/// through the registry.
std::vector<MethodSpec> Table1Methods(const MethodHyperparams& hp);

/// Individual factories (used by the ablation and A/B benches). All are
/// registry lookups — no per-family construction chains live here.
MethodSpec TpmSlMethod(const MethodHyperparams& hp);
MethodSpec TpmXlMethod(const MethodHyperparams& hp);
MethodSpec TpmCfMethod(const MethodHyperparams& hp);
MethodSpec TpmNeuralMethod(const MethodHyperparams& hp,
                           uplift::NeuralCateKind kind,
                           const std::string& name);
MethodSpec DrMethod(const MethodHyperparams& hp);
MethodSpec DrpMethod(const MethodHyperparams& hp);
MethodSpec RdrpMethod(const MethodHyperparams& hp);
MethodSpec RankNetMethod(const MethodHyperparams& hp);

}  // namespace roicl::exp

#endif  // ROICL_EXP_METHODS_H_
