#ifndef ROICL_EXP_METHODS_H_
#define ROICL_EXP_METHODS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dr_model.h"
#include "core/drp_model.h"
#include "core/rdrp.h"
#include "trees/causal_forest.h"
#include "trees/random_forest.h"
#include "uplift/neural_cate.h"
#include "uplift/roi_model.h"

namespace roicl::exp {

/// A named benchmark method (one row of Table I).
struct MethodSpec {
  std::string name;
  std::function<std::unique_ptr<uplift::RoiModel>()> factory;
};

/// One knob block controlling every method, so all ten benchmark rows are
/// trained under comparable budgets (the paper keeps DRP/rDRP
/// hyperparameters identical for fairness).
struct MethodHyperparams {
  // Direct neural models (DRP, DR).
  int neural_epochs = 120;
  int batch_size = 256;
  double learning_rate = 5e-3;
  int patience = 12;
  int drp_hidden = 0;  // auto from data size
  double drp_dropout = 0.2;

  // Neural CATE baselines (TARNet/DragonNet/OffsetNet/SNet).
  int cate_epochs = 20;
  int cate_patience = 4;
  int cate_trunk = 32;
  int cate_head = 16;

  // Tree ensembles.
  int forest_trees = 30;
  int forest_depth = 6;
  int causal_forest_trees = 40;

  // Meta-learner ridge penalty.
  double ridge_lambda = 1.0;

  // rDRP knobs.
  int mc_passes = 30;
  double alpha = 0.1;

  uint64_t seed = 1234;
};

/// Derived config helpers.
core::DrpConfig MakeDrpConfig(const MethodHyperparams& hp);
core::DirectRankConfig MakeDrConfig(const MethodHyperparams& hp);
core::RdrpConfig MakeRdrpConfig(const MethodHyperparams& hp);
uplift::NeuralCateConfig MakeNeuralCateConfig(const MethodHyperparams& hp);
trees::ForestConfig MakeForestConfig(const MethodHyperparams& hp);
trees::CausalForestConfig MakeCausalForestConfig(
    const MethodHyperparams& hp);

/// The ten Table-I methods in the paper's row order:
/// TPM-SL, TPM-XL, TPM-CF, TPM-DragonNet, TPM-TARNet, TPM-OffsetNet,
/// TPM-SNet, DR, DRP, rDRP.
std::vector<MethodSpec> Table1Methods(const MethodHyperparams& hp);

/// Individual factories (used by the ablation and A/B benches).
MethodSpec TpmSlMethod(const MethodHyperparams& hp);
MethodSpec TpmXlMethod(const MethodHyperparams& hp);
MethodSpec TpmCfMethod(const MethodHyperparams& hp);
MethodSpec TpmNeuralMethod(const MethodHyperparams& hp,
                           uplift::NeuralCateKind kind,
                           const std::string& name);
MethodSpec DrMethod(const MethodHyperparams& hp);
MethodSpec DrpMethod(const MethodHyperparams& hp);
MethodSpec RdrpMethod(const MethodHyperparams& hp);

}  // namespace roicl::exp

#endif  // ROICL_EXP_METHODS_H_
