#ifndef ROICL_EXP_ABLATION_H_
#define ROICL_EXP_ABLATION_H_

#include <string>
#include <vector>

#include "exp/datasets.h"
#include "exp/methods.h"
#include "exp/setting.h"

namespace roicl::exp {

/// One ablation row: AUCC of each Table-II variant in one
/// (dataset, setting). The five variants, in the paper's row order.
struct AblationRow {
  DatasetId dataset;
  Setting setting;
  double dr = 0.0;            ///< DR
  double dr_mc = 0.0;         ///< DR w/ MC
  double drp = 0.0;           ///< DRP
  double drp_mc = 0.0;        ///< DRP w/ MC
  double drp_mc_cp = 0.0;     ///< DRP w/ MC w/ CP (= rDRP)
};

/// Runs the Table-II ablation for one (dataset, setting).
///
/// Each base network (DR, DRP) is trained ONCE and shared by its
/// variants; the MC statistics on calibration and test sets are likewise
/// computed once — so the ablation isolates the post-processing
/// contribution of MC and CP exactly, with no retraining noise, matching
/// the paper's "rDRP = DRP w/ MC w/ CP" identity by construction.
AblationRow RunAblationSetting(DatasetId dataset, Setting setting,
                               const MethodHyperparams& hp,
                               const SplitSizes& sizes, uint64_t seed);

/// Full Table-II sweep over datasets and settings.
std::vector<AblationRow> RunAblationSweep(const MethodHyperparams& hp,
                                          const SplitSizes& sizes,
                                          uint64_t seed,
                                          bool verbose = false);

}  // namespace roicl::exp

#endif  // ROICL_EXP_ABLATION_H_
