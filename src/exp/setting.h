#ifndef ROICL_EXP_SETTING_H_
#define ROICL_EXP_SETTING_H_

#include <string>
#include <vector>

namespace roicl::exp {

/// The four evaluation settings of §V-A, crossing data volume with
/// deployment-time covariate shift.
enum class Setting {
  kSuNo,  ///< Sufficient data, No covariate shift.
  kSuCo,  ///< Sufficient data, Covariate shift.
  kInNo,  ///< Insufficient data, No covariate shift.
  kInCo,  ///< Insufficient data, Covariate shift.
};

/// All four settings in the paper's table order.
const std::vector<Setting>& AllSettings();

/// "SuNo", "SuCo", "InNo", "InCo".
std::string SettingName(Setting setting);

/// True for kSuNo and kSuCo.
bool IsSufficient(Setting setting);

/// True for kSuCo and kInCo: the calibration and test sets are drawn from
/// the shifted mixture (the training distribution is never altered, per
/// the paper's protocol).
bool HasCovariateShift(Setting setting);

}  // namespace roicl::exp

#endif  // ROICL_EXP_SETTING_H_
