#include "exp/ablation.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/macros.h"
#include "core/calibration.h"
#include "core/conformal.h"
#include "core/roi_star.h"
#include "exp/methods.h"
#include "metrics/cost_curve.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "pipeline/registry.h"

namespace roicl::exp {
namespace {

/// Builds a named scorer through the registry; the ablation table is
/// static, so a missing registration is a programming error.
std::unique_ptr<pipeline::RoiScorer> CreateScorer(
    const std::string& name, const MethodHyperparams& hp) {
  StatusOr<std::unique_ptr<pipeline::RoiScorer>> scorer =
      pipeline::ScorerRegistry::Global().Create(name, hp);
  ROICL_CHECK_MSG(scorer.ok(), "scorer '%s' unavailable: %s", name.c_str(),
                  scorer.status().message().c_str());
  return std::move(scorer).value();
}

/// MC-form calibration shared by the "w/ MC" and "w/ MC w/ CP" variants:
/// select the best Eq. 5a-5c form on the calibration set with the given
/// q_hat, then apply it to the test set.
double EvaluateCalibrated(const std::vector<double>& roi_calib,
                          const std::vector<double>& std_calib,
                          const std::vector<double>& roi_test,
                          const std::vector<double>& std_test, double q_hat,
                          const RctDataset& calib, const RctDataset& test,
                          double std_floor) {
  std::vector<double> rq_calib(std_calib.size());
  std::vector<double> rq_test(std_test.size());
  for (size_t i = 0; i < std_calib.size(); ++i) {
    rq_calib[i] = std::max(std_calib[i], std_floor) * q_hat;
  }
  for (size_t i = 0; i < std_test.size(); ++i) {
    rq_test[i] = std::max(std_test[i], std_floor) * q_hat;
  }
  core::CalibrationForm form =
      core::SelectCalibrationForm(roi_calib, rq_calib, calib);
  return metrics::Aucc(core::ApplyCalibrationForm(form, roi_test, rq_test),
                       test);
}

}  // namespace

AblationRow RunAblationSetting(DatasetId dataset, Setting setting,
                               const MethodHyperparams& hp,
                               const SplitSizes& sizes, uint64_t seed) {
  obs::ScopedSpan span("exp.ablation_setting",
                       DatasetName(dataset) + "/" + SettingName(setting));
  synth::SyntheticGenerator generator = MakeGenerator(dataset);
  DatasetSplits splits = BuildSplits(generator, setting, sizes, seed);
  const RctDataset& calib = splits.calibration;
  const RctDataset& test = splits.test;
  constexpr double kStdFloor = 1e-4;

  AblationRow row;
  row.dataset = dataset;
  row.setting = setting;

  // ---- DR branch: train once, reuse for DR and DR w/ MC. ----
  std::unique_ptr<pipeline::RoiScorer> dr = CreateScorer("DR", hp);
  dr->Fit(splits.train);
  std::vector<double> dr_test = dr->PredictRoi(test.x);
  row.dr = metrics::Aucc(dr_test, test);
  {
    std::vector<double> dr_calib = dr->PredictRoi(calib.x);
    core::McDropoutStats mc_calib =
        dr->ScoreMc(calib.x, hp.mc_passes, hp.seed + 11).value();
    core::McDropoutStats mc_test =
        dr->ScoreMc(test.x, hp.mc_passes, hp.seed + 12).value();
    // q_hat = 1: MC only, no conformal scaling (DR's non-convex loss
    // rules out the Algorithm-2 convergence point, per §V-B).
    row.dr_mc = EvaluateCalibrated(dr_calib, mc_calib.stddev, dr_test,
                                   mc_test.stddev, /*q_hat=*/1.0, calib,
                                   test, kStdFloor);
  }

  // ---- DRP branch: train once, reuse for DRP, w/ MC, w/ MC w/ CP. ----
  std::unique_ptr<pipeline::RoiScorer> drp = CreateScorer("DRP", hp);
  drp->Fit(splits.train);
  std::vector<double> drp_test = drp->PredictRoi(test.x);
  row.drp = metrics::Aucc(drp_test, test);

  std::vector<double> drp_calib = drp->PredictRoi(calib.x);
  core::McDropoutStats mc_calib =
      drp->ScoreMc(calib.x, hp.mc_passes, hp.seed + 13).value();
  core::McDropoutStats mc_test =
      drp->ScoreMc(test.x, hp.mc_passes, hp.seed + 14).value();

  row.drp_mc = EvaluateCalibrated(drp_calib, mc_calib.stddev, drp_test,
                                  mc_test.stddev, /*q_hat=*/1.0, calib,
                                  test, kStdFloor);

  // Conformal quantile from the calibration set (Algorithms 2 + 3).
  double roi_star = core::BinarySearchRoiStar(calib);
  std::vector<double> scores =
      core::ConformalScores(roi_star, drp_calib, mc_calib.stddev, kStdFloor);
  double q_hat = core::ConformalScoreQuantile(scores, hp.alpha);
  if (!std::isfinite(q_hat)) {
    q_hat = *std::max_element(scores.begin(), scores.end());
  }
  row.drp_mc_cp = EvaluateCalibrated(drp_calib, mc_calib.stddev, drp_test,
                                     mc_test.stddev, q_hat, calib, test,
                                     kStdFloor);
  return row;
}

std::vector<AblationRow> RunAblationSweep(const MethodHyperparams& hp,
                                          const SplitSizes& sizes,
                                          uint64_t seed, bool verbose) {
  std::vector<AblationRow> rows;
  for (DatasetId dataset : AllDatasets()) {
    for (Setting setting : AllSettings()) {
      rows.push_back(
          RunAblationSetting(dataset, setting, hp, sizes, seed));
      if (verbose) {
        const AblationRow& r = rows.back();
        obs::Info("ablation setting done",
                  {{"dataset", DatasetName(dataset)},
                   {"setting", SettingName(setting)},
                   {"dr", r.dr},
                   {"dr_mc", r.dr_mc},
                   {"drp", r.drp},
                   {"drp_mc", r.drp_mc},
                   {"drp_mc_cp", r.drp_mc_cp}});
      }
    }
  }
  return rows;
}

}  // namespace roicl::exp
