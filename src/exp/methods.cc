#include "exp/methods.h"

#include "common/macros.h"

namespace roicl::exp {

MethodSpec RegistryMethod(const std::string& name,
                          const MethodHyperparams& hp) {
  pipeline::ScorerRegistry& registry = pipeline::ScorerRegistry::Global();
  StatusOr<std::string> resolved = registry.Resolve(name);
  ROICL_CHECK_MSG(resolved.ok(), "unregistered method '%s': %s",
                  name.c_str(), resolved.status().message().c_str());
  std::string canonical = resolved.value();
  return {canonical, [canonical, hp]() -> std::unique_ptr<uplift::RoiModel> {
            StatusOr<std::unique_ptr<pipeline::RoiScorer>> scorer =
                pipeline::ScorerRegistry::Global().Create(canonical, hp);
            ROICL_CHECK_MSG(scorer.ok(), "scorer construction failed: %s",
                            scorer.status().message().c_str());
            return std::move(scorer).value();
          }};
}

std::vector<MethodSpec> Table1Methods(const MethodHyperparams& hp) {
  std::vector<MethodSpec> methods;
  methods.reserve(kTable1MethodNames.size());
  for (const char* name : kTable1MethodNames) {
    methods.push_back(RegistryMethod(name, hp));
  }
  return methods;
}

MethodSpec TpmSlMethod(const MethodHyperparams& hp) {
  return RegistryMethod("TPM-SL", hp);
}

MethodSpec TpmXlMethod(const MethodHyperparams& hp) {
  return RegistryMethod("TPM-XL", hp);
}

MethodSpec TpmCfMethod(const MethodHyperparams& hp) {
  return RegistryMethod("TPM-CF", hp);
}

MethodSpec TpmNeuralMethod(const MethodHyperparams& hp,
                           uplift::NeuralCateKind /*kind*/,
                           const std::string& name) {
  return RegistryMethod(name, hp);
}

MethodSpec DrMethod(const MethodHyperparams& hp) {
  return RegistryMethod("DR", hp);
}

MethodSpec DrpMethod(const MethodHyperparams& hp) {
  return RegistryMethod("DRP", hp);
}

MethodSpec RdrpMethod(const MethodHyperparams& hp) {
  return RegistryMethod("rDRP", hp);
}

MethodSpec RankNetMethod(const MethodHyperparams& hp) {
  return RegistryMethod("RankNet", hp);
}

}  // namespace roicl::exp
