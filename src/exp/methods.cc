#include "exp/methods.h"

#include "uplift/causal_forest_cate.h"
#include "uplift/meta_learners.h"
#include "uplift/tpm.h"

namespace roicl::exp {

core::DrpConfig MakeDrpConfig(const MethodHyperparams& hp) {
  core::DrpConfig config;
  config.hidden_units = hp.drp_hidden;
  config.dropout = hp.drp_dropout;
  config.train.epochs = hp.neural_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.patience;
  config.train.seed = hp.seed;
  config.seed = hp.seed + 1;
  return config;
}

core::DirectRankConfig MakeDrConfig(const MethodHyperparams& hp) {
  core::DirectRankConfig config;
  config.hidden_units = hp.drp_hidden;
  config.dropout = hp.drp_dropout;
  config.train.epochs = hp.neural_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.patience;
  config.train.seed = hp.seed;
  config.seed = hp.seed + 2;
  return config;
}

core::RdrpConfig MakeRdrpConfig(const MethodHyperparams& hp) {
  core::RdrpConfig config;
  config.drp = MakeDrpConfig(hp);  // identical DRP for fair comparison
  config.mc_passes = hp.mc_passes;
  config.alpha = hp.alpha;
  config.mc_seed = hp.seed + 3;
  return config;
}

uplift::NeuralCateConfig MakeNeuralCateConfig(const MethodHyperparams& hp) {
  uplift::NeuralCateConfig config;
  config.trunk_hidden = {hp.cate_trunk};
  config.head_hidden = {hp.cate_head};
  config.dropout = 0.1;
  config.train.epochs = hp.cate_epochs;
  config.train.batch_size = hp.batch_size;
  config.train.learning_rate = hp.learning_rate;
  config.train.patience = hp.cate_patience;
  config.train.seed = hp.seed + 4;
  config.seed = hp.seed + 5;
  return config;
}

trees::ForestConfig MakeForestConfig(const MethodHyperparams& hp) {
  trees::ForestConfig config;
  config.num_trees = hp.forest_trees;
  config.tree.max_depth = hp.forest_depth;
  config.seed = hp.seed + 6;
  return config;
}

trees::CausalForestConfig MakeCausalForestConfig(
    const MethodHyperparams& hp) {
  trees::CausalForestConfig config;
  config.num_trees = hp.causal_forest_trees;
  config.tree.max_depth = hp.forest_depth;
  config.seed = hp.seed + 7;
  return config;
}

MethodSpec TpmSlMethod(const MethodHyperparams& hp) {
  trees::ForestConfig forest = MakeForestConfig(hp);
  return {"TPM-SL", [forest] {
            return std::make_unique<uplift::TpmRoiModel>(
                "TPM-SL", [forest] {
                  return std::make_unique<uplift::SLearner>(
                      uplift::MakeForestFactory(forest));
                });
          }};
}

MethodSpec TpmXlMethod(const MethodHyperparams& hp) {
  trees::ForestConfig forest = MakeForestConfig(hp);
  return {"TPM-XL", [forest] {
            return std::make_unique<uplift::TpmRoiModel>(
                "TPM-XL", [forest] {
                  return std::make_unique<uplift::XLearner>(
                      uplift::MakeForestFactory(forest));
                });
          }};
}

MethodSpec TpmCfMethod(const MethodHyperparams& hp) {
  trees::CausalForestConfig cf = MakeCausalForestConfig(hp);
  return {"TPM-CF", [cf] {
            return std::make_unique<uplift::TpmRoiModel>("TPM-CF", [cf] {
              return std::make_unique<uplift::CausalForestCate>(cf);
            });
          }};
}

MethodSpec TpmNeuralMethod(const MethodHyperparams& hp,
                           uplift::NeuralCateKind kind,
                           const std::string& name) {
  uplift::NeuralCateConfig config = MakeNeuralCateConfig(hp);
  return {name, [name, kind, config] {
            return std::make_unique<uplift::TpmRoiModel>(
                name, uplift::MakeNeuralCateFactory(kind, config));
          }};
}

MethodSpec DrMethod(const MethodHyperparams& hp) {
  core::DirectRankConfig config = MakeDrConfig(hp);
  return {"DR", [config] {
            return std::make_unique<core::DirectRankModel>(config);
          }};
}

MethodSpec DrpMethod(const MethodHyperparams& hp) {
  core::DrpConfig config = MakeDrpConfig(hp);
  return {"DRP",
          [config] { return std::make_unique<core::DrpModel>(config); }};
}

MethodSpec RdrpMethod(const MethodHyperparams& hp) {
  core::RdrpConfig config = MakeRdrpConfig(hp);
  return {"rDRP",
          [config] { return std::make_unique<core::RdrpModel>(config); }};
}

std::vector<MethodSpec> Table1Methods(const MethodHyperparams& hp) {
  std::vector<MethodSpec> methods;
  methods.push_back(TpmSlMethod(hp));
  methods.push_back(TpmXlMethod(hp));
  methods.push_back(TpmCfMethod(hp));
  methods.push_back(TpmNeuralMethod(hp, uplift::NeuralCateKind::kDragonnet,
                                    "TPM-DragonNet"));
  methods.push_back(TpmNeuralMethod(hp, uplift::NeuralCateKind::kTarnet,
                                    "TPM-TARNet"));
  methods.push_back(TpmNeuralMethod(hp, uplift::NeuralCateKind::kOffsetnet,
                                    "TPM-OffsetNet"));
  methods.push_back(
      TpmNeuralMethod(hp, uplift::NeuralCateKind::kSnet, "TPM-SNet"));
  methods.push_back(DrMethod(hp));
  methods.push_back(DrpMethod(hp));
  methods.push_back(RdrpMethod(hp));
  return methods;
}

}  // namespace roicl::exp
