#ifndef ROICL_EXP_TABLE_H_
#define ROICL_EXP_TABLE_H_

#include <string>
#include <vector>

namespace roicl::exp {

/// Minimal fixed-width text/markdown table builder used by the bench
/// binaries to print paper-style tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with the paper's 4-decimal convention.
  static std::string Num(double value, int precision = 4);

  /// Renders as a markdown pipe table with aligned columns.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace roicl::exp

#endif  // ROICL_EXP_TABLE_H_
