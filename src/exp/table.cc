#include "exp/table.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace roicl::exp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ROICL_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  ROICL_CHECK_MSG(row.size() == header_.size(),
                  "row width %zu != header width %zu", row.size(),
                  header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
             " |";
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  out += "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace roicl::exp
