#ifndef ROICL_EXP_RUNNER_H_
#define ROICL_EXP_RUNNER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "exp/datasets.h"
#include "exp/methods.h"
#include "exp/setting.h"

namespace roicl::exp {

/// One table cell: a method's test AUCC in one (dataset, setting).
struct OfflineCell {
  std::string method;
  DatasetId dataset;
  Setting setting;
  double aucc = 0.0;
  double seconds = 0.0;  ///< wall time for fit + predict.
};

/// Fits `model` on the splits (Algorithm-4 style: training set + explicit
/// calibration set) and scores its test-set AUCC.
double EvaluateMethodOnSplits(uplift::RoiModel* model,
                              const DatasetSplits& splits);

/// Runs a list of methods over one (dataset, setting). Splits are built
/// once and shared by all methods.
std::vector<OfflineCell> RunSetting(DatasetId dataset, Setting setting,
                                    const std::vector<MethodSpec>& methods,
                                    const SplitSizes& sizes, uint64_t seed,
                                    bool verbose = false);

/// Full offline sweep: every (dataset, setting) pair for the given
/// methods — the raw material for Table I / Table II.
std::vector<OfflineCell> RunOfflineSweep(
    const std::vector<MethodSpec>& methods, const SplitSizes& sizes,
    uint64_t seed, bool verbose = false);

}  // namespace roicl::exp

#endif  // ROICL_EXP_RUNNER_H_
