#include "linalg/solve.h"

#include <cmath>

namespace roicl {

Status CholeskyDecompose(const Matrix& a, Matrix* lower) {
  ROICL_CHECK(lower != nullptr);
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument(
              "matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  *lower = std::move(l);
  return Status::Ok();
}

StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b) {
  if (a.rows() != static_cast<int>(b.size())) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  Matrix l;
  Status status = CholeskyDecompose(a, &l);
  if (!status.ok()) return status;
  int n = a.rows();
  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= l(i, k) * z[k];
    z[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = z[i];
    for (int k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

StatusOr<std::vector<double>> SolveRidge(const Matrix& x,
                                         const std::vector<double>& y,
                                         double lambda,
                                         bool fit_intercept) {
  if (x.rows() != static_cast<int>(y.size())) {
    return Status::InvalidArgument("row count of X must match length of y");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  int n = x.rows();
  int d = x.cols() + (fit_intercept ? 1 : 0);

  // Normal equations: (X^T X + lambda I) w = X^T y, built directly so we
  // never materialize the augmented design matrix.
  Matrix gram(d, d);
  std::vector<double> xty(d, 0.0);
  for (int r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (int i = 0; i < x.cols(); ++i) {
      xty[i] += row[i] * y[r];
      for (int j = i; j < x.cols(); ++j) gram(i, j) += row[i] * row[j];
    }
    if (fit_intercept) {
      int b = d - 1;
      xty[b] += y[r];
      for (int i = 0; i < x.cols(); ++i) gram(i, b) += row[i];
      gram(b, b) += 1.0;
    }
  }
  // Mirror the upper triangle and add the ridge penalty (skipping the
  // intercept coordinate).
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  int penalized = fit_intercept ? d - 1 : d;
  for (int i = 0; i < penalized; ++i) gram(i, i) += lambda;
  // Tiny jitter on the diagonal keeps rank-deficient designs solvable.
  for (int i = 0; i < d; ++i) gram(i, i) += 1e-10;

  return CholeskySolve(gram, xty);
}

}  // namespace roicl
