#include "linalg/solve.h"

#include <cmath>

#include "common/math_util.h"

namespace roicl {

Status CholeskyDecompose(const Matrix& a, Matrix* lower) {
  ROICL_CHECK(lower != nullptr);
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument(
              "matrix is not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  *lower = std::move(l);
  return Status::Ok();
}

StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b) {
  if (a.rows() != static_cast<int>(b.size())) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  Matrix l;
  Status status = CholeskyDecompose(a, &l);
  if (!status.ok()) return status;
  int n = a.rows();
  // Forward substitution: L z = b.
  std::vector<double> z(AsSize(n));
  for (int i = 0; i < n; ++i) {
    double sum = b[AsSize(i)];
    for (int k = 0; k < i; ++k) sum -= l(i, k) * z[AsSize(k)];
    z[AsSize(i)] = sum / l(i, i);
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(AsSize(n));
  for (int i = n - 1; i >= 0; --i) {
    double sum = z[AsSize(i)];
    for (int k = i + 1; k < n; ++k) sum -= l(k, i) * x[AsSize(k)];
    x[AsSize(i)] = sum / l(i, i);
  }
  return x;
}

StatusOr<std::vector<double>> SolveRidge(const Matrix& x,
                                         const std::vector<double>& y,
                                         double lambda,
                                         bool fit_intercept) {
  if (x.rows() != static_cast<int>(y.size())) {
    return Status::InvalidArgument("row count of X must match length of y");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty design matrix");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  // A zero-feature design without an intercept has nothing to solve for;
  // rejecting it (and pinning the checked column count in a local) also
  // guarantees d >= 1 below — the static analyzer otherwise explores the
  // impossible d == 0 path and reports null dereferences on it.
  const int cols = x.cols();
  ROICL_CHECK(cols >= 0);
  if (cols == 0 && !fit_intercept) {
    return Status::InvalidArgument("design matrix has no columns");
  }
  int n = x.rows();
  int d = cols + (fit_intercept ? 1 : 0);

  // Normal equations: (X^T X + lambda I) w = X^T y, built directly so we
  // never materialize the augmented design matrix.
  Matrix gram(d, d);
  std::vector<double> xty(AsSize(d), 0.0);
  for (int r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (int i = 0; i < cols; ++i) {
      xty[AsSize(i)] += row[i] * y[AsSize(r)];
      for (int j = i; j < cols; ++j) gram(i, j) += row[i] * row[j];
    }
    if (fit_intercept) {
      int b = d - 1;
      xty[AsSize(b)] += y[AsSize(r)];
      for (int i = 0; i < cols; ++i) gram(i, b) += row[i];
      gram(b, b) += 1.0;
    }
  }
  // Mirror the upper triangle and add the ridge penalty (skipping the
  // intercept coordinate).
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < i; ++j) gram(i, j) = gram(j, i);
  }
  int penalized = fit_intercept ? d - 1 : d;
  for (int i = 0; i < penalized; ++i) gram(i, i) += lambda;
  // Tiny jitter on the diagonal keeps rank-deficient designs solvable.
  for (int i = 0; i < d; ++i) gram(i, i) += 1e-10;

  return CholeskySolve(gram, xty);
}

}  // namespace roicl
