#ifndef ROICL_LINALG_SOLVE_H_
#define ROICL_LINALG_SOLVE_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace roicl {

/// Cholesky factorization of a symmetric positive-definite matrix.
/// On success `*lower` holds L with A = L * L^T.
Status CholeskyDecompose(const Matrix& a, Matrix* lower);

/// Solves A x = b for SPD A via Cholesky. Returns InvalidArgument when A is
/// not positive definite (within numerical tolerance).
StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b);

/// Ridge regression: minimizes ||X w - y||^2 + lambda ||w||^2 (no penalty
/// on the intercept, which is appended internally when `fit_intercept`).
/// Returns the weight vector; the last entry is the intercept when fitted.
StatusOr<std::vector<double>> SolveRidge(const Matrix& x,
                                         const std::vector<double>& y,
                                         double lambda,
                                         bool fit_intercept = true);

}  // namespace roicl

#endif  // ROICL_LINALG_SOLVE_H_
