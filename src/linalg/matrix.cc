#include "linalg/matrix.h"

#include <algorithm>
#include <cstddef>

#include "common/math_util.h"

namespace roicl {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(static_cast<int>(rows.size())), cols_(0) {
  if (rows_ == 0) return;
  cols_ = static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
  for (const auto& row : rows) {
    ROICL_CHECK_MSG(static_cast<int>(row.size()) == cols_,
                    "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(int r) const {
  const double* p = RowPtr(r);
  return std::vector<double>(p, p + cols_);
}

std::vector<double> Matrix::Col(int c) const {
  ROICL_CHECK(c >= 0 && c < cols_);
  std::vector<double> out(AsSize(rows_));
  for (int r = 0; r < rows_; ++r) out[AsSize(r)] = (*this)(r, c);
  return out;
}

Matrix Matrix::SelectRows(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    int r = indices[i];
    ROICL_CHECK(r >= 0 && r < rows_);
    std::copy(RowPtr(r), RowPtr(r) + cols_, out.RowPtr(static_cast<int>(i)));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (int c = 0; c < cols_; ++c) out(c, r) = src[c];
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ROICL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ROICL_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

void Matrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = static_cast<int>(row.size());
  }
  ROICL_CHECK_MSG(static_cast<int>(row.size()) == cols_,
                  "AppendRow size mismatch: %zu vs %d", row.size(), cols_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

namespace {

// Blocked ikj kernel parameters: kRowTile rows of A are processed per
// inner sweep so each loaded B row is reused kRowTile times from
// registers; kKBlock bounds the B panel touched per sweep so it stays in
// cache. k ascends for every (i, j) regardless of blocking, keeping the
// floating-point accumulation order — and therefore the bits of the
// result — independent of the tiling.
constexpr int kRowTile = 4;
constexpr int kKBlock = 128;

}  // namespace

void MatmulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  ROICL_CHECK(c != nullptr);
  ROICL_CHECK(a.cols() == b.rows());
  ROICL_CHECK(c->rows() == a.rows() && c->cols() == b.cols());
  const int m = a.rows();
  const int k_dim = a.cols();
  const int n = b.cols();
  std::fill(c->data().begin(), c->data().end(), 0.0);
  for (int k0 = 0; k0 < k_dim; k0 += kKBlock) {
    const int k1 = std::min(k_dim, k0 + kKBlock);
    int i = 0;
    for (; i + kRowTile <= m; i += kRowTile) {
      const double* a0 = a.RowPtr(i);
      const double* a1 = a.RowPtr(i + 1);
      const double* a2 = a.RowPtr(i + 2);
      const double* a3 = a.RowPtr(i + 3);
      double* c0 = c->RowPtr(i);
      double* c1 = c->RowPtr(i + 1);
      double* c2 = c->RowPtr(i + 2);
      double* c3 = c->RowPtr(i + 3);
      for (int k = k0; k < k1; ++k) {
        const double* brow = b.RowPtr(k);
        const double a0k = a0[k], a1k = a1[k], a2k = a2[k], a3k = a3[k];
        for (int j = 0; j < n; ++j) {
          const double bj = brow[j];
          c0[j] += a0k * bj;
          c1[j] += a1k * bj;
          c2[j] += a2k * bj;
          c3[j] += a3k * bj;
        }
      }
    }
    for (; i < m; ++i) {
      const double* arow = a.RowPtr(i);
      double* crow = c->RowPtr(i);
      for (int k = k0; k < k1; ++k) {
        const double aik = arow[k];
        const double* brow = b.RowPtr(k);
        for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

Matrix Matmul(const Matrix& a, const Matrix& b) {
  ROICL_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  MatmulInto(a, b, &c);
  return c;
}

std::vector<double> Matvec(const Matrix& a, const std::vector<double>& x) {
  ROICL_CHECK(a.cols() == static_cast<int>(x.size()));
  std::vector<double> y(AsSize(a.rows()), 0.0);
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double acc = 0.0;
    for (int j = 0; j < a.cols(); ++j) acc += row[j] * x[AsSize(j)];
    y[AsSize(i)] = acc;
  }
  return y;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  ROICL_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

std::vector<double> ColumnSums(const Matrix& a) {
  std::vector<double> sums(AsSize(a.cols()), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (int c = 0; c < a.cols(); ++c) sums[AsSize(c)] += row[c];
  }
  return sums;
}

Matrix HStack(const Matrix& a, const Matrix& b) {
  ROICL_CHECK(a.rows() == b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    std::copy(a.RowPtr(r), a.RowPtr(r) + a.cols(), out.RowPtr(r));
    std::copy(b.RowPtr(r), b.RowPtr(r) + b.cols(), out.RowPtr(r) + a.cols());
  }
  return out;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  if (a.rows() == 0) return b;
  if (b.rows() == 0) return a;
  ROICL_CHECK(a.cols() == b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data().begin(), a.data().end(), out.data().begin());
  std::copy(b.data().begin(), b.data().end(),
            out.data().begin() + static_cast<ptrdiff_t>(a.data().size()));
  return out;
}

}  // namespace roicl
