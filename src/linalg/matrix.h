#ifndef ROICL_LINALG_MATRIX_H_
#define ROICL_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/macros.h"

namespace roicl {

/// Dense row-major matrix of doubles. The workhorse container for feature
/// matrices and neural-network activations. Copyable and movable.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    ROICL_CHECK(rows >= 0 && cols >= 0);
  }

  /// Creates a matrix from nested initializer lists (row major); all rows
  /// must have equal length. Intended for tests and small fixtures.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a single-column matrix from a vector.
  [[nodiscard]] static Matrix ColumnVector(const std::vector<double>& values);

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix Identity(int n);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    ROICL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[Index(r, c)];
  }
  double operator()(int r, int c) const {
    ROICL_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[Index(r, c)];
  }

  /// Raw row pointer (row-major storage).
  double* RowPtr(int r) {
    ROICL_DCHECK(r >= 0 && r < rows_);
    return data_.data() + Index(r, 0);
  }
  const double* RowPtr(int r) const {
    ROICL_DCHECK(r >= 0 && r < rows_);
    return data_.data() + Index(r, 0);
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Copies row r into a vector.
  [[nodiscard]] std::vector<double> Row(int r) const;

  /// Copies column c into a vector.
  [[nodiscard]] std::vector<double> Col(int c) const;

  /// Returns a new matrix holding the given subset of rows, in order.
  [[nodiscard]] Matrix SelectRows(const std::vector<int>& indices) const;

  /// Returns the transpose.
  [[nodiscard]] Matrix Transposed() const;

  /// Element-wise in-place operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Appends a row (must match cols(), or set cols on first row).
  void AppendRow(const std::vector<double>& row);

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c);
  }

  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// C = A * B. Requires A.cols() == B.rows().
///
/// Blocked register-tiled ikj kernel: a panel of A rows shares each loaded
/// B row, and k is blocked so the active B panel stays cache-resident. For
/// every output element the k-accumulation order is plain ascending k, so
/// the result is bit-identical for any row partition of A — the invariant
/// the batched prediction engine's determinism tests rely on.
[[nodiscard]] Matrix Matmul(const Matrix& a, const Matrix& b);

/// Matmul variant writing into a preallocated output (overwrites `c`).
/// Avoids the allocation on hot batched-forward paths. `c` must already
/// have shape a.rows() x b.cols().
void MatmulInto(const Matrix& a, const Matrix& b, Matrix* c);

/// y = A * x for a column vector x (size A.cols()).
[[nodiscard]] std::vector<double> Matvec(const Matrix& a,
                                         const std::vector<double>& x);

/// Dot product of equal-length vectors.
[[nodiscard]] double Dot(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Sum over rows: returns a vector of length a.cols().
[[nodiscard]] std::vector<double> ColumnSums(const Matrix& a);

/// Horizontal concatenation [a | b]; row counts must match.
[[nodiscard]] Matrix HStack(const Matrix& a, const Matrix& b);

/// Vertical concatenation; column counts must match.
[[nodiscard]] Matrix VStack(const Matrix& a, const Matrix& b);

}  // namespace roicl

#endif  // ROICL_LINALG_MATRIX_H_
