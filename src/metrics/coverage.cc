#include "metrics/coverage.h"

#include "common/macros.h"

namespace roicl::metrics {

CoverageReport EvaluateCoverage(const std::vector<Interval>& intervals,
                                const std::vector<double>& targets) {
  ROICL_CHECK(intervals.size() == targets.size());
  ROICL_CHECK(!intervals.empty());
  CoverageReport report;
  report.n = static_cast<int>(intervals.size());
  double covered = 0.0;
  double width_sum = 0.0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    covered += intervals[i].Contains(targets[i]) ? 1.0 : 0.0;
    width_sum += intervals[i].width();
  }
  report.coverage = covered / static_cast<double>(report.n);
  report.mean_width = width_sum / static_cast<double>(report.n);
  return report;
}

}  // namespace roicl::metrics
