#ifndef ROICL_METRICS_COST_CURVE_H_
#define ROICL_METRICS_COST_CURVE_H_

#include <vector>

#include "data/dataset.h"

namespace roicl::metrics {

/// One point of the cost curve: after targeting the top-k individuals by
/// predicted ROI, the estimated cumulative incremental cost and revenue
/// (both in absolute units, computed from the RCT arms inside the top-k
/// prefix as in Du et al. 2019).
struct CostCurvePoint {
  int k = 0;
  double cumulative_cost = 0.0;
  double cumulative_revenue = 0.0;
};

/// The full cost curve for a score vector over an RCT evaluation set.
struct CostCurve {
  std::vector<CostCurvePoint> points;
  /// Totals at k = n, used for normalization.
  double total_cost = 0.0;
  double total_revenue = 0.0;
};

/// Builds the cost curve: sort by `scores` descending (ties broken by
/// index for determinism), then for every prefix estimate incremental
/// revenue and cost via within-prefix difference-in-means scaled by the
/// prefix size. Prefixes missing one of the arms contribute (0, 0).
CostCurve ComputeCostCurve(const std::vector<double>& scores,
                           const RctDataset& dataset);

/// Area under the cost curve (Table I / Table II metric).
///
/// The curve is normalized so that the final point maps to (1, 1); the
/// area is the line integral of normalized revenue over normalized cost
/// (trapezoid rule). Random targeting gives ~0.5; a perfect ROI ranking
/// approaches the concave upper envelope. Degenerate evaluations (non-
/// positive total cost or revenue lift) return 0.5.
double Aucc(const std::vector<double>& scores, const RctDataset& dataset);

/// AUCC of the oracle ranking (true ROI), available on synthetic data.
double OracleAucc(const RctDataset& dataset);

}  // namespace roicl::metrics

#endif  // ROICL_METRICS_COST_CURVE_H_
