#include "metrics/per_arm.h"

#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"

namespace roicl::metrics {

PerArmCurveMetrics ComputePerArmMetrics(
    const std::vector<std::vector<double>>& per_arm_scores,
    const std::vector<RctDataset>& per_arm_eval, int num_threads) {
  ROICL_CHECK(per_arm_scores.size() == per_arm_eval.size());
  const int num_arms = static_cast<int>(per_arm_scores.size());
  for (int k = 0; k < num_arms; ++k) {
    ROICL_CHECK_MSG(static_cast<int>(per_arm_scores[AsSize(k)].size()) ==
                        per_arm_eval[AsSize(k)].n(),
                    "arm %d: score/eval size mismatch", k + 1);
  }

  PerArmCurveMetrics out;
  out.aucc.assign(AsSize(num_arms), 0.0);
  out.qini.assign(AsSize(num_arms), 0.0);
  auto compute_arm = [&](int k) {
    const size_t sk = AsSize(k);
    out.aucc[sk] = Aucc(per_arm_scores[sk], per_arm_eval[sk]);
    out.qini[sk] = QiniCoefficient(per_arm_scores[sk], per_arm_eval[sk]);
  };
  if (num_threads > 0 && num_arms > 1) {
    // Each arm writes only its own preallocated slot; no shared state, so
    // any thread count yields the serial bits.
    ThreadPool pool(static_cast<unsigned>(num_threads));
    pool.ParallelFor(0, num_arms, compute_arm);
  } else {
    for (int k = 0; k < num_arms; ++k) compute_arm(k);
  }
  return out;
}

std::vector<double> PerArmOracleAucc(
    const std::vector<RctDataset>& per_arm_eval) {
  std::vector<double> out;
  out.reserve(per_arm_eval.size());
  for (const RctDataset& eval : per_arm_eval) {
    out.push_back(OracleAucc(eval));
  }
  return out;
}

}  // namespace roicl::metrics
