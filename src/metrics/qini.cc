#include "metrics/qini.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::metrics {

double QiniCoefficient(const std::vector<double>& scores,
                       const RctDataset& dataset, bool use_revenue) {
  int n = dataset.n();
  ROICL_CHECK(static_cast<int>(scores.size()) == n);
  ROICL_CHECK(n > 0);
  const std::vector<double>& y =
      use_revenue ? dataset.y_revenue : dataset.y_cost;

  std::vector<int> order(AsSize(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (scores[AsSize(a)] != scores[AsSize(b)]) {
      return scores[AsSize(a)] > scores[AsSize(b)];
    }
    return a < b;
  });

  // Qini curve value at prefix k (Radcliffe's definition):
  //   Q(k) = sum_r1(k) - sum_r0(k) * n1(k) / n0(k).
  double sum1 = 0.0, sum0 = 0.0;
  int n1 = 0, n0 = 0;
  double area = 0.0;
  double prev_q = 0.0;
  for (int rank = 0; rank < n; ++rank) {
    const size_t i = AsSize(order[AsSize(rank)]);
    if (dataset.treatment[i] == 1) {
      sum1 += y[i];
      ++n1;
    } else {
      sum0 += y[i];
      ++n0;
    }
    double q = n0 > 0 ? sum1 - sum0 * static_cast<double>(n1) / n0 : sum1;
    area += 0.5 * (q + prev_q);
    prev_q = q;
  }
  double final_q = prev_q;
  // Subtract the random-targeting triangle, then normalize by both the
  // population size and the endpoint lift so the coefficient is
  // scale-free: 0 for random targeting, positive for useful rankings.
  double random_area = 0.5 * final_q * n;
  double denom = static_cast<double>(n) * std::max(std::fabs(final_q), 1e-12);
  return (area - random_area) / denom;
}

}  // namespace roicl::metrics
