#ifndef ROICL_METRICS_PER_ARM_H_
#define ROICL_METRICS_PER_ARM_H_

#include <vector>

#include "data/dataset.h"

namespace roicl::metrics {

/// Per-arm ranking diagnostics of a multi-treatment scorer: arm k's AUCC
/// and Qini, computed on the binary sub-problem {control, arm k} exactly
/// as the Table-I metrics are computed for the binary paper setting.
struct PerArmCurveMetrics {
  std::vector<double> aucc;  ///< aucc[k] for arm (k+1)
  std::vector<double> qini;  ///< qini[k] for arm (k+1)
};

/// Computes per-arm AUCC/Qini curves. `per_arm_scores[k]` are arm
/// (k+1)'s scores over `per_arm_eval[k]` (the arm's binary sub-problem;
/// see synth::MultiTreatmentDataset::BinarySubproblem), so the two outer
/// vectors must have equal length and each inner pair consistent sizes.
///
/// `num_threads` parallelizes across arms on a private pool (0 = serial).
/// Arms are computed independently into preallocated slots with no shared
/// accumulation, so the result is bit-identical at any thread count —
/// the same contract as the batched prediction engine (PR 2).
PerArmCurveMetrics ComputePerArmMetrics(
    const std::vector<std::vector<double>>& per_arm_scores,
    const std::vector<RctDataset>& per_arm_eval, int num_threads = 0);

/// Per-arm AUCC of the oracle (true-ROI) ranking, one entry per arm.
std::vector<double> PerArmOracleAucc(
    const std::vector<RctDataset>& per_arm_eval);

}  // namespace roicl::metrics

#endif  // ROICL_METRICS_PER_ARM_H_
