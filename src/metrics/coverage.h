#ifndef ROICL_METRICS_COVERAGE_H_
#define ROICL_METRICS_COVERAGE_H_

#include <vector>

namespace roicl::metrics {

/// A prediction interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool Contains(double v) const { return v >= lo && v <= hi; }
};

/// Summary of interval quality against known targets.
struct CoverageReport {
  double coverage = 0.0;    ///< fraction of targets inside their interval.
  double mean_width = 0.0;  ///< average interval width.
  int n = 0;
};

/// Fraction of `targets[i]` contained in `intervals[i]`, plus mean width.
/// Sizes must match and be non-zero.
CoverageReport EvaluateCoverage(const std::vector<Interval>& intervals,
                                const std::vector<double>& targets);

}  // namespace roicl::metrics

#endif  // ROICL_METRICS_COVERAGE_H_
