#include "metrics/cost_curve.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::metrics {

CostCurve ComputeCostCurve(const std::vector<double>& scores,
                           const RctDataset& dataset) {
  int n = dataset.n();
  ROICL_CHECK(static_cast<int>(scores.size()) == n);
  ROICL_CHECK(n > 0);

  std::vector<int> order(AsSize(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (scores[AsSize(a)] != scores[AsSize(b)]) {
      return scores[AsSize(a)] > scores[AsSize(b)];
    }
    return a < b;  // deterministic tie-break
  });

  CostCurve curve;
  curve.points.reserve(AsSize(n + 1));
  curve.points.push_back({0, 0.0, 0.0});

  double sum_r1 = 0.0, sum_r0 = 0.0, sum_c1 = 0.0, sum_c0 = 0.0;
  int n1 = 0, n0 = 0;
  for (int rank = 0; rank < n; ++rank) {
    const size_t i = AsSize(order[AsSize(rank)]);
    if (dataset.treatment[i] == 1) {
      sum_r1 += dataset.y_revenue[i];
      sum_c1 += dataset.y_cost[i];
      ++n1;
    } else {
      sum_r0 += dataset.y_revenue[i];
      sum_c0 += dataset.y_cost[i];
      ++n0;
    }
    CostCurvePoint point;
    point.k = rank + 1;
    if (n1 > 0 && n0 > 0) {
      double k = static_cast<double>(rank + 1);
      point.cumulative_revenue = (sum_r1 / n1 - sum_r0 / n0) * k;
      point.cumulative_cost = (sum_c1 / n1 - sum_c0 / n0) * k;
    }
    curve.points.push_back(point);
  }
  curve.total_cost = curve.points.back().cumulative_cost;
  curve.total_revenue = curve.points.back().cumulative_revenue;
  return curve;
}

namespace {

/// Trapezoid line integral of the normalized curve. Points are taken in
/// prefix order; non-monotone x segments (possible with noisy uplift
/// estimates) contribute signed area, which is the standard convention.
double NormalizedArea(const CostCurve& curve) {
  double cx = curve.total_cost;
  double cy = curve.total_revenue;
  double area = 0.0;
  for (size_t p = 1; p < curve.points.size(); ++p) {
    double x0 = curve.points[p - 1].cumulative_cost / cx;
    double x1 = curve.points[p].cumulative_cost / cx;
    double y0 = curve.points[p - 1].cumulative_revenue / cy;
    double y1 = curve.points[p].cumulative_revenue / cy;
    area += (x1 - x0) * (y0 + y1) * 0.5;
  }
  return area;
}

}  // namespace

double Aucc(const std::vector<double>& scores, const RctDataset& dataset) {
  CostCurve curve = ComputeCostCurve(scores, dataset);
  if (curve.total_cost <= 0.0 || curve.total_revenue <= 0.0) {
    // No measurable aggregate lift: the ranking cannot be scored; report
    // the random-targeting baseline.
    return 0.5;
  }
  return NormalizedArea(curve);
}

double OracleAucc(const RctDataset& dataset) {
  ROICL_CHECK(dataset.has_ground_truth());
  std::vector<double> oracle(AsSize(dataset.n()));
  for (int i = 0; i < dataset.n(); ++i) {
    oracle[AsSize(i)] = dataset.TrueRoi(i);
  }
  return Aucc(oracle, dataset);
}

}  // namespace roicl::metrics
