#ifndef ROICL_METRICS_QINI_H_
#define ROICL_METRICS_QINI_H_

#include <vector>

#include "data/dataset.h"

namespace roicl::metrics {

/// Qini coefficient of a score ranking for a single outcome column
/// (revenue by default). Not used by the paper's tables, but a standard
/// uplift diagnostic worth having next to AUCC: area between the Qini
/// curve of the ranking and the random-targeting diagonal, normalized by
/// population size and endpoint lift (scale-free), so 0 = random and
/// larger is better.
double QiniCoefficient(const std::vector<double>& scores,
                       const RctDataset& dataset, bool use_revenue = true);

}  // namespace roicl::metrics

#endif  // ROICL_METRICS_QINI_H_
