#ifndef ROICL_MONITOR_DRIFT_H_
#define ROICL_MONITOR_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Streaming drift detection for the serving path.
///
/// Each monitored channel (a feature column, the served-score stream, the
/// conformal-score stream) compares a *reference* distribution captured at
/// calibration time against a *live window* of production traffic using
/// two binned statistics:
///
///  * PSI — the population stability index,
///    sum_b (p_live(b) - p_ref(b)) * ln(p_live(b) / p_ref(b)),
///    the industry-standard shift score (> 0.2 is "significant shift");
///  * a binned KS statistic — the maximum ECDF gap over the shared bin
///    boundaries, a discretized two-sample Kolmogorov-Smirnov distance.
///
/// Both statistics are computed from integer bin counts, and bin counts
/// are the *only* live state. Counts are mergeable (integer adds commute),
/// so the batched prediction engine can accumulate per-block partial
/// counts on worker threads and merge them in any order with a
/// bit-identical result at every thread count — the same determinism
/// contract as MakeCounterRng, achieved with counters instead of streams.
namespace roicl::monitor {

/// Trigger thresholds for one channel evaluation.
struct DriftThresholds {
  /// PSI above this triggers. 0.2 is the conventional "significant
  /// population shift" cutoff; 0.1-0.2 is "moderate".
  double psi = 0.2;
  /// Binned-KS gap above this triggers.
  double ks = 0.15;
  /// Windows smaller than this are never evaluated (both statistics are
  /// noise-dominated on tiny samples).
  uint64_t min_window = 200;
};

/// A fixed binning of one channel captured from calibration-time samples:
/// quantile bin edges plus the reference probability mass per bin
/// (floored so PSI's logarithms stay finite on empty bins).
class ReferenceDistribution {
 public:
  /// Builds `num_bins` quantile bins from calibration samples (edges at
  /// the k/num_bins empirical quantiles). Requires a non-empty sample set
  /// and num_bins >= 2. Duplicate quantile edges (heavily discrete
  /// channels) are allowed: interior empty bins simply carry floor mass.
  static ReferenceDistribution FromSamples(std::vector<double> samples,
                                           int num_bins);

  int num_bins() const;
  /// The bin index of a value, in [0, num_bins()).
  int BinOf(double value) const;
  /// Reference probability per bin (floored, renormalized).
  const std::vector<double>& probabilities() const { return probs_; }
  /// Interior bin edges, size num_bins() - 1.
  const std::vector<double>& edges() const { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<double> probs_;
};

/// Mergeable live-window state for one channel: integer bin counts.
struct WindowCounts {
  std::vector<uint64_t> counts;
  uint64_t total = 0;

  explicit WindowCounts(int num_bins = 0)
      : counts(static_cast<size_t>(num_bins), 0) {}

  void Add(int bin);
  /// Integer adds — commutative and associative, so any merge order over
  /// any partition of the stream yields identical state.
  void Merge(const WindowCounts& other);
  void Reset();
};

/// One channel's evaluation result.
struct DriftReport {
  std::string channel;
  double psi = 0.0;
  double ks = 0.0;
  double psi_threshold = 0.0;
  double ks_threshold = 0.0;
  uint64_t window_n = 0;
  bool triggered = false;
};

/// PSI between a reference and a live window (live mass floored like the
/// reference). Zero when the window is empty.
double PopulationStabilityIndex(const ReferenceDistribution& reference,
                                const WindowCounts& window);

/// Binned KS: max |CDF_live - CDF_ref| over bin boundaries. Zero when the
/// window is empty.
double BinnedKsStatistic(const ReferenceDistribution& reference,
                         const WindowCounts& window);

/// A set of named channels with their references and live windows.
/// Accumulate() is stateless with respect to the detector (it only bins),
/// so worker threads can fill thread-local WindowCounts in parallel;
/// Commit() merges them into the live window.
class DriftDetector {
 public:
  explicit DriftDetector(DriftThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Registers a channel; returns its index.
  int AddChannel(std::string name, ReferenceDistribution reference);
  int num_channels() const;
  const std::string& channel_name(int channel) const;

  /// An empty, correctly sized partial-count buffer for a channel.
  WindowCounts MakeCounts(int channel) const;
  /// Bins one value into caller-owned partial counts (no detector state
  /// is touched — safe to call concurrently from any thread).
  void Accumulate(int channel, double value, WindowCounts* counts) const;
  /// Merges partial counts into the channel's live window.
  void Commit(int channel, const WindowCounts& counts);

  /// Smallest live-window count across channels (windows can differ: the
  /// conformal-score channel is fed from the sparser feedback stream).
  uint64_t min_window_n() const;

  /// Evaluates every channel against the thresholds. Channels below
  /// min_window report triggered = false with their current statistics.
  /// `reset` clears the live windows afterwards (tumbling windows).
  std::vector<DriftReport> Evaluate(bool reset);

 private:
  struct Channel {
    std::string name;
    ReferenceDistribution reference;
    WindowCounts window;
  };

  DriftThresholds thresholds_;
  std::vector<Channel> channels_;
};

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_DRIFT_H_
