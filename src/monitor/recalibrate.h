#ifndef ROICL_MONITOR_RECALIBRATE_H_
#define ROICL_MONITOR_RECALIBRATE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "pipeline/pipeline.h"

/// \file
/// Rolling conformal recalibration: a bounded sliding window of labeled
/// feedback (delayed conversions, holdout traffic) from which roi*
/// (Algorithm 2) and q_hat (Algorithm 3's ceil((1-alpha)(n+1))/n
/// quantile) are recomputed online, restoring the >= 1 - alpha coverage
/// guarantee after covariate shift. When the window cannot support the
/// labeled path (an RCT arm missing, non-positive average cost lift, or
/// too few samples), an ACI-style adaptive-alpha step over the original
/// calibration scores serves as the label-free fallback.
namespace roicl::monitor {

/// One labeled feedback observation for the sliding window.
struct FeedbackSample {
  std::vector<double> x;
  int treatment = 0;
  double y_revenue = 0.0;
  double y_cost = 0.0;
};

/// Adaptive conformal inference (Gibbs & Candes, 2021):
///   alpha_{t+1} = alpha_t + gamma * (alpha_target - err_t),
/// with err_t = 1 when the step's interval missed. Miscoverage above
/// target shrinks alpha (widening intervals) and vice versa. The state is
/// clamped to (0, 1) so the quantile stays defined.
class AdaptiveAlpha {
 public:
  AdaptiveAlpha(double target_alpha, double gamma);

  /// One ACI step; returns the updated alpha.
  double Update(bool covered);
  double value() const { return alpha_; }
  void Reset() { alpha_ = target_; }

 private:
  double target_;
  double gamma_;
  double alpha_;
};

/// What a recalibration did (or why it did nothing).
struct RecalibrationResult {
  /// False when no swap happened (window empty and no fallback possible).
  bool performed = false;
  /// True when the labeled Algorithm 2 + 3 path ran; false when the
  /// label-free ACI fallback supplied the quantile.
  bool labeled = false;
  double q_hat_before = 0.0;
  double q_hat_after = 0.0;
  /// Window convergence point (labeled path only).
  double roi_star = 0.0;
  /// Alpha used for the quantile (the target, or the ACI state for the
  /// fallback).
  double alpha_used = 0.0;
  std::size_t window_n = 0;
};

struct RecalibratorOptions {
  /// Sliding-window bound: oldest feedback is evicted beyond this.
  std::size_t max_window = 2000;
  /// Labeled recalibration needs at least this many window samples.
  std::size_t min_labeled = 50;
  /// Algorithm 2 stopping constant.
  double epsilon = 1e-4;
  /// ACI step size gamma.
  double gamma = 0.02;
};

/// The sliding window plus the recalibration math. Not thread-safe: the
/// owning ServingMonitor serializes access.
class RollingRecalibrator {
 public:
  /// `calibration_scores` are the train-time conformal scores (Eq. 3 on
  /// the calibration set) — the label-free fallback requantiles them at
  /// the ACI-adjusted alpha.
  RollingRecalibrator(std::vector<double> calibration_scores,
                      double target_alpha, RecalibratorOptions options);

  void AddOutcome(FeedbackSample sample);
  std::size_t window_n() const { return window_.size(); }

  /// True when the window supports Algorithm 2: both RCT arms present,
  /// positive average cost lift, and >= min_labeled samples.
  bool CanRecalibrateLabeled() const;

  /// The window as a dataset (for score recomputation through the
  /// pipeline). Requires a non-empty window.
  RctDataset WindowDataset() const;

  /// One ACI step on the adaptive alpha (driven by per-outcome coverage).
  void ObserveCoverage(bool covered) { aci_.Update(covered); }
  double adaptive_alpha() const { return aci_.value(); }

  /// Recomputes q_hat: the labeled path when the window supports it,
  /// otherwise the ACI fallback over the calibration scores. Never swaps
  /// anything itself — returns the new quantile for the caller to install.
  /// `pipeline` supplies ConformalScoreInputs for the window rows.
  StatusOr<RecalibrationResult> Recalibrate(
      const pipeline::Pipeline& pipeline, double q_hat_current) const;

 private:
  std::vector<double> calibration_scores_;
  double target_alpha_;
  RecalibratorOptions options_;
  AdaptiveAlpha aci_;
  std::deque<FeedbackSample> window_;
};

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_RECALIBRATE_H_
