#ifndef ROICL_MONITOR_RECALIBRATE_H_
#define ROICL_MONITOR_RECALIBRATE_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/status.h"
#include "core/incremental_quantile.h"
#include "core/interval_backend.h"
#include "data/dataset.h"

/// \file
/// Rolling conformal recalibration: a bounded sliding window of labeled
/// feedback (delayed conversions, holdout traffic) from which roi*
/// (Algorithm 2) and q_hat (Algorithm 3's ceil((1-alpha)(n+1))/n
/// quantile) are recomputed online, restoring the >= 1 - alpha coverage
/// guarantee after covariate shift. The per-row conformity ingredients
/// (roi_hat, r_hat, CQR aux channels) are cached at ingest time, so the
/// recalibration hot path is pure scalar work: an order-statistic
/// structure keeps the window quantile O(log n) per insert/evict and
/// bitwise-identical to the batch rank. When the window cannot support
/// the labeled path (an RCT arm missing, non-positive average cost lift,
/// or too few samples), the label-free fallback is the backend's
/// likelihood-ratio weighted quantile (weighted backend) or an ACI-style
/// adaptive-alpha step over the original calibration scores.
namespace roicl::monitor {

/// One labeled feedback observation for the sliding window. The caller
/// (ServingMonitor::AddOutcomes) fills the cached conformity ingredients
/// from one MC sweep over the feedback batch; the recalibrator never
/// touches the feature matrix again after ingest.
struct FeedbackSample {
  std::vector<double> x;
  int treatment = 0;
  double y_revenue = 0.0;
  double y_cost = 0.0;
  /// Cached Eq. (3) / CQR ingredients (point ROI, MC std, and the
  /// backend's auxiliary channels), captured at AddOutcomes time.
  double roi_hat = 0.0;
  double r_hat = 0.0;
  double aux_lo = 0.0;
  double aux_hi = 0.0;
};

/// Adaptive conformal inference (Gibbs & Candes, 2021):
///   alpha_{t+1} = alpha_t + gamma * (alpha_target - err_t),
/// with err_t = 1 when the step's interval missed. Miscoverage above
/// target shrinks alpha (widening intervals) and vice versa. The state is
/// clamped to (0, 1) so the quantile stays defined.
class AdaptiveAlpha {
 public:
  AdaptiveAlpha(double target_alpha, double gamma);

  /// One ACI step; returns the updated alpha.
  double Update(bool covered);
  double value() const { return alpha_; }
  void Reset() { alpha_ = target_; }

 private:
  double target_;
  double gamma_;
  double alpha_;
};

/// What a recalibration did (or why it did nothing).
struct RecalibrationResult {
  /// False when no swap happened (window empty and no fallback possible).
  bool performed = false;
  /// True when the labeled Algorithm 2 + 3 path ran; false when a
  /// label-free fallback supplied the quantile.
  bool labeled = false;
  /// True when the label-free path used the backend's likelihood-ratio
  /// weighted quantile (covariate-shift repair) rather than ACI.
  bool weighted_fallback = false;
  double q_hat_before = 0.0;
  double q_hat_after = 0.0;
  /// Window convergence point (labeled path only).
  double roi_star = 0.0;
  /// Alpha used for the quantile (the target, or the ACI state for the
  /// ACI fallback).
  double alpha_used = 0.0;
  std::size_t window_n = 0;
};

struct RecalibratorOptions {
  /// Sliding-window bound: oldest feedback is evicted beyond this.
  std::size_t max_window = 2000;
  /// Labeled recalibration needs at least this many window samples.
  std::size_t min_labeled = 50;
  /// Algorithm 2 stopping constant.
  double epsilon = 1e-4;
  /// ACI step size gamma.
  double gamma = 0.02;
  /// Relative roi* drift (vs max(1, |anchor|)) below which the labeled
  /// path keeps the current anchor instead of rescoring the window. 0
  /// re-anchors on any bitwise change, which preserves exact batch
  /// equivalence; a small positive value trades a bounded score skew for
  /// fewer O(n log n) rebuilds.
  double reanchor_rtol = 0.0;
};

/// The sliding window plus the recalibration math. Not thread-safe: the
/// owning ServingMonitor serializes access.
///
/// Scores in the window are anchored at one roi* (`roi_star_anchor`, the
/// calibration-time convergence point initially). Every AddOutcome
/// computes the sample's conformity score at the current anchor via the
/// backend's StreamScore and inserts it into the order-statistic
/// structure; eviction erases the exact inserted value. The labeled path
/// re-runs Algorithm 2 on the window's scalar outcome columns and only
/// rescoring the window when the anchor actually moved.
class RollingRecalibrator {
 public:
  /// `backend` supplies the streaming score arithmetic and (for the
  /// weighted backend) the label-free fallback; it must outlive the
  /// recalibrator. `calibration_scores` are the train-time conformity
  /// scores — the ACI fallback requantiles them at the adjusted alpha.
  RollingRecalibrator(const core::IntervalBackend* backend,
                      double roi_star_anchor,
                      std::vector<double> calibration_scores,
                      double target_alpha, RecalibratorOptions options);

  void AddOutcome(FeedbackSample sample);
  std::size_t window_n() const { return window_.size(); }
  double roi_star_anchor() const { return anchor_; }

  /// True when the window supports Algorithm 2: both RCT arms present,
  /// positive average cost lift, and >= min_labeled samples.
  bool CanRecalibrateLabeled() const;

  /// The window as a dataset (for the monitor's window-level roi*).
  /// Requires a non-empty window.
  RctDataset WindowDataset() const;

  /// One ACI step on the adaptive alpha (driven by per-outcome coverage).
  void ObserveCoverage(bool covered) { aci_.Update(covered); }
  double adaptive_alpha() const { return aci_.value(); }

  /// Recomputes q_hat: the labeled path when the window supports it
  /// (scalar Algorithm 2 + the incremental window quantile), otherwise
  /// the weighted-conformal fallback under `live_weight_counts` (per-bin
  /// served-score counts; may be empty) when the backend has weight
  /// bins, otherwise the ACI fallback over the calibration scores. Never
  /// swaps anything itself — returns the new quantile for the caller to
  /// install.
  StatusOr<RecalibrationResult> Recalibrate(
      double q_hat_current, const std::vector<double>& live_weight_counts);

 private:
  /// A window entry plus the conformity score it contributed to the
  /// incremental quantile (at the anchor current when it was scored).
  struct Entry {
    FeedbackSample sample;
    double score = 0.0;
  };

  double ScoreAt(const FeedbackSample& sample, double roi_star) const;
  /// Rescores every window entry at `roi_star` and rebuilds the
  /// incremental quantile. O(n log n); only runs when the anchor moves.
  void ReanchorLocked(double roi_star);

  const core::IntervalBackend* backend_;
  double anchor_;
  std::vector<double> calibration_scores_;
  double target_alpha_;
  RecalibratorOptions options_;
  AdaptiveAlpha aci_;
  std::deque<Entry> window_;
  core::IncrementalQuantile iq_;
};

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_RECALIBRATE_H_
