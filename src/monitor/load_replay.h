#ifndef ROICL_MONITOR_LOAD_REPLAY_H_
#define ROICL_MONITOR_LOAD_REPLAY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "monitor/monitor.h"
#include "obs/slo.h"
#include "pipeline/pipeline.h"
#include "pipeline/service.h"

/// \file
/// Adversarial load-replay harness: drives a live ScoringService +
/// ServingMonitor through a fixed sequence of hostile traffic phases and
/// reports what the observability stack saw — client latency percentiles,
/// reject / deadline rates, the per-stage serve.stage.* breakdown, and
/// the SLO engine's verdict. The phases:
///
///   baseline        well-behaved traffic; establishes the floor
///   burst           fire-and-forget floods that overflow the queue
///   deadline_heavy  tight per-request deadlines that expire in queue
///   oversized       requests many times the normal row count (the
///                   deliberate p99-latency SLO breach)
///   swap_storm      baseline traffic racing mid-flight conformal
///                   quantile swaps (the TSan target)
///
/// Labeled feedback from the stream is replayed to the monitor between
/// phases so the coverage and drift SLOs see events too. The `load-replay`
/// CLI subcommand wraps this and writes LoadReplayResult::ToJson to
/// BENCH_load.json via tools/bench_to_json.sh.
namespace roicl::monitor {

struct LoadReplayOptions {
  /// Rows per well-behaved request.
  int rows_per_request = 64;
  /// Requests per phase (before burst_factor multiplication).
  int requests_per_phase = 128;
  /// Concurrent client threads submitting traffic.
  int client_threads = 4;
  /// The burst phase submits requests_per_phase * burst_factor requests
  /// without waiting for completions.
  int burst_factor = 8;
  /// Deadline applied by the deadline_heavy phase (microseconds).
  int64_t tight_deadline_micros = 50;
  /// Oversized requests carry rows_per_request * oversized_factor rows.
  int oversized_factor = 64;
  /// Conformal quantile swaps performed by the swap_storm phase.
  int swap_storm_swaps = 64;
  /// Labeled feedback rows handed to the monitor after each phase.
  int feedback_rows = 256;
  /// Seed for traffic materialization.
  uint64_t seed = 7;
  /// SLO specs evaluated over the replay (empty = no SLO engine).
  std::vector<obs::SloSpec> slos;
  MonitorOptions monitor;
  pipeline::ServiceOptions service;
  /// Polled between submissions; returning true stops the replay early
  /// (the signal-flush path). The partial result is still returned.
  std::function<bool()> cancelled;
};

/// Per-phase outcome counts and client-observed latency percentiles
/// (exact, from the sorted completion latencies of the phase).
struct LoadPhaseStat {
  std::string phase;
  int submitted = 0;
  int ok = 0;
  int rejected = 0;           ///< queue-full rejections
  int deadline_exceeded = 0;  ///< expired while queued
  int errors = 0;             ///< any other failure
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// One serve.stage.* histogram read back from the metrics registry.
struct StageBreakdown {
  std::string stage;  ///< e.g. "queue", "score"
  uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Trace IDs of the exemplars retained by this stage's histogram —
  /// each must resolve to a complete serve.request flow in the trace.
  std::vector<uint64_t> exemplar_trace_ids;
};

struct LoadReplayResult {
  std::vector<LoadPhaseStat> phases;
  std::vector<StageBreakdown> stages;
  int total_submitted = 0;
  int total_ok = 0;
  int total_rejected = 0;
  int total_deadline_exceeded = 0;
  int total_errors = 0;
  double reject_rate = 0.0;  ///< rejected / submitted
  double p50_us = 0.0;       ///< overall client-observed latency
  double p95_us = 0.0;
  double p99_us = 0.0;
  int quantile_swaps = 0;  ///< swaps performed by swap_storm
  /// SloEngine::VerdictJson() at replay end ("{}" without SLO specs).
  std::string slo_verdict_json = "{}";
  /// Worst SLO state *observed at any point* during the replay
  /// (SloEngine::PeakWorstState) — a burst-phase breach that recovered
  /// by swap_storm still reads BREACH in the report.
  std::string slo_worst_state = "OK";
  bool interrupted = false;  ///< cancelled() fired mid-replay

  /// Full machine-readable report (the BENCH_load.json payload).
  std::string ToJson() const;
};

/// Runs the replay. `pipeline` is consumed (the service owns it);
/// `calibration` anchors the monitor's references; `stream` supplies
/// labeled traffic (requests slice its rows cyclically). The scorer must
/// carry a conformal quantile (rDRP) — swap_storm and the coverage SLO
/// depend on it.
StatusOr<LoadReplayResult> RunLoadReplay(pipeline::Pipeline pipeline,
                                         const RctDataset& calibration,
                                         const RctDataset& stream,
                                         const LoadReplayOptions& options);

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_LOAD_REPLAY_H_
