#ifndef ROICL_MONITOR_COVERAGE_TRACKER_H_
#define ROICL_MONITOR_COVERAGE_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Shadow coverage tracking: a running empirical-coverage estimate over
/// labeled feedback. Each observation is one bit — did the served
/// conformal interval contain the feedback window's convergence point —
/// kept in a bounded ring so the estimate follows the live distribution
/// instead of averaging over forgotten regimes. The estimate feeds the
/// `monitor.coverage` gauge; dipping below 1 - alpha - slack raises an
/// edge-triggered alert (one WARN per excursion, not one per sample).
namespace roicl::monitor {

struct CoverageTrackerOptions {
  /// Ring capacity: the estimate is over the most recent `window` bits.
  std::size_t window = 500;
  /// Conformal coverage target is 1 - alpha.
  double alpha = 0.1;
  /// Alert slack epsilon: alert when coverage < 1 - alpha - slack.
  double slack = 0.05;
  /// No alerts until this many observations (estimate too noisy).
  std::size_t min_count = 50;
};

class CoverageTracker {
 public:
  explicit CoverageTracker(CoverageTrackerOptions options);

  /// Records one coverage bit; returns true when this observation newly
  /// raised the alert (the caller logs/counts the excursion).
  bool Observe(bool covered);

  /// Empirical coverage over the ring; 1.0 before any observation.
  double coverage() const;
  std::size_t count() const { return size_; }
  bool alerting() const { return alerting_; }
  double alert_threshold() const;

 private:
  CoverageTrackerOptions options_;
  std::vector<uint8_t> ring_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::size_t covered_in_ring_ = 0;
  bool alerting_ = false;
};

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_COVERAGE_TRACKER_H_
