#include "monitor/replay.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "obs/log.h"
#include "synth/shift.h"

namespace roicl::monitor {
namespace {

/// Late-bound target for the service's on_scored callback: the service
/// must exist before the monitor (the monitor watches the service-owned
/// pipeline), so the callback dereferences through this holder that is
/// filled in once the monitor is up. No request is scored before then —
/// the replay loop is the only traffic source.
struct MonitorHook {
  ServingMonitor* monitor = nullptr;
};

/// Consecutive row indices [begin, end) of `source`.
std::vector<int> RowRange(int begin, int end) {
  std::vector<int> indices(AsSize(end - begin));
  std::iota(indices.begin(), indices.end(), begin);
  return indices;
}

double MeanOrOne(const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

StatusOr<ReplayResult> RunReplay(pipeline::Pipeline pipeline,
                                 const RctDataset& calibration,
                                 const RctDataset& stream,
                                 const ReplayOptions& options) {
  if (options.batch_rows <= 0 || options.num_batches <= 0) {
    return Status::InvalidArgument(
        "batch_rows and num_batches must be positive");
  }
  if (options.shift_at_batch < 0) {
    return Status::InvalidArgument("shift_at_batch must be >= 0");
  }
  if (stream.n() == 0) {
    return Status::InvalidArgument("empty replay stream");
  }
  if (options.shift_feature < 0 || options.shift_feature >= stream.dim()) {
    return Status::InvalidArgument("shift_feature out of range");
  }
  if (!std::isfinite(options.shift_gamma)) {
    return Status::InvalidArgument("shift_gamma must be finite");
  }
  if (!pipeline.has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "monitor-replay requires a scorer with a conformal quantile "
        "(rDRP); scorer '" +
        pipeline.scorer_name() + "' has none");
  }

  // Pre-materialize both traffic regimes with one sequential RNG so the
  // whole replay is a pure function of (pipeline, datasets, options).
  // gamma = 0 makes the resampling weights uniform, so the pre-shift
  // stream is a plain bootstrap of `stream`.
  Rng rng(options.seed);
  int shift_batch = std::min(options.shift_at_batch, options.num_batches);
  int n_pre = shift_batch * options.batch_rows;
  int n_post = (options.num_batches - shift_batch) * options.batch_rows;
  RctDataset pre;
  RctDataset post;
  if (n_pre > 0) {
    pre = synth::ResampleWithCovariateShift(stream, options.shift_feature,
                                            0.0, n_pre, &rng);
  }
  if (n_post > 0) {
    post = synth::ResampleWithCovariateShift(
        stream, options.shift_feature, options.shift_gamma, n_post, &rng);
  }

  auto hook = std::make_shared<MonitorHook>();
  pipeline::ServiceOptions service_options = options.service;
  service_options.on_scored = [hook](const pipeline::ServeContext&,
                                     const Matrix& x,
                                     const std::vector<double>& scores) {
    if (hook->monitor != nullptr) hook->monitor->ObserveScored(x, scores);
  };
  pipeline::ScoringService service(std::move(pipeline), service_options);

  StatusOr<std::unique_ptr<ServingMonitor>> monitor_or =
      ServingMonitor::FromCalibration(&service.pipeline(), calibration,
                                      options.monitor);
  if (!monitor_or.ok()) return monitor_or.status();
  ServingMonitor& monitor = *monitor_or.value();
  hook->monitor = &monitor;
  monitor.BindQuantileSwap(
      [&service](double q_hat) {
        return service.SetConformalQuantile(q_hat);
      });

  ReplayResult result;
  result.shift_batch = shift_batch < options.num_batches ? shift_batch : -1;
  StatusOr<double> q0 = service.pipeline().conformal_quantile();
  if (!q0.ok()) return q0.status();
  result.q_hat_initial = q0.value();

  std::vector<double> pre_cov;
  std::vector<double> mid_cov;
  std::vector<double> post_cov;
  for (int b = 0; b < options.num_batches; ++b) {
    bool shifted = b >= shift_batch;
    const RctDataset& source = shifted ? post : pre;
    int local = shifted ? (b - shift_batch) * options.batch_rows
                        : b * options.batch_rows;
    RctDataset batch =
        source.Subset(RowRange(local, local + options.batch_rows));

    // Serve the batch (the on_scored hook feeds the drift detector),
    // then hand the same rows back as labeled shadow feedback.
    StatusOr<std::vector<double>> scores = service.Score(batch.x);
    if (!scores.ok()) return scores.status();
    if (Status status = monitor.AddOutcomes(batch); !status.ok()) {
      return status;
    }

    ReplayBatchStat stat;
    stat.batch = b;
    stat.shifted = shifted;
    stat.drift_latched = monitor.drift_latched();
    for (const DriftReport& report : monitor.last_reports()) {
      stat.max_psi = std::max(stat.max_psi, report.psi);
      stat.max_ks = std::max(stat.max_ks, report.ks);
    }
    if (stat.drift_latched && shifted && result.detect_batch < 0) {
      result.detect_batch = b;
    }

    StatusOr<RecalibrationResult> recal = monitor.MaybeRecalibrate();
    if (!recal.ok()) return recal.status();
    stat.recalibrated = recal.value().performed;
    if (stat.recalibrated && shifted && result.recalibrate_batch < 0) {
      result.recalibrate_batch = b;
    }

    stat.coverage = monitor.coverage();
    StatusOr<double> q_live = service.pipeline().conformal_quantile();
    if (!q_live.ok()) return q_live.status();
    stat.q_hat = q_live.value();
    result.batches.push_back(stat);

    if (!shifted) {
      pre_cov.push_back(stat.coverage);
    } else if (result.recalibrate_batch < 0 ||
               b < result.recalibrate_batch) {
      mid_cov.push_back(stat.coverage);
    } else {
      post_cov.push_back(stat.coverage);
    }
  }

  result.q_hat_final = result.batches.empty()
                           ? result.q_hat_initial
                           : result.batches.back().q_hat;
  result.coverage_pre_shift = MeanOrOne(pre_cov);
  result.coverage_shift_to_recal = MeanOrOne(mid_cov);
  result.coverage_post_recal = MeanOrOne(post_cov);
  obs::Info("replay done",
            {{"batches", options.num_batches},
             {"shift_batch", result.shift_batch},
             {"detect_batch", result.detect_batch},
             {"recalibrate_batch", result.recalibrate_batch},
             {"q_hat_initial", result.q_hat_initial},
             {"q_hat_final", result.q_hat_final},
             {"coverage_post_recal", result.coverage_post_recal}});
  return result;
}

}  // namespace roicl::monitor
