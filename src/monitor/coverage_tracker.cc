#include "monitor/coverage_tracker.h"

#include "common/macros.h"

namespace roicl::monitor {

CoverageTracker::CoverageTracker(CoverageTrackerOptions options)
    : options_(options), ring_(options.window, 0) {
  ROICL_CHECK(options_.window > 0);
  ROICL_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
  ROICL_CHECK(options_.slack >= 0.0);
}

bool CoverageTracker::Observe(bool covered) {
  if (size_ == ring_.size()) {
    covered_in_ring_ -= static_cast<std::size_t>(ring_[next_]);
  } else {
    ++size_;
  }
  ring_[next_] = covered ? 1 : 0;
  covered_in_ring_ += static_cast<std::size_t>(ring_[next_]);
  next_ = (next_ + 1) % ring_.size();

  bool newly_alerting = false;
  if (size_ >= options_.min_count) {
    bool below = coverage() < alert_threshold();
    newly_alerting = below && !alerting_;
    alerting_ = below;
  }
  return newly_alerting;
}

double CoverageTracker::coverage() const {
  if (size_ == 0) return 1.0;
  return static_cast<double>(covered_in_ring_) /
         static_cast<double>(size_);
}

double CoverageTracker::alert_threshold() const {
  return 1.0 - options_.alpha - options_.slack;
}

}  // namespace roicl::monitor
