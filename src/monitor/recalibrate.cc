#include "monitor/recalibrate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/conformal.h"
#include "core/roi_star.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::monitor {
namespace {

/// Keeps the ACI state a usable error rate: alpha pinned into (0, 1) so
/// the conformal rank stays defined at both extremes.
constexpr double kAlphaMin = 1e-3;
constexpr double kAlphaMax = 0.5;

}  // namespace

AdaptiveAlpha::AdaptiveAlpha(double target_alpha, double gamma)
    : target_(target_alpha), gamma_(gamma), alpha_(target_alpha) {
  ROICL_CHECK_MSG(target_alpha > 0.0 && target_alpha < 1.0,
                  "target alpha must be in (0, 1)");
  ROICL_CHECK_MSG(gamma >= 0.0, "ACI gamma must be non-negative");
}

double AdaptiveAlpha::Update(bool covered) {
  double err = covered ? 0.0 : 1.0;
  alpha_ = std::clamp(alpha_ + gamma_ * (target_ - err), kAlphaMin,
                      kAlphaMax);
  return alpha_;
}

RollingRecalibrator::RollingRecalibrator(
    const core::IntervalBackend* backend, double roi_star_anchor,
    std::vector<double> calibration_scores, double target_alpha,
    RecalibratorOptions options)
    : backend_(backend),
      anchor_(roi_star_anchor),
      calibration_scores_(std::move(calibration_scores)),
      target_alpha_(target_alpha),
      options_(options),
      aci_(target_alpha, options.gamma) {
  ROICL_CHECK_MSG(backend_ != nullptr,
                  "recalibrator needs an interval backend for the "
                  "streaming score arithmetic");
  ROICL_CHECK_MSG(!calibration_scores_.empty(),
                  "recalibrator needs calibration scores for the "
                  "label-free fallback");
  ROICL_CHECK(options_.max_window > 0);
  ROICL_CHECK_MSG(std::isfinite(anchor_), "roi* anchor must be finite");
}

double RollingRecalibrator::ScoreAt(const FeedbackSample& sample,
                                    double roi_star) const {
  return backend_->StreamScore(sample.roi_hat, sample.r_hat, roi_star,
                               sample.aux_lo, sample.aux_hi);
}

void RollingRecalibrator::AddOutcome(FeedbackSample sample) {
  Entry entry;
  entry.score = ScoreAt(sample, anchor_);
  entry.sample = std::move(sample);
  iq_.Insert(entry.score);
  window_.push_back(std::move(entry));
  while (window_.size() > options_.max_window) {
    ROICL_CHECK(iq_.Erase(window_.front().score));
    window_.pop_front();
  }
}

bool RollingRecalibrator::CanRecalibrateLabeled() const {
  if (window_.size() < options_.min_labeled) return false;
  bool has_treated = false;
  bool has_control = false;
  for (const Entry& entry : window_) {
    if (entry.sample.treatment == 1) {
      has_treated = true;
    } else {
      has_control = true;
    }
  }
  if (!has_treated || !has_control) return false;
  // Assumption 4: Algorithm 2 needs a positive average cost lift.
  std::vector<int> treatment;
  std::vector<double> y_cost;
  treatment.reserve(window_.size());
  y_cost.reserve(window_.size());
  for (const Entry& entry : window_) {
    treatment.push_back(entry.sample.treatment);
    y_cost.push_back(entry.sample.y_cost);
  }
  return RctDataset::DiffInMeans(treatment, y_cost) > 0.0;
}

RctDataset RollingRecalibrator::WindowDataset() const {
  ROICL_CHECK_MSG(!window_.empty(), "empty feedback window");
  RctDataset dataset;
  for (const Entry& entry : window_) {
    dataset.x.AppendRow(entry.sample.x);
    dataset.treatment.push_back(entry.sample.treatment);
    dataset.y_revenue.push_back(entry.sample.y_revenue);
    dataset.y_cost.push_back(entry.sample.y_cost);
  }
  return dataset;
}

void RollingRecalibrator::ReanchorLocked(double roi_star) {
  anchor_ = roi_star;
  iq_.Clear();
  for (Entry& entry : window_) {
    entry.score = ScoreAt(entry.sample, anchor_);
    iq_.Insert(entry.score);
  }
}

StatusOr<RecalibrationResult> RollingRecalibrator::Recalibrate(
    double q_hat_current, const std::vector<double>& live_weight_counts) {
  obs::ScopedSpan span("monitor.recalibrate");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  RecalibrationResult result;
  result.q_hat_before = q_hat_current;
  result.window_n = window_.size();

  double q_new = 0.0;
  bool handled = false;
  if (CanRecalibrateLabeled()) {
    // Algorithm 2 on the window's scalar outcome columns, then Algorithm
    // 3 at the target alpha over the cached-ingredient scores: a fresh
    // split-conformal calibration on current-traffic labels with no
    // MC sweep in the loop.
    std::vector<int> treatment;
    std::vector<double> y_revenue;
    std::vector<double> y_cost;
    treatment.reserve(window_.size());
    y_revenue.reserve(window_.size());
    y_cost.reserve(window_.size());
    for (const Entry& entry : window_) {
      treatment.push_back(entry.sample.treatment);
      y_revenue.push_back(entry.sample.y_revenue);
      y_cost.push_back(entry.sample.y_cost);
    }
    double roi_star = core::BinarySearchRoiStar(treatment, y_revenue,
                                                y_cost, options_.epsilon);
    double tolerance =
        options_.reanchor_rtol * std::max(1.0, std::fabs(anchor_));
    if (std::fabs(roi_star - anchor_) > tolerance) ReanchorLocked(roi_star);
    result.roi_star = roi_star;
    q_new = iq_.QHat(target_alpha_);
    metrics.GetGauge("conformal.calibration_n")
        ->Set(static_cast<double>(iq_.size()));
    if (!std::isfinite(q_new)) {
      // Same convention as train-time calibration: the most conservative
      // finite quantile when the rank exceeds the window.
      metrics.GetCounter("conformal.qhat_infinite")->Increment();
      obs::Warn("conformal quantile infinite; using max score",
                {{"q_hat", q_new},
                 {"calibration_n", AsInt(iq_.size())}});
      q_new = iq_.Kth(iq_.size());
    }
    metrics.GetGauge("conformal.q_hat")->Set(q_new);
    result.labeled = true;
    result.alpha_used = target_alpha_;
    handled = true;
  } else if (backend_->WeightBins() > 0) {
    // Label-free covariate-shift repair: reweight the calibration scores
    // by the likelihood ratio estimated from the served-score bin counts
    // and requantile at the *target* alpha — no coverage feedback needed.
    StatusOr<double> weighted =
        backend_->FallbackQHat(target_alpha_, live_weight_counts);
    if (weighted.ok()) {
      q_new = weighted.value();
      if (!std::isfinite(q_new)) {
        q_new = *std::max_element(calibration_scores_.begin(),
                                  calibration_scores_.end());
      }
      result.weighted_fallback = true;
      result.alpha_used = target_alpha_;
      handled = true;
    }
  }
  if (!handled) {
    // Label-free ACI fallback: requantile the original calibration scores
    // at the ACI-adjusted alpha. Miscoverage feedback has pushed alpha
    // below target, so the rank moves up the score distribution and the
    // intervals widen — no labels required.
    result.alpha_used = aci_.value();
    q_new = core::WindowedConformalScoreQuantile(
        calibration_scores_, calibration_scores_.size(),
        result.alpha_used);
    if (!std::isfinite(q_new)) {
      q_new = *std::max_element(calibration_scores_.begin(),
                                calibration_scores_.end());
    }
  }
  result.q_hat_after = std::max(0.0, q_new);
  result.performed = true;
  return result;
}

}  // namespace roicl::monitor
