#include "monitor/recalibrate.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "core/conformal.h"
#include "core/roi_star.h"
#include "obs/trace.h"

namespace roicl::monitor {
namespace {

/// Keeps the ACI state a usable error rate: alpha pinned into (0, 1) so
/// the conformal rank stays defined at both extremes.
constexpr double kAlphaMin = 1e-3;
constexpr double kAlphaMax = 0.5;

}  // namespace

AdaptiveAlpha::AdaptiveAlpha(double target_alpha, double gamma)
    : target_(target_alpha), gamma_(gamma), alpha_(target_alpha) {
  ROICL_CHECK_MSG(target_alpha > 0.0 && target_alpha < 1.0,
                  "target alpha must be in (0, 1)");
  ROICL_CHECK_MSG(gamma >= 0.0, "ACI gamma must be non-negative");
}

double AdaptiveAlpha::Update(bool covered) {
  double err = covered ? 0.0 : 1.0;
  alpha_ = std::clamp(alpha_ + gamma_ * (target_ - err), kAlphaMin,
                      kAlphaMax);
  return alpha_;
}

RollingRecalibrator::RollingRecalibrator(
    std::vector<double> calibration_scores, double target_alpha,
    RecalibratorOptions options)
    : calibration_scores_(std::move(calibration_scores)),
      target_alpha_(target_alpha),
      options_(options),
      aci_(target_alpha, options.gamma) {
  ROICL_CHECK_MSG(!calibration_scores_.empty(),
                  "recalibrator needs calibration scores for the "
                  "label-free fallback");
  ROICL_CHECK(options_.max_window > 0);
}

void RollingRecalibrator::AddOutcome(FeedbackSample sample) {
  window_.push_back(std::move(sample));
  while (window_.size() > options_.max_window) window_.pop_front();
}

bool RollingRecalibrator::CanRecalibrateLabeled() const {
  if (window_.size() < options_.min_labeled) return false;
  bool has_treated = false;
  bool has_control = false;
  for (const FeedbackSample& sample : window_) {
    if (sample.treatment == 1) {
      has_treated = true;
    } else {
      has_control = true;
    }
  }
  if (!has_treated || !has_control) return false;
  // Assumption 4: Algorithm 2 needs a positive average cost lift.
  std::vector<int> treatment;
  std::vector<double> y_cost;
  treatment.reserve(window_.size());
  y_cost.reserve(window_.size());
  for (const FeedbackSample& sample : window_) {
    treatment.push_back(sample.treatment);
    y_cost.push_back(sample.y_cost);
  }
  return RctDataset::DiffInMeans(treatment, y_cost) > 0.0;
}

RctDataset RollingRecalibrator::WindowDataset() const {
  ROICL_CHECK_MSG(!window_.empty(), "empty feedback window");
  RctDataset dataset;
  for (const FeedbackSample& sample : window_) {
    dataset.x.AppendRow(sample.x);
    dataset.treatment.push_back(sample.treatment);
    dataset.y_revenue.push_back(sample.y_revenue);
    dataset.y_cost.push_back(sample.y_cost);
  }
  return dataset;
}

StatusOr<RecalibrationResult> RollingRecalibrator::Recalibrate(
    const pipeline::Pipeline& pipeline, double q_hat_current) const {
  obs::ScopedSpan span("monitor.recalibrate");
  RecalibrationResult result;
  result.q_hat_before = q_hat_current;
  result.window_n = window_.size();

  double q_new = 0.0;
  if (CanRecalibrateLabeled()) {
    RctDataset window = WindowDataset();
    StatusOr<pipeline::RoiScorer::ConformalInputs> inputs =
        pipeline.ConformalScoreInputs(window.x);
    if (!inputs.ok()) return inputs.status();
    // Algorithm 2 on the window, then Algorithm 3 at the target alpha:
    // a fresh split-conformal calibration on current-traffic labels.
    result.roi_star = core::BinarySearchRoiStar(
        window.treatment, window.y_revenue, window.y_cost,
        options_.epsilon);
    std::vector<double> scores = core::ConformalScores(
        result.roi_star, inputs.value().roi_hat, inputs.value().r_hat);
    q_new = core::ConformalScoreQuantile(scores, target_alpha_);
    if (!std::isfinite(q_new)) {
      // Same convention as train-time calibration: the most conservative
      // finite quantile when the rank exceeds the window.
      q_new = *std::max_element(scores.begin(), scores.end());
    }
    result.labeled = true;
    result.alpha_used = target_alpha_;
  } else {
    // Label-free fallback: requantile the original calibration scores at
    // the ACI-adjusted alpha. Miscoverage feedback has pushed alpha
    // below target, so the rank moves up the score distribution and the
    // intervals widen — no labels required.
    result.labeled = false;
    result.alpha_used = aci_.value();
    q_new = core::WindowedConformalScoreQuantile(
        calibration_scores_, calibration_scores_.size(),
        result.alpha_used);
    if (!std::isfinite(q_new)) {
      q_new = *std::max_element(calibration_scores_.begin(),
                                calibration_scores_.end());
    }
  }
  result.q_hat_after = q_new;
  result.performed = true;
  return result;
}

}  // namespace roicl::monitor
