#include "monitor/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::monitor {
namespace {

/// Probability floor for PSI: empty bins on either side would make the
/// logarithm infinite, so both distributions are floored and renormalized.
constexpr double kProbFloor = 1e-4;

std::vector<double> FloorAndNormalize(std::vector<double> probs) {
  double total = 0.0;
  for (double& p : probs) {
    p = std::max(p, kProbFloor);
    total += p;
  }
  ROICL_CHECK(total > 0.0);
  for (double& p : probs) p /= total;
  return probs;
}

}  // namespace

ReferenceDistribution ReferenceDistribution::FromSamples(
    std::vector<double> samples, int num_bins) {
  ROICL_CHECK_MSG(!samples.empty(), "reference needs samples");
  ROICL_CHECK_MSG(num_bins >= 2, "reference needs >= 2 bins");
  std::sort(samples.begin(), samples.end());
  ReferenceDistribution reference;
  reference.edges_.reserve(AsSize(num_bins - 1));
  for (int b = 1; b < num_bins; ++b) {
    double p = static_cast<double>(b) / static_cast<double>(num_bins);
    // Quantile over a sorted vector; type-7 interpolation like
    // common/stats, computed inline to avoid re-sorting per edge.
    double pos = p * static_cast<double>(samples.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    reference.edges_.push_back(samples[lo] +
                               frac * (samples[hi] - samples[lo]));
  }
  // Count the calibration mass per bin with the same BinOf the live path
  // uses, so ties on duplicate edges resolve identically on both sides.
  std::vector<double> probs(AsSize(num_bins), 0.0);
  for (double v : samples) {
    probs[AsSize(reference.BinOf(v))] += 1.0;
  }
  for (double& p : probs) p /= static_cast<double>(samples.size());
  reference.probs_ = FloorAndNormalize(std::move(probs));
  return reference;
}

int ReferenceDistribution::num_bins() const {
  return AsInt(probs_.size());
}

int ReferenceDistribution::BinOf(double value) const {
  // First edge >= value; values on an edge fall in the lower bin.
  auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  return AsInt(static_cast<size_t>(it - edges_.begin()));
}

void WindowCounts::Add(int bin) {
  ROICL_DCHECK(bin >= 0 && AsSize(bin) < counts.size());
  ++counts[AsSize(bin)];
  ++total;
}

void WindowCounts::Merge(const WindowCounts& other) {
  ROICL_CHECK(counts.size() == other.counts.size());
  for (size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  total += other.total;
}

void WindowCounts::Reset() {
  std::fill(counts.begin(), counts.end(), 0);
  total = 0;
}

double PopulationStabilityIndex(const ReferenceDistribution& reference,
                                const WindowCounts& window) {
  if (window.total == 0) return 0.0;
  ROICL_CHECK(window.counts.size() == reference.probabilities().size());
  std::vector<double> live(window.counts.size());
  for (size_t b = 0; b < live.size(); ++b) {
    live[b] = static_cast<double>(window.counts[b]) /
              static_cast<double>(window.total);
  }
  live = FloorAndNormalize(std::move(live));
  double psi = 0.0;
  const std::vector<double>& ref = reference.probabilities();
  for (size_t b = 0; b < live.size(); ++b) {
    psi += (live[b] - ref[b]) * std::log(live[b] / ref[b]);
  }
  ROICL_DCHECK_FINITE(psi);
  return psi;
}

double BinnedKsStatistic(const ReferenceDistribution& reference,
                         const WindowCounts& window) {
  if (window.total == 0) return 0.0;
  ROICL_CHECK(window.counts.size() == reference.probabilities().size());
  const std::vector<double>& ref = reference.probabilities();
  double cdf_live = 0.0;
  double cdf_ref = 0.0;
  double ks = 0.0;
  for (size_t b = 0; b < window.counts.size(); ++b) {
    cdf_live += static_cast<double>(window.counts[b]) /
                static_cast<double>(window.total);
    cdf_ref += ref[b];
    ks = std::max(ks, std::fabs(cdf_live - cdf_ref));
  }
  ROICL_DCHECK_FINITE(ks);
  return ks;
}

int DriftDetector::AddChannel(std::string name,
                              ReferenceDistribution reference) {
  Channel channel;
  channel.name = std::move(name);
  channel.window = WindowCounts(reference.num_bins());
  channel.reference = std::move(reference);
  channels_.push_back(std::move(channel));
  return AsInt(channels_.size()) - 1;
}

int DriftDetector::num_channels() const {
  return AsInt(channels_.size());
}

const std::string& DriftDetector::channel_name(int channel) const {
  return channels_[AsSize(channel)].name;
}

WindowCounts DriftDetector::MakeCounts(int channel) const {
  return WindowCounts(channels_[AsSize(channel)].reference.num_bins());
}

void DriftDetector::Accumulate(int channel, double value,
                               WindowCounts* counts) const {
  counts->Add(channels_[AsSize(channel)].reference.BinOf(value));
}

void DriftDetector::Commit(int channel, const WindowCounts& counts) {
  channels_[AsSize(channel)].window.Merge(counts);
}

uint64_t DriftDetector::min_window_n() const {
  uint64_t min_n = 0;
  bool first = true;
  for (const Channel& channel : channels_) {
    if (first || channel.window.total < min_n) min_n = channel.window.total;
    first = false;
  }
  return min_n;
}

std::vector<DriftReport> DriftDetector::Evaluate(bool reset) {
  std::vector<DriftReport> reports;
  reports.reserve(channels_.size());
  for (Channel& channel : channels_) {
    DriftReport report;
    report.channel = channel.name;
    report.psi = PopulationStabilityIndex(channel.reference, channel.window);
    report.ks = BinnedKsStatistic(channel.reference, channel.window);
    report.psi_threshold = thresholds_.psi;
    report.ks_threshold = thresholds_.ks;
    report.window_n = channel.window.total;
    report.triggered = channel.window.total >= thresholds_.min_window &&
                       (report.psi > thresholds_.psi ||
                        report.ks > thresholds_.ks);
    reports.push_back(std::move(report));
    if (reset) channel.window.Reset();
  }
  return reports;
}

}  // namespace roicl::monitor
