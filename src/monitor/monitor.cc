#include "monitor/monitor.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/conformal.h"
#include "core/roi_star.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace roicl::monitor {
namespace {

std::vector<double> MonitorLatencyBuckets() {
  return obs::LatencyMicrosBuckets();
}

/// Served rows between halvings of the live weight-bin counts — a
/// first-order exponential forgetting horizon for the likelihood ratio.
constexpr uint64_t kWeightAgingRows = 4096;

/// True when `dataset` supports Algorithm 2 without aborting: both RCT
/// arms present and a positive average cost lift (Assumption 4).
bool SupportsRoiStar(const RctDataset& dataset) {
  bool has_treated = false;
  bool has_control = false;
  for (int t : dataset.treatment) {
    if (t == 1) {
      has_treated = true;
    } else {
      has_control = true;
    }
  }
  if (!has_treated || !has_control) return false;
  return dataset.AverageCostLift() > 0.0;
}

}  // namespace

StatusOr<std::unique_ptr<ServingMonitor>> ServingMonitor::FromCalibration(
    const pipeline::Pipeline* pipeline, const RctDataset& calibration,
    MonitorOptions options) {
  ROICL_CHECK(pipeline != nullptr);
  if (!pipeline->has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "serving monitor requires a scorer with a conformal quantile "
        "(rDRP); scorer '" +
        pipeline->scorer_name() + "' has none");
  }
  if (calibration.n() == 0) {
    return Status::InvalidArgument("empty calibration set");
  }
  if (calibration.dim() != pipeline->feature_dim()) {
    return Status::InvalidArgument(
        "calibration feature dimension " +
        std::to_string(calibration.dim()) + " != pipeline feature_dim " +
        std::to_string(pipeline->feature_dim()));
  }
  if (!SupportsRoiStar(calibration)) {
    return Status::FailedPrecondition(
        "calibration set cannot support Algorithm 2 (needs both RCT arms "
        "and positive average cost lift)");
  }
  const core::IntervalBackend* backend = pipeline->interval_backend();
  if (backend == nullptr || !backend->calibrated()) {
    return Status::FailedPrecondition(
        "serving monitor requires a calibrated interval backend; scorer '" +
        pipeline->scorer_name() + "' carries none");
  }

  obs::ScopedSpan span("monitor.from_calibration");
  // Recompute the calibration-time conformity ingredients through the
  // pipeline: the uncalibrated points, the MC stds, the backend's aux
  // channels, roi*, and from them the conformity scores that anchor both
  // the score-drift channel and the label-free recalibration fallback.
  StatusOr<pipeline::RoiScorer::ConformalInputs> inputs =
      pipeline->ConformalScoreInputs(calibration.x);
  if (!inputs.ok()) return inputs.status();
  std::vector<double> aux_lo;
  std::vector<double> aux_hi;
  if (Status status = backend->StreamAux(calibration.x, &aux_lo, &aux_hi);
      !status.ok()) {
    return status;
  }
  double roi_star = core::BinarySearchRoiStar(
      calibration, options.recalibrator.epsilon);
  std::vector<double> calibration_scores;
  calibration_scores.reserve(AsSize(calibration.n()));
  for (int i = 0; i < calibration.n(); ++i) {
    calibration_scores.push_back(backend->StreamScore(
        inputs.value().roi_hat[AsSize(i)], inputs.value().r_hat[AsSize(i)],
        roi_star, aux_lo[AsSize(i)], aux_hi[AsSize(i)]));
  }
  StatusOr<std::vector<double>> served = pipeline->Score(calibration.x);
  if (!served.ok()) return served.status();

  DriftDetector detector(options.thresholds);
  std::vector<int> feature_channels;
  int monitored = std::min(options.max_feature_channels,
                           calibration.dim());
  for (int c = 0; c < monitored; ++c) {
    feature_channels.push_back(detector.AddChannel(
        "feature_" + std::to_string(c),
        ReferenceDistribution::FromSamples(calibration.x.Col(c),
                                           options.drift_bins)));
  }
  int score_channel = detector.AddChannel(
      "served_score", ReferenceDistribution::FromSamples(
                          served.value(), options.drift_bins));
  int conformal_channel = detector.AddChannel(
      "conformal_score", ReferenceDistribution::FromSamples(
                             calibration_scores, options.drift_bins));

  double alpha = pipeline->hyperparams().alpha;
  options.coverage.alpha = alpha;
  RollingRecalibrator recalibrator(backend, roi_star,
                                   std::move(calibration_scores), alpha,
                                   options.recalibrator);
  CoverageTracker tracker(options.coverage);

  const int num_channels = detector.num_channels();
  std::unique_ptr<ServingMonitor> monitor(new ServingMonitor(
      pipeline, std::move(options), std::move(detector),
      std::move(recalibrator), std::move(tracker), roi_star,
      std::move(feature_channels), score_channel, conformal_channel));
  obs::Info("serving monitor up",
            {{"channels", num_channels},
             {"calibration_n", calibration.n()},
             {"roi_star", roi_star},
             {"alpha", alpha}});
  return monitor;
}

ServingMonitor::ServingMonitor(const pipeline::Pipeline* pipeline,
                               MonitorOptions options,
                               DriftDetector detector,
                               RollingRecalibrator recalibrator,
                               CoverageTracker tracker,
                               double roi_star_calibration,
                               std::vector<int> feature_channels,
                               int score_channel, int conformal_channel)
    : pipeline_(pipeline),
      backend_(pipeline->interval_backend()),
      options_(std::move(options)),
      roi_star_calibration_(roi_star_calibration),
      feature_channels_(std::move(feature_channels)),
      score_channel_(score_channel),
      conformal_channel_(conformal_channel),
      detector_(std::move(detector)),
      recalibrator_(std::move(recalibrator)),
      tracker_(std::move(tracker)),
      weight_counts_(backend_->WeightBins(), 0.0) {}

void ServingMonitor::BindQuantileSwap(std::function<Status(double)> swap) {
  MutexLock lock(mu_);
  swap_ = std::move(swap);
}

void ServingMonitor::BindSlo(obs::SloEngine* slo) {
  MutexLock lock(mu_);
  slo_ = slo;
}

void ServingMonitor::ObserveScored(const Matrix& x,
                                   const std::vector<double>& scores) {
  ROICL_CHECK(AsSize(x.rows()) == scores.size());
  if (x.rows() == 0) return;
  MutexLock lock(mu_);
  uint64_t start_us = obs::MonotonicMicros();

  // One partial-count buffer per (row block, channel): worker threads
  // fill disjoint blocks, then the merge runs in ascending block order.
  // Because merges are integer adds, any order would give the same bits;
  // fixed order keeps the intent obvious.
  int n = x.rows();
  int batch = options_.engine.batch_size;
  ROICL_CHECK(batch > 0);
  int num_blocks = (n + batch - 1) / batch;
  int num_live = AsInt(feature_channels_.size()) + 1;
  std::vector<std::vector<WindowCounts>> partials(AsSize(num_blocks));
  for (auto& block_counts : partials) {
    block_counts.reserve(AsSize(num_live));
    for (int channel : feature_channels_) {
      block_counts.push_back(detector_.MakeCounts(channel));
    }
    block_counts.push_back(detector_.MakeCounts(score_channel_));
  }
  // The worker lambda runs on pool threads while this thread holds mu_,
  // so it may only *read* detector state (Accumulate writes into the
  // per-block counts, never the detector). Bind the guarded member to a
  // local reference here, in the provably-locked scope: the analysis
  // checks a lambda body as a separate function holding no capabilities,
  // so a direct detector_ mention inside it would not type-check.
  const DriftDetector& detector = detector_;
  nn::ForEachRowBlock(
      n, options_.engine,
      [&](int block, int row_begin, int row_end) {
        std::vector<WindowCounts>& counts = partials[AsSize(block)];
        for (int r = row_begin; r < row_end; ++r) {
          for (size_t f = 0; f < feature_channels_.size(); ++f) {
            detector.Accumulate(feature_channels_[f], x(r, AsInt(f)),
                                &counts[f]);
          }
          detector.Accumulate(score_channel_, scores[AsSize(r)],
                              &counts[AsSize(num_live - 1)]);
        }
      });
  for (const std::vector<WindowCounts>& block_counts : partials) {
    for (size_t f = 0; f < feature_channels_.size(); ++f) {
      detector_.Commit(feature_channels_[f], block_counts[f]);
    }
    detector_.Commit(score_channel_, block_counts[AsSize(num_live - 1)]);
  }

  // Weighted-conformal live mass: bin every served score under the
  // backend's reference binning, halving the counts periodically so the
  // likelihood ratio tracks recent traffic rather than all history.
  if (!weight_counts_.empty()) {
    for (double score : scores) {
      weight_counts_[backend_->WeightBinOf(score)] += 1.0;
    }
    weight_rows_ += static_cast<uint64_t>(n);
    if (weight_rows_ >= kWeightAgingRows) {
      for (double& count : weight_counts_) count *= 0.5;
      weight_rows_ /= 2;
    }
  }

  rows_since_eval_ += static_cast<uint64_t>(n);
  rows_seen_ += static_cast<uint64_t>(n);
  if (rows_since_eval_ >= options_.window_rows) EvaluateWindowLocked();

  obs::MetricsRegistry::Global()
      .GetHistogram("monitor.update_us", MonitorLatencyBuckets())
      ->Observe(static_cast<double>(obs::MonotonicMicros() - start_us));
}

void ServingMonitor::EvaluateWindowLocked() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  last_reports_ = detector_.Evaluate(/*reset=*/true);
  rows_since_eval_ = 0;
  metrics.GetCounter("monitor.windows")->Increment();

  double max_psi = 0.0;
  double max_ks = 0.0;
  bool triggered = false;
  for (const DriftReport& report : last_reports_) {
    max_psi = std::max(max_psi, report.psi);
    max_ks = std::max(max_ks, report.ks);
    if (report.triggered) {
      triggered = true;
      obs::Warn("drift detected", {{"channel", report.channel},
                                   {"psi", report.psi},
                                   {"ks", report.ks},
                                   {"window_n", report.window_n}});
    }
  }
  metrics.GetGauge("monitor.max_psi")->Set(max_psi);
  metrics.GetGauge("monitor.max_ks")->Set(max_ks);
  if (slo_ != nullptr) slo_->RecordDriftWindow(triggered);
  if (triggered) {
    metrics.GetCounter("monitor.drift_triggers")->Increment();
    drift_latched_ = true;
  }
}

Status ServingMonitor::AddOutcomes(const RctDataset& feedback) {
  if (feedback.n() == 0) return Status::Ok();
  MutexLock lock(mu_);
  obs::ScopedSpan span("monitor.add_outcomes");
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();

  // One MC sweep over the feedback rows gives the conformity
  // ingredients; they are cached on each window sample so recalibration
  // replays them without touching the feature matrix again.
  StatusOr<pipeline::RoiScorer::ConformalInputs> inputs =
      pipeline_->ConformalScoreInputs(feedback.x);
  if (!inputs.ok()) return inputs.status();
  std::vector<double> aux_lo;
  std::vector<double> aux_hi;
  if (Status status = backend_->StreamAux(feedback.x, &aux_lo, &aux_hi);
      !status.ok()) {
    return status;
  }
  StatusOr<double> q_hat = pipeline_->conformal_quantile();
  if (!q_hat.ok()) return q_hat.status();

  for (int i = 0; i < feedback.n(); ++i) {
    FeedbackSample sample;
    sample.x = feedback.x.Row(i);
    sample.treatment = feedback.treatment[AsSize(i)];
    sample.y_revenue = feedback.y_revenue[AsSize(i)];
    sample.y_cost = feedback.y_cost[AsSize(i)];
    sample.roi_hat = inputs.value().roi_hat[AsSize(i)];
    sample.r_hat = inputs.value().r_hat[AsSize(i)];
    sample.aux_lo = aux_lo[AsSize(i)];
    sample.aux_hi = aux_hi[AsSize(i)];
    recalibrator_.AddOutcome(std::move(sample));
  }

  // Score the batch against the freshest convergence point available:
  // the feedback window's own roi* once the window supports Algorithm 2,
  // the frozen calibration roi* until then.
  double roi_star = roi_star_calibration_;
  if (recalibrator_.CanRecalibrateLabeled()) {
    RctDataset window = recalibrator_.WindowDataset();
    roi_star = core::BinarySearchRoiStar(
        window.treatment, window.y_revenue, window.y_cost,
        options_.recalibrator.epsilon);
    metrics.GetGauge("monitor.roi_star_window")->Set(roi_star);
  }
  std::vector<double> scores;
  scores.reserve(AsSize(feedback.n()));
  for (int i = 0; i < feedback.n(); ++i) {
    scores.push_back(backend_->StreamScore(
        inputs.value().roi_hat[AsSize(i)], inputs.value().r_hat[AsSize(i)],
        roi_star, aux_lo[AsSize(i)], aux_hi[AsSize(i)]));
  }

  // Feed the conformal-score drift channel (feedback stream is sparse;
  // serial accumulation is fine) and the coverage/ACI state. A sample is
  // covered exactly when its score is within the live quantile —
  // equivalent to roi* landing inside the served interval.
  WindowCounts counts = detector_.MakeCounts(conformal_channel_);
  for (double score : scores) {
    detector_.Accumulate(conformal_channel_, score, &counts);
  }
  detector_.Commit(conformal_channel_, counts);
  for (double score : scores) {
    bool covered = score <= q_hat.value();
    if (slo_ != nullptr) slo_->RecordCoverage(covered);
    recalibrator_.ObserveCoverage(covered);
    if (tracker_.Observe(covered)) {
      metrics.GetCounter("monitor.coverage_alerts")->Increment();
      obs::Warn("empirical coverage below target",
                {{"coverage", tracker_.coverage()},
                 {"threshold", tracker_.alert_threshold()},
                 {"window_n", AsInt(tracker_.count())}});
    }
  }
  metrics.GetCounter("monitor.outcomes")
      ->Increment(static_cast<uint64_t>(feedback.n()));
  metrics.GetGauge("monitor.coverage")->Set(tracker_.coverage());
  metrics.GetGauge("monitor.alpha_effective")
      ->Set(recalibrator_.adaptive_alpha());
  outcomes_since_recal_ += static_cast<uint64_t>(feedback.n());
  return Status::Ok();
}

StatusOr<RecalibrationResult> ServingMonitor::MaybeRecalibrate(bool force) {
  MutexLock lock(mu_);
  bool cadence = options_.recalibrate_every > 0 &&
                 outcomes_since_recal_ >= options_.recalibrate_every;
  if (!force && !drift_latched_ && !cadence) {
    return RecalibrationResult{};  // performed = false
  }
  if (!swap_) {
    return Status::FailedPrecondition(
        "no quantile-swap target bound (call BindQuantileSwap)");
  }
  StatusOr<double> q_current = pipeline_->conformal_quantile();
  if (!q_current.ok()) return q_current.status();

  uint64_t start_us = obs::MonotonicMicros();
  StatusOr<RecalibrationResult> result =
      recalibrator_.Recalibrate(q_current.value(), weight_counts_);
  if (!result.ok()) return result.status();
  if (Status status = swap_(result.value().q_hat_after); !status.ok()) {
    return status;
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("monitor.recalibrations")->Increment();
  metrics.GetGauge("monitor.q_hat_before")
      ->Set(result.value().q_hat_before);
  metrics.GetGauge("monitor.q_hat_after")
      ->Set(result.value().q_hat_after);
  metrics
      .GetHistogram("monitor.recalibrate_us", MonitorLatencyBuckets())
      ->Observe(static_cast<double>(obs::MonotonicMicros() - start_us));
  obs::Info("conformal quantile recalibrated",
            {{"q_hat_before", result.value().q_hat_before},
             {"q_hat_after", result.value().q_hat_after},
             {"labeled", result.value().labeled},
             {"weighted_fallback", result.value().weighted_fallback},
             {"alpha_used", result.value().alpha_used},
             {"window_n", AsInt(result.value().window_n)},
             {"forced", force}});
  drift_latched_ = false;
  outcomes_since_recal_ = 0;
  return result;
}

bool ServingMonitor::drift_latched() const {
  MutexLock lock(mu_);
  return drift_latched_;
}

std::vector<DriftReport> ServingMonitor::last_reports() const {
  MutexLock lock(mu_);
  return last_reports_;
}

double ServingMonitor::coverage() const {
  MutexLock lock(mu_);
  return tracker_.coverage();
}

double ServingMonitor::adaptive_alpha() const {
  MutexLock lock(mu_);
  return recalibrator_.adaptive_alpha();
}

std::uint64_t ServingMonitor::rows_seen() const {
  MutexLock lock(mu_);
  return rows_seen_;
}

}  // namespace roicl::monitor
