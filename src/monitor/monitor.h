#ifndef ROICL_MONITOR_MONITOR_H_
#define ROICL_MONITOR_MONITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "core/interval_backend.h"
#include "data/dataset.h"
#include "monitor/coverage_tracker.h"
#include "monitor/drift.h"
#include "monitor/recalibrate.h"
#include "nn/batch_forward.h"
#include "pipeline/pipeline.h"

/// \file
/// The serving-path monitor: glues the streaming drift detector, the
/// rolling conformal recalibrator, and the shadow coverage tracker to a
/// live `Pipeline` / `ScoringService`.
///
/// Two input streams feed it:
///  * the *scored* stream (every served request's features and scores),
///    via `ObserveScored` — typically bound to
///    `ServiceOptions::on_scored`; label-free, drives drift detection;
///  * the *feedback* stream (delayed labeled outcomes), via
///    `AddOutcomes`; drives the coverage tracker, the ACI state, the
///    conformal-score drift channel, and the sliding recalibration
///    window.
///
/// A drift trigger latches; the next `MaybeRecalibrate` call recomputes
/// q_hat (labeled window when possible, ACI fallback otherwise) and swaps
/// it into the live pipeline through the bound swap callback — atomically
/// with respect to concurrent scoring (see RdrpModel::set_q_hat).
namespace roicl::obs {
class SloEngine;
}  // namespace roicl::obs

namespace roicl::monitor {

struct MonitorOptions {
  /// Bins per drift channel (quantile bins over calibration samples).
  int drift_bins = 10;
  DriftThresholds thresholds;
  /// Drift channels are evaluated once this many scored rows accumulate
  /// (tumbling windows).
  uint64_t window_rows = 512;
  /// Monitor at most this many leading feature columns (per-channel cost
  /// is small but not free on wide feature spaces).
  int max_feature_channels = 8;
  /// Feedback sliding-window and fallback knobs.
  RecalibratorOptions recalibrator;
  /// Coverage-ring knobs (alpha is overridden from the pipeline target).
  CoverageTrackerOptions coverage;
  /// Recalibrate every this many feedback outcomes even without a drift
  /// trigger; 0 disables cadence-based recalibration (drift-only).
  uint64_t recalibrate_every = 0;
  /// Engine settings for parallel drift accumulation over scored rows.
  nn::BatchOptions engine;
};

/// See file comment. Thread-safe: all entry points serialize on one
/// mutex, so the service dispatcher thread, the feedback thread, and an
/// operator thread calling MaybeRecalibrate may interleave freely.
class ServingMonitor {
 public:
  /// Captures reference distributions from the calibration set: one
  /// channel per monitored feature column, one for the served score
  /// stream, and one for the conformal scores themselves (the most
  /// decision-relevant reference). Requires a pipeline whose scorer
  /// carries a conformal quantile and an interval backend (rDRP loaded
  /// through the pipeline artifact). Returned by pointer: the
  /// monitor owns a mutex (and is captured by reference in service
  /// callbacks), so it is neither movable nor copyable.
  static StatusOr<std::unique_ptr<ServingMonitor>> FromCalibration(
      const pipeline::Pipeline* pipeline, const RctDataset& calibration,
      MonitorOptions options);

  ServingMonitor(const ServingMonitor&) = delete;
  ServingMonitor& operator=(const ServingMonitor&) = delete;

  /// Installs the q_hat swap target (e.g. binding
  /// ScoringService::SetConformalQuantile). Without one,
  /// MaybeRecalibrate computes but cannot swap and returns an error.
  void BindQuantileSwap(std::function<Status(double)> swap)
      ROICL_EXCLUDES(mu_);

  /// Routes monitor events into a declarative SLO engine: every labeled
  /// outcome becomes a coverage event (covered iff its conformal score is
  /// within the live quantile) and every drift-window evaluation becomes
  /// a drift event (bad iff any channel triggered). The engine must
  /// outlive the monitor; nullptr detaches.
  void BindSlo(obs::SloEngine* slo) ROICL_EXCLUDES(mu_);

  /// Ingests one served batch: bins every monitored feature column and
  /// the scores into the live drift windows, evaluating the detector
  /// whenever `window_rows` rows have accumulated. Binning fans out
  /// across row blocks per `options.engine`; per-block partial counts
  /// merge in block order, so the committed state is bit-identical at
  /// any thread count.
  void ObserveScored(const Matrix& x, const std::vector<double>& scores)
      ROICL_EXCLUDES(mu_);

  /// Ingests labeled feedback: extends the recalibration window, updates
  /// the conformal-score drift channel, the coverage ring, and the ACI
  /// state. One MC sweep over `feedback.x` computes the conformity
  /// ingredients, which are cached per sample so recalibration itself
  /// never re-sweeps the window.
  Status AddOutcomes(const RctDataset& feedback) ROICL_EXCLUDES(mu_);

  /// Recalibrates and swaps q_hat when a drift trigger is latched or the
  /// feedback cadence elapsed (always, when `force`). Returns
  /// performed = false when nothing triggered.
  StatusOr<RecalibrationResult> MaybeRecalibrate(bool force = false)
      ROICL_EXCLUDES(mu_);

  bool drift_latched() const ROICL_EXCLUDES(mu_);
  /// Reports from the most recent window evaluation (empty before one).
  std::vector<DriftReport> last_reports() const ROICL_EXCLUDES(mu_);
  double coverage() const ROICL_EXCLUDES(mu_);
  double adaptive_alpha() const ROICL_EXCLUDES(mu_);
  std::uint64_t rows_seen() const ROICL_EXCLUDES(mu_);

 private:
  /// Channel indices are constructor parameters (not assigned after the
  /// fact by FromCalibration) so that every member write happens before
  /// the monitor is published — the annotations surfaced the old
  /// post-construction assignment as the one unguarded write in the
  /// class.
  ServingMonitor(const pipeline::Pipeline* pipeline, MonitorOptions options,
                 DriftDetector detector, RollingRecalibrator recalibrator,
                 CoverageTracker tracker, double roi_star_calibration,
                 std::vector<int> feature_channels, int score_channel,
                 int conformal_channel);

  /// Evaluates the drift detector over the accumulated window, updates
  /// metrics, and latches any trigger. Caller holds mu_.
  void EvaluateWindowLocked() ROICL_REQUIRES(mu_);

  // Immutable after construction (set before the monitor is published);
  // read freely without mu_.
  const pipeline::Pipeline* pipeline_;
  /// The scorer's interval backend (streaming score arithmetic and
  /// weight binning); owned by the pipeline, outlives the monitor.
  const core::IntervalBackend* backend_;
  MonitorOptions options_;
  /// Frozen calibration-time convergence point: the coverage fallback
  /// target while the feedback window cannot support Algorithm 2.
  double roi_star_calibration_;
  std::vector<int> feature_channels_;  ///< column -> channel index
  int score_channel_ = -1;
  int conformal_channel_ = -1;

  mutable Mutex mu_;
  std::function<Status(double)> swap_ ROICL_GUARDED_BY(mu_);
  obs::SloEngine* slo_ ROICL_GUARDED_BY(mu_) = nullptr;
  DriftDetector detector_ ROICL_GUARDED_BY(mu_);
  RollingRecalibrator recalibrator_ ROICL_GUARDED_BY(mu_);
  CoverageTracker tracker_ ROICL_GUARDED_BY(mu_);
  /// Live served-score counts per backend weight bin (empty when the
  /// backend has no weight bins). Aged by halving so the likelihood
  /// ratio tracks recent traffic.
  std::vector<double> weight_counts_ ROICL_GUARDED_BY(mu_);
  std::uint64_t weight_rows_ ROICL_GUARDED_BY(mu_) = 0;
  std::uint64_t rows_since_eval_ ROICL_GUARDED_BY(mu_) = 0;
  std::uint64_t rows_seen_ ROICL_GUARDED_BY(mu_) = 0;
  std::uint64_t outcomes_since_recal_ ROICL_GUARDED_BY(mu_) = 0;
  bool drift_latched_ ROICL_GUARDED_BY(mu_) = false;
  std::vector<DriftReport> last_reports_ ROICL_GUARDED_BY(mu_);
};

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_MONITOR_H_
