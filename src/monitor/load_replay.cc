#include "monitor/load_replay.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::monitor {
namespace {

/// Late-bound monitor target for on_scored (same pattern as replay.cc:
/// the service must exist before the monitor that watches its pipeline).
struct LoadMonitorHook {
  std::atomic<ServingMonitor*> monitor{nullptr};
};

/// `count` rows of `source` starting at `begin`, wrapping around — the
/// replay slices one finite labeled stream into unbounded traffic.
Matrix TakeRows(const RctDataset& source, uint64_t begin, int count) {
  std::vector<int> indices(AsSize(count));
  for (int i = 0; i < count; ++i) {
    indices[AsSize(i)] = static_cast<int>(
        (begin + static_cast<uint64_t>(i)) %
        static_cast<uint64_t>(source.n()));
  }
  return source.Subset(indices).x;
}

RctDataset TakeFeedback(const RctDataset& source, uint64_t begin,
                        int count) {
  std::vector<int> indices(AsSize(count));
  for (int i = 0; i < count; ++i) {
    indices[AsSize(i)] = static_cast<int>(
        (begin + static_cast<uint64_t>(i)) %
        static_cast<uint64_t>(source.n()));
  }
  return source.Subset(indices);
}

/// Exact order statistic over a copy (the "higher" convention at the
/// boundary, matching Histogram::ApproxQuantile's rank rule).
double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = std::ceil(q * static_cast<double>(values.size()));
  size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return values[std::min(index, values.size() - 1)];
}

bool MessageContains(const Status& status, std::string_view needle) {
  return status.message().find(needle) != std::string::npos;
}

struct PhaseOutcome {
  std::vector<double> latencies;  ///< client-observed, ok requests only
  int submitted = 0;
  int ok = 0;
  int rejected = 0;
  int deadline_exceeded = 0;
  int errors = 0;
  bool interrupted = false;
};

/// Fires `requests` requests of `rows` rows each from `client_threads`
/// threads. `wait_each` waits for every completion before the next
/// submit (closed loop); otherwise all requests are in flight at once
/// (open loop — the burst shape that overflows the queue).
PhaseOutcome RunTraffic(pipeline::ScoringService* service,
                        const RctDataset& stream, int requests, int rows,
                        int64_t deadline_us, bool wait_each,
                        int client_threads, std::atomic<uint64_t>* cursor,
                        obs::SloEngine* slo,
                        const std::function<bool()>& cancelled) {
  PhaseOutcome merged;
  Mutex merge_mu;
  std::atomic<bool> stop{false};
  auto worker = [&](int share) {
    PhaseOutcome local;
    std::vector<std::pair<uint64_t,
                          std::future<StatusOr<std::vector<double>>>>>
        in_flight;
    auto settle = [&](uint64_t t0,
                      StatusOr<std::vector<double>> result) {
      const double latency =
          static_cast<double>(obs::MonotonicMicros() - t0);
      if (result.ok()) {
        local.ok += 1;
        local.latencies.push_back(latency);
        if (slo != nullptr) slo->RecordLatency(latency);
      } else if (MessageContains(result.status(), "queue full")) {
        local.rejected += 1;
      } else if (MessageContains(result.status(), "deadline exceeded")) {
        local.deadline_exceeded += 1;
      } else {
        local.errors += 1;
      }
      if (slo != nullptr) {
        slo->RecordAdmission(
            !(!result.ok() &&
              MessageContains(result.status(), "queue full")));
      }
    };
    for (int i = 0; i < share; ++i) {
      if (stop.load(std::memory_order_relaxed)) break;
      if (cancelled && cancelled()) {
        local.interrupted = true;
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      uint64_t begin = cursor->fetch_add(static_cast<uint64_t>(rows),
                                         std::memory_order_relaxed);
      Matrix x = TakeRows(stream, begin, rows);
      local.submitted += 1;
      uint64_t t0 = obs::MonotonicMicros();
      std::future<StatusOr<std::vector<double>>> future =
          service->Submit(std::move(x), deadline_us);
      if (wait_each) {
        settle(t0, future.get());
      } else {
        in_flight.emplace_back(t0, std::move(future));
      }
    }
    for (auto& [t0, future] : in_flight) settle(t0, future.get());
    MutexLock lock(merge_mu);
    merged.submitted += local.submitted;
    merged.ok += local.ok;
    merged.rejected += local.rejected;
    merged.deadline_exceeded += local.deadline_exceeded;
    merged.errors += local.errors;
    merged.interrupted |= local.interrupted;
    merged.latencies.insert(merged.latencies.end(),
                            local.latencies.begin(),
                            local.latencies.end());
  };
  int threads = std::max(1, client_threads);
  std::vector<std::thread> pool;
  pool.reserve(AsSize(threads));
  for (int t = 0; t < threads; ++t) {
    int share = requests / threads + (t < requests % threads ? 1 : 0);
    pool.emplace_back(worker, share);
  }
  for (std::thread& t : pool) t.join();
  return merged;
}

LoadPhaseStat ToStat(const std::string& phase,
                     const PhaseOutcome& outcome) {
  LoadPhaseStat stat;
  stat.phase = phase;
  stat.submitted = outcome.submitted;
  stat.ok = outcome.ok;
  stat.rejected = outcome.rejected;
  stat.deadline_exceeded = outcome.deadline_exceeded;
  stat.errors = outcome.errors;
  stat.p50_us = ExactQuantile(outcome.latencies, 0.50);
  stat.p95_us = ExactQuantile(outcome.latencies, 0.95);
  stat.p99_us = ExactQuantile(outcome.latencies, 0.99);
  return stat;
}

std::string RenderNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

}  // namespace

std::string LoadReplayResult::ToJson() const {
  std::string out = "{\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    const LoadPhaseStat& p = phases[i];
    if (i > 0) out += ',';
    out += "{\"phase\":\"" + p.phase + "\"";
    out += ",\"submitted\":" + std::to_string(p.submitted);
    out += ",\"ok\":" + std::to_string(p.ok);
    out += ",\"rejected\":" + std::to_string(p.rejected);
    out += ",\"deadline_exceeded\":" +
           std::to_string(p.deadline_exceeded);
    out += ",\"errors\":" + std::to_string(p.errors);
    out += ",\"p50_us\":" + RenderNumber(p.p50_us);
    out += ",\"p95_us\":" + RenderNumber(p.p95_us);
    out += ",\"p99_us\":" + RenderNumber(p.p99_us);
    out += '}';
  }
  out += "],\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageBreakdown& s = stages[i];
    if (i > 0) out += ',';
    out += "{\"stage\":\"" + s.stage + "\"";
    out += ",\"count\":" + std::to_string(s.count);
    out += ",\"p50_us\":" + RenderNumber(s.p50_us);
    out += ",\"p99_us\":" + RenderNumber(s.p99_us);
    out += ",\"exemplar_trace_ids\":[";
    for (size_t j = 0; j < s.exemplar_trace_ids.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(s.exemplar_trace_ids[j]);
    }
    out += "]}";
  }
  out += "],\"totals\":{";
  out += "\"submitted\":" + std::to_string(total_submitted);
  out += ",\"ok\":" + std::to_string(total_ok);
  out += ",\"rejected\":" + std::to_string(total_rejected);
  out += ",\"deadline_exceeded\":" +
         std::to_string(total_deadline_exceeded);
  out += ",\"errors\":" + std::to_string(total_errors);
  out += ",\"reject_rate\":" + RenderNumber(reject_rate);
  out += ",\"p50_us\":" + RenderNumber(p50_us);
  out += ",\"p95_us\":" + RenderNumber(p95_us);
  out += ",\"p99_us\":" + RenderNumber(p99_us);
  out += ",\"quantile_swaps\":" + std::to_string(quantile_swaps);
  out += "},\"slo\":" + slo_verdict_json;
  out += ",\"slo_worst_state\":\"" + slo_worst_state + "\"";
  out += ",\"interrupted\":";
  out += interrupted ? "true" : "false";
  out += '}';
  return out;
}

StatusOr<LoadReplayResult> RunLoadReplay(pipeline::Pipeline pipeline,
                                         const RctDataset& calibration,
                                         const RctDataset& stream,
                                         const LoadReplayOptions& options) {
  if (options.rows_per_request <= 0 || options.requests_per_phase <= 0) {
    return Status::InvalidArgument(
        "rows_per_request and requests_per_phase must be positive");
  }
  if (options.burst_factor <= 0 || options.oversized_factor <= 0) {
    return Status::InvalidArgument(
        "burst_factor and oversized_factor must be positive");
  }
  if (stream.n() == 0) {
    return Status::InvalidArgument("empty load-replay stream");
  }
  if (!pipeline.has_conformal_quantile()) {
    return Status::FailedPrecondition(
        "load-replay requires a scorer with a conformal quantile (rDRP); "
        "scorer '" +
        pipeline.scorer_name() + "' has none");
  }

  std::unique_ptr<obs::SloEngine> slo;
  if (!options.slos.empty()) {
    slo = std::make_unique<obs::SloEngine>(options.slos);
  }

  auto hook = std::make_shared<LoadMonitorHook>();
  pipeline::ServiceOptions service_options = options.service;
  service_options.on_scored = [hook](const pipeline::ServeContext&,
                                     const Matrix& x,
                                     const std::vector<double>& scores) {
    ServingMonitor* monitor = hook->monitor.load();
    if (monitor != nullptr) monitor->ObserveScored(x, scores);
  };
  pipeline::ScoringService service(std::move(pipeline), service_options);

  StatusOr<std::unique_ptr<ServingMonitor>> monitor_or =
      ServingMonitor::FromCalibration(&service.pipeline(), calibration,
                                      options.monitor);
  if (!monitor_or.ok()) return monitor_or.status();
  ServingMonitor& monitor = *monitor_or.value();
  monitor.BindQuantileSwap([&service](double q_hat) {
    return service.SetConformalQuantile(q_hat);
  });
  if (slo != nullptr) monitor.BindSlo(slo.get());
  hook->monitor.store(&monitor);

  LoadReplayResult result;
  std::atomic<uint64_t> cursor{options.seed % 97};
  std::vector<double> all_latencies;
  uint64_t feedback_cursor = 0;

  struct PhasePlan {
    const char* name;
    int requests;
    int rows;
    int64_t deadline_us;
    bool wait_each;
    bool storm;
  };
  const std::vector<PhasePlan> plan = {
      {"baseline", options.requests_per_phase, options.rows_per_request, 0,
       true, false},
      {"burst", options.requests_per_phase * options.burst_factor,
       options.rows_per_request, 0, false, false},
      {"deadline_heavy", options.requests_per_phase,
       options.rows_per_request, options.tight_deadline_micros, false,
       false},
      {"oversized", std::max(1, options.requests_per_phase / 4),
       options.rows_per_request * options.oversized_factor, 0, true,
       false},
      {"swap_storm", options.requests_per_phase, options.rows_per_request,
       0, true, true},
  };

  for (const PhasePlan& phase : plan) {
    if (result.interrupted) break;
    // The swap storm races mid-flight quantile swaps against live
    // scoring (the TSan target); the final swap restores the original
    // quantile so later phases score under the same interval.
    std::thread storm;
    int swaps_done = 0;
    if (phase.storm) {
      storm = std::thread([&service, &swaps_done, &options] {
        StatusOr<double> q0 = service.pipeline().conformal_quantile();
        if (!q0.ok()) return;
        for (int i = 0; i < options.swap_storm_swaps; ++i) {
          double q = q0.value() * (i % 2 == 0 ? 1.1 : 0.9);
          if (!service.SetConformalQuantile(q).ok()) break;
          ++swaps_done;
          std::this_thread::yield();
        }
        Status restored = service.SetConformalQuantile(q0.value());
        (void)restored;
      });
    }
    PhaseOutcome outcome = RunTraffic(
        &service, stream, phase.requests, phase.rows, phase.deadline_us,
        phase.wait_each, options.client_threads, &cursor, slo.get(),
        options.cancelled);
    if (storm.joinable()) storm.join();
    result.quantile_swaps += swaps_done;

    result.phases.push_back(ToStat(phase.name, outcome));
    result.total_submitted += outcome.submitted;
    result.total_ok += outcome.ok;
    result.total_rejected += outcome.rejected;
    result.total_deadline_exceeded += outcome.deadline_exceeded;
    result.total_errors += outcome.errors;
    result.interrupted |= outcome.interrupted;
    all_latencies.insert(all_latencies.end(), outcome.latencies.begin(),
                         outcome.latencies.end());

    // Labeled feedback between phases keeps the coverage and drift SLOs
    // fed and lets the recalibrator react to what the phase did.
    if (options.feedback_rows > 0 && !result.interrupted) {
      RctDataset feedback =
          TakeFeedback(stream, feedback_cursor, options.feedback_rows);
      feedback_cursor += static_cast<uint64_t>(options.feedback_rows);
      if (Status status = monitor.AddOutcomes(feedback); !status.ok()) {
        return status;
      }
      StatusOr<RecalibrationResult> recal = monitor.MaybeRecalibrate();
      if (!recal.ok()) return recal.status();
    }
  }

  result.reject_rate =
      result.total_submitted == 0
          ? 0.0
          : static_cast<double>(result.total_rejected) /
                static_cast<double>(result.total_submitted);
  result.p50_us = ExactQuantile(all_latencies, 0.50);
  result.p95_us = ExactQuantile(all_latencies, 0.95);
  result.p99_us = ExactQuantile(all_latencies, 0.99);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  for (const char* stage :
       {"queue", "assemble", "score", "conformal", "observe"}) {
    obs::Histogram* histogram = metrics.GetHistogram(
        std::string("serve.stage.") + stage + "_us",
        obs::LatencyMicrosBuckets());
    StageBreakdown breakdown;
    breakdown.stage = stage;
    breakdown.count = histogram->count();
    breakdown.p50_us = histogram->ApproxQuantile(0.50);
    breakdown.p99_us = histogram->ApproxQuantile(0.99);
    for (const obs::Exemplar& exemplar : histogram->Exemplars()) {
      if (exemplar.valid) {
        breakdown.exemplar_trace_ids.push_back(exemplar.trace_id);
      }
    }
    result.stages.push_back(std::move(breakdown));
  }

  if (slo != nullptr) {
    result.slo_verdict_json = slo->VerdictJson();
    result.slo_worst_state = obs::SloStateName(slo->PeakWorstState());
  }
  obs::Info("load replay done",
            {{"submitted", result.total_submitted},
             {"ok", result.total_ok},
             {"rejected", result.total_rejected},
             {"deadline_exceeded", result.total_deadline_exceeded},
             {"p99_us", result.p99_us},
             {"slo_worst", result.slo_worst_state},
             {"interrupted", result.interrupted}});
  return result;
}

}  // namespace roicl::monitor
