#ifndef ROICL_MONITOR_REPLAY_H_
#define ROICL_MONITOR_REPLAY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "monitor/monitor.h"
#include "pipeline/pipeline.h"
#include "pipeline/service.h"

/// \file
/// Shift-replay harness: streams a labeled dataset through a live
/// ScoringService in fixed-size batches, injecting covariate shift
/// (synth::ResampleWithCovariateShift) from a chosen batch onward, with
/// the ServingMonitor watching the scored stream and the labeled
/// feedback. Records, per batch, the drift state, the rolling empirical
/// coverage, and the live q_hat — the detection-latency and
/// coverage-recovery curves of EXPERIMENTS.md and the `monitor-replay`
/// CLI subcommand.
namespace roicl::monitor {

struct ReplayOptions {
  /// Rows per served batch.
  int batch_rows = 64;
  /// Number of batches streamed in total.
  int num_batches = 40;
  /// Batches with index >= shift_at_batch draw from the shifted stream.
  int shift_at_batch = 20;
  /// Covariate-shift injection (see synth::ResampleWithCovariateShift).
  int shift_feature = 0;
  double shift_gamma = 2.5;
  /// Seed for the resampling streams (pre- and post-shift draws).
  uint64_t seed = 7;
  MonitorOptions monitor;
  pipeline::ServiceOptions service;
};

/// Per-batch trace point of a replay.
struct ReplayBatchStat {
  int batch = 0;
  bool shifted = false;          ///< batch drawn from the shifted stream
  bool drift_latched = false;    ///< detector latched after this batch
  bool recalibrated = false;     ///< a q_hat swap happened on this batch
  double coverage = 1.0;         ///< rolling empirical coverage
  double q_hat = 0.0;            ///< live quantile after this batch
  double max_psi = 0.0;          ///< max over channels, last evaluation
  double max_ks = 0.0;
};

struct ReplayResult {
  std::vector<ReplayBatchStat> batches;
  int shift_batch = -1;
  /// First batch at which the detector latched at/after the shift; -1 if
  /// never detected.
  int detect_batch = -1;
  /// First batch with a recalibration swap at/after the shift; -1 never.
  int recalibrate_batch = -1;
  double q_hat_initial = 0.0;
  double q_hat_final = 0.0;
  /// Mean per-batch coverage over the three replay phases: before the
  /// shift, between shift and recalibration, and after recalibration.
  double coverage_pre_shift = 1.0;
  double coverage_shift_to_recal = 1.0;
  double coverage_post_recal = 1.0;
};

/// Runs the replay. `pipeline` is consumed (the service owns it);
/// `calibration` anchors the monitor's references; `stream` supplies the
/// labeled traffic to resample from (pre-shift batches are unweighted
/// resamples, post-shift batches are importance-resampled). The pipeline
/// scorer must carry a conformal quantile (rDRP).
StatusOr<ReplayResult> RunReplay(pipeline::Pipeline pipeline,
                                 const RctDataset& calibration,
                                 const RctDataset& stream,
                                 const ReplayOptions& options);

}  // namespace roicl::monitor

#endif  // ROICL_MONITOR_REPLAY_H_
