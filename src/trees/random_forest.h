#ifndef ROICL_TREES_RANDOM_FOREST_H_
#define ROICL_TREES_RANDOM_FOREST_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "trees/regression_tree.h"

namespace roicl::trees {

/// Hyperparameters for bagged forests.
struct ForestConfig {
  int num_trees = 50;
  TreeConfig tree;
  /// Bootstrap fraction of the training rows drawn (with replacement) per
  /// tree.
  double sample_fraction = 1.0;
  uint64_t seed = 7;
};

/// Bagged regression forest (Breiman-style): bootstrap rows, random
/// feature subsets per split, mean aggregation.
class RandomForestRegressor {
 public:
  explicit RandomForestRegressor(const ForestConfig& config)
      : config_(config) {}

  /// Fits on all rows of (x, y). If config.tree.max_features <= 0, it is
  /// defaulted to ceil(sqrt(d)) as usual for forests.
  void Fit(const Matrix& x, const std::vector<double>& y);

  double Predict(const double* row) const;

  /// Batched predict: row blocks fan out across the global ThreadPool.
  /// Each output element depends only on its own row, so the result is
  /// identical to the per-row loop at any thread count.
  std::vector<double> Predict(const Matrix& x) const;

  bool fitted() const { return !trees_.empty(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Serializes the fitted ensemble ("roicl-forest-v1": tree count, then
  /// each tree's node array). Requires fitted().
  Status Save(std::ostream& out) const;
  /// Replaces this forest's trees with an ensemble written by Save().
  /// Malformed input returns a descriptive Status and leaves the forest
  /// unchanged.
  Status Load(std::istream& in);

 private:
  ForestConfig config_;
  std::vector<RegressionTree> trees_;
};

}  // namespace roicl::trees

#endif  // ROICL_TREES_RANDOM_FOREST_H_
