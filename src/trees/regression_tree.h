#ifndef ROICL_TREES_REGRESSION_TREE_H_
#define ROICL_TREES_REGRESSION_TREE_H_

#include <vector>

#include "trees/tree_common.h"

namespace roicl::trees {

/// CART regression tree: greedy variance-reduction splits, mean leaves.
class RegressionTree {
 public:
  /// Grows the tree on rows `index` of (x, y). `rng` drives feature
  /// subsampling and may be nullptr when config.max_features <= 0.
  void Fit(const Matrix& x, const std::vector<double>& y,
           const std::vector<int>& index, const TreeConfig& config,
           Rng* rng);

  /// Predicts one feature row. Requires Fit() first.
  double Predict(const double* row) const;

  /// Predicts all rows of a matrix.
  std::vector<double> Predict(const Matrix& x) const;

  bool fitted() const { return !nodes_.empty(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Rebuilds a tree from a node array (deserialization). The array must
  /// already be structurally validated (ReadTreeNodes does this).
  static RegressionTree FromNodes(std::vector<TreeNode> nodes) {
    RegressionTree tree;
    tree.nodes_ = std::move(nodes);
    return tree;
  }

 private:
  int Grow(const Matrix& x, const std::vector<double>& y,
           std::vector<int>&& index, const TreeConfig& config, Rng* rng,
           int depth);

  std::vector<TreeNode> nodes_;
};

}  // namespace roicl::trees

#endif  // ROICL_TREES_REGRESSION_TREE_H_
