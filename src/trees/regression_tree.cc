#include "trees/regression_tree.h"

#include <limits>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::trees {
namespace {

double MeanOf(const std::vector<double>& y, const std::vector<int>& index) {
  double sum = 0.0;
  for (int i : index) sum += y[AsSize(i)];
  return index.empty() ? 0.0 : sum / static_cast<double>(index.size());
}

}  // namespace

void RegressionTree::Fit(const Matrix& x, const std::vector<double>& y,
                         const std::vector<int>& index,
                         const TreeConfig& config, Rng* rng) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(!index.empty());
  nodes_.clear();
  std::vector<int> root = index;
  Grow(x, y, std::move(root), config, rng, /*depth=*/0);
}

int RegressionTree::Grow(const Matrix& x, const std::vector<double>& y,
                         std::vector<int>&& index, const TreeConfig& config,
                         Rng* rng, int depth) {
  int node_id = AsInt(nodes_.size());
  nodes_.emplace_back();
  TreeNode& root = nodes_[AsSize(node_id)];
  root.num_samples = AsInt(index.size());
  root.value = MeanOf(y, index);

  if (depth >= config.max_depth ||
      static_cast<int>(index.size()) < 2 * config.min_samples_leaf) {
    return node_id;
  }

  // Parent sum-of-squares baseline: maximize SSE reduction, equivalently
  // maximize n_l*mean_l^2 + n_r*mean_r^2.
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<int> features =
      SampleFeatures(x.cols(), config.max_features, rng);
  double parent_sum = 0.0;
  for (int i : index) parent_sum += y[AsSize(i)];
  double n_total = static_cast<double>(index.size());
  double parent_score = parent_sum * parent_sum / n_total;

  for (int feature : features) {
    std::vector<double> thresholds = CandidateThresholds(
        x, index, feature, config.candidate_thresholds);
    for (double threshold : thresholds) {
      double sum_left = 0.0;
      int n_left = 0;
      for (int i : index) {
        if (x(i, feature) <= threshold) {
          sum_left += y[AsSize(i)];
          ++n_left;
        }
      }
      int n_right = static_cast<int>(index.size()) - n_left;
      if (n_left < config.min_samples_leaf ||
          n_right < config.min_samples_leaf) {
        continue;
      }
      double sum_right = parent_sum - sum_left;
      double score = sum_left * sum_left / n_left +
                     sum_right * sum_right / n_right;
      double gain = score - parent_score;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<int> left_index, right_index;
  left_index.reserve(index.size());
  right_index.reserve(index.size());
  for (int i : index) {
    (x(i, best_feature) <= best_threshold ? left_index : right_index)
        .push_back(i);
  }
  index.clear();
  index.shrink_to_fit();

  int left = Grow(x, y, std::move(left_index), config, rng, depth + 1);
  int right = Grow(x, y, std::move(right_index), config, rng, depth + 1);
  TreeNode& node = nodes_[AsSize(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::Predict(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  return PredictTree(nodes_, row);
}

std::vector<double> RegressionTree::Predict(const Matrix& x) const {
  std::vector<double> out(AsSize(x.rows()));
  for (int r = 0; r < x.rows(); ++r) out[AsSize(r)] = Predict(x.RowPtr(r));
  return out;
}

}  // namespace roicl::trees
