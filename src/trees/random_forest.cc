#include "trees/random_forest.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace roicl::trees {

void RandomForestRegressor::Fit(const Matrix& x,
                                const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(x.rows() > 0);
  ROICL_CHECK(config_.num_trees > 0);
  ROICL_CHECK(config_.sample_fraction > 0.0 &&
              config_.sample_fraction <= 1.0);

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features <= 0) {
    tree_config.max_features =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  }

  int n = x.rows();
  int bag_size = std::max(
      1, static_cast<int>(std::round(config_.sample_fraction * n)));

  // Pre-split RNGs so tree growth is deterministic regardless of thread
  // scheduling.
  Rng seeder(config_.seed, /*stream=*/11);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(AsSize(config_.num_trees));
  for (int t = 0; t < config_.num_trees; ++t) {
    tree_rngs.push_back(seeder.Split());
  }

  trees_.assign(AsSize(config_.num_trees), RegressionTree());
  GlobalThreadPool().ParallelFor(0, config_.num_trees, [&](int t) {
    Rng& rng = tree_rngs[AsSize(t)];
    std::vector<int> bag(AsSize(bag_size));
    for (int i = 0; i < bag_size; ++i) {
      bag[AsSize(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint32_t>(n)));
    }
    trees_[AsSize(t)].Fit(x, y, bag, tree_config, &rng);
  });
}

double RandomForestRegressor::Predict(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::Predict(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  std::vector<double> out(AsSize(x.rows()));
  GlobalThreadPool().ParallelFor(0, x.rows(), [&](int r) {
    out[AsSize(r)] = Predict(x.RowPtr(r));
  });
  return out;
}

}  // namespace roicl::trees
