#include "trees/random_forest.h"

#include <cmath>
#include <string>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace roicl::trees {

void RandomForestRegressor::Fit(const Matrix& x,
                                const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(x.rows() > 0);
  ROICL_CHECK(config_.num_trees > 0);
  ROICL_CHECK(config_.sample_fraction > 0.0 &&
              config_.sample_fraction <= 1.0);

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features <= 0) {
    tree_config.max_features =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  }

  int n = x.rows();
  int bag_size = std::max(
      1, static_cast<int>(std::round(config_.sample_fraction * n)));

  // Pre-split RNGs so tree growth is deterministic regardless of thread
  // scheduling.
  Rng seeder(config_.seed, /*stream=*/11);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(AsSize(config_.num_trees));
  for (int t = 0; t < config_.num_trees; ++t) {
    tree_rngs.push_back(seeder.Split());
  }

  trees_.assign(AsSize(config_.num_trees), RegressionTree());
  GlobalThreadPool().ParallelFor(0, config_.num_trees, [&](int t) {
    Rng& rng = tree_rngs[AsSize(t)];
    std::vector<int> bag(AsSize(bag_size));
    for (int i = 0; i < bag_size; ++i) {
      bag[AsSize(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint32_t>(n)));
    }
    trees_[AsSize(t)].Fit(x, y, bag, tree_config, &rng);
  });
}

double RandomForestRegressor::Predict(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  double sum = 0.0;
  for (const RegressionTree& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForestRegressor::Predict(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  std::vector<double> out(AsSize(x.rows()));
  GlobalThreadPool().ParallelFor(0, x.rows(), [&](int r) {
    out[AsSize(r)] = Predict(x.RowPtr(r));
  });
  return out;
}

Status RandomForestRegressor::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("forest not fitted");
  out << "roicl-forest-v1\n" << trees_.size() << '\n';
  for (const RegressionTree& tree : trees_) {
    WriteTreeNodes(tree.nodes(), out);
  }
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status RandomForestRegressor::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-forest-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-forest-v1)");
  }
  size_t num_trees = 0;
  if (!(in >> num_trees) || num_trees == 0 || num_trees > 1000000) {
    return Status::InvalidArgument("bad forest tree count");
  }
  std::vector<RegressionTree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    StatusOr<std::vector<TreeNode>> nodes = ReadTreeNodes(in);
    if (!nodes.ok()) return nodes.status();
    trees.push_back(RegressionTree::FromNodes(std::move(nodes).value()));
  }
  trees_ = std::move(trees);
  return Status::Ok();
}

}  // namespace roicl::trees
