#include "trees/tree_common.h"

#include <algorithm>
#include <iomanip>
#include <string>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::trees {

double PredictTree(const std::vector<TreeNode>& nodes, const double* row) {
  ROICL_DCHECK(!nodes.empty());
  size_t node = 0;
  while (!nodes[node].is_leaf()) {
    const TreeNode& n = nodes[node];
    node = AsSize(row[n.feature] <= n.threshold ? n.left : n.right);
  }
  return nodes[node].value;
}

void WriteTreeNodes(const std::vector<TreeNode>& nodes, std::ostream& out) {
  out << nodes.size() << '\n' << std::setprecision(17);
  for (const TreeNode& n : nodes) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
        << n.right << ' ' << n.value << ' ' << n.num_samples << '\n';
  }
}

StatusOr<std::vector<TreeNode>> ReadTreeNodes(std::istream& in) {
  size_t count = 0;
  if (!(in >> count) || count == 0 || count > 100000000) {
    return Status::InvalidArgument("bad tree node count");
  }
  std::vector<TreeNode> nodes(count);
  for (size_t i = 0; i < count; ++i) {
    TreeNode& n = nodes[i];
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value >>
          n.num_samples)) {
      return Status::InvalidArgument("truncated tree nodes (read " +
                                     std::to_string(i) + " of " +
                                     std::to_string(count) + ")");
    }
    if (n.is_leaf()) continue;
    // Pre-order layout: children strictly follow their parent.
    bool in_range = n.left > static_cast<int>(i) &&
                    n.right > static_cast<int>(i) &&
                    n.left < static_cast<int>(count) &&
                    n.right < static_cast<int>(count);
    if (!in_range) {
      return Status::InvalidArgument("tree node " + std::to_string(i) +
                                     " has out-of-range children");
    }
  }
  return nodes;
}

std::vector<double> CandidateThresholds(const Matrix& x,
                                        const std::vector<int>& index,
                                        int feature, int num_candidates) {
  ROICL_DCHECK(num_candidates > 0);
  std::vector<double> values;
  values.reserve(index.size());
  for (int i : index) values.push_back(x(i, feature));
  std::sort(values.begin(), values.end());
  if (values.front() == values.back()) return {};

  std::vector<double> thresholds;
  thresholds.reserve(AsSize(num_candidates));
  // Midpoints of an evenly spaced quantile grid; duplicates collapse.
  for (int k = 1; k <= num_candidates; ++k) {
    size_t pos = static_cast<size_t>(
        static_cast<double>(k) / (num_candidates + 1) *
        static_cast<double>(values.size() - 1));
    double v = values[pos];
    if (v >= values.back()) continue;  // would send everything left
    if (thresholds.empty() || thresholds.back() != v) thresholds.push_back(v);
  }
  return thresholds;
}

std::vector<int> SampleFeatures(int num_features, int max_features,
                                Rng* rng) {
  if (max_features <= 0 || max_features >= num_features) {
    std::vector<int> all(AsSize(num_features));
    for (int i = 0; i < num_features; ++i) all[AsSize(i)] = i;
    return all;
  }
  ROICL_CHECK(rng != nullptr);
  return rng->SampleWithoutReplacement(num_features, max_features);
}

}  // namespace roicl::trees
