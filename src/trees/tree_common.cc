#include "trees/tree_common.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::trees {

double PredictTree(const std::vector<TreeNode>& nodes, const double* row) {
  ROICL_DCHECK(!nodes.empty());
  size_t node = 0;
  while (!nodes[node].is_leaf()) {
    const TreeNode& n = nodes[node];
    node = AsSize(row[n.feature] <= n.threshold ? n.left : n.right);
  }
  return nodes[node].value;
}

std::vector<double> CandidateThresholds(const Matrix& x,
                                        const std::vector<int>& index,
                                        int feature, int num_candidates) {
  ROICL_DCHECK(num_candidates > 0);
  std::vector<double> values;
  values.reserve(index.size());
  for (int i : index) values.push_back(x(i, feature));
  std::sort(values.begin(), values.end());
  if (values.front() == values.back()) return {};

  std::vector<double> thresholds;
  thresholds.reserve(AsSize(num_candidates));
  // Midpoints of an evenly spaced quantile grid; duplicates collapse.
  for (int k = 1; k <= num_candidates; ++k) {
    size_t pos = static_cast<size_t>(
        static_cast<double>(k) / (num_candidates + 1) *
        static_cast<double>(values.size() - 1));
    double v = values[pos];
    if (v >= values.back()) continue;  // would send everything left
    if (thresholds.empty() || thresholds.back() != v) thresholds.push_back(v);
  }
  return thresholds;
}

std::vector<int> SampleFeatures(int num_features, int max_features,
                                Rng* rng) {
  if (max_features <= 0 || max_features >= num_features) {
    std::vector<int> all(AsSize(num_features));
    for (int i = 0; i < num_features; ++i) all[AsSize(i)] = i;
    return all;
  }
  ROICL_CHECK(rng != nullptr);
  return rng->SampleWithoutReplacement(num_features, max_features);
}

}  // namespace roicl::trees
