#ifndef ROICL_TREES_CAUSAL_FOREST_H_
#define ROICL_TREES_CAUSAL_FOREST_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/status.h"
#include "trees/tree_common.h"

namespace roicl::trees {

/// Hyperparameters for causal trees/forests.
struct CausalForestConfig {
  int num_trees = 50;
  TreeConfig tree;
  /// Minimum samples *per treatment arm* required in every leaf.
  int min_arm_samples = 10;
  /// Subsample fraction per tree (without replacement, as in Wager & Athey
  /// 2018 where subsampling underpins the asymptotic theory).
  double sample_fraction = 0.5;
  /// Honest estimation: half of each tree's subsample chooses splits, the
  /// other half estimates leaf effects (Athey & Imbens 2016).
  bool honest = true;
  uint64_t seed = 13;
};

/// A single causal tree. Splits maximize effect heterogeneity
/// (sum over children of n_child * tau_child^2, the Athey-Imbens
/// criterion); leaves store the within-leaf difference-in-means treatment
/// effect. RCT data is assumed (propensity 0.5), so no centering is
/// needed.
class CausalTree {
 public:
  /// Grows on `split_index`; when `estimate_index` is non-empty the leaf
  /// effects are re-estimated honestly on it.
  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y, const std::vector<int>& split_index,
           const std::vector<int>& estimate_index,
           const CausalForestConfig& config, Rng* rng);

  /// Predicted CATE for one row.
  double Predict(const double* row) const;

  bool fitted() const { return !nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Rebuilds a tree from a node array (deserialization). The array must
  /// already be structurally validated (ReadTreeNodes does this).
  static CausalTree FromNodes(std::vector<TreeNode> nodes) {
    CausalTree tree;
    tree.nodes_ = std::move(nodes);
    return tree;
  }

 private:
  int Grow(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y, std::vector<int>&& index,
           const CausalForestConfig& config, Rng* rng, int depth);
  void HonestReestimate(const Matrix& x, const std::vector<int>& treatment,
                        const std::vector<double>& y,
                        const std::vector<int>& estimate_index);

  std::vector<TreeNode> nodes_;
};

/// Subsampled ensemble of causal trees; PredictCate averages per-tree
/// effects. Doubles as the TPM-CF baseline's uplift model and provides a
/// jackknife-style variance estimate across trees.
class CausalForest {
 public:
  explicit CausalForest(const CausalForestConfig& config)
      : config_(config) {}

  void Fit(const Matrix& x, const std::vector<int>& treatment,
           const std::vector<double>& y);

  double PredictCate(const double* row) const;

  /// Batched predict: rows fan out across the global ThreadPool. Tree
  /// traversal is deterministic per row, so the result is identical to
  /// the per-row loop at any thread count.
  std::vector<double> PredictCate(const Matrix& x) const;

  /// Across-tree standard deviation of the effect estimate at `row` — a
  /// cheap ensemble uncertainty proxy (the paper cites the infinitesimal
  /// jackknife; the across-tree spread is its practical stand-in here).
  double PredictCateStdDev(const double* row) const;

  /// Batched variant of PredictCateStdDev over every row of `x`.
  std::vector<double> PredictCateStdDev(const Matrix& x) const;

  bool fitted() const { return !trees_.empty(); }
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Serializes the fitted ensemble ("roicl-cforest-v1"). Requires
  /// fitted().
  Status Save(std::ostream& out) const;
  /// Replaces this forest's trees with an ensemble written by Save().
  /// Malformed input returns a descriptive Status and leaves the forest
  /// unchanged.
  Status Load(std::istream& in);

 private:
  CausalForestConfig config_;
  std::vector<CausalTree> trees_;
};

}  // namespace roicl::trees

#endif  // ROICL_TREES_CAUSAL_FOREST_H_
