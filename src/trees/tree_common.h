#ifndef ROICL_TREES_TREE_COMMON_H_
#define ROICL_TREES_TREE_COMMON_H_

#include <istream>
#include <ostream>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace roicl::trees {

/// Shared hyperparameters for tree growth.
struct TreeConfig {
  int max_depth = 6;
  int min_samples_leaf = 20;
  /// Number of features considered per split; <= 0 means all.
  int max_features = -1;
  /// Number of candidate thresholds examined per feature (quantile grid).
  /// Exact splits are O(n log n) per node; a fixed grid keeps growth fast
  /// at the sample sizes the benches use, with negligible accuracy loss.
  int candidate_thresholds = 24;
};

/// A node of any binary decision tree in this library. Leaves carry a
/// single prediction value (mean response or treatment effect).
struct TreeNode {
  int feature = -1;        ///< split feature; -1 for leaves.
  double threshold = 0.0;  ///< go left when x[feature] <= threshold.
  int left = -1;
  int right = -1;
  double value = 0.0;  ///< leaf prediction.
  int num_samples = 0;

  bool is_leaf() const { return feature < 0; }
};

/// Walks a node array from the root (index 0) for one feature row.
double PredictTree(const std::vector<TreeNode>& nodes, const double* row);

/// Writes one tree's node array: `<count>` then one node per line
/// (feature threshold left right value num_samples), doubles at 17
/// significant digits so a save/load round trip is bit-exact.
void WriteTreeNodes(const std::vector<TreeNode>& nodes, std::ostream& out);

/// Reads a node array written by WriteTreeNodes. Validates structure:
/// child indices must stay in range and never point at or before their
/// parent (the arrays are built pre-order), internal nodes need a valid
/// feature. Truncated or inconsistent input returns a descriptive Status.
StatusOr<std::vector<TreeNode>> ReadTreeNodes(std::istream& in);

/// Builds up to `config.candidate_thresholds` distinct candidate split
/// points for `feature` from the rows in `index`, using an evenly spaced
/// quantile grid of the observed values. Returns an empty vector when the
/// feature is constant on this node.
std::vector<double> CandidateThresholds(const Matrix& x,
                                        const std::vector<int>& index,
                                        int feature, int num_candidates);

/// Chooses the feature subset inspected at a split: all features when
/// `max_features <= 0` or >= d, otherwise a uniform subsample.
std::vector<int> SampleFeatures(int num_features, int max_features,
                                Rng* rng);

}  // namespace roicl::trees

#endif  // ROICL_TREES_TREE_COMMON_H_
