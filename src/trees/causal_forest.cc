#include "trees/causal_forest.h"

#include <cmath>
#include <string>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace roicl::trees {
namespace {

/// Difference-in-means effect plus arm counts over `index`.
struct ArmStats {
  double sum1 = 0.0;
  double sum0 = 0.0;
  int n1 = 0;
  int n0 = 0;

  void Add(int t, double y) {
    if (t == 1) {
      sum1 += y;
      ++n1;
    } else {
      sum0 += y;
      ++n0;
    }
  }
  bool BothArms(int min_arm) const { return n1 >= min_arm && n0 >= min_arm; }
  double Tau() const {
    if (n1 == 0 || n0 == 0) return 0.0;
    return sum1 / n1 - sum0 / n0;
  }
  int Total() const { return n1 + n0; }
};

ArmStats CollectStats(const std::vector<int>& treatment,
                      const std::vector<double>& y,
                      const std::vector<int>& index) {
  ArmStats stats;
  for (int i : index) stats.Add(treatment[AsSize(i)], y[AsSize(i)]);
  return stats;
}

}  // namespace

void CausalTree::Fit(const Matrix& x, const std::vector<int>& treatment,
                     const std::vector<double>& y,
                     const std::vector<int>& split_index,
                     const std::vector<int>& estimate_index,
                     const CausalForestConfig& config, Rng* rng) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(treatment.size() == y.size());
  ROICL_CHECK(!split_index.empty());
  nodes_.clear();
  std::vector<int> root = split_index;
  Grow(x, treatment, y, std::move(root), config, rng, /*depth=*/0);
  if (!estimate_index.empty()) {
    HonestReestimate(x, treatment, y, estimate_index);
  }
}

int CausalTree::Grow(const Matrix& x, const std::vector<int>& treatment,
                     const std::vector<double>& y, std::vector<int>&& index,
                     const CausalForestConfig& config, Rng* rng, int depth) {
  int node_id = AsInt(nodes_.size());
  nodes_.emplace_back();
  ArmStats node_stats = CollectStats(treatment, y, index);
  nodes_[AsSize(node_id)].num_samples = node_stats.Total();
  nodes_[AsSize(node_id)].value = node_stats.Tau();

  if (depth >= config.tree.max_depth ||
      node_stats.Total() < 2 * config.tree.min_samples_leaf ||
      !node_stats.BothArms(2 * config.min_arm_samples)) {
    return node_id;
  }

  // Athey-Imbens heterogeneity criterion: maximize
  // n_l * tau_l^2 + n_r * tau_r^2 (parent term is constant).
  double parent_score = node_stats.Total() * node_stats.Tau() *
                        node_stats.Tau();
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<int> features =
      SampleFeatures(x.cols(), config.tree.max_features, rng);
  for (int feature : features) {
    std::vector<double> thresholds = CandidateThresholds(
        x, index, feature, config.tree.candidate_thresholds);
    for (double threshold : thresholds) {
      ArmStats left;
      for (int i : index) {
        if (x(i, feature) <= threshold) {
          left.Add(treatment[AsSize(i)], y[AsSize(i)]);
        }
      }
      ArmStats right;
      right.sum1 = node_stats.sum1 - left.sum1;
      right.sum0 = node_stats.sum0 - left.sum0;
      right.n1 = node_stats.n1 - left.n1;
      right.n0 = node_stats.n0 - left.n0;
      if (!left.BothArms(config.min_arm_samples) ||
          !right.BothArms(config.min_arm_samples)) {
        continue;
      }
      double score = left.Total() * left.Tau() * left.Tau() +
                     right.Total() * right.Tau() * right.Tau();
      double gain = score - parent_score;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_id;

  std::vector<int> left_index, right_index;
  for (int i : index) {
    (x(i, best_feature) <= best_threshold ? left_index : right_index)
        .push_back(i);
  }
  index.clear();
  index.shrink_to_fit();

  int left = Grow(x, treatment, y, std::move(left_index), config, rng,
                  depth + 1);
  int right = Grow(x, treatment, y, std::move(right_index), config, rng,
                   depth + 1);
  TreeNode& node = nodes_[AsSize(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

void CausalTree::HonestReestimate(const Matrix& x,
                                  const std::vector<int>& treatment,
                                  const std::vector<double>& y,
                                  const std::vector<int>& estimate_index) {
  // Route the estimation sample through the fixed structure and replace
  // each leaf effect with the held-out difference in means. Leaves that
  // receive no (or one-armed) estimation data keep their split-sample
  // values — a standard, slightly-dishonest fallback that avoids NaNs.
  std::vector<ArmStats> leaf_stats(nodes_.size());
  for (int i : estimate_index) {
    const double* row = x.RowPtr(i);
    size_t node = 0;
    while (!nodes_[node].is_leaf()) {
      node = AsSize(row[nodes_[node].feature] <= nodes_[node].threshold
                        ? nodes_[node].left
                        : nodes_[node].right);
    }
    leaf_stats[node].Add(treatment[AsSize(i)], y[AsSize(i)]);
  }
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].is_leaf() && leaf_stats[n].n1 > 0 &&
        leaf_stats[n].n0 > 0) {
      nodes_[n].value = leaf_stats[n].Tau();
    }
  }
}

double CausalTree::Predict(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "Predict() before Fit()");
  return PredictTree(nodes_, row);
}

void CausalForest::Fit(const Matrix& x, const std::vector<int>& treatment,
                       const std::vector<double>& y) {
  ROICL_CHECK(x.rows() == static_cast<int>(y.size()));
  ROICL_CHECK(treatment.size() == y.size());
  ROICL_CHECK(config_.num_trees > 0);

  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features <= 0) {
    tree_config.max_features =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(x.cols()))));
  }
  CausalForestConfig config = config_;
  config.tree = tree_config;

  int n = x.rows();
  int subsample = std::max(
      4, static_cast<int>(std::round(config.sample_fraction * n)));
  subsample = std::min(subsample, n);

  Rng seeder(config.seed, /*stream=*/19);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(AsSize(config.num_trees));
  for (int t = 0; t < config.num_trees; ++t) {
    tree_rngs.push_back(seeder.Split());
  }

  trees_.assign(AsSize(config.num_trees), CausalTree());
  GlobalThreadPool().ParallelFor(0, config.num_trees, [&](int t) {
    Rng& rng = tree_rngs[AsSize(t)];
    std::vector<int> sample = rng.SampleWithoutReplacement(n, subsample);
    std::vector<int> split_index, estimate_index;
    if (config.honest) {
      auto half = static_cast<ptrdiff_t>(sample.size() / 2);
      split_index.assign(sample.begin(), sample.begin() + half);
      estimate_index.assign(sample.begin() + half, sample.end());
    } else {
      split_index = sample;
    }
    trees_[AsSize(t)].Fit(x, treatment, y, split_index, estimate_index,
                          config, &rng);
  });
}

double CausalForest::PredictCate(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "PredictCate() before Fit()");
  double sum = 0.0;
  for (const CausalTree& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> CausalForest::PredictCate(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictCate() before Fit()");
  std::vector<double> out(AsSize(x.rows()));
  GlobalThreadPool().ParallelFor(0, x.rows(), [&](int r) {
    out[AsSize(r)] = PredictCate(x.RowPtr(r));
  });
  return out;
}

double CausalForest::PredictCateStdDev(const double* row) const {
  ROICL_CHECK_MSG(fitted(), "PredictCateStdDev() before Fit()");
  RunningStats stats;
  for (const CausalTree& tree : trees_) stats.Add(tree.Predict(row));
  return stats.stddev();
}

std::vector<double> CausalForest::PredictCateStdDev(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted(), "PredictCateStdDev() before Fit()");
  std::vector<double> out(AsSize(x.rows()));
  GlobalThreadPool().ParallelFor(0, x.rows(), [&](int r) {
    out[AsSize(r)] = PredictCateStdDev(x.RowPtr(r));
  });
  return out;
}

Status CausalForest::Save(std::ostream& out) const {
  if (!fitted()) return Status::FailedPrecondition("forest not fitted");
  out << "roicl-cforest-v1\n" << trees_.size() << '\n';
  for (const CausalTree& tree : trees_) {
    WriteTreeNodes(tree.nodes(), out);
  }
  if (!out) return Status::IoError("stream write failed");
  return Status::Ok();
}

Status CausalForest::Load(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != "roicl-cforest-v1") {
    return Status::InvalidArgument("bad magic '" + magic +
                                   "' (expected roicl-cforest-v1)");
  }
  size_t num_trees = 0;
  if (!(in >> num_trees) || num_trees == 0 || num_trees > 1000000) {
    return Status::InvalidArgument("bad forest tree count");
  }
  std::vector<CausalTree> trees;
  trees.reserve(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    StatusOr<std::vector<TreeNode>> nodes = ReadTreeNodes(in);
    if (!nodes.ok()) return nodes.status();
    trees.push_back(CausalTree::FromNodes(std::move(nodes).value()));
  }
  trees_ = std::move(trees);
  return Status::Ok();
}

}  // namespace roicl::trees
