#ifndef ROICL_SYNTH_SYNTHETIC_GENERATOR_H_
#define ROICL_SYNTH_SYNTHETIC_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace roicl::synth {

/// How feature columns are rendered.
enum class FeatureKind {
  kContinuous,  ///< Gaussian around the segment mean.
  kDiscrete,    ///< Quantized to small non-negative integers.
};

/// Configuration of a synthetic RCT uplift dataset.
///
/// The population is a mixture of latent user segments (e.g. "office
/// workers" vs "tourists" in the paper's running example). Each segment has
/// its own feature distribution; the ground-truth uplift functions
/// tau_c(x) (cost lift) and roi(x) (revenue-per-cost ratio) are fixed,
/// smooth, mildly nonlinear functions of the features — so covariate shift
/// changes P(X) while keeping P(Y|X) fixed, exactly the setting of Fig. 2.
struct SyntheticConfig {
  std::string name;
  int num_features = 12;
  int num_informative = 6;  ///< features the uplift functions depend on.
  int num_segments = 4;
  FeatureKind feature_kind = FeatureKind::kContinuous;

  /// Mixture weights for the training distribution and for the shifted
  /// (calibration/test) distribution; sizes must equal num_segments.
  std::vector<double> train_segment_weights;
  std::vector<double> shifted_segment_weights;

  /// Ranges of the ground-truth functions. ROI is confined to
  /// (roi_lo, roi_hi) subset of (0,1) per Assumption 3; tau_c to
  /// (tau_c_lo, tau_c_hi) > 0 per Assumption 4.
  double roi_lo = 0.10;
  double roi_hi = 0.90;
  double tau_c_lo = 0.05;
  double tau_c_hi = 0.30;

  /// Base (control-arm) outcome probabilities.
  double base_cost_rate = 0.25;
  double base_revenue_rate = 0.05;

  /// Fraction of samples assigned to treatment (RCT probability).
  double treatment_fraction = 0.5;

  /// When true the generator produces OBSERVATIONAL data: treatment is
  /// assigned with a covariate-dependent propensity e(x) in
  /// [propensity_lo, propensity_hi] instead of the RCT coin flip. Used by
  /// the IPW extension (paper SS VII future work #1); the paper's own
  /// methods require this to stay false.
  bool confounded_treatment = false;
  double propensity_lo = 0.1;
  double propensity_hi = 0.9;

  /// Standard deviation of within-segment feature noise.
  double feature_noise = 1.0;

  /// Seed that fixes the segment geometry and the uplift-function weights
  /// (NOT the per-sample randomness, which callers supply via Rng).
  uint64_t structure_seed = 1;
};

/// Deterministic synthetic RCT generator with ground-truth oracles.
///
/// Given a structure seed, the segment means and uplift-function weights
/// are fixed; sampling draws (segment, features, treatment, outcomes) from
/// the implied joint. Binary outcomes follow the CRITEO/Meituan/Alibaba
/// convention: y_c is the "cost" indicator (visit/click/exposure), y_r the
/// "benefit" indicator (conversion).
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(const SyntheticConfig& config);

  const SyntheticConfig& config() const { return config_; }

  /// Draws `n` samples. When `shifted`, the segment mixture uses
  /// `shifted_segment_weights` (covariate shift); the conditional outcome
  /// law is unchanged.
  RctDataset Generate(int n, bool shifted, Rng* rng) const;

  /// Ground-truth cost uplift tau_c(x) for a feature row.
  double TauC(const double* x) const;
  /// Ground-truth revenue uplift tau_r(x) = roi(x) * tau_c(x).
  double TauR(const double* x) const;
  /// Ground-truth ROI(x) in (roi_lo, roi_hi).
  double Roi(const double* x) const;

  /// Control-arm outcome probabilities at x (used by wrappers that need
  /// to re-sample outcomes, e.g. the multi-treatment generator).
  double BaseCostRate(const double* x) const;
  double BaseRevenueRate(const double* x) const;

  /// True treatment propensity e(x). Equals `treatment_fraction` for RCT
  /// configs; covariate-dependent when `confounded_treatment` is set.
  double Propensity(const double* x) const;

 private:
  /// Nonlinear basis of the informative features; size = basis_size_.
  void Basis(const double* x, std::vector<double>* phi) const;

  SyntheticConfig config_;
  int basis_size_;
  std::vector<std::vector<double>> segment_means_;  // [segment][feature]
  std::vector<double> w_roi_;   // basis weights for roi(x)
  std::vector<double> w_cost_;  // basis weights for tau_c(x)
  std::vector<double> w_base_;  // basis weights for base rates
  std::vector<double> w_prop_;  // basis weights for the propensity
};

/// Preset mirroring CRITEO-UPLIFT v2: 12 dense features,
/// visit (cost) / conversion (benefit), strong segment structure.
SyntheticConfig CriteoSynthConfig();

/// Preset mirroring Meituan-LIFT: 99 features with only a few informative
/// (high-dimension / low-signal regime), click (cost) / conversion
/// (benefit).
SyntheticConfig MeituanSynthConfig();

/// Preset mirroring Alibaba-LIFT: 25 discrete features, exposure (cost,
/// high base rate) / conversion (benefit).
SyntheticConfig AlibabaSynthConfig();

}  // namespace roicl::synth

#endif  // ROICL_SYNTH_SYNTHETIC_GENERATOR_H_
