#include "synth/shift.h"

#include <cmath>
#include <vector>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/stats.h"

namespace roicl::synth {

RctDataset ResampleWithCovariateShift(const RctDataset& dataset, int feature,
                                      double gamma, int n_out, Rng* rng) {
  ROICL_CHECK(rng != nullptr);
  ROICL_CHECK(feature >= 0 && feature < dataset.dim());
  ROICL_CHECK(n_out > 0);
  ROICL_CHECK(dataset.n() > 0);

  std::vector<double> column = dataset.x.Col(feature);
  double mean = Mean(column);
  double sd = StdDev(column);
  if (sd < 1e-12) sd = 1.0;

  std::vector<double> weights(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    double z = (column[i] - mean) / sd;
    // Cap the exponent so a single outlier cannot absorb all the mass.
    weights[i] = std::exp(std::min(gamma * z, 30.0));
  }

  std::vector<int> indices(AsSize(n_out));
  for (int i = 0; i < n_out; ++i) {
    indices[AsSize(i)] = rng->Categorical(weights);
  }
  return dataset.Subset(indices);
}

}  // namespace roicl::synth
