#include "synth/multi_treatment.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl::synth {

double MultiTreatmentDataset::TrueRoi(int i, int arm) const {
  ROICL_CHECK(arm >= 1 && arm <= num_arms());
  ROICL_CHECK(i >= 0 && i < n());
  double tau_c = true_tau_c[AsSize(arm - 1)][AsSize(i)];
  ROICL_CHECK(tau_c > 0.0);
  return true_tau_r[AsSize(arm - 1)][AsSize(i)] / tau_c;
}

RctDataset MultiTreatmentDataset::BinarySubproblem(int arm) const {
  ROICL_CHECK(arm >= 1 && arm <= num_arms());
  std::vector<int> keep;
  for (int i = 0; i < n(); ++i) {
    if (treatment[AsSize(i)] == 0 || treatment[AsSize(i)] == arm) {
      keep.push_back(i);
    }
  }
  RctDataset out;
  out.x = x.SelectRows(keep);
  out.treatment.reserve(keep.size());
  out.y_revenue.reserve(keep.size());
  out.y_cost.reserve(keep.size());
  out.true_tau_r.reserve(keep.size());
  out.true_tau_c.reserve(keep.size());
  for (int i : keep) {
    const size_t si = AsSize(i);
    out.treatment.push_back(treatment[si] == arm ? 1 : 0);
    out.y_revenue.push_back(y_revenue[si]);
    out.y_cost.push_back(y_cost[si]);
    out.true_tau_r.push_back(true_tau_r[AsSize(arm - 1)][si]);
    out.true_tau_c.push_back(true_tau_c[AsSize(arm - 1)][si]);
  }
  return out;
}

MultiTreatmentGenerator::MultiTreatmentGenerator(
    const SyntheticConfig& base_config, std::vector<ArmEffect> arms)
    : base_(base_config), arms_(std::move(arms)) {
  ROICL_CHECK(!arms_.empty());
  const SyntheticConfig& config = base_.config();
  // The base rate can run up to 1.5x its nominal value (see
  // SyntheticGenerator::BaseCostRate); every arm's scaled cost effect must
  // keep the treated outcome probability a genuine probability, otherwise
  // clamping would silently decouple realized lifts from the oracle
  // columns.
  double max_base = std::min(0.6, 1.5 * config.base_cost_rate);
  for (const ArmEffect& arm : arms_) {
    ROICL_CHECK_MSG(arm.cost_scale > 0.0, "cost_scale must be positive");
    ROICL_CHECK_MSG(
        max_base + arm.cost_scale * config.tau_c_hi <= 0.995,
        "arm cost_scale %.2f saturates the outcome probability "
        "(base<=%.2f, tau_c_hi=%.2f); shrink tau_c_hi or the scale",
        arm.cost_scale, max_base, config.tau_c_hi);
  }
}

double MultiTreatmentGenerator::TauC(const double* x, int arm) const {
  ROICL_CHECK(arm >= 1 && arm <= num_arms());
  return arms_[AsSize(arm - 1)].cost_scale * base_.TauC(x);
}

double MultiTreatmentGenerator::TauR(const double* x, int arm) const {
  ROICL_CHECK(arm >= 1 && arm <= num_arms());
  double roi =
      Clamp(base_.Roi(x) + arms_[AsSize(arm - 1)].roi_shift, 0.02, 0.98);
  return roi * TauC(x, arm);
}

MultiTreatmentDataset MultiTreatmentGenerator::Generate(int n, bool shifted,
                                                        Rng* rng) const {
  ROICL_CHECK(rng != nullptr);
  ROICL_CHECK(n > 0);
  // Draw features (and segments) from the base generator, then overwrite
  // treatment assignment and outcomes with the multi-arm mechanism.
  RctDataset base_draw = base_.Generate(n, shifted, rng);

  MultiTreatmentDataset data;
  data.x = std::move(base_draw.x);
  data.treatment.resize(AsSize(n));
  data.y_revenue.resize(AsSize(n));
  data.y_cost.resize(AsSize(n));
  data.true_tau_r.assign(AsSize(num_arms()), std::vector<double>(AsSize(n)));
  data.true_tau_c.assign(AsSize(num_arms()), std::vector<double>(AsSize(n)));

  for (int i = 0; i < n; ++i) {
    const double* row = data.x.RowPtr(i);
    const size_t si = AsSize(i);
    for (int k = 1; k <= num_arms(); ++k) {
      data.true_tau_c[AsSize(k - 1)][si] = TauC(row, k);
      data.true_tau_r[AsSize(k - 1)][si] = TauR(row, k);
    }
    // Uniform assignment over {control, arm 1, .., arm K}.
    int t = static_cast<int>(rng->UniformInt(
        static_cast<uint32_t>(num_arms() + 1)));
    data.treatment[si] = t;
    double p_cost = base_.BaseCostRate(row);
    double p_rev = base_.BaseRevenueRate(row);
    if (t > 0) {
      p_cost += data.true_tau_c[AsSize(t - 1)][si];
      p_rev += data.true_tau_r[AsSize(t - 1)][si];
    }
    data.y_cost[si] = rng->Bernoulli(Clamp(p_cost, 0.0, 0.99)) ? 1.0 : 0.0;
    data.y_revenue[si] =
        rng->Bernoulli(Clamp(p_rev, 0.0, 0.99)) ? 1.0 : 0.0;
  }
  return data;
}

}  // namespace roicl::synth
