#ifndef ROICL_SYNTH_MULTI_TREATMENT_H_
#define ROICL_SYNTH_MULTI_TREATMENT_H_

#include <vector>

#include "data/dataset.h"
#include "synth/synthetic_generator.h"

namespace roicl::synth {

/// Multi-treatment RCT sample set: treatment 0 is control, 1..K are K
/// distinct interventions (e.g. coupon denominations). Used by the
/// divide-and-conquer extension of rDRP (paper §VI, limitation 1).
struct MultiTreatmentDataset {
  Matrix x;
  std::vector<int> treatment;  ///< 0 = control, 1..K = arms.
  std::vector<double> y_revenue;
  std::vector<double> y_cost;
  /// Oracle effects per arm: tau[k][i] is arm (k+1)'s effect on sample i.
  std::vector<std::vector<double>> true_tau_r;
  std::vector<std::vector<double>> true_tau_c;

  int n() const { return x.rows(); }
  int num_arms() const { return static_cast<int>(true_tau_r.size()); }

  /// Ground-truth ROI of arm k (1-based) for sample i.
  double TrueRoi(int i, int arm) const;

  /// Projects onto the binary sub-problem {control, arm k}: rows whose
  /// treatment is 0 or k, with treatment relabeled to {0, 1}. Oracle
  /// columns carry arm k's effects.
  RctDataset BinarySubproblem(int arm) const;
};

/// Per-arm modifiers applied to the base generator's effects: arm k's
/// cost lift is `cost_scale * tau_c(x)` and its ROI is
/// `clamp(roi(x) + roi_shift)` — e.g. a bigger coupon costs more and
/// (usually) converts a bit better, but with diminishing ROI.
struct ArmEffect {
  double cost_scale = 1.0;
  double roi_shift = 0.0;
};

/// Multi-treatment RCT generator layered on a binary SyntheticGenerator.
/// Treatment is assigned uniformly over {0, 1, .., K}.
class MultiTreatmentGenerator {
 public:
  MultiTreatmentGenerator(const SyntheticConfig& base_config,
                          std::vector<ArmEffect> arms);

  int num_arms() const { return static_cast<int>(arms_.size()); }
  const SyntheticGenerator& base() const { return base_; }

  MultiTreatmentDataset Generate(int n, bool shifted, Rng* rng) const;

  /// Oracle effects of arm k (1-based) at feature row x.
  double TauC(const double* x, int arm) const;
  double TauR(const double* x, int arm) const;

 private:
  SyntheticGenerator base_;
  std::vector<ArmEffect> arms_;
};

}  // namespace roicl::synth

#endif  // ROICL_SYNTH_MULTI_TREATMENT_H_
