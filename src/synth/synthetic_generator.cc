#include "synth/synthetic_generator.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "linalg/matrix.h"

namespace roicl::synth {

SyntheticGenerator::SyntheticGenerator(const SyntheticConfig& config)
    : config_(config) {
  ROICL_CHECK(config_.num_features >= 1);
  ROICL_CHECK(config_.num_informative >= 1 &&
              config_.num_informative <= config_.num_features);
  ROICL_CHECK(config_.num_segments >= 1);
  ROICL_CHECK(static_cast<int>(config_.train_segment_weights.size()) ==
              config_.num_segments);
  ROICL_CHECK(static_cast<int>(config_.shifted_segment_weights.size()) ==
              config_.num_segments);
  ROICL_CHECK(config_.roi_lo > 0.0 && config_.roi_hi < 1.0 &&
              config_.roi_lo < config_.roi_hi);
  ROICL_CHECK(config_.tau_c_lo > 0.0 && config_.tau_c_lo < config_.tau_c_hi);
  ROICL_CHECK(config_.treatment_fraction > 0.0 &&
              config_.treatment_fraction < 1.0);

  int m = config_.num_informative;
  basis_size_ = 2 * m;  // m raw + (m - 1) interactions + 1 sine term

  // The structure RNG fixes the population geometry; per-sample draws use
  // the caller's RNG so different splits/sizes stay consistent with the
  // same underlying population.
  Rng structure_rng(config_.structure_seed, /*stream=*/17);
  segment_means_.resize(AsSize(config_.num_segments));
  for (auto& mean : segment_means_) {
    mean.resize(AsSize(config_.num_features));
    for (double& v : mean) {
      if (config_.feature_kind == FeatureKind::kDiscrete) {
        v = structure_rng.Uniform(1.0, 8.0);
      } else {
        v = structure_rng.Normal(0.0, 1.5);
      }
    }
  }
  double scale = 1.0 / std::sqrt(static_cast<double>(basis_size_));
  auto draw_weights = [&](std::vector<double>* w) {
    w->resize(AsSize(basis_size_));
    for (double& v : *w) v = structure_rng.Normal(0.0, 1.0) * scale;
  };
  draw_weights(&w_roi_);
  draw_weights(&w_cost_);
  draw_weights(&w_base_);
  draw_weights(&w_prop_);
}

void SyntheticGenerator::Basis(const double* x,
                               std::vector<double>* phi) const {
  int m = config_.num_informative;
  phi->resize(AsSize(basis_size_));
  // For discrete features, center around the segment-mean midpoint so the
  // basis has comparable scale to the continuous case.
  double center =
      config_.feature_kind == FeatureKind::kDiscrete ? 4.5 : 0.0;
  double spread =
      config_.feature_kind == FeatureKind::kDiscrete ? 2.5 : 1.5;
  for (int j = 0; j < m; ++j) {
    (*phi)[AsSize(j)] = (x[j] - center) / spread;
  }
  for (int j = 0; j + 1 < m; ++j) {
    (*phi)[AsSize(m + j)] =
        std::tanh((*phi)[AsSize(j)] * (*phi)[AsSize(j + 1)]);
  }
  (*phi)[AsSize(2 * m - 1)] = std::sin((*phi)[0] * 1.3);
}

double SyntheticGenerator::Roi(const double* x) const {
  std::vector<double> phi;
  Basis(x, &phi);
  double z = 2.0 * Dot(phi, w_roi_);
  return config_.roi_lo + (config_.roi_hi - config_.roi_lo) * Sigmoid(z);
}

double SyntheticGenerator::TauC(const double* x) const {
  std::vector<double> phi;
  Basis(x, &phi);
  double z = 2.0 * Dot(phi, w_cost_);
  return config_.tau_c_lo +
         (config_.tau_c_hi - config_.tau_c_lo) * Sigmoid(z);
}

double SyntheticGenerator::TauR(const double* x) const {
  return Roi(x) * TauC(x);
}

double SyntheticGenerator::BaseCostRate(const double* x) const {
  std::vector<double> phi;
  Basis(x, &phi);
  double base = config_.base_cost_rate;
  return Clamp(base * (1.0 + 0.5 * std::tanh(Dot(phi, w_base_))), 0.01,
               0.6);
}

double SyntheticGenerator::BaseRevenueRate(const double* x) const {
  std::vector<double> phi;
  Basis(x, &phi);
  double base = config_.base_revenue_rate;
  return Clamp(base * (1.0 - 0.5 * std::tanh(Dot(phi, w_base_))), 0.005,
               0.4);
}

double SyntheticGenerator::Propensity(const double* x) const {
  if (!config_.confounded_treatment) return config_.treatment_fraction;
  std::vector<double> phi;
  Basis(x, &phi);
  double e = Sigmoid(2.0 * Dot(phi, w_prop_));
  return config_.propensity_lo +
         (config_.propensity_hi - config_.propensity_lo) * e;
}

RctDataset SyntheticGenerator::Generate(int n, bool shifted,
                                        Rng* rng) const {
  ROICL_CHECK(rng != nullptr);
  ROICL_CHECK(n > 0);
  const std::vector<double>& weights = shifted
                                           ? config_.shifted_segment_weights
                                           : config_.train_segment_weights;
  RctDataset dataset;
  dataset.x = Matrix(n, config_.num_features);
  dataset.treatment.resize(AsSize(n));
  dataset.y_revenue.resize(AsSize(n));
  dataset.y_cost.resize(AsSize(n));
  dataset.true_tau_r.resize(AsSize(n));
  dataset.true_tau_c.resize(AsSize(n));
  dataset.segment.resize(AsSize(n));

  for (int i = 0; i < n; ++i) {
    const size_t si = AsSize(i);
    int seg = rng->Categorical(weights);
    dataset.segment[si] = seg;
    double* row = dataset.x.RowPtr(i);
    for (int j = 0; j < config_.num_features; ++j) {
      double v =
          segment_means_[AsSize(seg)][AsSize(j)] +
          rng->Normal(0.0, config_.feature_noise);
      if (config_.feature_kind == FeatureKind::kDiscrete) {
        v = Clamp(std::round(v), 0.0, 9.0);
      }
      row[j] = v;
    }
    double tau_c = TauC(row);
    double tau_r = TauR(row);
    dataset.true_tau_c[si] = tau_c;
    dataset.true_tau_r[si] = tau_r;

    int t = rng->Bernoulli(Propensity(row)) ? 1 : 0;
    dataset.treatment[si] = t;

    double p_cost = BaseCostRate(row) + (t == 1 ? tau_c : 0.0);
    double p_rev = BaseRevenueRate(row) + (t == 1 ? tau_r : 0.0);
    dataset.y_cost[si] =
        rng->Bernoulli(Clamp(p_cost, 0.0, 0.99)) ? 1.0 : 0.0;
    dataset.y_revenue[si] =
        rng->Bernoulli(Clamp(p_rev, 0.0, 0.99)) ? 1.0 : 0.0;
  }
  return dataset;
}

SyntheticConfig CriteoSynthConfig() {
  SyntheticConfig config;
  config.name = "CRITEO-UPLIFT-v2-synth";
  config.num_features = 12;
  config.num_informative = 6;
  config.num_segments = 4;
  config.feature_kind = FeatureKind::kContinuous;
  // 90% "office workers"-like mass in training; shifted traffic flips the
  // mixture toward the minority segments (the paper's workday -> holiday
  // example).
  config.train_segment_weights = {0.55, 0.35, 0.06, 0.04};
  config.shifted_segment_weights = {0.15, 0.15, 0.40, 0.30};
  config.roi_lo = 0.05;
  config.roi_hi = 0.95;
  // Cost-side lifts are a few points at most in display advertising; the
  // small denominator is precisely what makes TPM's division fragile.
  config.tau_c_lo = 0.05;
  config.tau_c_hi = 0.32;
  config.base_cost_rate = 0.28;
  config.base_revenue_rate = 0.05;
  config.structure_seed = 901;
  return config;
}

SyntheticConfig MeituanSynthConfig() {
  SyntheticConfig config;
  config.name = "Meituan-LIFT-synth";
  config.num_features = 99;
  config.num_informative = 8;  // sparse signal in a wide feature space
  config.num_segments = 5;
  config.feature_kind = FeatureKind::kContinuous;
  config.train_segment_weights = {0.40, 0.30, 0.18, 0.08, 0.04};
  config.shifted_segment_weights = {0.10, 0.12, 0.18, 0.30, 0.30};
  config.base_cost_rate = 0.22;
  config.base_revenue_rate = 0.05;
  config.roi_lo = 0.05;
  config.roi_hi = 0.95;
  config.tau_c_lo = 0.04;
  config.tau_c_hi = 0.26;
  config.structure_seed = 202;
  return config;
}

SyntheticConfig AlibabaSynthConfig() {
  SyntheticConfig config;
  config.name = "Alibaba-LIFT-synth";
  config.num_features = 25;
  config.num_informative = 7;
  config.num_segments = 6;
  config.feature_kind = FeatureKind::kDiscrete;
  config.train_segment_weights = {0.30, 0.25, 0.20, 0.13, 0.08, 0.04};
  config.shifted_segment_weights = {0.08, 0.08, 0.14, 0.20, 0.25, 0.25};
  // Exposure (cost outcome) has a high base rate in advertising.
  config.base_cost_rate = 0.42;
  config.base_revenue_rate = 0.05;
  config.roi_lo = 0.05;
  config.roi_hi = 0.95;
  config.tau_c_lo = 0.06;
  config.tau_c_hi = 0.34;
  config.structure_seed = 901;
  return config;
}

}  // namespace roicl::synth
