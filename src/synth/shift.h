#ifndef ROICL_SYNTH_SHIFT_H_
#define ROICL_SYNTH_SHIFT_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace roicl::synth {

/// Importance-resampling covariate shift for an existing dataset (useful
/// when the data did not come from a SyntheticGenerator with a built-in
/// shifted mixture).
///
/// Rows are resampled with replacement with weights proportional to
/// exp(gamma * standardized(x[:, feature])): positive gamma over-represents
/// rows with large values of the chosen feature. P(Y|X) is untouched
/// because rows are kept whole — this is exactly covariate shift in the
/// sense of Fig. 2 of the paper.
RctDataset ResampleWithCovariateShift(const RctDataset& dataset, int feature,
                                      double gamma, int n_out, Rng* rng);

}  // namespace roicl::synth

#endif  // ROICL_SYNTH_SHIFT_H_
