#include "data/scaler.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/stats.h"

namespace roicl {

void StandardScaler::Fit(const Matrix& x) {
  ROICL_CHECK(x.rows() > 0);
  int d = x.cols();
  means_.assign(AsSize(d), 0.0);
  stddevs_.assign(AsSize(d), 1.0);
  for (int c = 0; c < d; ++c) {
    RunningStats stats;
    for (int r = 0; r < x.rows(); ++r) stats.Add(x(r, c));
    means_[AsSize(c)] = stats.mean();
    double sd = stats.stddev();
    // Constant columns are centered but not scaled.
    stddevs_[AsSize(c)] = sd > 1e-12 ? sd : 1.0;
  }
  fitted_ = true;
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  ROICL_CHECK_MSG(fitted_, "Transform() before Fit()");
  ROICL_CHECK(x.cols() == static_cast<int>(means_.size()));
  Matrix out = x;
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (int c = 0; c < out.cols(); ++c) {
      row[c] = (row[c] - means_[AsSize(c)]) / stddevs_[AsSize(c)];
    }
  }
  return out;
}

Matrix StandardScaler::FitTransform(const Matrix& x) {
  Fit(x);
  return Transform(x);
}

StandardScaler StandardScaler::FromMoments(std::vector<double> means,
                                           std::vector<double> stddevs) {
  ROICL_CHECK(means.size() == stddevs.size());
  ROICL_CHECK(!means.empty());
  for (double sd : stddevs) ROICL_CHECK_MSG(sd > 0.0, "stddev must be > 0");
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  scaler.fitted_ = true;
  return scaler;
}

}  // namespace roicl
