#ifndef ROICL_DATA_CSV_H_
#define ROICL_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace roicl {

/// Writes `dataset` to a CSV file with a header row:
///   f0,...,f{d-1},treatment,y_revenue,y_cost[,true_tau_r,true_tau_c]
/// Oracle columns are written only when present.
Status WriteDatasetCsv(const RctDataset& dataset, const std::string& path);

/// Reads a dataset previously written by WriteDatasetCsv (or any CSV using
/// the same header convention). Columns named `treatment`, `y_revenue`,
/// `y_cost` are required; `true_tau_r` / `true_tau_c` / `segment` are
/// optional; every other column is treated as a feature.
StatusOr<RctDataset> ReadDatasetCsv(const std::string& path);

}  // namespace roicl

#endif  // ROICL_DATA_CSV_H_
