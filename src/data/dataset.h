#ifndef ROICL_DATA_DATASET_H_
#define ROICL_DATA_DATASET_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace roicl {

/// An RCT sample set in the potential-outcome framing of the paper
/// (Notation 1 / Assumption 1): features X, binary treatment t, revenue
/// outcome y_r and cost outcome y_c.
///
/// Synthetic generators additionally fill the ground-truth columns
/// (`true_tau_r`, `true_tau_c`, `segment`), which real datasets lack; they
/// are used only for oracle evaluation and the online A/B simulator, never
/// by the estimators.
struct RctDataset {
  Matrix x;                      ///< n x d feature matrix.
  std::vector<int> treatment;    ///< t_i in {0, 1}.
  std::vector<double> y_revenue; ///< y_i^r realizations.
  std::vector<double> y_cost;    ///< y_i^c realizations.

  // Optional oracle columns (empty for real data).
  std::vector<double> true_tau_r;  ///< tau_r(x_i), if known.
  std::vector<double> true_tau_c;  ///< tau_c(x_i), if known.
  std::vector<int> segment;        ///< latent segment id, if known.

  [[nodiscard]] int n() const { return x.rows(); }
  [[nodiscard]] int dim() const { return x.cols(); }
  [[nodiscard]] bool has_ground_truth() const {
    return !true_tau_r.empty() && !true_tau_c.empty();
  }

  /// Number of treated samples (N_1 in the paper).
  [[nodiscard]] int NumTreated() const;
  /// Number of control samples (N_0).
  [[nodiscard]] int NumControl() const;

  /// Ground-truth ROI of sample i = tau_r(x_i) / tau_c(x_i).
  /// Requires has_ground_truth() and positive tau_c.
  [[nodiscard]] double TrueRoi(int i) const;

  /// Returns the subset of the dataset at `indices`, preserving any oracle
  /// columns that are present.
  [[nodiscard]] RctDataset Subset(const std::vector<int>& indices) const;

  /// Aborts if the internal columns disagree in length or treatments are
  /// not binary. Call after hand-assembling a dataset.
  void Validate() const;

  /// Difference of group means for a column:
  /// mean(values | t=1) - mean(values | t=0). Requires both groups
  /// non-empty. This is the RCT estimate of the average treatment effect.
  [[nodiscard]] static double DiffInMeans(
      const std::vector<int>& treatment, const std::vector<double>& values);

  /// tau_hat_r: RCT difference-in-means estimate of average revenue lift.
  [[nodiscard]] double AverageRevenueLift() const {
    return DiffInMeans(treatment, y_revenue);
  }
  /// tau_hat_c: RCT difference-in-means estimate of average cost lift.
  [[nodiscard]] double AverageCostLift() const {
    return DiffInMeans(treatment, y_cost);
  }
};

/// Three-way split used by Algorithm 4: train / calibration / test.
struct DatasetSplits {
  RctDataset train;
  RctDataset calibration;
  RctDataset test;
};

}  // namespace roicl

#endif  // ROICL_DATA_DATASET_H_
