#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/math_util.h"

namespace roicl {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // Trailing empty field after a final comma.
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

}  // namespace

Status WriteDatasetCsv(const RctDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  dataset.Validate();

  for (int c = 0; c < dataset.dim(); ++c) out << "f" << c << ",";
  out << "treatment,y_revenue,y_cost";
  bool oracle = dataset.has_ground_truth();
  if (oracle) out << ",true_tau_r,true_tau_c";
  bool segments = !dataset.segment.empty();
  if (segments) out << ",segment";
  out << "\n";

  out.precision(12);
  for (int i = 0; i < dataset.n(); ++i) {
    const double* row = dataset.x.RowPtr(i);
    const size_t si = AsSize(i);
    for (int c = 0; c < dataset.dim(); ++c) out << row[c] << ",";
    out << dataset.treatment[si] << "," << dataset.y_revenue[si] << ","
        << dataset.y_cost[si];
    if (oracle) {
      out << "," << dataset.true_tau_r[si] << "," << dataset.true_tau_c[si];
    }
    if (segments) out << "," << dataset.segment[si];
    out << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<RctDataset> ReadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  std::vector<std::string> header = SplitLine(line);

  int col_treatment = -1, col_yr = -1, col_yc = -1;
  int col_tau_r = -1, col_tau_c = -1, col_segment = -1;
  std::vector<int> feature_cols;
  for (size_t i = 0; i < header.size(); ++i) {
    const std::string& name = header[i];
    int idx = static_cast<int>(i);
    if (name == "treatment") {
      col_treatment = idx;
    } else if (name == "y_revenue") {
      col_yr = idx;
    } else if (name == "y_cost") {
      col_yc = idx;
    } else if (name == "true_tau_r") {
      col_tau_r = idx;
    } else if (name == "true_tau_c") {
      col_tau_c = idx;
    } else if (name == "segment") {
      col_segment = idx;
    } else {
      feature_cols.push_back(idx);
    }
  }
  if (col_treatment < 0 || col_yr < 0 || col_yc < 0) {
    return Status::InvalidArgument(
        "CSV must contain treatment, y_revenue and y_cost columns");
  }

  RctDataset dataset;
  dataset.x = Matrix(0, static_cast<int>(feature_cols.size()));
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("field count mismatch at line " +
                                     std::to_string(line_number));
    }
    std::vector<double> features;
    features.reserve(feature_cols.size());
    for (int c : feature_cols) {
      features.push_back(std::atof(fields[AsSize(c)].c_str()));
    }
    dataset.x.AppendRow(features);
    dataset.treatment.push_back(std::atoi(fields[AsSize(col_treatment)].c_str()));
    dataset.y_revenue.push_back(std::atof(fields[AsSize(col_yr)].c_str()));
    dataset.y_cost.push_back(std::atof(fields[AsSize(col_yc)].c_str()));
    if (col_tau_r >= 0) {
      dataset.true_tau_r.push_back(std::atof(fields[AsSize(col_tau_r)].c_str()));
    }
    if (col_tau_c >= 0) {
      dataset.true_tau_c.push_back(std::atof(fields[AsSize(col_tau_c)].c_str()));
    }
    if (col_segment >= 0) {
      dataset.segment.push_back(std::atoi(fields[AsSize(col_segment)].c_str()));
    }
  }
  dataset.Validate();
  return dataset;
}

}  // namespace roicl
