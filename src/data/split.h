#ifndef ROICL_DATA_SPLIT_H_
#define ROICL_DATA_SPLIT_H_

#include "common/rng.h"
#include "data/dataset.h"

namespace roicl {

/// Fractions for a three-way random split; must be positive and sum to <= 1
/// (the remainder, if any, is discarded).
struct SplitFractions {
  double train = 0.6;
  double calibration = 0.2;
  double test = 0.2;
};

/// Randomly partitions `dataset` into train / calibration / test.
/// Shuffling is driven by `rng`, so splits are reproducible by seed.
DatasetSplits SplitDataset(const RctDataset& dataset,
                           const SplitFractions& fractions, Rng* rng);

/// Random subsample of `rate * n` rows (used to build the "Insufficient"
/// settings; the paper subsamples at rate 0.15). Treatment-stratified so
/// that both arms survive even at small rates.
RctDataset Subsample(const RctDataset& dataset, double rate, Rng* rng);

/// Two-fold split of a dataset (used by honest forests and X-learner
/// stages). `first_fraction` in (0, 1).
void TwoWaySplit(const RctDataset& dataset, double first_fraction, Rng* rng,
                 RctDataset* first, RctDataset* second);

}  // namespace roicl

#endif  // ROICL_DATA_SPLIT_H_
