#include "data/split.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl {

DatasetSplits SplitDataset(const RctDataset& dataset,
                           const SplitFractions& fractions, Rng* rng) {
  ROICL_CHECK(rng != nullptr);
  ROICL_CHECK(fractions.train > 0.0 && fractions.calibration > 0.0 &&
              fractions.test > 0.0);
  ROICL_CHECK(fractions.train + fractions.calibration + fractions.test <=
              1.0 + 1e-9);
  int n = dataset.n();
  std::vector<int> perm = rng->Permutation(n);
  int n_train = static_cast<int>(std::floor(fractions.train * n));
  int n_calib = static_cast<int>(std::floor(fractions.calibration * n));
  int n_test = static_cast<int>(std::floor(fractions.test * n));
  ROICL_CHECK_MSG(n_train > 0 && n_calib > 0 && n_test > 0,
                  "dataset too small to split (n=%d)", n);

  DatasetSplits splits;
  splits.train = dataset.Subset(
      std::vector<int>(perm.begin(), perm.begin() + n_train));
  splits.calibration = dataset.Subset(std::vector<int>(
      perm.begin() + n_train, perm.begin() + n_train + n_calib));
  splits.test = dataset.Subset(std::vector<int>(
      perm.begin() + n_train + n_calib,
      perm.begin() + n_train + n_calib + n_test));
  return splits;
}

RctDataset Subsample(const RctDataset& dataset, double rate, Rng* rng) {
  ROICL_CHECK(rng != nullptr);
  ROICL_CHECK(rate > 0.0 && rate <= 1.0);
  // Stratify by treatment so both arms survive aggressive subsampling.
  std::vector<int> treated, control;
  for (int i = 0; i < dataset.n(); ++i) {
    (dataset.treatment[AsSize(i)] == 1 ? treated : control).push_back(i);
  }
  auto pick = [&](std::vector<int>& group) {
    int k = std::max(
        1, static_cast<int>(
               std::round(rate * static_cast<double>(group.size()))));
    k = std::min(k, static_cast<int>(group.size()));
    rng->Shuffle(&group);
    group.resize(AsSize(k));
  };
  pick(treated);
  pick(control);
  std::vector<int> keep;
  keep.reserve(treated.size() + control.size());
  keep.insert(keep.end(), treated.begin(), treated.end());
  keep.insert(keep.end(), control.begin(), control.end());
  rng->Shuffle(&keep);
  return dataset.Subset(keep);
}

void TwoWaySplit(const RctDataset& dataset, double first_fraction, Rng* rng,
                 RctDataset* first, RctDataset* second) {
  ROICL_CHECK(rng != nullptr && first != nullptr && second != nullptr);
  ROICL_CHECK(first_fraction > 0.0 && first_fraction < 1.0);
  int n = dataset.n();
  std::vector<int> perm = rng->Permutation(n);
  int n_first = std::max(1, static_cast<int>(std::floor(first_fraction * n)));
  n_first = std::min(n_first, n - 1);
  *first =
      dataset.Subset(std::vector<int>(perm.begin(), perm.begin() + n_first));
  *second =
      dataset.Subset(std::vector<int>(perm.begin() + n_first, perm.end()));
}

}  // namespace roicl
