#ifndef ROICL_DATA_SCALER_H_
#define ROICL_DATA_SCALER_H_

#include <vector>

#include "linalg/matrix.h"

namespace roicl {

/// Column-wise standardizer (zero mean, unit variance). Fitted on the
/// training features and applied to calibration/test features, mirroring
/// how the neural models are trained in practice. Constant columns are
/// centered only.
class StandardScaler {
 public:
  /// Computes per-column means and stddevs from `x`.
  void Fit(const Matrix& x);

  /// Returns the standardized copy of `x`. Requires Fit() first and a
  /// matching column count.
  Matrix Transform(const Matrix& x) const;

  /// Fit() then Transform() on the same matrix.
  Matrix FitTransform(const Matrix& x);

  /// Rebuilds a fitted scaler from stored moments (deserialization).
  /// Sizes must match and stddevs must be positive.
  static StandardScaler FromMoments(std::vector<double> means,
                                    std::vector<double> stddevs);

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  bool fitted_ = false;
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace roicl

#endif  // ROICL_DATA_SCALER_H_
