#include "data/dataset.h"

#include "common/macros.h"
#include "common/math_util.h"

namespace roicl {

int RctDataset::NumTreated() const {
  int count = 0;
  for (int t : treatment) count += (t == 1);
  return count;
}

int RctDataset::NumControl() const {
  return static_cast<int>(treatment.size()) - NumTreated();
}

double RctDataset::TrueRoi(int i) const {
  ROICL_CHECK(has_ground_truth());
  ROICL_CHECK(i >= 0 && i < n());
  ROICL_CHECK_MSG(true_tau_c[AsSize(i)] > 0.0,
                  "TrueRoi requires positive cost effect (Assumption 4)");
  return true_tau_r[AsSize(i)] / true_tau_c[AsSize(i)];
}

namespace {

template <typename T>
std::vector<T> SelectVector(const std::vector<T>& values,
                            const std::vector<int>& indices) {
  if (values.empty()) return {};
  std::vector<T> out;
  out.reserve(indices.size());
  for (int i : indices) {
    ROICL_CHECK(i >= 0 && i < static_cast<int>(values.size()));
    out.push_back(values[AsSize(i)]);
  }
  return out;
}

}  // namespace

RctDataset RctDataset::Subset(const std::vector<int>& indices) const {
  RctDataset out;
  out.x = x.SelectRows(indices);
  out.treatment = SelectVector(treatment, indices);
  out.y_revenue = SelectVector(y_revenue, indices);
  out.y_cost = SelectVector(y_cost, indices);
  out.true_tau_r = SelectVector(true_tau_r, indices);
  out.true_tau_c = SelectVector(true_tau_c, indices);
  out.segment = SelectVector(segment, indices);
  return out;
}

void RctDataset::Validate() const {
  size_t rows = static_cast<size_t>(x.rows());
  ROICL_CHECK_MSG(treatment.size() == rows, "treatment length mismatch");
  ROICL_CHECK_MSG(y_revenue.size() == rows, "y_revenue length mismatch");
  ROICL_CHECK_MSG(y_cost.size() == rows, "y_cost length mismatch");
  if (!true_tau_r.empty()) {
    ROICL_CHECK_MSG(true_tau_r.size() == rows, "true_tau_r length mismatch");
  }
  if (!true_tau_c.empty()) {
    ROICL_CHECK_MSG(true_tau_c.size() == rows, "true_tau_c length mismatch");
  }
  if (!segment.empty()) {
    ROICL_CHECK_MSG(segment.size() == rows, "segment length mismatch");
  }
  for (int t : treatment) {
    ROICL_CHECK_MSG(t == 0 || t == 1, "treatment must be binary, got %d", t);
  }
}

double RctDataset::DiffInMeans(const std::vector<int>& treatment,
                               const std::vector<double>& values) {
  ROICL_CHECK(treatment.size() == values.size());
  double sum1 = 0.0, sum0 = 0.0;
  int n1 = 0, n0 = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (treatment[i] == 1) {
      sum1 += values[i];
      ++n1;
    } else {
      sum0 += values[i];
      ++n0;
    }
  }
  ROICL_CHECK_MSG(n1 > 0 && n0 > 0,
                  "DiffInMeans requires both treatment groups present");
  return sum1 / n1 - sum0 / n0;
}

}  // namespace roicl
