#include "abtest/simulator.h"

#include <numeric>

#include "common/macros.h"
#include "common/math_util.h"
#include "core/greedy.h"

namespace roicl::abtest {

double AbTestResult::LiftOverRandomPct(const ArmResult& arm) const {
  ROICL_CHECK(random_arm.total_revenue > 0.0);
  return (arm.total_revenue - random_arm.total_revenue) /
         random_arm.total_revenue * 100.0;
}

AbTestResult RunAbTest(const synth::SyntheticGenerator& generator,
                       bool shifted_deployment,
                       const uplift::RoiModel& drp,
                       const uplift::RoiModel& rdrp,
                       const AbTestConfig& config) {
  ROICL_CHECK(config.population_per_day > 0);
  ROICL_CHECK(config.num_days > 0);
  ROICL_CHECK(config.budget_fraction > 0.0 && config.budget_fraction <= 1.0);

  AbTestResult result;
  result.random_arm.name = "Random";
  result.drp_arm.name = drp.name();
  result.rdrp_arm.name = rdrp.name();

  Rng rng(config.seed, /*stream=*/41);
  for (int day = 0; day < config.num_days; ++day) {
    Rng day_rng = rng.Split();
    RctDataset population = generator.Generate(
        config.population_per_day, shifted_deployment, &day_rng);

    // The budget is a fraction of the cost of treating everyone, measured
    // in ground-truth expected incremental cost — the platform's realized
    // spend in expectation.
    double total_cost = std::accumulate(population.true_tau_c.begin(),
                                        population.true_tau_c.end(), 0.0);
    double budget = config.budget_fraction * total_cost;

    std::vector<double> random_scores(AsSize(population.n()));
    for (double& s : random_scores) s = day_rng.Uniform();
    std::vector<double> drp_scores = drp.PredictRoi(population.x);
    std::vector<double> rdrp_scores = rdrp.PredictRoi(population.x);

    auto realize = [&](const std::vector<double>& scores, ArmResult* arm) {
      core::AllocationResult alloc = core::GreedyAllocate(
          scores, population.true_tau_c, budget, /*skip_unaffordable=*/true);
      double revenue = 0.0;
        for (int i : alloc.selected) {
        revenue += population.true_tau_r[AsSize(i)];
      }
      arm->daily_revenue.push_back(revenue);
      arm->total_revenue += revenue;
    };
    realize(random_scores, &result.random_arm);
    realize(drp_scores, &result.drp_arm);
    realize(rdrp_scores, &result.rdrp_arm);
  }
  return result;
}

}  // namespace roicl::abtest
