#ifndef ROICL_ABTEST_SIMULATOR_H_
#define ROICL_ABTEST_SIMULATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/synthetic_generator.h"
#include "uplift/roi_model.h"

namespace roicl::abtest {

/// Configuration of a simulated online A/B test (§V-C of the paper).
struct AbTestConfig {
  /// Users scored per "day" of the test.
  int population_per_day = 4000;
  /// Number of days; the paper uses five-day tests.
  int num_days = 5;
  /// Budget per arm, as a fraction of the population's total incremental
  /// cost if everyone were treated.
  double budget_fraction = 0.15;
  uint64_t seed = 2024;
};

/// Revenue outcome of one arm across the test.
struct ArmResult {
  std::string name;
  /// Expected incremental revenue realized per day (ground truth tau_r of
  /// the treated individuals).
  std::vector<double> daily_revenue;
  double total_revenue = 0.0;
};

/// Full A/B result: three arms sharing the same daily populations and
/// budgets, mirroring the paper's setup (DRP / rDRP / Random Control).
struct AbTestResult {
  ArmResult random_arm;
  ArmResult drp_arm;
  ArmResult rdrp_arm;

  /// Percent revenue lift of an arm over the random arm (Fig. 6 metric).
  double LiftOverRandomPct(const ArmResult& arm) const;
};

/// Runs the simulated A/B test.
///
/// Each day draws a fresh population from `generator` (shifted or not —
/// the SuCo/InCo settings deploy on shifted traffic), scores it with each
/// fitted model (and a uniform random scorer for the control arm), runs
/// the greedy Algorithm-1 allocation under the common budget, and
/// realizes expected incremental revenue/cost from the generator's ground
/// truth. Models must already be fitted.
AbTestResult RunAbTest(const synth::SyntheticGenerator& generator,
                       bool shifted_deployment,
                       const uplift::RoiModel& drp,
                       const uplift::RoiModel& rdrp,
                       const AbTestConfig& config);

}  // namespace roicl::abtest

#endif  // ROICL_ABTEST_SIMULATOR_H_
