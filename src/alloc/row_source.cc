#include "alloc/row_source.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"

namespace roicl::alloc {
namespace {

/// Maps 64 random bits to a double in [0, 1) with the standard 53-bit
/// mantissa construction.
double UnitDouble(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

VectorRowSource::VectorRowSource(std::vector<double> roi,
                                 std::vector<double> cost, int chunk_rows)
    : roi_(std::move(roi)),
      cost_(std::move(cost)),
      chunk_rows_(chunk_rows) {
  ROICL_CHECK(roi_.size() == cost_.size());
  ROICL_CHECK(chunk_rows > 0);
}

bool VectorRowSource::Next(RowChunk* chunk) {
  ROICL_CHECK(chunk != nullptr);
  if (pos_ >= total_rows()) return false;
  int64_t take = std::min(chunk_rows_, total_rows() - pos_);
  chunk->base_index = pos_;
  chunk->roi.assign(roi_.begin() + pos_, roi_.begin() + pos_ + take);
  chunk->cost.assign(cost_.begin() + pos_, cost_.begin() + pos_ + take);
  pos_ += take;
  return true;
}

size_t VectorRowSource::chunk_bytes() const {
  return static_cast<size_t>(chunk_rows_) * 2 * sizeof(double);
}

SyntheticRowSource::SyntheticRowSource(int64_t n, uint64_t seed,
                                       int chunk_rows)
    : n_(n), seed_(seed), chunk_rows_(chunk_rows) {
  ROICL_CHECK(n >= 0);
  ROICL_CHECK(chunk_rows > 0);
}

void SyntheticRowSource::RowAt(uint64_t seed, int64_t i, double* roi,
                               double* cost) {
  // One SplitMix64 stream per row, keyed by (seed, i): chunk boundaries
  // and pass count can never perturb a row's values.
  SplitMix64 mix(seed ^
                 (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
  *roi = 0.05 + 0.90 * UnitDouble(mix.Next());
  *cost = 0.2 + 1.8 * UnitDouble(mix.Next());
}

bool SyntheticRowSource::Next(RowChunk* chunk) {
  ROICL_CHECK(chunk != nullptr);
  if (pos_ >= n_) return false;
  int64_t take = std::min(chunk_rows_, n_ - pos_);
  chunk->base_index = pos_;
  chunk->roi.resize(static_cast<size_t>(take));
  chunk->cost.resize(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    RowAt(seed_, pos_ + i, &chunk->roi[static_cast<size_t>(i)],
          &chunk->cost[static_cast<size_t>(i)]);
  }
  pos_ += take;
  return true;
}

size_t SyntheticRowSource::chunk_bytes() const {
  return static_cast<size_t>(chunk_rows_) * 2 * sizeof(double);
}

}  // namespace roicl::alloc
