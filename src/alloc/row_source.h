#ifndef ROICL_ALLOC_ROW_SOURCE_H_
#define ROICL_ALLOC_ROW_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Chunked row streams for the planet-scale budget allocator.
///
/// `core::GreedyAllocate` (Algorithm 1) needs the whole population
/// memory-resident; the streaming allocator (`alloc/streaming.h`) instead
/// pulls (roi, cost) rows through this interface one bounded chunk at a
/// time, so the population size never appears in its memory footprint.
/// Every implementation must be deterministic: repeated passes over the
/// same source yield bitwise-identical rows in identical order, which is
/// what makes the dual-threshold mode's multi-pass bisection and the
/// bitwise-equivalence guarantee of the greedy mode well defined.

namespace roicl::alloc {

/// One chunk of the user stream: parallel arrays of predicted ROI scores
/// and incremental treatment costs tau_c for the rows
/// [base_index, base_index + size()). The allocator holds at most one
/// chunk at a time.
struct RowChunk {
  int64_t base_index = 0;
  std::vector<double> roi;
  std::vector<double> cost;

  int64_t size() const { return static_cast<int64_t>(roi.size()); }
};

/// Pull-based chunked row stream. `Next` fills `chunk` with the next
/// block and returns true, or returns false at end of stream. `Reset`
/// rewinds to the first row — the dual-threshold mode re-streams the
/// source once per refinement pass instead of materializing it.
class RowSource {
 public:
  virtual ~RowSource() = default;

  virtual bool Next(RowChunk* chunk) = 0;
  virtual void Reset() = 0;

  /// Total rows the stream yields per pass (known up front).
  virtual int64_t total_rows() const = 0;

  /// Bytes of chunk buffer a `Next` call may hand out — charged against
  /// the allocator's memory cap, so "streaming" cannot cheat the cap by
  /// inflating the chunk size.
  virtual size_t chunk_bytes() const = 0;
};

/// Adapts in-memory score/cost vectors (the CLI's scored-CSV path and the
/// equivalence tests) to the chunked interface.
class VectorRowSource : public RowSource {
 public:
  /// `roi` and `cost` must have equal length; `chunk_rows > 0`.
  VectorRowSource(std::vector<double> roi, std::vector<double> cost,
                  int chunk_rows);

  bool Next(RowChunk* chunk) override;
  void Reset() override { pos_ = 0; }
  int64_t total_rows() const override {
    return static_cast<int64_t>(roi_.size());
  }
  size_t chunk_bytes() const override;

 private:
  std::vector<double> roi_;
  std::vector<double> cost_;
  int64_t chunk_rows_;
  int64_t pos_ = 0;
};

/// Deterministic synthetic population for scale tests and benchmarks:
/// row i's (roi, cost) pair is a pure function of (seed, i) via
/// SplitMix64, so a 10M-row allocation needs no 10M-row materialization,
/// any chunking yields identical rows, and a pinned seed reproduces the
/// exact stream. roi is uniform in [0.05, 0.95), cost uniform in
/// [0.2, 2.0) — the ranges the greedy property tests draw from.
class SyntheticRowSource : public RowSource {
 public:
  SyntheticRowSource(int64_t n, uint64_t seed, int chunk_rows);

  bool Next(RowChunk* chunk) override;
  void Reset() override { pos_ = 0; }
  int64_t total_rows() const override { return n_; }
  size_t chunk_bytes() const override;

  /// The (roi, cost) pair for row `i` — pure function of (seed, i).
  static void RowAt(uint64_t seed, int64_t i, double* roi, double* cost);

 private:
  int64_t n_;
  uint64_t seed_;
  int64_t chunk_rows_;
  int64_t pos_ = 0;
};

}  // namespace roicl::alloc

#endif  // ROICL_ALLOC_ROW_SOURCE_H_
