#include "alloc/streaming.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roicl::alloc {
namespace {

/// Buffered arrivals trigger a compaction once they reach
/// max(kMinCompactRows, |kept|) — amortized O(log f) per row.
constexpr size_t kMinCompactRows = 64;

Status ValidateRow(int64_t index, double roi, double cost) {
  if (!std::isfinite(roi)) {
    return Status::InvalidArgument("non-finite roi score at row " +
                                   std::to_string(index));
  }
  if (!(cost >= 0.0) || !std::isfinite(cost)) {
    return Status::InvalidArgument("negative or non-finite cost at row " +
                                   std::to_string(index));
  }
  return Status::Ok();
}

Status CapExceeded(const MemoryAccountant& accountant) {
  return Status::FailedPrecondition(
      "streaming allocation exceeded its memory cap (" +
      std::to_string(accountant.cap()) +
      " bytes); raise the cap or lower the budget/shard count");
}

/// Appends to `result->selected`, growing the vector through the
/// accountant so the selection buffer counts against the cap too.
bool PushSelected(int64_t index, MemoryAccountant* accountant,
                  StreamingResult* result) {
  std::vector<int64_t>& selected = result->selected;
  if (selected.size() == selected.capacity()) {
    size_t grow = std::max<size_t>(1024, selected.capacity() * 2);
    if (!accountant->TryCharge((grow - selected.capacity()) *
                               sizeof(int64_t))) {
      return false;
    }
    selected.reserve(grow);
  }
  selected.push_back(index);
  return true;
}

}  // namespace

bool RankBefore(const FrontierItem& a, const FrontierItem& b) {
  if (a.roi != b.roi) return a.roi > b.roi;
  return a.index < b.index;
}

bool MemoryAccountant::TryCharge(size_t bytes) {
  size_t current = current_.load(std::memory_order_relaxed);
  while (true) {
    if (current + bytes > cap_) return false;
    if (current_.compare_exchange_weak(current, current + bytes,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
  size_t now = current + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryAccountant::Release(size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

ShardFrontier::ShardFrontier(double budget, MemoryAccountant* accountant)
    : budget_(budget), accountant_(accountant) {
  ROICL_CHECK(budget >= 0.0);
  ROICL_CHECK(accountant != nullptr);
}

ShardFrontier::~ShardFrontier() { accountant_->Release(charged_bytes_); }

bool ShardFrontier::EnsureCharged(size_t target_bytes) {
  if (target_bytes > charged_bytes_) {
    if (!accountant_->TryCharge(target_bytes - charged_bytes_)) return false;
  } else {
    accountant_->Release(charged_bytes_ - target_bytes);
  }
  charged_bytes_ = target_bytes;
  return true;
}

bool ShardFrontier::Add(int64_t index, double roi, double cost) {
  ROICL_DCHECK(std::isfinite(roi));
  ROICL_DCHECK(cost >= 0.0);
  if (saturated_) {
    // Discard fast path: ranked at/after the sentinel r_cut, whose exact
    // shard-prefix spend already exceeds the budget, so (FP-monotone
    // superset sums) the global greedy can never reach this row.
    FrontierItem candidate{roi, cost, index};
    if (!RankBefore(candidate, kept_.back())) {
      ++evictions_;
      return true;
    }
  }
  if (pending_.size() == pending_.capacity()) {
    size_t grow = std::max(kMinCompactRows, pending_.capacity() * 2);
    if (!EnsureCharged((kept_.capacity() + grow) * sizeof(FrontierItem))) {
      return false;
    }
    pending_.reserve(grow);
  }
  pending_.push_back(FrontierItem{roi, cost, index});
  if (pending_.size() >= std::max(kMinCompactRows, kept_.size())) {
    return Compact();
  }
  return true;
}

bool ShardFrontier::Compact() {
  if (pending_.empty()) return true;
  std::sort(pending_.begin(), pending_.end(), RankBefore);
  size_t need = kept_.size() + pending_.size();
  // The merge double-buffers; charge the transient target up front so the
  // accounted peak covers the real high-water mark.
  if (!EnsureCharged((kept_.capacity() + pending_.capacity() + need) *
                     sizeof(FrontierItem))) {
    return false;
  }
  std::vector<FrontierItem> merged;
  merged.reserve(need);
  std::merge(kept_.begin(), kept_.end(), pending_.begin(), pending_.end(),
             std::back_inserter(merged), RankBefore);
  // Exact invariant: keep the rank-order prefix r_1..r_cut where the
  // floating-point prefix sum first exceeds the budget; r_cut stays as
  // the stop sentinel. Costs are non-negative, so rows past the cut can
  // never be selected by the reference greedy (see streaming.h).
  double spent = 0.0;
  size_t cut = merged.size();
  bool found = false;
  for (size_t j = 0; j < merged.size(); ++j) {
    spent += merged[j].cost;
    if (spent > budget_) {
      cut = j + 1;
      found = true;
      break;
    }
  }
  if (cut < merged.size()) {
    evictions_ += static_cast<int64_t>(merged.size() - cut);
    merged.resize(cut);
  }
  saturated_ = found;
  kept_.swap(merged);
  pending_.clear();
  merged = std::vector<FrontierItem>();  // release the old buffer now
  return EnsureCharged((kept_.capacity() + pending_.capacity()) *
                       sizeof(FrontierItem));
}

namespace {

StatusOr<StreamingResult> GreedyStream(RowSource* source, double budget,
                                       const StreamingOptions& options,
                                       MemoryAccountant* accountant) {
  obs::ScopedSpan span("alloc.greedy");
  const int num_shards = options.num_shards;
  std::vector<std::unique_ptr<ShardFrontier>> shards;
  shards.reserve(AsSize(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards.push_back(std::make_unique<ShardFrontier>(budget, accountant));
  }

  StreamingResult result;
  source->Reset();
  RowChunk chunk;
  bool over_cap = false;
  {
    obs::ScopedSpan stream_span("alloc.greedy.stream");
    while (!over_cap && source->Next(&chunk)) {
      const int64_t size = chunk.size();
      result.rows_streamed += size;
      // Validate the chunk serially first: the first bad row reported is
      // then deterministic at any shard count or thread interleaving.
      for (int64_t i = 0; i < size; ++i) {
        Status row_status =
            ValidateRow(chunk.base_index + i, chunk.roi[AsSize64(i)],
                        chunk.cost[AsSize64(i)]);
        if (!row_status.ok()) return row_status;
      }
      if (options.parallel_shards && num_shards > 1) {
        // Shards are disjoint (row -> index % num_shards), so each task
        // touches only its own frontier; the accountant is atomic. Every
        // shard sees its rows in index order regardless of interleaving,
        // making the outcome bitwise-identical to the serial path.
        std::atomic<bool> chunk_over_cap{false};
        GlobalThreadPool().ParallelFor(0, num_shards, [&](int s) {
          ShardFrontier* frontier = shards[AsSize(s)].get();
          for (int64_t i = 0; i < size; ++i) {
            int64_t index = chunk.base_index + i;
            if (index % num_shards != s) continue;
            if (!frontier->Add(index, chunk.roi[AsSize64(i)],
                               chunk.cost[AsSize64(i)])) {
              chunk_over_cap.store(true, std::memory_order_relaxed);
              return;
            }
          }
        });
        over_cap = chunk_over_cap.load(std::memory_order_relaxed);
      } else {
        for (int64_t i = 0; i < size && !over_cap; ++i) {
          int64_t index = chunk.base_index + i;
          int s = static_cast<int>(index % num_shards);
          over_cap = !shards[AsSize(s)]->Add(index, chunk.roi[AsSize64(i)],
                                             chunk.cost[AsSize64(i)]);
        }
      }
    }
  }
  if (over_cap) return CapExceeded(*accountant);

  obs::ScopedSpan merge_span("alloc.merge");
  size_t total = 0;
  for (std::unique_ptr<ShardFrontier>& shard : shards) {
    if (!shard->Compact()) return CapExceeded(*accountant);
    total += shard->items().size();
    result.frontier_evictions += shard->evictions();
  }
  if (!accountant->TryCharge(total * sizeof(FrontierItem))) {
    return CapExceeded(*accountant);
  }
  std::vector<FrontierItem> merged;
  merged.reserve(total);
  for (std::unique_ptr<ShardFrontier>& shard : shards) {
    merged.insert(merged.end(), shard->items().begin(),
                  shard->items().end());
  }
  std::sort(merged.begin(), merged.end(), RankBefore);
  result.merge_candidates = static_cast<int64_t>(total);

  // Exact reconciliation: replay Algorithm 1's stop-at-first-overflow
  // scan over the merged candidates. The merged list contains the full
  // reference selection plus its stop row in identical rank order, so
  // the scan selects the same rows and accumulates the same FP spend as
  // core::GreedyAllocate over the whole population.
  for (const FrontierItem& item : merged) {
    if (result.spent + item.cost <= budget) {
      if (!PushSelected(item.index, accountant, &result)) {
        return CapExceeded(*accountant);
      }
      result.spent += item.cost;
      result.value += item.roi * item.cost;
    } else {
      break;  // the paper's variant: stop once the budget is reached
    }
  }
  return result;
}

StatusOr<StreamingResult> DualStream(RowSource* source, double budget,
                                     const StreamingOptions& options,
                                     MemoryAccountant* accountant) {
  obs::ScopedSpan span("alloc.dual");
  StreamingResult result;

  // Pass 1: validation + threshold bracket statistics.
  int64_t n = 0;
  double spend_at_zero = 0.0;
  double max_roi = 0.0;
  {
    obs::ScopedSpan stats_span("alloc.dual.stats");
    source->Reset();
    RowChunk chunk;
    while (source->Next(&chunk)) {
      const int64_t size = chunk.size();
      result.rows_streamed += size;
      n += size;
      for (int64_t i = 0; i < size; ++i) {
        double roi = chunk.roi[AsSize64(i)];
        double cost = chunk.cost[AsSize64(i)];
        Status row_status = ValidateRow(chunk.base_index + i, roi, cost);
        if (!row_status.ok()) return row_status;
        if (roi > 0.0) spend_at_zero += cost;
        max_roi = std::max(max_roi, roi);
      }
    }
  }
  if (n == 0) return result;

  // Bisect the scalar ROI threshold to budget feasibility. Each pass
  // streams once and measures spend at `dual_grid` candidate thresholds
  // simultaneously (cost histogram + suffix sums), narrowing the bracket
  // by a factor of grid+1 per pass. The upper end of the bracket is
  // always measured-feasible.
  double theta = 0.0;
  if (spend_at_zero > budget) {
    obs::ScopedSpan bisect_span("alloc.dual.bisect");
    double lo = 0.0;
    double hi = max_roi;  // spend({roi > max_roi}) == 0 <= budget
    const int grid = options.dual_grid;
    std::vector<double> candidates(AsSize(grid));
    std::vector<double> bucket_cost(AsSize(grid) + 1);
    std::vector<double> spend(AsSize(grid));
    for (int pass = 0; pass < options.dual_passes; ++pass) {
      double step = (hi - lo) / static_cast<double>(grid + 1);
      if (!(step > 0.0)) break;  // bracket below FP resolution
      for (int g = 0; g < grid; ++g) {
        candidates[AsSize(g)] = lo + step * static_cast<double>(g + 1);
      }
      std::fill(bucket_cost.begin(), bucket_cost.end(), 0.0);
      source->Reset();
      RowChunk chunk;
      while (source->Next(&chunk)) {
        const int64_t size = chunk.size();
        result.rows_streamed += size;
        for (int64_t i = 0; i < size; ++i) {
          double roi = chunk.roi[AsSize64(i)];
          // Number of candidates strictly below roi = the highest g with
          // candidates[g] < roi, plus one; bucket grid catches the rest.
          size_t b = static_cast<size_t>(
              std::lower_bound(candidates.begin(), candidates.end(), roi) -
              candidates.begin());
          bucket_cost[b] += chunk.cost[AsSize64(i)];
        }
      }
      // spend(candidates[g]) = total cost of rows with roi > candidate =
      // suffix sum of buckets above g.
      double suffix = 0.0;
      for (int g = grid - 1; g >= 0; --g) {
        suffix += bucket_cost[AsSize(g) + 1];
        spend[AsSize(g)] = suffix;
      }
      int feasible = -1;
      for (int g = 0; g < grid; ++g) {
        if (spend[AsSize(g)] <= budget) {
          feasible = g;
          break;
        }
      }
      if (feasible < 0) {
        lo = candidates[AsSize(grid - 1)];
      } else {
        hi = candidates[AsSize(feasible)];
        if (feasible > 0) lo = candidates[AsSize(feasible - 1)];
      }
    }
    theta = hi;
  }
  result.dual_threshold = theta;

  // Final pass: emit the threshold selection in index order, accumulate
  // the Lagrangian bound, and feed every rejected row through a repair
  // frontier (bounded by the full budget >= the actual slack, so the
  // stop-variant repair over it is exact).
  {
    obs::ScopedSpan select_span("alloc.dual.select");
    ShardFrontier repair(budget, accountant);
    double ub_sum = 0.0;
    source->Reset();
    RowChunk chunk;
    while (source->Next(&chunk)) {
      const int64_t size = chunk.size();
      result.rows_streamed += size;
      for (int64_t i = 0; i < size; ++i) {
        double roi = chunk.roi[AsSize64(i)];
        double cost = chunk.cost[AsSize64(i)];
        int64_t index = chunk.base_index + i;
        if (roi > theta) {
          ub_sum += (roi - theta) * cost;
          if (result.spent + cost <= budget) {
            if (!PushSelected(index, accountant, &result)) {
              return CapExceeded(*accountant);
            }
            result.spent += cost;
            result.value += roi * cost;
            continue;
          }
          // Feasibility guard for FP-edge rows: the bisection measured
          // spend with bucket sums, the emission re-measures with a
          // running sum; within rounding of the boundary the two can
          // disagree, and spent <= budget must win.
          ++result.dual_threshold_overflow;
        }
        if (options.dual_repair && !repair.Add(index, roi, cost)) {
          return CapExceeded(*accountant);
        }
      }
    }
    result.dual_upper_bound = theta * budget + ub_sum;
    if (options.dual_repair) {
      if (!repair.Compact()) return CapExceeded(*accountant);
      result.frontier_evictions = repair.evictions();
      result.merge_candidates = static_cast<int64_t>(repair.items().size());
      for (const FrontierItem& item : repair.items()) {
        if (result.spent + item.cost <= budget) {
          if (!PushSelected(item.index, accountant, &result)) {
            return CapExceeded(*accountant);
          }
          result.spent += item.cost;
          result.value += item.roi * item.cost;
        } else {
          break;
        }
      }
    }
    result.dual_gap = result.dual_upper_bound - result.value;
  }
  return result;
}

void RecordMetrics(const StreamingOptions& options,
                   const StreamingResult& result) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("alloc.streaming_calls")->Increment();
  registry.GetCounter("alloc.rows_streamed")
      ->Increment(static_cast<uint64_t>(result.rows_streamed));
  registry.GetCounter("alloc.frontier_evictions")
      ->Increment(static_cast<uint64_t>(result.frontier_evictions));
  registry.GetCounter("alloc.threshold_overflow")
      ->Increment(static_cast<uint64_t>(result.dual_threshold_overflow));
  registry.GetGauge("alloc.shards")
      ->Set(static_cast<double>(options.num_shards));
  registry.GetGauge("alloc.selected")
      ->Set(static_cast<double>(result.selected.size()));
  registry.GetGauge("alloc.merge_candidates")
      ->Set(static_cast<double>(result.merge_candidates));
  registry.GetGauge("alloc.peak_memory_bytes")
      ->Set(static_cast<double>(result.peak_memory_bytes));
  registry.GetGauge("alloc.dual_threshold")->Set(result.dual_threshold);
  registry.GetGauge("alloc.dual_gap")->Set(result.dual_gap);
  obs::Debug("streaming allocation",
             {{"mode", options.mode == AllocMode::kGreedy ? "greedy" : "dual"},
              {"shards", options.num_shards},
              {"rows_streamed", result.rows_streamed},
              {"selected", result.selected.size()},
              {"spent", result.spent},
              {"evictions", result.frontier_evictions},
              {"peak_memory_bytes", result.peak_memory_bytes}});
}

}  // namespace

StatusOr<StreamingResult> StreamingAllocate(RowSource* source, double budget,
                                            const StreamingOptions& options) {
  ROICL_CHECK(source != nullptr);
  obs::ScopedSpan span("alloc.streaming");
  if (!std::isfinite(budget) || budget < 0.0) {
    return Status::InvalidArgument("budget must be finite and >= 0");
  }
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (options.mode == AllocMode::kDual &&
      (options.dual_passes < 1 || options.dual_grid < 2)) {
    return Status::InvalidArgument(
        "dual mode needs dual_passes >= 1 and dual_grid >= 2");
  }
  MemoryAccountant accountant(options.memory_cap_bytes);
  if (!accountant.TryCharge(source->chunk_bytes())) {
    return Status::FailedPrecondition(
        "memory cap (" + std::to_string(options.memory_cap_bytes) +
        " bytes) cannot hold one chunk buffer (" +
        std::to_string(source->chunk_bytes()) + " bytes)");
  }
  StatusOr<StreamingResult> streamed =
      options.mode == AllocMode::kGreedy
          ? GreedyStream(source, budget, options, &accountant)
          : DualStream(source, budget, options, &accountant);
  if (!streamed.ok()) return streamed.status();
  StreamingResult result = std::move(streamed).value();
  result.peak_memory_bytes = accountant.peak();
  RecordMetrics(options, result);
  return result;
}

StatusOr<double> StreamingTotalCost(RowSource* source) {
  ROICL_CHECK(source != nullptr);
  obs::ScopedSpan span("alloc.total_cost");
  source->Reset();
  RowChunk chunk;
  double total = 0.0;
  while (source->Next(&chunk)) {
    const int64_t size = chunk.size();
    for (int64_t i = 0; i < size; ++i) {
      Status row_status =
          ValidateRow(chunk.base_index + i, chunk.roi[AsSize64(i)],
                      chunk.cost[AsSize64(i)]);
      if (!row_status.ok()) return row_status;
      total += chunk.cost[AsSize64(i)];
    }
  }
  return total;
}

}  // namespace roicl::alloc
