#ifndef ROICL_ALLOC_STREAMING_H_
#define ROICL_ALLOC_STREAMING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "alloc/row_source.h"
#include "common/status.h"

/// \file
/// Streaming C-BTAP budget allocator: sharded top-k frontiers with exact
/// reconciliation, plus a Lagrangian dual-threshold mode.
///
/// `core::GreedyAllocate` (Algorithm 1) sorts the whole population by
/// predicted ROI — O(n log n) time and O(n) resident memory, which dies
/// at Criteo scale (13.9M rows). `StreamingAllocate` consumes the
/// population in bounded chunks instead, keeping only a *budget-feasible
/// frontier* per shard, and merges the frontiers so that the greedy-mode
/// selection is **bitwise identical** to the in-memory reference greedy:
/// the same selected indices in the same order and the same
/// floating-point spend. See DESIGN.md, "Streaming allocation" for the
/// frontier invariant and the reconciliation proof sketch.
///
/// The dual mode replaces the global sort with a single scalar ROI
/// threshold bisected to budget feasibility (the "Free Lunch!" form of
/// ROI-constrained allocation): values v_i = roi_i * c_i make the
/// Lagrangian selection rule v_i > lambda * c_i collapse to
/// roi_i > lambda whenever c_i > 0, so one threshold replaces the
/// ranking. It reports the duality gap against the Lagrangian upper
/// bound; the gap is zero exactly when the threshold solution is
/// provably optimal.

namespace roicl::alloc {

/// Hard memory-cap accounting shared by the chunk buffer and every shard
/// frontier. Thread-safe: shards may accumulate concurrently. `TryCharge`
/// refuses charges that would exceed the cap — the allocator surfaces
/// that as kFailedPrecondition instead of quietly growing.
///
/// Concurrency contract: lock-free by design — a CAS loop over `current_`
/// plus a max-CAS on `peak_`; there is deliberately no Mutex here, so the
/// class carries no capability annotations (nothing for Thread Safety
/// Analysis to check; see DESIGN.md, "Concurrency contracts").
class MemoryAccountant {
 public:
  explicit MemoryAccountant(size_t cap_bytes) : cap_(cap_bytes) {}

  /// Attempts to account `bytes` more; false (and no state change) when
  /// the cap would be exceeded.
  bool TryCharge(size_t bytes);
  void Release(size_t bytes);

  size_t cap() const { return cap_; }
  size_t current() const { return current_.load(std::memory_order_relaxed); }
  /// High-water mark over the accountant's lifetime.
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  size_t cap_;
  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
};

/// One candidate row retained by a shard frontier.
struct FrontierItem {
  double roi = 0.0;
  double cost = 0.0;
  int64_t index = 0;
};

/// The documented allocation total order — (roi descending, user index
/// ascending) — shared with core::GreedyAllocate. A strict total order:
/// duplicate ROI keys break by stable user index, so every allocator in
/// the repo ranks identically and equivalence is well defined.
bool RankBefore(const FrontierItem& a, const FrontierItem& b);

/// Budget-feasible top-k frontier for one shard.
///
/// Invariant (exact, in rank order r_1, r_2, ... of the shard's rows seen
/// so far, with C_j the floating-point prefix sum fl(C_{j-1} + c_j)):
/// after `Compact`, the frontier holds r_1..r_cut where
/// cut = min{ j : C_j > budget }, or every row when no prefix exceeds the
/// budget. r_cut — the first shard-locally infeasible row — is retained
/// as the *stop sentinel* so the merge can replay Algorithm 1's
/// stop-at-first-overflow semantics exactly.
///
/// Safety: FP summation of non-negative terms is monotone under
/// inserting extra terms anywhere (fl(a + x) >= a for x >= 0, and fl is
/// monotone), so a row's global rank-order spend is >= its shard-local
/// prefix sum. A row dropped here (shard prefix already over budget)
/// therefore can never be selected by the global greedy, and the merged
/// frontiers contain the full reference selection plus its stop row.
///
/// Between compactions arrivals buffer unsorted; rows ranked at or below
/// a known sentinel are discarded O(1). Amortized cost per row is
/// O(log f) for a frontier of size f; memory is O(f), charged against
/// the shared accountant *including* the transient merge buffer.
class ShardFrontier {
 public:
  ShardFrontier(double budget, MemoryAccountant* accountant);
  ~ShardFrontier();

  ShardFrontier(const ShardFrontier&) = delete;
  ShardFrontier& operator=(const ShardFrontier&) = delete;

  /// Adds one row. Returns false iff the frontier needed memory past the
  /// accountant's cap (the caller should abort the allocation).
  bool Add(int64_t index, double roi, double cost);

  /// Restores the exact invariant. Returns false on a cap violation.
  bool Compact();

  /// The frontier rows in rank order. Valid only directly after a
  /// successful Compact().
  const std::vector<FrontierItem>& items() const { return kept_; }

  /// Rows discarded as provably unselectable so far.
  int64_t evictions() const { return evictions_; }

 private:
  bool EnsureCharged(size_t target_bytes);

  double budget_;
  MemoryAccountant* accountant_;
  std::vector<FrontierItem> kept_;     ///< rank order; invariant holds
  std::vector<FrontierItem> pending_;  ///< unordered arrivals
  bool saturated_ = false;  ///< kept_'s full prefix sum exceeds budget
  int64_t evictions_ = 0;
  size_t charged_bytes_ = 0;
};

enum class AllocMode {
  kGreedy,  ///< exact Algorithm-1 semantics via sharded frontiers
  kDual,    ///< scalar ROI threshold bisected to budget feasibility
};

struct StreamingOptions {
  AllocMode mode = AllocMode::kGreedy;
  /// Rows are assigned to shards by index % num_shards; the result is
  /// independent of the shard count (it only bounds per-shard state).
  int num_shards = 1;
  /// Hard cap on accounted working memory: chunk buffer + frontiers +
  /// merge scratch + the selection vector. Exceeding it fails the
  /// allocation with kFailedPrecondition rather than allocating.
  size_t memory_cap_bytes = size_t{256} << 20;
  /// Accumulate shard frontiers concurrently on the global thread pool.
  /// Greedy mode only. Results are bitwise identical either way: each
  /// shard's rows arrive in index order regardless of interleaving.
  bool parallel_shards = false;
  /// Dual mode: number of threshold-refinement streaming passes and the
  /// candidate-grid width per pass. Defaults resolve the threshold to
  /// ~(grid+1)^-passes of the initial ROI bracket.
  int dual_passes = 4;
  int dual_grid = 64;
  /// Dual mode: fill leftover budget with the best rejected rows,
  /// streamed through a slack-budget frontier (standard primal repair).
  bool dual_repair = true;
};

struct StreamingResult {
  /// Selected user indices. Greedy mode: allocation (rank) order —
  /// exactly the order core::GreedyAllocate returns. Dual mode:
  /// threshold picks in ascending index order, then repair picks in rank
  /// order.
  std::vector<int64_t> selected;
  /// Total cost of the selection. Greedy mode: bitwise equal to the
  /// reference greedy's spend. Always <= budget.
  double spent = 0.0;
  /// Sum of roi * cost (the tau_r estimate) over the selection.
  double value = 0.0;
  int64_t rows_streamed = 0;  ///< rows pulled across all passes
  size_t peak_memory_bytes = 0;
  int64_t frontier_evictions = 0;
  int64_t merge_candidates = 0;  ///< frontier rows surviving to the merge
  // Dual mode only:
  double dual_threshold = 0.0;    ///< final ROI threshold (lambda)
  double dual_upper_bound = 0.0;  ///< Lagrangian bound on the optimum
  double dual_gap = 0.0;          ///< upper_bound - value; ~0 => optimal
  /// Rows past the threshold skipped to preserve spend feasibility; only
  /// ever nonzero within FP rounding of the budget boundary.
  int64_t dual_threshold_overflow = 0;
};

/// Streams `source` and allocates the binary treatment under `budget`.
///
/// Greedy mode returns a selection bitwise identical to
/// `core::GreedyAllocate(roi, cost, budget, /*skip_unaffordable=*/false)`
/// — the paper's stop-at-first-overflow Algorithm 1 — while holding only
/// frontier state bounded by the budget-feasible set size (times the
/// shard count), never the population.
///
/// Errors: kInvalidArgument for a non-finite budget/ROI score, a
/// negative or non-finite cost, or bad options; kFailedPrecondition when
/// the memory cap cannot hold the working state.
StatusOr<StreamingResult> StreamingAllocate(RowSource* source, double budget,
                                            const StreamingOptions& options);

/// One O(1)-memory pass summing every cost — the CLI computes
/// budget = budget_frac * total cost this way for sources too large to
/// materialize. Rejects negative or non-finite costs.
StatusOr<double> StreamingTotalCost(RowSource* source);

}  // namespace roicl::alloc

#endif  // ROICL_ALLOC_STREAMING_H_
