#!/bin/bash
# Shell-script hygiene lint. PR 1 shipped a ctest entry that failed only
# because a script lost its executable bit in checkout; this lint makes
# that class of regression impossible:
#   1. every *.sh under tools/ and tests/ parses (bash -n);
#   2. every script opts into strict shell semantics (set -euo pipefail)
#      so an unset variable or mid-pipeline failure can't be swallowed;
#   3. every script has the executable bit set;
#   4. ctest test names are unique across the tree (no double
#      registration), and every tools/check_*.sh lint is registered in
#      exactly one add_test() so a new lint can't silently go unwired.
#
# Usage: check_scripts.sh <repo root>; exits non-zero on violations.
set -euo pipefail
cd "${1:?usage: check_scripts.sh <repo root>}"

status=0

while IFS= read -r script; do
  if ! bash -n "${script}" 2>/dev/null; then
    echo "${script}: does not parse (bash -n failed)"
    status=1
  fi
  if ! grep -q '^set -euo pipefail$' "${script}"; then
    echo "${script}: missing 'set -euo pipefail'"
    status=1
  fi
  if [ ! -x "${script}" ]; then
    echo "${script}: executable bit not set"
    status=1
  fi
done < <(find tools tests -name '*.sh' | sort)

# add_test names must be unique tree-wide.
dupes=$(grep -rh --include='CMakeLists.txt' -oE 'add_test\(NAME [A-Za-z0-9_]+' . \
  | sort | uniq -d || true)
if [ -n "${dupes}" ]; then
  echo "ctest test registered more than once:"
  echo "${dupes}"
  status=1
fi

# Every lint under tools/ must be wired into ctest exactly once.
while IFS= read -r lint; do
  name=$(basename "${lint}")
  # `|| true` inside the group: grep exits 1 on zero matches, which under
  # `set -e -o pipefail` would abort the whole lint instead of reporting
  # the unregistered script.
  count=$({ grep -r --include='CMakeLists.txt' -c "${name}" . || true; } \
    | awk -F: '{s+=$2} END {print s+0}')
  if [ "${count}" -ne 1 ]; then
    echo "${lint}: referenced ${count} times in CMakeLists (expected exactly 1 add_test)"
    status=1
  fi
done < <(find tools -name 'check_*.sh' ! -name 'check_build_matrix.sh' \
  | sort)  # the build-matrix driver is a manual meta-tool, not a ctest lint

if [ "${status}" -eq 0 ]; then
  echo "all scripts strict, executable, and registered exactly once"
fi
exit "${status}"
