// roicl — command-line front end for the library.
//
// Subcommands:
//   generate  synthesize an RCT dataset to CSV
//   methods   list every method registered with the scorer registry
//   train     fit any registered method on CSV data; save a raw model
//             blob (--out) and/or a versioned pipeline artifact
//             (--save-pipeline)
//   predict   score a CSV with a saved model or pipeline (ROI and, for
//             conformal methods, interval bounds)
//   score     score a CSV with a pipeline artifact (pipeline-only
//             spelling of predict, for train-once/serve-many flows)
//   serve     run a long-lived ScoringService over a pipeline artifact
//             and push a CSV through it as micro-batched requests
//   evaluate  AUCC / Qini of a saved model on labelled CSV data
//   allocate  greedy C-BTAP budget allocation with a saved model
//   monitor-replay
//             stream a labelled CSV through a live ScoringService with
//             covariate shift injected mid-stream; the ServingMonitor
//             detects the drift and recalibrates q_hat online. Prints the
//             per-batch drift/coverage/q_hat trace plus the detection
//             latency and the coverage before/after recalibration.
//   load-replay
//             drive a live ScoringService + ServingMonitor through
//             adversarial traffic phases (baseline, queue-overflow
//             bursts, deadline-heavy mixes, oversized batches, a racing
//             conformal-quantile swap storm) with an SLO engine watching
//             (--slo-spec FILE). Prints per-phase latency percentiles
//             and reject rates; --out FILE writes the full JSON report
//             (latency percentiles, per-stage serve.stage.* breakdown,
//             exemplar trace IDs, SLO verdicts) — the BENCH_load.json
//             producer.
//
// Every model is constructed through pipeline::ScorerRegistry — there is
// no per-method construction chain here; `roicl methods` shows the names.
//
// Examples:
//   roicl generate --dataset criteo --n 20000 --seed 1 --out train.csv
//   roicl generate --dataset criteo --n 5000 --seed 2 --shifted --out calib.csv
//   roicl train --method rdrp --train train.csv --calib calib.csv
//       --save-pipeline m.pipeline
//   roicl score --pipeline m.pipeline --data test.csv --out scores.csv
//   roicl serve --pipeline m.pipeline --data test.csv --out scores.csv
//       --request-rows 128 --threads 4
//   roicl evaluate --pipeline m.pipeline --data test.csv
//   roicl monitor-replay --pipeline m.pipeline --calib calib.csv
//       --data test.csv --shift-at 20 --shift-gamma 2.5
//
// Legacy spellings stay supported: `train --model rdrp ... --out m.rdrp`
// writes a raw model blob, and predict/evaluate/allocate accept
// `--model-type rdrp --model m.rdrp` (resolved through the same
// registry, so any registered name works, case-insensitively).
//
// Observability flags (all subcommands):
//   --log-level LEVEL   debug|info|warn|error|off (default info; the
//                       ROICL_LOG_LEVEL env var wins when set)
//   --log-json FILE     mirror log records to FILE as JSON lines
//   --metrics-out FILE  write the metrics-registry snapshot JSON on exit
//   --metrics-prom FILE write the Prometheus text exposition on exit
//   --trace-out FILE    collect trace spans, write chrome://tracing JSON
//
// Output-path parent directories are created on startup; an uncreatable
// parent exits 2 naming the path. SIGINT/SIGTERM interrupt serve and
// load-replay cleanly: in-flight loops drain, the metrics summary and
// every --*-out file are still written, and the process exits 128+sig.

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "alloc/row_source.h"
#include "alloc/streaming.h"
#include "campaign/scenario.h"
#include "campaign/scorer.h"
#include "common/math_util.h"
#include "common/status.h"
#include "core/greedy.h"
#include "core/interval_backend.h"
#include "core/roi_star.h"
#include "data/csv.h"
#include "exp/datasets.h"
#include "metrics/cost_curve.h"
#include "metrics/qini.h"
#include "monitor/load_replay.h"
#include "monitor/replay.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "pipeline/registry.h"
#include "pipeline/service.h"
#include "synth/synthetic_generator.h"

// Injected by the build (git describe at configure time) so pipeline
// artifacts record which tree trained them.
#ifndef ROICL_GIT_DESCRIBE
#define ROICL_GIT_DESCRIBE "unknown"
#endif

using namespace roicl;

namespace {

/// Set by the SIGINT/SIGTERM handler; long-running loops (serve,
/// load-replay) poll it and drain early so FinishObservability still
/// flushes the serve.* histograms and every --*-out file. Plain atomics:
/// both are lock-free on every supported target, making the handler
/// async-signal-safe.
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};

void HandleSignal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_interrupted.store(true, std::memory_order_relaxed);
}

void InstallSignalHandlers() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
}

/// Minimal --flag value parser; flags without values are booleans.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string key = arg.substr(2);
      // Assign a std::string, not a literal: GCC 12's -Wrestrict
      // false-positives on char_traits::copy when a literal assignment
      // is inlined this deep (documented FP class, fixed in GCC 13).
      std::string value = "1";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      values_.insert_or_assign(std::move(key), std::move(value));
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atoi(v.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    std::string v = Get(key);
    return v.empty() ? fallback : std::atof(v.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Every parsed flag name, for unknown-flag validation.
  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    keys.reserve(values_.size());
    for (const auto& [key, value] : values_) keys.push_back(key);
    return keys;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Rejects any flag outside the subcommand's vocabulary with a one-line
/// error naming the flag. A silently-ignored typo (`--aplha 0.2`) is far
/// worse than an exit-2 rejection: the run would proceed with the paper
/// default and report results for a configuration the user did not ask
/// for. Unknown subcommands fall through to the usage text in RunCommand.
void RejectUnknownFlags(const std::string& command, const Flags& flags) {
  static const std::set<std::string> kObservability = {
      "log-level", "log-json", "metrics-out", "metrics-prom", "trace-out"};
  static const std::set<std::string> kEngine = {"batch-size", "threads"};
  // Commands that construct scorers accept the full hyperparam block
  // (HyperparamsFromFlags), which subsumes the engine knobs.
  static const std::set<std::string> kHyper = {
      "epochs", "lr", "patience", "hidden", "dropout", "restarts",
      "cate-epochs", "forest-trees", "forest-depth", "causal-forest-trees",
      "mc-passes", "alpha", "interval-backend", "seed", "batch-size",
      "threads"};
  static const std::map<std::string, std::set<std::string>> kPerCommand = {
      {"generate", {"dataset", "n", "seed", "shifted", "out"}},
      {"methods", {}},
      {"train", {"method", "model", "train", "calib", "save-pipeline",
                 "out"}},
      {"predict", {"pipeline", "model-type", "model", "data", "out"}},
      {"score", {"pipeline", "data", "out", "interval-backend"}},
      {"serve", {"pipeline", "data", "out", "max-batch", "max-queue",
                 "deadline-micros", "request-rows", "interval-backend"}},
      {"evaluate", {"pipeline", "model-type", "model", "data"}},
      {"allocate",
       {"pipeline", "model-type", "model", "data", "budget-frac",
        "streaming", "mode", "shards", "memory-cap-mb", "chunk-rows",
        "synthetic-rows"}},
      {"campaign",
       {"dataset", "arms", "arm-budgets", "budget-frac", "mode", "scorer",
        "n-train", "n-calib", "n-test", "shards", "memory-cap-mb"}},
      {"monitor-replay",
       {"pipeline", "calib", "data", "batch-rows", "num-batches",
        "shift-at", "shift-feature", "shift-gamma", "seed", "window-rows",
        "drift-bins", "psi-threshold", "ks-threshold", "min-window",
        "feedback-window", "min-labeled", "aci-gamma", "coverage-window",
        "coverage-slack", "recalibrate-every", "interval-backend"}},
      {"load-replay",
       {"pipeline", "calib", "data", "out", "slo-spec", "requests",
        "request-rows", "client-threads", "burst-factor",
        "tight-deadline-micros", "oversized-factor", "swap-storm-swaps",
        "feedback-rows", "seed", "max-batch", "max-queue", "window-rows",
        "exemplar-rate", "exemplar-seed", "shadow-interval-every"}},
  };
  static const std::set<std::string> kHyperCommands = {
      "train", "predict", "evaluate", "allocate", "campaign"};
  static const std::set<std::string> kEngineCommands = {
      "score", "serve", "monitor-replay", "load-replay"};
  auto it = kPerCommand.find(command);
  if (it == kPerCommand.end()) return;
  for (const std::string& key : flags.Keys()) {
    if (kObservability.count(key) > 0 || it->second.count(key) > 0) continue;
    if (kHyperCommands.count(command) > 0 && kHyper.count(key) > 0) continue;
    if (kEngineCommands.count(command) > 0 && kEngine.count(key) > 0) {
      continue;
    }
    std::fprintf(stderr, "unknown flag --%s for subcommand %s\n",
                 key.c_str(), command.c_str());
    std::exit(2);
  }
}

/// Range checks for flags shared across subcommands. `--threads 0` stays
/// valid — it selects the shared global pool (see nn::BatchOptions) and
/// is the default in every test harness; only negative counts are
/// nonsense. Non-numeric text parses to 0 via atoi/atof and lands in the
/// rejected range for alpha and batch-size.
void ValidateFlagRanges(const Flags& flags) {
  if (flags.Has("alpha")) {
    double alpha = flags.GetDouble("alpha", 0.0);
    if (!(alpha > 0.0 && alpha < 1.0)) {
      std::fprintf(stderr, "--alpha must be in (0, 1), got '%s'\n",
                   flags.Get("alpha").c_str());
      std::exit(2);
    }
  }
  if (flags.Has("batch-size") && flags.GetInt("batch-size", 0) <= 0) {
    std::fprintf(stderr, "--batch-size must be positive, got '%s'\n",
                 flags.Get("batch-size").c_str());
    std::exit(2);
  }
  if (flags.Has("threads") && flags.GetInt("threads", 0) < 0) {
    std::fprintf(stderr,
                 "--threads must be >= 0 (0 = shared pool), got '%s'\n",
                 flags.Get("threads").c_str());
    std::exit(2);
  }
  if (flags.Has("mode")) {
    std::string mode = flags.Get("mode");
    if (mode != "greedy" && mode != "dual") {
      std::fprintf(stderr, "--mode must be greedy or dual, got '%s'\n",
                   mode.c_str());
      std::exit(2);
    }
  }
  for (const char* key : {"shards", "memory-cap-mb", "chunk-rows"}) {
    if (flags.Has(key) && flags.GetInt(key, 0) <= 0) {
      std::fprintf(stderr, "--%s must be positive, got '%s'\n", key,
                   flags.Get(key).c_str());
      std::exit(2);
    }
  }
  if (flags.Has("arms")) {
    int arms = flags.GetInt("arms", 0);
    if (arms < 1 || arms > 64) {
      std::fprintf(stderr, "--arms must be in [1, 64], got '%s'\n",
                   flags.Get("arms").c_str());
      std::exit(2);
    }
  }
  if (flags.Has("budget-frac")) {
    double frac = flags.GetDouble("budget-frac", 0.0);
    if (!(frac > 0.0 && frac <= 1.0)) {
      std::fprintf(stderr, "--budget-frac must be in (0, 1], got '%s'\n",
                   flags.Get("budget-frac").c_str());
      std::exit(2);
    }
  }
  if (flags.Has("synthetic-rows") && flags.GetInt("synthetic-rows", 0) < 0) {
    std::fprintf(stderr, "--synthetic-rows must be >= 0, got '%s'\n",
                 flags.Get("synthetic-rows").c_str());
    std::exit(2);
  }
  if (flags.Has("interval-backend")) {
    std::string backend = flags.Get("interval-backend");
    if (!core::IsIntervalBackendName(backend) && backend != "all") {
      std::fprintf(stderr,
                   "--interval-backend must be one of %s (or 'all' for "
                   "monitor-replay), got '%s'\n",
                   core::IntervalBackendNamesCsv().c_str(), backend.c_str());
      std::exit(2);
    }
  }
}

/// Touches every metric the pipeline can emit so a snapshot written by any
/// subcommand carries the full schema (untouched instruments read zero).
/// Names and bucket layouts must match the instrumentation sites.
void PreregisterStandardMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const char* name :
       {"train.epochs", "train.early_stops", "mc_dropout.samples",
        "roi_star.searches", "allocate.calls", "threadpool.tasks",
        "serve.requests", "serve.rejected", "serve.deadline_exceeded",
        "serve.errors", "conformal.qhat_infinite", "monitor.windows",
        "monitor.drift_triggers", "monitor.recalibrations",
        "monitor.coverage_alerts", "monitor.outcomes", "slo.events",
        "slo.warn_transitions", "slo.breach_transitions",
        "alloc.streaming_calls", "alloc.rows_streamed",
        "alloc.frontier_evictions", "alloc.threshold_overflow",
        "campaign.runs", "campaign.streaming_calls",
        "campaign.users_streamed", "campaign.frontier_evictions"}) {
    registry.GetCounter(name);
  }
  for (const char* name :
       {"train.loss", "train.final_loss", "train.grad_norm", "train.lr",
        "conformal.q_hat", "conformal.calibration_n",
        "mc_dropout.samples_per_sec", "exp.predict_samples_per_sec",
        "roi_star.iterations", "roi_star.bracket_width",
        "allocate.budget_used_frac", "allocate.selected",
        "threadpool.queue_depth", "serve.queue_depth",
        "serve.interval_width", "monitor.coverage",
        "monitor.q_hat_before", "monitor.q_hat_after",
        "monitor.roi_star_window", "monitor.alpha_effective",
        "monitor.max_psi", "monitor.max_ks", "slo.worst_state",
        "alloc.shards", "alloc.selected", "alloc.merge_candidates",
        "alloc.peak_memory_bytes", "alloc.dual_threshold",
        "alloc.dual_gap", "campaign.arms", "campaign.shards",
        "campaign.assigned", "campaign.spent", "campaign.merge_candidates",
        "campaign.peak_memory_bytes", "campaign.coverage_min",
        "campaign.dual_gap"}) {
    registry.GetGauge(name);
  }
  registry.GetHistogram("conformal.score", obs::ConformalScoreBuckets());
  registry.GetHistogram("threadpool.task_us", obs::LatencyMicrosBuckets());
  registry.GetHistogram("mc_dropout.batch_us", obs::LatencyMicrosBuckets());
  // Bounds must equal service.cc's OccupancyBuckets — first registration
  // fixes the layout.
  registry.GetHistogram("serve.batch_occupancy",
                        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  registry.GetHistogram("serve.latency_micros", obs::LatencyMicrosBuckets());
  registry.GetHistogram("serve.stage.queue_us", obs::LatencyMicrosBuckets());
  registry.GetHistogram("serve.stage.assemble_us",
                        obs::LatencyMicrosBuckets());
  registry.GetHistogram("serve.stage.score_us", obs::LatencyMicrosBuckets());
  registry.GetHistogram("serve.stage.conformal_us",
                        obs::LatencyMicrosBuckets());
  registry.GetHistogram("serve.stage.observe_us",
                        obs::LatencyMicrosBuckets());
  registry.GetHistogram("monitor.update_us", obs::LatencyMicrosBuckets());
  registry.GetHistogram("monitor.recalibrate_us",
                        obs::LatencyMicrosBuckets());
}

/// Creates the parent directory of an output path up front. A typo'd
/// directory must fail at startup naming the path — not at exit, after
/// the work, with the artifact silently missing.
void EnsureParentDirOrDie(const std::string& path, const char* flag) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create parent directory for --%s %s: %s\n",
                 flag, path.c_str(), ec.message().c_str());
    std::exit(2);
  }
}

void SetupObservability(const Flags& flags) {
  for (const char* flag :
       {"metrics-out", "metrics-prom", "trace-out", "log-json"}) {
    if (flags.Has(flag)) EnsureParentDirOrDie(flags.Get(flag), flag);
  }
  obs::Logger& logger = obs::Logger::Global();
  std::string level_text = flags.Get("log-level");
  if (!level_text.empty()) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(level_text, &level)) {
      std::fprintf(stderr,
                   "bad --log-level '%s' (debug|info|warn|error|off)\n",
                   level_text.c_str());
      std::exit(2);
    }
    logger.SetLevel(level);
  } else if (std::getenv("ROICL_LOG_LEVEL") == nullptr) {
    // The library defaults to warn; an interactive CLI run wants info.
    logger.SetLevel(obs::LogLevel::kInfo);
  }
  if (flags.Has("log-json")) {
    auto sink = std::make_unique<obs::JsonLinesSink>(flags.Get("log-json"));
    if (!sink->ok()) {
      std::fprintf(stderr, "cannot open --log-json %s\n",
                   flags.Get("log-json").c_str());
      std::exit(2);
    }
    logger.AddSink(std::move(sink));
  }
  if (flags.Has("trace-out")) {
    obs::TraceCollector::Global().SetEnabled(true);
  }
  PreregisterStandardMetrics();
}

/// Metrics summary + optional JSON exports, run after the subcommand.
void FinishObservability(const Flags& flags) {
  obs::Logger& logger = obs::Logger::Global();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (logger.ShouldLog(obs::LogLevel::kInfo)) {
    std::vector<obs::LogField> fields;
    registry.ForEachCounter([&](const std::string& name, uint64_t value) {
      fields.emplace_back(name, static_cast<unsigned long long>(value));
    });
    registry.ForEachGauge([&](const std::string& name, double value) {
      fields.emplace_back(name, value);
    });
    // Histograms summarize as latency-style percentiles; empty ones are
    // omitted (their quantiles are undefined, and preregistration means
    // most subcommands leave most histograms untouched).
    registry.ForEachHistogram(
        [&](const std::string& name, const obs::Histogram& histogram) {
          if (histogram.count() == 0) return;
          fields.emplace_back(name + ".p50", histogram.ApproxQuantile(0.5));
          fields.emplace_back(name + ".p95",
                              histogram.ApproxQuantile(0.95));
          fields.emplace_back(name + ".p99",
                              histogram.ApproxQuantile(0.99));
        });
    logger.LogV(obs::LogLevel::kInfo, "metrics summary", fields);
  }
  if (flags.Has("metrics-out")) {
    std::string path = flags.Get("metrics-out");
    if (registry.WriteSnapshotJson(path)) {
      obs::Info("wrote metrics snapshot", {{"path", path}});
    } else {
      obs::Error("cannot write metrics snapshot", {{"path", path}});
    }
  }
  if (flags.Has("metrics-prom")) {
    std::string path = flags.Get("metrics-prom");
    if (registry.WritePrometheusText(path)) {
      obs::Info("wrote prometheus exposition", {{"path", path}});
    } else {
      obs::Error("cannot write prometheus exposition", {{"path", path}});
    }
  }
  if (flags.Has("trace-out")) {
    std::string path = flags.Get("trace-out");
    obs::TraceCollector& collector = obs::TraceCollector::Global();
    if (collector.WriteChromeJson(path)) {
      obs::Info("wrote chrome trace",
                {{"path", path}, {"events", collector.size()}});
    } else {
      obs::Error("cannot write chrome trace", {{"path", path}});
    }
  }
}

synth::SyntheticConfig DatasetConfigByName(const std::string& name) {
  if (name == "criteo") return synth::CriteoSynthConfig();
  if (name == "meituan") return synth::MeituanSynthConfig();
  if (name == "alibaba") return synth::AlibabaSynthConfig();
  std::fprintf(stderr,
               "unknown --dataset '%s' (criteo | meituan | alibaba)\n",
               name.c_str());
  std::exit(2);
}

RctDataset LoadCsvOrDie(const std::string& path) {
  StatusOr<RctDataset> data = ReadDatasetCsv(path);
  if (!data.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(),
                 data.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(data).value();
}

/// The shared hyperparam block from CLI flags. Flags not given keep the
/// paper defaults, so `train --method X` alone reproduces the benchmark
/// configuration for X.
pipeline::Hyperparams HyperparamsFromFlags(const Flags& flags) {
  pipeline::Hyperparams hp;
  hp.neural_epochs = flags.GetInt("epochs", hp.neural_epochs);
  hp.learning_rate = flags.GetDouble("lr", hp.learning_rate);
  hp.patience = flags.GetInt("patience", hp.patience);
  hp.drp_hidden = flags.GetInt("hidden", hp.drp_hidden);
  hp.drp_dropout = flags.GetDouble("dropout", hp.drp_dropout);
  hp.restarts = flags.GetInt("restarts", hp.restarts);
  hp.cate_epochs = flags.GetInt("cate-epochs", hp.cate_epochs);
  hp.forest_trees = flags.GetInt("forest-trees", hp.forest_trees);
  hp.forest_depth = flags.GetInt("forest-depth", hp.forest_depth);
  hp.causal_forest_trees =
      flags.GetInt("causal-forest-trees", hp.causal_forest_trees);
  hp.mc_passes = flags.GetInt("mc-passes", hp.mc_passes);
  hp.alpha = flags.GetDouble("alpha", hp.alpha);
  hp.interval_backend =
      flags.Get("interval-backend", hp.interval_backend);
  if (hp.interval_backend == "all") {
    std::fprintf(stderr,
                 "--interval-backend all is only valid for monitor-replay; "
                 "pick one of %s\n",
                 core::IntervalBackendNamesCsv().c_str());
    std::exit(2);
  }
  hp.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  // Batched prediction engine knobs. Neither changes any predicted value
  // (results are bit-identical at every setting); they only trade memory
  // and parallelism against wall clock.
  hp.predict_batch_size = flags.GetInt("batch-size", hp.predict_batch_size);
  hp.predict_threads = flags.GetInt("threads", hp.predict_threads);
  return hp;
}

nn::BatchOptions BatchOptionsFromFlags(const Flags& flags) {
  nn::BatchOptions opts;
  opts.batch_size = flags.GetInt("batch-size", opts.batch_size);
  opts.num_threads = flags.GetInt("threads", opts.num_threads);
  return opts;
}

/// Resolves a user-supplied method name through the registry; prints the
/// registry's unknown-name error (which lists every registered method)
/// and exits 2 on failure.
std::string ResolveMethodOrDie(const std::string& name) {
  StatusOr<std::string> resolved =
      pipeline::ScorerRegistry::Global().Resolve(name);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(resolved).value();
}

pipeline::Pipeline LoadPipelineOrDie(const std::string& path) {
  StatusOr<pipeline::Pipeline> loaded =
      pipeline::Pipeline::LoadFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load pipeline %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(loaded).value();
}

/// Applies --interval-backend to a loaded pipeline (score/serve paths).
/// Without a calibration set only state-sharing rebinds are possible
/// (split <-> weighted); a cqr rebind reports the backend's error.
void MaybeRebindBackendOrDie(const Flags& flags,
                             pipeline::Pipeline* pipeline) {
  if (!flags.Has("interval-backend")) return;
  std::string backend = flags.Get("interval-backend");
  if (backend == "all") {
    std::fprintf(stderr,
                 "--interval-backend all is only valid for "
                 "monitor-replay; pick one of %s\n",
                 core::IntervalBackendNamesCsv().c_str());
    std::exit(2);
  }
  if (Status status = pipeline->RebindIntervalBackend(backend, nullptr);
      !status.ok()) {
    std::fprintf(stderr, "cannot rebind interval backend to '%s': %s\n",
                 backend.c_str(), status.ToString().c_str());
    std::exit(1);
  }
}

int CmdGenerate(const Flags& flags) {
  synth::SyntheticConfig config =
      DatasetConfigByName(flags.Get("dataset", "criteo"));
  synth::SyntheticGenerator generator(config);
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  RctDataset data = generator.Generate(flags.GetInt("n", 10000),
                                       flags.Has("shifted"), &rng);
  std::string out = flags.Require("out");
  Status status = WriteDatasetCsv(data, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d rows x %d features to %s\n", data.n(), data.dim(),
              out.c_str());
  return 0;
}

int CmdMethods(const Flags& /*flags*/) {
  for (const std::string& name :
       pipeline::ScorerRegistry::Global().Names()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdTrain(const Flags& flags) {
  // --method is the canonical spelling; --model is the legacy alias.
  std::string method =
      ResolveMethodOrDie(flags.Get("method", flags.Get("model", "rdrp")));
  bool save_pipeline = flags.Has("save-pipeline");
  bool save_raw = flags.Has("out");
  if (!save_pipeline && !save_raw) {
    std::fprintf(stderr,
                 "train needs --save-pipeline PATH (versioned artifact) "
                 "and/or --out PATH (raw model blob)\n");
    return 2;
  }
  RctDataset train = LoadCsvOrDie(flags.Require("train"));
  RctDataset calib;
  const RctDataset* calib_ptr = nullptr;
  if (flags.Has("calib")) {
    calib = LoadCsvOrDie(flags.Get("calib"));
    calib_ptr = &calib;
  } else {
    std::fprintf(stderr,
                 "warning: no --calib set; conformal methods calibrate on "
                 "the training data (Assumption 6 will not hold)\n");
  }

  pipeline::Hyperparams hp = HyperparamsFromFlags(flags);
  pipeline::Provenance provenance;
  provenance.seed = hp.seed;
  provenance.dataset = flags.Get("train");
  provenance.git_describe = ROICL_GIT_DESCRIBE;
  provenance.tool = "roicl train";

  StatusOr<pipeline::Pipeline> trained =
      pipeline::Pipeline::Train(method, hp, train, calib_ptr, provenance);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  pipeline::Pipeline pipeline = std::move(trained).value();

  if (save_pipeline) {
    std::string path = flags.Get("save-pipeline");
    Status status = pipeline.SaveToFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained %s on %d samples -> pipeline %s\n",
                method.c_str(), train.n(), path.c_str());
  }
  if (save_raw) {
    std::string path = flags.Get("out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    Status status = pipeline.scorer().SaveModel(out);
    if (!status.ok() || !out) {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("trained %s on %d samples -> %s\n", method.c_str(),
                train.n(), path.c_str());
  }
  return 0;
}

/// Scores from either a pipeline artifact (--pipeline) or a raw model
/// blob (--model-type NAME --model PATH); intervals are filled when the
/// scorer supports them.
struct ScoredBatch {
  std::vector<double> scores;
  std::vector<metrics::Interval> intervals;  // empty for point methods
};

ScoredBatch ScoreWithModel(const Flags& flags, const Matrix& x) {
  ScoredBatch out;
  if (flags.Has("pipeline")) {
    pipeline::Pipeline loaded = LoadPipelineOrDie(flags.Get("pipeline"));
    MaybeRebindBackendOrDie(flags, &loaded);
    loaded.set_batch_options(BatchOptionsFromFlags(flags));
    StatusOr<std::vector<double>> scores = loaded.Score(x);
    if (!scores.ok()) {
      std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
      std::exit(1);
    }
    out.scores = std::move(scores).value();
    if (loaded.scorer().has_intervals()) {
      StatusOr<std::vector<metrics::Interval>> intervals =
          loaded.ScoreIntervals(x);
      if (!intervals.ok()) {
        std::fprintf(stderr, "%s\n",
                     intervals.status().ToString().c_str());
        std::exit(1);
      }
      out.intervals = std::move(intervals).value();
    }
    return out;
  }

  std::string method = ResolveMethodOrDie(flags.Get("model-type", "rdrp"));
  std::string path = flags.Require("model");
  StatusOr<std::unique_ptr<pipeline::RoiScorer>> created =
      pipeline::ScorerRegistry::Global().Create(
          method, HyperparamsFromFlags(flags));
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<pipeline::RoiScorer> scorer = std::move(created).value();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open model file %s\n", path.c_str());
    std::exit(1);
  }
  if (Status status = scorer->LoadModel(in); !status.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  out.scores = scorer->PredictRoi(x);
  if (scorer->has_intervals()) {
    StatusOr<std::vector<metrics::Interval>> intervals =
        scorer->ScoreIntervals(x);
    if (!intervals.ok()) {
      std::fprintf(stderr, "%s\n", intervals.status().ToString().c_str());
      std::exit(1);
    }
    out.intervals = std::move(intervals).value();
  }
  return out;
}

int WriteScoresCsv(const std::string& out_path, const ScoredBatch& scored) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out.precision(10);
  bool with_intervals = !scored.intervals.empty();
  out << (with_intervals ? "roi,interval_lo,interval_hi\n" : "roi\n");
  for (size_t i = 0; i < scored.scores.size(); ++i) {
    out << scored.scores[i];
    if (with_intervals) {
      out << ',' << scored.intervals[i].lo << ','
          << scored.intervals[i].hi;
    }
    out << '\n';
  }
  return 0;
}

int CmdPredict(const Flags& flags) {
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  ScoredBatch scored = ScoreWithModel(flags, data.x);
  std::string out_path = flags.Require("out");
  if (int rc = WriteScoresCsv(out_path, scored); rc != 0) return rc;
  std::printf("wrote %zu predictions to %s\n", scored.scores.size(),
              out_path.c_str());
  return 0;
}

int CmdScore(const Flags& flags) {
  flags.Require("pipeline");  // score is the pipeline-only spelling
  return CmdPredict(flags);
}

int CmdServe(const Flags& flags) {
  pipeline::Pipeline loaded = LoadPipelineOrDie(flags.Require("pipeline"));
  MaybeRebindBackendOrDie(flags, &loaded);
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  std::string out_path = flags.Require("out");

  pipeline::ServiceOptions options;
  options.engine = BatchOptionsFromFlags(flags);
  options.max_batch_requests = flags.GetInt("max-batch", 32);
  options.max_queue = flags.GetInt("max-queue", 1 << 20);
  options.default_deadline_micros = flags.GetInt("deadline-micros", 0);
  int request_rows = flags.GetInt("request-rows", 128);
  if (request_rows <= 0) {
    std::fprintf(stderr, "--request-rows must be positive\n");
    return 2;
  }

  if (loaded.scorer().has_intervals()) {
    obs::Info("serve returns point scores only; use `score --pipeline` "
              "for conformal intervals",
              {{"scorer", loaded.scorer_name()}});
  }
  pipeline::ScoringService service(std::move(loaded), options);

  // Split the CSV into request-sized row blocks and push them through the
  // service like concurrent clients would. Point scores are row-wise, so
  // any split reproduces the in-process scores bit for bit.
  std::vector<std::future<StatusOr<std::vector<double>>>> futures;
  for (int start = 0; start < data.x.rows(); start += request_rows) {
    if (g_interrupted.load(std::memory_order_relaxed)) break;
    int end = std::min(start + request_rows, data.x.rows());
    std::vector<int> rows(AsSize(end - start));
    std::iota(rows.begin(), rows.end(), start);
    futures.push_back(service.Submit(data.x.SelectRows(rows)));
  }

  // On SIGINT/SIGTERM the drain stops early: the partial CSV is still
  // written, and — because we return through FinishObservability rather
  // than dying in the loop — the exit metrics summary carries the
  // serve.* histograms for everything scored so far.
  ScoredBatch scored;
  scored.scores.reserve(AsSize(data.n()));
  size_t drained = 0;
  for (auto& future : futures) {
    if (g_interrupted.load(std::memory_order_relaxed)) break;
    StatusOr<std::vector<double>> result = future.get();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const std::vector<double>& chunk = result.value();
    scored.scores.insert(scored.scores.end(), chunk.begin(), chunk.end());
    ++drained;
  }
  if (int rc = WriteScoresCsv(out_path, scored); rc != 0) return rc;
  if (g_interrupted.load(std::memory_order_relaxed)) {
    obs::Warn("serve interrupted by signal; partial results flushed",
              {{"signal", g_signal.load()},
               {"requests_drained", AsInt(drained)},
               {"requests_submitted", AsInt(futures.size())}});
  }
  std::printf("served %zu requests (%d rows, <=%d rows each) -> %s\n",
              drained, data.n(), request_rows, out_path.c_str());
  return 0;
}

int CmdLoadReplay(const Flags& flags) {
  pipeline::Pipeline loaded = LoadPipelineOrDie(flags.Require("pipeline"));
  RctDataset calib = LoadCsvOrDie(flags.Require("calib"));
  RctDataset stream = LoadCsvOrDie(flags.Require("data"));

  monitor::LoadReplayOptions options;
  options.requests_per_phase = flags.GetInt("requests", 64);
  options.rows_per_request = flags.GetInt("request-rows", 32);
  options.client_threads = flags.GetInt("client-threads", 2);
  options.burst_factor = flags.GetInt("burst-factor", options.burst_factor);
  options.tight_deadline_micros =
      flags.GetInt("tight-deadline-micros",
                   static_cast<int>(options.tight_deadline_micros));
  options.oversized_factor = flags.GetInt("oversized-factor", 32);
  options.swap_storm_swaps =
      flags.GetInt("swap-storm-swaps", options.swap_storm_swaps);
  options.feedback_rows = flags.GetInt("feedback-rows", 256);
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int>(options.seed)));
  options.monitor.window_rows = static_cast<uint64_t>(flags.GetInt(
      "window-rows", static_cast<int>(options.monitor.window_rows)));
  options.monitor.engine = BatchOptionsFromFlags(flags);
  options.service.engine = options.monitor.engine;
  options.service.max_batch_requests = flags.GetInt("max-batch", 8);
  // The default queue is deliberately small: the burst phase must
  // overflow it, or the reject-rate SLO has nothing to measure.
  options.service.max_queue = flags.GetInt("max-queue", 64);
  options.service.exemplar_seed = static_cast<uint64_t>(flags.GetInt(
      "exemplar-seed", static_cast<int>(options.service.exemplar_seed)));
  options.service.exemplar_rate =
      flags.GetDouble("exemplar-rate", options.service.exemplar_rate);
  options.service.shadow_interval_every =
      flags.GetInt("shadow-interval-every", 7);
  if (flags.Has("slo-spec")) {
    std::string error;
    if (!obs::LoadSloSpecs(flags.Get("slo-spec"), &options.slos, &error)) {
      std::fprintf(stderr, "bad --slo-spec %s: %s\n",
                   flags.Get("slo-spec").c_str(), error.c_str());
      return 2;
    }
  }
  options.cancelled = [] {
    return g_interrupted.load(std::memory_order_relaxed);
  };

  StatusOr<monitor::LoadReplayResult> replayed = monitor::RunLoadReplay(
      std::move(loaded), calib, stream, options);
  if (!replayed.ok()) {
    std::fprintf(stderr, "%s\n", replayed.status().ToString().c_str());
    return 1;
  }
  const monitor::LoadReplayResult& result = replayed.value();

  std::printf(
      "phase            sub    ok   rej   ddl  err    p50_us    p95_us"
      "    p99_us\n");
  for (const monitor::LoadPhaseStat& stat : result.phases) {
    std::printf("%-14s %5d %5d %5d %5d %4d %9.0f %9.0f %9.0f\n",
                stat.phase.c_str(), stat.submitted, stat.ok, stat.rejected,
                stat.deadline_exceeded, stat.errors, stat.p50_us,
                stat.p95_us, stat.p99_us);
  }
  std::printf("stage breakdown      :");
  for (const monitor::StageBreakdown& stage : result.stages) {
    std::printf(" %s p99=%.0fus", stage.stage.c_str(), stage.p99_us);
  }
  std::printf("\n");
  std::printf("reject rate          : %.4f (%d of %d)\n",
              result.reject_rate, result.total_rejected,
              result.total_submitted);
  std::printf("latency p50/p95/p99  : %.0f / %.0f / %.0f us\n",
              result.p50_us, result.p95_us, result.p99_us);
  std::printf("quantile swaps raced : %d\n", result.quantile_swaps);
  std::printf("slo worst state      : %s\n",
              result.slo_worst_state.c_str());
  if (result.interrupted) {
    std::printf("interrupted          : yes (signal %d)\n",
                g_signal.load());
  }

  if (flags.Has("out")) {
    std::string out_path = flags.Get("out");
    EnsureParentDirOrDie(out_path, "out");
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << result.ToJson() << '\n';
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  ScoredBatch scored = ScoreWithModel(flags, data.x);
  std::printf("n          : %d\n", data.n());
  std::printf("AUCC       : %.4f\n", metrics::Aucc(scored.scores, data));
  std::printf("Qini (rev) : %.4f\n",
              metrics::QiniCoefficient(scored.scores, data));
  if (!scored.intervals.empty()) {
    double roi_star = core::BinarySearchRoiStar(data);
    int covered = 0;
    double width = 0.0;
    for (const auto& interval : scored.intervals) {
      covered += interval.Contains(roi_star);
      width += interval.width();
    }
    std::printf("coverage of this set's roi* (%.4f): %.3f\n", roi_star,
                static_cast<double>(covered) /
                    static_cast<double>(scored.intervals.size()));
    std::printf("mean interval width: %.4f\n",
                width / static_cast<double>(scored.intervals.size()));
  }
  return 0;
}

/// `allocate --streaming`: bounded-memory sharded allocation over a
/// chunked row stream (see src/alloc/streaming.h). The source is either
/// the deterministic synthetic population (`--synthetic-rows N` — scale
/// runs need no N-row CSV on disk) or the scored dataset adapted to the
/// chunk interface. Greedy mode is bitwise-identical to the in-memory
/// reference greedy; dual mode reports the Lagrangian threshold and gap.
int CmdAllocateStreaming(const Flags& flags) {
  std::unique_ptr<alloc::RowSource> source;
  std::vector<double> true_tau_r;  // CSV path only, for revenue readout
  int chunk_rows = flags.GetInt("chunk-rows", 65536);
  if (flags.Has("synthetic-rows")) {
    int64_t rows = flags.GetInt("synthetic-rows", 0);
    uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 20240942));
    source = std::make_unique<alloc::SyntheticRowSource>(rows, seed,
                                                         chunk_rows);
  } else {
    RctDataset data = LoadCsvOrDie(flags.Require("data"));
    if (!data.has_ground_truth()) {
      std::fprintf(stderr,
                   "allocate requires true_tau_c columns (synthetic data) "
                   "to account spend\n");
      return 1;
    }
    ScoredBatch scored = ScoreWithModel(flags, data.x);
    true_tau_r = data.true_tau_r;
    source = std::make_unique<alloc::VectorRowSource>(
        std::move(scored.scores), std::move(data.true_tau_c), chunk_rows);
  }

  StatusOr<double> total_cost = alloc::StreamingTotalCost(source.get());
  if (!total_cost.ok()) {
    std::fprintf(stderr, "%s\n", total_cost.status().ToString().c_str());
    return 1;
  }
  double budget_frac = flags.GetDouble("budget-frac", 0.15);
  double budget = budget_frac * total_cost.value();

  alloc::StreamingOptions options;
  options.mode = flags.Get("mode", "greedy") == "dual"
                     ? alloc::AllocMode::kDual
                     : alloc::AllocMode::kGreedy;
  options.num_shards = flags.GetInt("shards", 1);
  options.memory_cap_bytes =
      static_cast<size_t>(flags.GetInt("memory-cap-mb", 256)) << 20;
  options.parallel_shards = flags.GetInt("threads", 0) > 0;

  StatusOr<alloc::StreamingResult> allocated =
      alloc::StreamingAllocate(source.get(), budget, options);
  if (!allocated.ok()) {
    std::fprintf(stderr, "%s\n", allocated.status().ToString().c_str());
    return 1;
  }
  const alloc::StreamingResult& result = allocated.value();

  std::printf("mode              : %s\n",
              options.mode == alloc::AllocMode::kDual ? "dual" : "greedy");
  std::printf("budget            : %.2f (%.0f%% of all-in)\n", budget,
              100.0 * budget_frac);
  std::printf("rows streamed     : %lld\n",
              static_cast<long long>(result.rows_streamed));
  std::printf("treated           : %zu of %lld\n", result.selected.size(),
              static_cast<long long>(source->total_rows()));
  std::printf("spent             : %.2f\n", result.spent);
  std::printf("est. value        : %.2f\n", result.value);
  if (!true_tau_r.empty()) {
    double revenue = 0.0;
    for (int64_t i : result.selected) {
      revenue += true_tau_r[roicl::AsSize64(i)];
    }
    std::printf("incr. revenue     : %.2f\n", revenue);
  }
  std::printf("shards            : %d\n", options.num_shards);
  std::printf("peak memory       : %.2f MiB (cap %.0f MiB)\n",
              static_cast<double>(result.peak_memory_bytes) / 1048576.0,
              static_cast<double>(options.memory_cap_bytes) / 1048576.0);
  std::printf("frontier evictions: %lld\n",
              static_cast<long long>(result.frontier_evictions));
  if (options.mode == alloc::AllocMode::kDual) {
    std::printf("dual threshold    : %.6f\n", result.dual_threshold);
    std::printf("dual upper bound  : %.2f\n", result.dual_upper_bound);
    std::printf("dual gap          : %.4f\n", result.dual_gap);
  }
  return 0;
}

int CmdAllocate(const Flags& flags) {
  if (flags.Has("streaming")) return CmdAllocateStreaming(flags);
  RctDataset data = LoadCsvOrDie(flags.Require("data"));
  ScoredBatch scored = ScoreWithModel(flags, data.x);
  if (!data.has_ground_truth()) {
    std::fprintf(stderr,
                 "allocate requires true_tau_c columns (synthetic data) "
                 "to account spend\n");
    return 1;
  }
  double total_cost = 0.0;
  for (double c : data.true_tau_c) total_cost += c;
  double budget = flags.GetDouble("budget-frac", 0.15) * total_cost;
  core::AllocationResult alloc =
      core::GreedyAllocate(scored.scores, data.true_tau_c, budget,
                           /*skip_unaffordable=*/true);
  double revenue = 0.0;
  for (int i : alloc.selected) revenue += data.true_tau_r[roicl::AsSize(i)];
  std::printf("budget            : %.2f (%.0f%% of all-in)\n", budget,
              100.0 * flags.GetDouble("budget-frac", 0.15));
  std::printf("treated           : %zu of %d\n", alloc.selected.size(),
              data.n());
  std::printf("spent             : %.2f\n", alloc.spent);
  std::printf("incr. revenue     : %.2f\n", revenue);
  std::printf("revenue per spend : %.4f\n",
              alloc.spent > 0 ? revenue / alloc.spent : 0.0);
  return 0;
}

/// `roicl campaign`: the multi-treatment C-BTAP scenario — synthetic
/// K-arm data, a registered campaign scorer (dnc-rdrp carries per-arm
/// conformal intervals), per-arm AUCC/Qini/coverage, and the K-arm
/// budget allocation in streaming-greedy or Lagrangian-dual mode.
int CmdCampaign(const Flags& flags) {
  campaign::CampaignScenarioConfig config;
  std::string dataset = flags.Get("dataset", "criteo");
  config.num_arms = flags.GetInt("arms", 3);
  config.n_train = flags.GetInt("n-train", 4000);
  config.n_calibration = flags.GetInt("n-calib", 1200);
  config.n_test = flags.GetInt("n-test", 2000);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20240819));
  config.scorer = flags.Get("scorer", "dnc-rdrp");
  config.budget_fraction = flags.GetDouble("budget-frac", 0.35);
  config.mode = flags.Get("mode", "greedy");
  config.streaming.num_shards = flags.GetInt("shards", 1);
  config.streaming.memory_cap_bytes =
      static_cast<size_t>(flags.GetInt("memory-cap-mb", 256)) << 20;
  config.streaming.parallel_shards = flags.GetInt("threads", 0) > 0;

  core::RdrpConfig& rdrp = config.scorer_config.rdrp;
  rdrp.alpha = flags.GetDouble("alpha", rdrp.alpha);
  rdrp.mc_passes = flags.GetInt("mc-passes", rdrp.mc_passes);
  rdrp.interval_backend =
      flags.Get("interval-backend", rdrp.interval_backend);
  rdrp.drp.train.epochs = flags.GetInt("epochs", rdrp.drp.train.epochs);
  rdrp.drp.train.learning_rate =
      flags.GetDouble("lr", rdrp.drp.train.learning_rate);
  rdrp.drp.train.patience =
      flags.GetInt("patience", rdrp.drp.train.patience);
  rdrp.drp.hidden_units = flags.GetInt("hidden", rdrp.drp.hidden_units);
  rdrp.drp.dropout = flags.GetDouble("dropout", rdrp.drp.dropout);
  rdrp.drp.restarts = flags.GetInt("restarts", rdrp.drp.restarts);
  rdrp.drp.predict = BatchOptionsFromFlags(flags);
  campaign::KArmRankNetConfig& ranknet = config.scorer_config.ranknet;
  ranknet.train.epochs = flags.GetInt("epochs", ranknet.train.epochs);
  ranknet.train.learning_rate =
      flags.GetDouble("lr", ranknet.train.learning_rate);
  ranknet.train.patience = flags.GetInt("patience", ranknet.train.patience);
  ranknet.dropout = flags.GetDouble("dropout", ranknet.dropout);
  ranknet.restarts = flags.GetInt("restarts", ranknet.restarts);
  ranknet.predict = rdrp.drp.predict;

  if (flags.Has("arm-budgets")) {
    std::stringstream list(flags.Get("arm-budgets"));
    std::string token;
    while (std::getline(list, token, ',')) {
      config.arm_budget_fractions.push_back(std::atof(token.c_str()));
    }
    if (static_cast<int>(config.arm_budget_fractions.size()) !=
        config.num_arms) {
      std::fprintf(stderr,
                   "--arm-budgets needs one comma-separated fraction per "
                   "arm (%d), got '%s'\n",
                   config.num_arms, flags.Get("arm-budgets").c_str());
      return 2;
    }
  }

  std::vector<std::string> datasets;
  if (dataset != "all") datasets.push_back(dataset);
  StatusOr<std::vector<campaign::CampaignScenarioResult>> grid =
      campaign::RunCampaignGrid(config, std::move(datasets));
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }

  for (const campaign::CampaignScenarioResult& result : grid.value()) {
    std::printf("=== %s / %s / %s ===\n", result.dataset.c_str(),
                result.scorer.c_str(), result.mode.c_str());
    std::printf("arm      aucc     qini  coverage   roi*     spent"
                "        budget  assigned\n");
    for (size_t k = 0; k < result.arms.size(); ++k) {
      const campaign::CampaignArmReport& arm = result.arms[k];
      char coverage[16], budget[16];
      if (result.has_intervals) {
        std::snprintf(coverage, sizeof(coverage), "%.3f",
                      arm.coverage.coverage);
      } else {
        std::snprintf(coverage, sizeof(coverage), "-");
      }
      if (std::isfinite(arm.budget)) {
        std::snprintf(budget, sizeof(budget), "%.2f", arm.budget);
      } else {
        std::snprintf(budget, sizeof(budget), "unbounded");
      }
      std::printf("%3zu  %7.4f  %7.4f  %8s  %5.3f  %8.2f  %12s  %8lld\n",
                  k + 1, arm.aucc, arm.qini, coverage, arm.roi_star_target,
                  arm.spent, budget, static_cast<long long>(arm.assigned));
    }
    std::printf("global budget     : %.2f\n", result.global_budget);
    std::printf("treated           : %lld of %d users\n",
                static_cast<long long>(result.assigned), config.n_test);
    std::printf("spent             : %.2f\n", result.spent);
    std::printf("est. value        : %.2f\n", result.value);
    if (result.mode == "dual") {
      std::printf("dual upper bound  : %.4f\n", result.dual_bound);
      std::printf("dual gap          : %.6f\n", result.dual_gap);
      std::printf("dual iterations   : %d\n", result.dual_iterations);
    }
  }
  return 0;
}

int CmdMonitorReplay(const Flags& flags) {
  std::string pipeline_path = flags.Require("pipeline");
  RctDataset calib = LoadCsvOrDie(flags.Require("calib"));
  RctDataset stream = LoadCsvOrDie(flags.Require("data"));

  monitor::ReplayOptions options;
  options.batch_rows = flags.GetInt("batch-rows", options.batch_rows);
  options.num_batches = flags.GetInt("num-batches", options.num_batches);
  options.shift_at_batch = flags.GetInt("shift-at", options.num_batches / 2);
  options.shift_feature =
      flags.GetInt("shift-feature", options.shift_feature);
  options.shift_gamma = flags.GetDouble("shift-gamma", options.shift_gamma);
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int>(options.seed)));
  monitor::MonitorOptions& mon = options.monitor;
  mon.drift_bins = flags.GetInt("drift-bins", mon.drift_bins);
  mon.thresholds.psi = flags.GetDouble("psi-threshold", mon.thresholds.psi);
  mon.thresholds.ks = flags.GetDouble("ks-threshold", mon.thresholds.ks);
  mon.thresholds.min_window = static_cast<uint64_t>(flags.GetInt(
      "min-window", static_cast<int>(mon.thresholds.min_window)));
  mon.window_rows = static_cast<uint64_t>(
      flags.GetInt("window-rows", static_cast<int>(mon.window_rows)));
  mon.recalibrator.max_window = static_cast<size_t>(flags.GetInt(
      "feedback-window", static_cast<int>(mon.recalibrator.max_window)));
  mon.recalibrator.min_labeled = static_cast<size_t>(flags.GetInt(
      "min-labeled", static_cast<int>(mon.recalibrator.min_labeled)));
  mon.recalibrator.gamma =
      flags.GetDouble("aci-gamma", mon.recalibrator.gamma);
  mon.coverage.window = static_cast<size_t>(flags.GetInt(
      "coverage-window", static_cast<int>(mon.coverage.window)));
  mon.coverage.slack = flags.GetDouble("coverage-slack", mon.coverage.slack);
  mon.recalibrate_every =
      static_cast<uint64_t>(flags.GetInt("recalibrate-every", 0));
  mon.engine = BatchOptionsFromFlags(flags);
  options.service.engine = mon.engine;

  // One replay per requested backend. `--interval-backend NAME` rebinds
  // the artifact's backend (with the calibration set, so cqr can refit);
  // `all` sweeps every registered backend over the identical traffic,
  // producing the per-backend coverage table. Without the flag the
  // artifact's own backend runs, as before.
  std::string backend_flag = flags.Get("interval-backend", "");
  std::vector<std::string> backend_names;
  if (backend_flag == "all") {
    backend_names.assign(core::kIntervalBackendNames.begin(),
                         core::kIntervalBackendNames.end());
  } else {
    backend_names.push_back(backend_flag);  // "" keeps artifact backend
  }

  struct BackendRun {
    std::string name;
    monitor::ReplayResult result;
  };
  std::vector<BackendRun> runs;
  for (const std::string& backend : backend_names) {
    pipeline::Pipeline loaded = LoadPipelineOrDie(pipeline_path);
    if (!backend.empty()) {
      if (Status status = loaded.RebindIntervalBackend(backend, &calib);
          !status.ok()) {
        std::fprintf(stderr,
                     "cannot rebind interval backend to '%s': %s\n",
                     backend.c_str(), status.ToString().c_str());
        return 1;
      }
    }
    std::string label = backend;
    if (label.empty()) {
      label = loaded.interval_backend() != nullptr
                  ? loaded.interval_backend()->name()
                  : "none";
    }
    StatusOr<monitor::ReplayResult> replayed =
        monitor::RunReplay(std::move(loaded), calib, stream, options);
    if (!replayed.ok()) {
      std::fprintf(stderr, "%s\n", replayed.status().ToString().c_str());
      return 1;
    }
    runs.push_back({label, std::move(replayed).value()});
  }

  if (runs.size() == 1) {
    const monitor::ReplayResult& result = runs.front().result;
    std::printf(
        "batch  stream   max_psi  max_ks  drift  recal  coverage     "
        "q_hat\n");
    for (const monitor::ReplayBatchStat& stat : result.batches) {
      std::printf("%5d  %-7s %8.3f %7.3f  %-5s  %-5s  %8.3f  %8.4f\n",
                  stat.batch, stat.shifted ? "shifted" : "base",
                  stat.max_psi, stat.max_ks,
                  stat.drift_latched ? "yes" : "-",
                  stat.recalibrated ? "yes" : "-", stat.coverage,
                  stat.q_hat);
    }
    if (result.shift_batch >= 0) {
      std::printf("shift injected       : batch %d\n", result.shift_batch);
    } else {
      std::printf("shift injected       : never\n");
    }
    if (result.detect_batch >= 0 && result.shift_batch >= 0) {
      std::printf("drift detected       : batch %d (latency %d batches)\n",
                  result.detect_batch,
                  result.detect_batch - result.shift_batch);
    } else {
      std::printf("drift detected       : never\n");
    }
    if (result.recalibrate_batch >= 0) {
      std::printf("recalibrated         : batch %d (q_hat %.4f -> %.4f)\n",
                  result.recalibrate_batch, result.q_hat_initial,
                  result.q_hat_final);
    } else {
      std::printf("recalibrated         : never\n");
    }
  }

  // Per-backend phase-coverage table: mean per-batch coverage before the
  // shift, between shift and recalibration, and after recalibration.
  std::printf(
      "backend   pre-shift  shift->recal  post-recal  detect  recal  "
      "q_hat_final\n");
  for (const BackendRun& run : runs) {
    const monitor::ReplayResult& r = run.result;
    std::printf("%-9s %9.3f %13.3f %11.3f %7d %6d %12.4f\n",
                run.name.c_str(), r.coverage_pre_shift,
                r.coverage_shift_to_recal, r.coverage_post_recal,
                r.detect_batch, r.recalibrate_batch, r.q_hat_final);
  }
  return 0;
}

void PrintUsage() {
  std::fputs(
      "usage: roicl "
      "<generate|methods|train|predict|score|serve|evaluate|allocate"
      "|campaign|monitor-replay|load-replay> [--flags]\n"
      "run with a subcommand and no flags to see its required arguments\n"
      "train once, serve many:\n"
      "  train --method NAME --train CSV [--calib CSV] "
      "--save-pipeline FILE\n"
      "  score --pipeline FILE --data CSV --out CSV\n"
      "  serve --pipeline FILE --data CSV --out CSV [--request-rows N]\n"
      "  monitor-replay --pipeline FILE --calib CSV --data CSV\n"
      "      [--shift-at N --shift-gamma G --window-rows N "
      "--num-batches N]\n"
      "  load-replay --pipeline FILE --calib CSV --data CSV\n"
      "      [--slo-spec FILE --out JSON --requests N --max-queue N]\n"
      "  allocate --streaming [--synthetic-rows N | --pipeline FILE "
      "--data CSV]\n"
      "      [--mode greedy|dual --shards N --memory-cap-mb MB "
      "--chunk-rows N --budget-frac F --seed N]\n"
      "  campaign [--dataset criteo|meituan|alibaba|all --arms K "
      "--scorer dnc-rdrp|dnc-ranknet]\n"
      "      [--mode greedy|dual --arm-budgets F1,..,FK --budget-frac F "
      "--shards N --seed N]\n"
      "`roicl methods` lists every registered method name\n"
      "observability flags (any subcommand): --log-level LEVEL, "
      "--log-json FILE, --metrics-out FILE, --metrics-prom FILE, "
      "--trace-out FILE\n"
      "prediction engine flags: --batch-size N (default 256), --threads N "
      "(0 = shared pool, 1 = serial; results are identical either way)\n",
      stderr);
}

int RunCommand(const std::string& command, const Flags& flags) {
  obs::ScopedSpan span("roicl." + command);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "methods") return CmdMethods(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "score") return CmdScore(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "allocate") return CmdAllocate(flags);
  if (command == "campaign") return CmdCampaign(flags);
  if (command == "monitor-replay") return CmdMonitorReplay(flags);
  if (command == "load-replay") return CmdLoadReplay(flags);
  PrintUsage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  RejectUnknownFlags(command, flags);
  ValidateFlagRanges(flags);
  SetupObservability(flags);
  InstallSignalHandlers();
  int exit_code = RunCommand(command, flags);
  FinishObservability(flags);
  // Conventional 128+sig exit after the observability flush — scripts
  // see the interruption, but the metrics/trace files are intact.
  if (g_interrupted.load(std::memory_order_relaxed)) {
    return 128 + g_signal.load(std::memory_order_relaxed);
  }
  return exit_code;
}
